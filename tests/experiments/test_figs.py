"""Smoke + shape tests for the figure harnesses (quick mode).

These are the integration tests of the reproduction itself: each
harness must run end-to-end and exhibit the paper's qualitative shape.
They use tiny sizes; the full-size runs live in benchmarks/.
"""

import pytest

from repro.experiments import fig2, fig7, fig8, fig9, timing


class TestFig2:
    def test_rank_size_rows(self):
        res = fig2.run_rank_size(traces=("caida-1",), quick=True, points=6)
        assert res.rows
        ranks = res.column("rank")
        sizes = res.column("size_bytes")
        assert ranks == sorted(ranks)
        assert sizes == sorted(sizes, reverse=True)

    def test_heavy_tail_signature(self):
        res = fig2.run_concentration(traces=("caida-1", "auck-1"), quick=True)
        for row in res.rows:
            assert row["top16_share"] > 0.25
            assert row["gini"] > 0.5

    def test_run_bundles_both(self):
        results = fig2.run(quick=True)
        assert len(results) == 2


class TestFig8:
    def test_annex_sweep_shape(self):
        res = fig8.run_annex_sweep(
            traces=("caida-1", "auck-1"), quick=True,
            annex_sizes=(64, 512),
        )
        by_trace = {}
        for row in res.rows:
            by_trace.setdefault(row["trace"], {})[row["annex_entries"]] = row["fpr"]
        # FPR never increases with annex size
        for fprs in by_trace.values():
            assert fprs[512] <= fprs[64] + 1e-9
        # auckland-like traces are clean at 512 (paper: 100% accuracy)
        assert by_trace["auck-1"][512] == 0.0

    def test_false_positives_fall_in_top20(self):
        res = fig8.run_annex_sweep(traces=("caida-1",), quick=True,
                                   annex_sizes=(512,))
        for row in res.rows:
            assert row["fpr_vs_top20"] <= row["fpr"]

    def test_window_accuracy_high(self):
        res = fig8.run_window_accuracy(
            traces=("auck-1",), quick=True, intervals=(1000, 5000)
        )
        assert res.rows
        for row in res.rows:
            assert row["mean_accuracy"] >= 0.85  # paper: above 90%

    def test_sampling_moderate_probs_ok(self):
        res = fig8.run_sampling(
            traces=("auck-1",), quick=True, probs=(1.0, 0.1)
        )
        by_prob = {row["sample_prob"]: row["fpr"] for row in res.rows}
        assert by_prob[0.1] <= by_prob[1.0] + 0.15

    def test_two_level_beats_single(self):
        res = fig8.run_single_vs_two_level(traces=("auck-1", "auck-2"), quick=True)
        fpr = {}
        for row in res.rows:
            fpr.setdefault(row["detector"], []).append(row["fpr"])
        assert sum(fpr["afd-two-level"]) <= sum(fpr["single-lfu"])


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run(quick=True, traces=("caida-1",), k_sweep=(1, 16), seed=7)

    def test_policies_present(self, result):
        policies = {row["policy"] for row in result.rows}
        assert {"afs", "none", "top-1", "top-16", "laps-afd"} <= policies

    def test_no_migration_never_reorders(self, result):
        row = next(r for r in result.rows if r["policy"] == "none")
        assert row["ooo"] == 0 and row["flow_migrations"] == 0

    def test_topk_cuts_ooo_and_migrations(self, result):
        """Fig. 9(b)/(c): large reductions relative to AFS."""
        row = next(r for r in result.rows if r["policy"] == "top-16")
        assert row["ooo_rel_afs"] < 0.6
        assert row["migrations_rel_afs"] < 0.5

    def test_topk16_throughput_not_worse_than_none(self, result):
        none = next(r for r in result.rows if r["policy"] == "none")
        top = next(r for r in result.rows if r["policy"] == "top-16")
        assert top["dropped"] <= none["dropped"]


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run(quick=True, scenarios=("T1", "T5"), seed=0)

    def test_all_rows_present(self, result):
        assert len(result.rows) == 6  # 2 scenarios x 3 schedulers

    def test_laps_wins_on_drops(self, result):
        for scenario in ("T1", "T5"):
            rows = {r["scheduler"]: r for r in result.rows if r["scenario"] == scenario}
            assert rows["laps"]["dropped"] < rows["fcfs"]["dropped"]
            assert rows["laps"]["dropped"] < rows["afs"]["dropped"]

    def test_laps_avoids_cold_caches(self, result):
        for row in result.rows:
            if row["scheduler"] == "laps":
                assert row["cold_cache_frac"] < 0.05
            if row["scheduler"] == "fcfs":
                assert row["cold_cache_frac"] > 0.2

    def test_fcfs_reorders_most(self, result):
        for scenario in ("T1", "T5"):
            rows = {r["scheduler"]: r for r in result.rows if r["scenario"] == scenario}
            assert rows["fcfs"]["ooo"] > rows["laps"]["ooo"]

    def test_headline_positive(self, result):
        head = fig7.headline(result)
        assert head["drop_improvement"] > 0.3


class TestTiming:
    def test_critical_path_table(self):
        res = timing.run_critical_path()
        assert all(row["sustains_100gbps"] for row in res.rows)
        base = next(
            r for r in res.rows if r["hash_ns"] == 5.0 and r["map_entries"] == 256
        )
        assert base["max_rate_mpps"] >= 200.0

    def test_table3(self):
        res = timing.run_table3()
        values = " ".join(str(r["value"]) for r in res.rows)
        assert "1.0 GHz" in values and "16 KB" in values

    def test_run_bundles(self):
        assert len(timing.run()) == 2
