"""Tests for the experiments CLI."""

import json

import pytest

from repro.experiments.cli import main


class TestCLI:
    def test_timing_runs(self, capsys):
        assert main(["timing"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out

    def test_fig2_quick(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "flow size vs rank" in out

    def test_json_output(self, tmp_path, capsys):
        assert main(["timing", "--json", str(tmp_path)]) == 0
        files = list(tmp_path.glob("*.json"))
        assert files
        payload = json.loads(files[0].read_text())
        assert "rows" in payload

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_telemetry_output(self, tmp_path, capsys):
        from repro.obs import RunManifest, read_ndjson

        assert main(["timing", "--telemetry", str(tmp_path)]) == 0
        run_dirs = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert run_dirs
        run = run_dirs[0]
        manifest = RunManifest.load(run / "manifest.json")
        assert manifest.package_version
        rows = read_ndjson(run / "rows.ndjson")
        payload = json.loads((run / "result.json").read_text())
        assert rows == payload["rows"]
