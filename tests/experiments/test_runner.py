"""Tests for the experiment result container and scenario assembly."""

import json

import pytest

from repro import units
from repro.experiments.params import SCENARIOS
from repro.experiments.runner import (
    ExperimentResult,
    scenario_config,
    scenario_workload,
)


class TestExperimentResult:
    def test_add_and_column(self):
        res = ExperimentResult("x", columns=["a", "b"])
        res.add(a=1, b=2)
        res.add(a=3, b=4)
        assert res.column("a") == [1, 3]

    def test_add_missing_column_rejected(self):
        res = ExperimentResult("x", columns=["a", "b"])
        with pytest.raises(ValueError):
            res.add(a=1)

    def test_extra_kwargs_ignored_in_row(self):
        res = ExperimentResult("x", columns=["a"])
        res.add(a=1, b=2)
        assert res.rows == [{"a": 1}]

    def test_format_contains_title_and_meta(self):
        res = ExperimentResult("My Table", columns=["a"], meta={"seed": 1})
        res.add(a=5)
        out = res.format()
        assert "My Table" in out and "seed=1" in out and "5" in out

    def test_json_roundtrip(self, tmp_path):
        res = ExperimentResult("x", columns=["a"], meta={"k": "v"})
        res.add(a=1)
        path = tmp_path / "r.json"
        res.to_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["rows"] == [{"a": 1}]
        assert loaded["meta"] == {"k": "v"}

    def test_from_json_inverts_to_json(self, tmp_path):
        res = ExperimentResult(
            "Fig. X", columns=["a", "b"], meta={"quick": True, "seed": 3}
        )
        res.add(a=1, b=0.25)
        res.add(a=2, b=None)
        path = tmp_path / "r.json"
        res.to_json(path)
        loaded = ExperimentResult.from_json(path)
        assert loaded == res

    def test_from_json_text(self):
        res = ExperimentResult("x", columns=["a"])
        res.add(a=1)
        assert ExperimentResult.from_json(res.to_json()) == res

    def test_from_json_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            ExperimentResult.from_json('{"rows": []}')

    def test_from_json_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ExperimentResult.from_json(tmp_path / "nope.json")


class TestScenarioAssembly:
    def test_config_defaults(self):
        cfg = scenario_config()
        assert cfg.num_cores == 16
        assert cfg.queue_capacity == 32
        assert len(cfg.services) == 4

    def test_workload_builds(self):
        wl = scenario_workload(
            SCENARIOS["T1"],
            duration_ns=units.ms(2),
            trace_packets=2_000,
            seed=0,
        )
        assert wl.num_services == 4
        assert wl.num_packets > 100

    def test_offered_load_matches_utilisation(self):
        """T1 (set1) must offer ~0.85x capacity; T5 (set2) ~1.15x."""
        from repro.net.service import default_services
        from repro.trace.models import TRIMODAL_INTERNET_SIZES

        services = default_services()
        mean = TRIMODAL_INTERNET_SIZES.mean
        capacity = services.capacity_pps([4, 4, 4, 4], mean)
        wl1 = scenario_workload(
            SCENARIOS["T1"], duration_ns=units.ms(5), trace_packets=2000, seed=0
        )
        wl5 = scenario_workload(
            SCENARIOS["T5"], duration_ns=units.ms(5), trace_packets=2000, seed=0
        )
        assert wl1.offered_rate_pps() / capacity == pytest.approx(0.85, abs=0.12)
        assert wl5.offered_rate_pps() / capacity == pytest.approx(1.15, abs=0.12)
