"""Tests for the batched multi-run executor."""

import numpy as np
import pytest

from repro.experiments.batch import BatchRun, RunSpec, WorkloadSpec, run_batch
from repro.net.service import Service, ServiceSet
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.hash_static import StaticHashScheduler
from repro.sim.config import SimConfig
from repro.sim.system import simulate
from repro.sim.workload import Workload

#: builds performed by :func:`_workload` in this process (grouping probe)
_BUILDS: list[tuple] = []


def _workload(n: int, spacing_ns: int = 500) -> Workload:
    """Module-level (picklable) deterministic workload factory."""
    _BUILDS.append((n, spacing_ns))
    arrivals = np.arange(n, dtype=np.int64) * spacing_ns
    flows = np.arange(n, dtype=np.int64) % 4
    seq = np.arange(n, dtype=np.int64) // 4
    return Workload(
        arrival_ns=arrivals,
        service_id=np.zeros(n, dtype=np.int32),
        flow_id=flows,
        size_bytes=np.full(n, 64, dtype=np.int32),
        flow_hash=flows.copy(),
        seq=seq,
        num_flows=4,
        num_services=1,
        duration_ns=int(arrivals[-1]) + 1 if n else 1,
    )


def _config(num_cores: int = 2) -> SimConfig:
    return SimConfig(
        num_cores=num_cores,
        services=ServiceSet([Service(0, "s", 1000)]),
    )


class TestWorkloadSpec:
    def test_equality_is_by_recipe(self):
        a = WorkloadSpec.of(_workload, n=10, spacing_ns=500)
        b = WorkloadSpec.of(_workload, spacing_ns=500, n=10)  # kwarg order
        c = WorkloadSpec.of(_workload, n=11, spacing_ns=500)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_build(self):
        wl = WorkloadSpec.of(_workload, n=8).build()
        assert wl.num_packets == 8


class TestRunBatch:
    def test_results_in_input_order_with_labels(self):
        wspec = WorkloadSpec.of(_workload, n=20)
        specs = [
            RunSpec(
                workload=wspec,
                scheduler_fn=StaticHashScheduler,
                config_fn=_config,
                label={"i": i},
            )
            for i in range(5)
        ]
        runs = run_batch(specs)
        assert [r.label["i"] for r in runs] == list(range(5))
        assert all(isinstance(r, BatchRun) for r in runs)

    def test_workload_built_once_per_group(self):
        _BUILDS.clear()
        shared = WorkloadSpec.of(_workload, n=12)
        other = WorkloadSpec.of(_workload, n=13)
        specs = [
            RunSpec(workload=shared, scheduler_fn=StaticHashScheduler,
                    config_fn=_config, label={"k": 0}),
            RunSpec(workload=other, scheduler_fn=StaticHashScheduler,
                    config_fn=_config, label={"k": 1}),
            RunSpec(workload=shared, scheduler_fn=FCFSScheduler,
                    config_fn=_config, label={"k": 2}),
            RunSpec(workload=shared, scheduler_fn=StaticHashScheduler,
                    config_fn=_config, label={"k": 3}),
        ]
        runs = run_batch(specs, jobs=1)  # inline: _BUILDS observable
        assert sorted(_BUILDS) == [(12, 500), (13, 500)]  # 2 builds, 4 runs
        assert [r.label["k"] for r in runs] == [0, 1, 2, 3]

    def test_reports_match_direct_simulate(self):
        wspec = WorkloadSpec.of(_workload, n=30)
        spec = RunSpec(
            workload=wspec,
            scheduler_fn=StaticHashScheduler,
            config_fn=_config,
            config_kwargs={"num_cores": 3},
        )
        (run,) = run_batch([spec])
        expected = simulate(_workload(30), StaticHashScheduler(), _config(3))
        assert run.report == expected

    def test_default_config_when_no_factory(self):
        spec = RunSpec(
            workload=WorkloadSpec.of(_workload, n=5),
            scheduler_fn=StaticHashScheduler,
        )
        cfg = spec.build_config()
        assert cfg.num_cores == SimConfig().num_cores
        (run,) = run_batch([spec])
        assert run.report.generated == 5

    def test_empty_batch(self):
        assert run_batch([]) == []

    def test_process_pool_smoke(self):
        specs = [
            RunSpec(
                workload=WorkloadSpec.of(_workload, n=10 + g),
                scheduler_fn=StaticHashScheduler,
                config_fn=_config,
                label={"g": g},
            )
            for g in range(3)
        ]
        runs = run_batch(specs, jobs=2)
        assert [r.label["g"] for r in runs] == [0, 1, 2]
        assert [r.report.generated for r in runs] == [10, 11, 12]

    def test_jobs_invariant_results(self):
        specs = [
            RunSpec(
                workload=WorkloadSpec.of(_workload, n=16 + g),
                scheduler_fn=FCFSScheduler,
                config_fn=_config,
                label={"g": g},
            )
            for g in range(3)
        ]
        inline = run_batch(specs, jobs=1)
        pooled = run_batch(specs, jobs=2)
        assert [r.report for r in inline] == [r.report for r in pooled]


def _fail_injector(core_id: int = 0, at_ns: int = 2000):
    """Module-level (picklable) injector factory for RunSpec tests."""
    from repro.faults.events import CoreFail, FaultSchedule
    from repro.faults.injector import FaultInjector

    return FaultInjector(FaultSchedule([CoreFail(at_ns, core_id=core_id)]))


class TestInjectorSupport:
    def test_no_injector_by_default(self):
        spec = RunSpec(
            workload=WorkloadSpec.of(_workload, n=5),
            scheduler_fn=StaticHashScheduler,
        )
        assert spec.build_injector() is None

    def test_injector_built_and_applied(self):
        wspec = WorkloadSpec.of(_workload, n=40)
        faulted = RunSpec(
            workload=wspec,
            scheduler_fn=StaticHashScheduler,
            config_fn=_config,
            injector_fn=_fail_injector,
            injector_kwargs={"core_id": 0, "at_ns": 2000},
        )
        clean = RunSpec(
            workload=wspec,
            scheduler_fn=StaticHashScheduler,
            config_fn=_config,
        )
        runs = run_batch([faulted, clean])
        expected = simulate(
            _workload(40), StaticHashScheduler(), _config(),
            injector=_fail_injector(core_id=0, at_ns=2000),
        )
        assert runs[0].report == expected
        assert runs[0].report != runs[1].report

    def test_injector_survives_process_pool(self):
        specs = [
            RunSpec(
                workload=WorkloadSpec.of(_workload, n=30 + g),
                scheduler_fn=StaticHashScheduler,
                config_fn=_config,
                injector_fn=_fail_injector,
                label={"g": g},
            )
            for g in range(2)
        ]
        pooled = run_batch(specs, jobs=2)
        inline = run_batch(specs, jobs=1)
        assert [r.report for r in pooled] == [r.report for r in inline]


class TestShardedSpecs:
    def test_sharded_report_matches_single_process(self):
        wspec = WorkloadSpec.of(_workload, n=60)
        single = RunSpec(
            workload=wspec, scheduler_fn=StaticHashScheduler,
            config_fn=_config,
        )
        sharded = RunSpec(
            workload=wspec, scheduler_fn=StaticHashScheduler,
            config_fn=_config, shards=2, shard_workers=1,
        )
        runs = run_batch([single, sharded], jobs=1)
        assert runs[0].report == runs[1].report
        assert runs[0].sharding is None
        assert runs[1].sharding["mode"] == "cores"
        assert runs[1].sharding["num_shards"] == 2

    def test_fingerprint_shared_across_shard_group(self):
        from repro.sim.source import workload_fingerprint

        wspec = WorkloadSpec.of(_workload, n=48)
        specs = [
            RunSpec(
                workload=wspec, scheduler_fn=StaticHashScheduler,
                config_fn=_config, shards=2, shard_workers=1,
                label={"i": i},
            )
            for i in range(2)
        ]
        runs = run_batch(specs, jobs=1)
        prints = [r.sharding["source_fingerprint"] for r in runs]
        # one fingerprint per group, and it is the single-process
        # workload's content hash — the shards were cut from the
        # identical stream
        assert prints[0] == prints[1] == workload_fingerprint(_workload(48))

    def test_sharded_faulted_matches_single_process(self):
        wspec = WorkloadSpec.of(_workload, n=80)
        sharded = RunSpec(
            workload=wspec, scheduler_fn=StaticHashScheduler,
            config_fn=_config, shards=2, shard_workers=1,
            injector_fn=_fail_injector,
            injector_kwargs={"core_id": 0, "at_ns": 2000},
        )
        (run,) = run_batch([sharded], jobs=1)
        expected = simulate(
            _workload(80), StaticHashScheduler(), _config(),
            injector=_fail_injector(core_id=0, at_ns=2000),
        )
        assert run.report == expected
