"""Tests for the scheduler tournament harness.

One tiny grid is raced once per module (session-scoped fixture) and
every structural/behavioral assertion reads from it; the committed
``TOURNAMENT.json`` artifact is validated separately so a stale or
hand-edited scorecard fails CI.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.experiments import tournament
from repro.experiments.tournament import (
    SCORECARD_SCHEMA,
    render_markdown,
    run_tournament,
    validate_scorecard,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def payload():
    """A small but non-trivial grid: the three reorder-profile zoo
    schemes under the fault that exposes them (core loss shifts load,
    which is what triggers Flow Director's rebinding)."""
    return run_tournament(
        schedulers=("flow-director", "flowlet", "sprinklers"),
        groups=("G1",),
        faults=("none", "core-loss"),
        utilisations=(0.6,),
        seeds=(0,),
        duration_ns=2_000_000,
        trace_packets=5_000,
    )


class TestGrid:
    def test_one_run_per_cell(self, payload):
        assert len(payload["runs"]) == 3 * 2  # schedulers x faults
        cells = {(r["scheduler"], r["fault"]) for r in payload["runs"]}
        assert len(cells) == 6

    def test_grid_echoes_request(self, payload):
        grid = payload["grid"]
        assert grid["schedulers"] == ["flow-director", "flowlet", "sprinklers"]
        assert grid["faults"] == ["none", "core-loss"]
        assert grid["utilisations"] == [0.6]

    def test_unknown_fault_rejected_before_running(self):
        with pytest.raises(ValueError):
            run_tournament(faults=("meteor",), quick=True)


class TestScorecard:
    def test_validates(self, payload):
        validate_scorecard(payload)

    def test_reproduces_flow_director_pathology(self, payload):
        """The acceptance criterion: Flow Director's follow-the-load
        rebinding produces measurably more reordering than flowlet
        switching (which waits for idle gaps) and Sprinklers (which
        stripes at chunk granularity)."""
        means = {
            e["scheduler"]: e["means"] for e in payload["scorecard"]
        }
        fd = means["flow-director"]["reorder_density"]
        assert fd > means["flowlet"]["reorder_density"]
        assert fd > means["sprinklers"]["reorder_density"]

    def test_ranks_are_contiguous_and_scored(self, payload):
        card = payload["scorecard"]
        assert [e["rank"] for e in card] == list(range(1, len(card) + 1))
        scores = [e["score"] for e in card]
        assert scores == sorted(scores)

    def test_resilience_uses_faulted_cells_only(self, payload):
        by = {
            (r["scheduler"], r["fault"]): r for r in payload["runs"]
        }
        for entry in payload["scorecard"]:
            name = entry["scheduler"]
            faulted = by[(name, "core-loss")]["drop_frac"]
            assert entry["means"]["resilience_drop_frac"] == pytest.approx(
                faulted, abs=1e-9
            )


class TestValidation:
    def _valid(self, payload):
        return copy.deepcopy(payload)

    def test_wrong_schema_rejected(self, payload):
        bad = self._valid(payload)
        bad["schema"] = "repro.tournament/0"
        with pytest.raises(ValueError, match="schema"):
            validate_scorecard(bad)

    @pytest.mark.parametrize(
        "key", ["generated_by", "grid", "runs", "scorecard"]
    )
    def test_missing_key_rejected(self, payload, key):
        bad = self._valid(payload)
        del bad[key]
        with pytest.raises(ValueError, match=key):
            validate_scorecard(bad)

    def test_empty_runs_rejected(self, payload):
        bad = self._valid(payload)
        bad["runs"] = []
        with pytest.raises(ValueError, match="runs"):
            validate_scorecard(bad)

    def test_missing_run_field_rejected(self, payload):
        bad = self._valid(payload)
        del bad["runs"][0]["reorder_density"]
        with pytest.raises(ValueError, match="reorder_density"):
            validate_scorecard(bad)

    def test_out_of_range_fraction_rejected(self, payload):
        bad = self._valid(payload)
        bad["runs"][0]["drop_frac"] = 1.5
        with pytest.raises(ValueError, match="drop_frac"):
            validate_scorecard(bad)

    def test_broken_rank_sequence_rejected(self, payload):
        bad = self._valid(payload)
        bad["scorecard"][0]["rank"] = 7
        with pytest.raises(ValueError, match="rank"):
            validate_scorecard(bad)

    def test_scheduler_mismatch_rejected(self, payload):
        bad = self._valid(payload)
        bad["scorecard"][0]["scheduler"] = "ghost"
        with pytest.raises(ValueError, match="ghost"):
            validate_scorecard(bad)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            validate_scorecard([])


class TestRendering:
    def test_markdown_has_every_scheduler_row(self, payload):
        md = render_markdown(payload)
        assert "| rank | scheduler |" in md
        for entry in payload["scorecard"]:
            assert f"| {entry['scheduler']} |" in md

    def test_markdown_mentions_grid_shape(self, payload):
        md = render_markdown(payload)
        assert f"{len(payload['runs'])} runs" in md


class TestCommittedArtifact:
    def test_tournament_json_is_valid(self):
        path = REPO_ROOT / "TOURNAMENT.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCORECARD_SCHEMA
        validate_scorecard(payload)

    def test_committed_scorecard_shows_the_pathology(self):
        payload = json.loads((REPO_ROOT / "TOURNAMENT.json").read_text())
        means = {e["scheduler"]: e["means"] for e in payload["scorecard"]}
        fd = means["flow-director"]["reorder_density"]
        assert fd > means["flowlet"]["reorder_density"]
        assert fd > means["sprinklers"]["reorder_density"]
