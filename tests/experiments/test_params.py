"""Tests for Tables IV-VI parameters and calibration."""

import pytest

from repro.experiments.params import (
    PARAM_SETS,
    SCENARIOS,
    SET_UTILISATION,
    TRACE_GROUPS,
    scaled_params,
)
from repro.sim.generator import HoltWinters, HoltWintersParams


class TestTables:
    def test_two_sets_of_four_services(self):
        assert set(PARAM_SETS) == {"set1", "set2"}
        assert all(len(rows) == 4 for rows in PARAM_SETS.values())

    def test_set1_values_match_table_iv(self):
        s1 = PARAM_SETS["set1"][0]
        assert (s1.a, s1.c, s1.m, s1.sigma) == (1.0e6, 0.30e6, 40.0, 0.10e6)

    def test_under_vs_overload(self):
        assert SET_UTILISATION["set1"] < 1.0 < SET_UTILISATION["set2"]

    def test_trace_groups(self):
        # Table V's four groups plus the workload-library CDF group
        assert set(TRACE_GROUPS) == {"G1", "G2", "G3", "G4", "W1"}
        assert all(len(g) == 4 for g in TRACE_GROUPS.values())

    def test_w1_names_resolve(self):
        from repro.workloads.traces import resolve_trace

        for name in TRACE_GROUPS["W1"]:
            trace = resolve_trace(name, num_packets=512)
            assert trace.num_packets == 512

    def test_eight_scenarios(self):
        assert len(SCENARIOS) == 8
        assert SCENARIOS["T5"].param_set == "set2"
        assert SCENARIOS["T1"].trace_group == "G1"

    def test_t8_repeats_g3_as_printed(self):
        assert SCENARIOS["T8"].trace_group == "G3"

    def test_scenario_accessors(self):
        sc = SCENARIOS["T1"]
        assert len(sc.params) == 4
        assert sc.utilisation == SET_UTILISATION["set1"]
        assert sc.trace_names == TRACE_GROUPS["G1"]


class TestScaledParams:
    def test_per_service_calibration(self):
        params = PARAM_SETS["set1"]
        caps = [1e6, 2e6, 3e6, 4e6]
        scaled = scaled_params(params, caps, utilisation=0.85, duration_s=0.06)
        for p, cap in zip(scaled, caps):
            mean = HoltWinters(p).average_rate(0.06)
            assert mean == pytest.approx(0.85 * cap, rel=0.02)

    def test_time_compression(self):
        params = [HoltWintersParams(a=1e6, b=1e3, c=1e5, m=40.0)]
        scaled = scaled_params(params, [1e6], 1.0, 0.06, time_compression=1000)
        assert scaled[0].m == pytest.approx(0.04)

    def test_shape_preserved(self):
        """C/a and sigma/a ratios survive calibration."""
        params = [HoltWintersParams(a=2e6, c=0.5e6, sigma=0.1e6, m=10.0)]
        scaled = scaled_params(params, [1e6], 1.0, 0.06)
        assert scaled[0].c / scaled[0].a == pytest.approx(0.25)
        assert scaled[0].sigma / scaled[0].a == pytest.approx(0.05)

    def test_validation(self):
        params = [HoltWintersParams(a=1e6)]
        with pytest.raises(ValueError):
            scaled_params(params, [1e6, 2e6], 1.0, 0.06)
        with pytest.raises(ValueError):
            scaled_params(params, [0.0], 1.0, 0.06)
        with pytest.raises(ValueError):
            scaled_params(params, [1e6], 0.0, 0.06)
        with pytest.raises(ValueError):
            scaled_params(params, [1e6], 1.0, 0.06, time_compression=0)
