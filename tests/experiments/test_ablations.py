"""Smoke + shape tests for the ablation library functions (tiny sizes).

The timed, full-size versions live in benchmarks/bench_ablations.py;
these verify the library surface works and the headline direction of
each sweep holds at small scale.
"""

from repro.experiments import ablations


class TestPromoteThreshold:
    def test_rows_and_direction(self):
        res = ablations.run_promote_threshold(quick=True, thresholds=(8, 128))
        assert [r["threshold"] for r in res.rows] == [8, 128]
        assert res.rows[0]["promotions"] > res.rows[1]["promotions"]


class TestQueueDepth:
    def test_deeper_queues_drop_less(self):
        res = ablations.run_queue_depth(quick=True, depths=(16, 128))
        assert res.rows[1]["dropped"] < res.rows[0]["dropped"]


class TestMigrationTable:
    def test_big_table_stops_evicting(self):
        res = ablations.run_migration_table(quick=True, capacities=(8, 1024))
        assert res.rows[1]["evictions"] <= res.rows[0]["evictions"]


class TestPinWeight:
    def test_sweep_runs(self):
        res = ablations.run_pin_weight(quick=True, weights=(0, 16))
        assert len(res.rows) == 2


class TestRestoration:
    def test_residual_monotone_in_buffer(self):
        res = ablations.run_restoration(quick=True, buffers=(8, 64, None))
        residuals = res.column("residual_ooo")
        assert residuals == sorted(residuals, reverse=True)
        assert residuals[-1] == 0


class TestPowerGating:
    def test_savings_monotone(self):
        res = ablations.run_power_gating(quick=True,
                                         gating_fractions=(0.0, 0.9))
        assert res.rows[1]["savings"] > res.rows[0]["savings"]


class TestBundle:
    def test_run_exposes_all_sweeps(self):
        # the bundle is exercised at full size by the benchmarks; here
        # just pin its composition
        assert [f.__name__ for f in (
            ablations.run_promote_threshold,
            ablations.run_queue_depth,
            ablations.run_migration_table,
            ablations.run_pin_weight,
            ablations.run_restoration,
            ablations.run_power_gating,
        )] == [n for n in ablations.__all__ if n != "run"]
