"""Tests for repro.units (time/rate conversions)."""

import pytest

from repro import units


class TestConstants:
    def test_hierarchy(self):
        assert units.NS == 1
        assert units.US == 1_000
        assert units.MS == 1_000_000
        assert units.SEC == 1_000_000_000

    def test_constants_consistent(self):
        assert units.MS == 1000 * units.US
        assert units.SEC == 1000 * units.MS


class TestConversions:
    def test_us(self):
        assert units.us(1) == 1_000
        assert units.us(0.5) == 500
        assert units.us(3.53) == 3530

    def test_ms(self):
        assert units.ms(2) == 2_000_000

    def test_seconds(self):
        assert units.seconds(1.5) == 1_500_000_000

    def test_ns_rounds(self):
        assert units.ns(1.4) == 1
        assert units.ns(1.6) == 2

    def test_roundtrip_to_seconds(self):
        assert units.to_seconds(units.seconds(2.5)) == pytest.approx(2.5)

    def test_roundtrip_to_us(self):
        assert units.to_us(units.us(0.8)) == pytest.approx(0.8)

    def test_results_are_ints(self):
        for f in (units.ns, units.us, units.ms, units.seconds):
            assert isinstance(f(1.234), int)


class TestRates:
    def test_mpps(self):
        assert units.mpps(1.5) == 1_500_000

    def test_kpps(self):
        assert units.kpps(2) == 2_000

    def test_interarrival(self):
        assert units.pps_to_interarrival_ns(1e6) == pytest.approx(1000.0)

    def test_interarrival_roundtrip(self):
        rate = 3.7e6
        assert units.interarrival_ns_to_pps(
            units.pps_to_interarrival_ns(rate)
        ) == pytest.approx(rate)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            units.pps_to_interarrival_ns(0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            units.pps_to_interarrival_ns(-1)

    def test_zero_gap_rejected(self):
        with pytest.raises(ValueError):
            units.interarrival_ns_to_pps(0)
