"""Tests for the composable telemetry probe framework."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigError
from repro.obs import (
    FaultStateSampler,
    ProgressSampler,
    QueueOccupancySampler,
    ReorderSampler,
    SchedulerSampler,
    TelemetryProbe,
)
from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.system import NetworkProcessorSim


class FakeQueues:
    def __init__(self, occ):
        self._occ = occ

    def occupancies(self):
        return list(self._occ)


class FakeMetrics:
    def __init__(self):
        self.generated = 0
        self.dropped = 0
        self.departed = 0
        self.generated_per_service = [0]
        self.dropped_per_service = [0]


class TestPeriodSemantics:
    def test_invalid_period(self):
        with pytest.raises(ConfigError):
            TelemetryProbe(0)

    def test_one_sample_per_call_no_backfill(self):
        probe = TelemetryProbe(100, [ProgressSampler()])
        m = FakeMetrics()
        probe.maybe_sample(250, FakeQueues([0]), m)
        assert probe.times_ns == [250]
        m.dropped = 9
        probe.maybe_sample(260, FakeQueues([0]), m)   # same period
        assert probe.num_samples == 1
        probe.maybe_sample(301, FakeQueues([0]), m)
        assert probe.times_ns == [250, 301]
        assert [r["dropped"] for r in probe.records] == [0, 9]


class TestSamplers:
    def test_queue_occupancy_columns(self):
        probe = TelemetryProbe(10, [QueueOccupancySampler()])
        probe.maybe_sample(0, FakeQueues([2, 5]), FakeMetrics())
        row = probe.records[0]
        assert row["occupancy"] == [2, 5]
        assert row["occ_max"] == 5 and row["occ_min"] == 2

    def test_unbound_rich_samplers_degrade_to_empty(self):
        """Scheduler/reorder samplers need the bound simulator; without
        it they contribute nothing rather than crashing."""
        probe = TelemetryProbe(10, [SchedulerSampler(), ReorderSampler()])
        probe.maybe_sample(0, FakeQueues([0]), FakeMetrics())
        assert probe.records == [{"t_ns": 0}]

    def test_per_service_progress(self):
        probe = TelemetryProbe(10, [ProgressSampler(per_service=True)])
        probe.maybe_sample(0, FakeQueues([0]), FakeMetrics())
        assert probe.records[0]["dropped_per_service"] == [0]

    def test_column_accessor(self):
        probe = TelemetryProbe(10, [ProgressSampler()])
        m = FakeMetrics()
        probe.maybe_sample(0, FakeQueues([0]), m)
        m.departed = 4
        probe.maybe_sample(10, FakeQueues([0]), m)
        np.testing.assert_array_equal(probe.column("departed"), [0.0, 4.0])


class TestEndToEnd:
    def test_full_battery_in_simulation(self, small_workload, small_config):
        probe = TelemetryProbe(units.us(100))
        sim = NetworkProcessorSim(
            small_config, FCFSScheduler(), small_workload, probe=probe
        )
        rep = sim.run()
        assert probe.num_samples > 5
        row = probe.records[-1]
        # all four default samplers contributed (probe was bound)
        assert "occupancy" in row and "departed" in row
        assert "out_of_order" in row and "in_flight_gaps" in row
        assert row["departed"] == rep.departed
        assert row["out_of_order"] == rep.out_of_order

    def test_drain_phase_covered(self, small_workload, small_config):
        probe = TelemetryProbe(units.us(100))
        sim = NetworkProcessorSim(
            small_config, FCFSScheduler(), small_workload, probe=probe
        )
        sim.run()
        last_arrival = int(small_workload.arrival_ns[-1])
        drain_rows = [r for r in probe.records if r["t_ns"] > last_arrival]
        assert drain_rows, "no samples during the drain phase"
        # in-flight gaps drain to zero and queues empty out
        assert drain_rows[-1]["in_flight_gaps"] == 0
        assert sum(drain_rows[-1]["occupancy"]) == 0

    def test_scheduler_counters_sampled(self, small_workload, small_config):
        from repro.core.laps import LAPSConfig, LAPSScheduler

        probe = TelemetryProbe(units.us(100))
        sched = LAPSScheduler(LAPSConfig(num_services=1), rng=0)
        sim = NetworkProcessorSim(small_config, sched, small_workload, probe=probe)
        sim.run()
        row = probe.records[-1]
        assert "sched_migrations_installed" in row
        assert "sched_core_requests" in row


class TestFaultStateSampler:
    def test_without_injector_contributes_nothing(self):
        probe = TelemetryProbe(10, [FaultStateSampler()])
        probe.maybe_sample(0, FakeQueues([0]), FakeMetrics())
        assert probe.records == [{"t_ns": 0}]

    def test_fault_state_sampled_during_run(self, small_workload, small_config):
        from repro.faults import CoreFail, FaultInjector, FaultSchedule

        probe = TelemetryProbe(units.us(100))
        schedule = FaultSchedule([CoreFail(units.ms(1), core_id=3)])
        sim = NetworkProcessorSim(
            small_config, FCFSScheduler(), small_workload, probe=probe,
            injector=FaultInjector(schedule),
        )
        sim.run()
        before = [r for r in probe.records if r["t_ns"] < units.ms(1)]
        after = [r for r in probe.records if r["t_ns"] > units.ms(1)]
        assert before and before[0]["fault_cores_down"] == 0
        assert after and after[-1]["fault_cores_down"] == 1
        assert after[-1]["fault_events_applied"] == 1
