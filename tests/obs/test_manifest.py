"""Tests for run manifests (provenance records)."""

import json

import repro
from repro.obs import RunManifest, config_snapshot
from repro.sim.config import SimConfig


class TestCapture:
    def test_environment_fields(self):
        m = RunManifest.capture(seed=7, scheduler="laps")
        assert m.package_version == repro.__version__
        assert m.seed == 7
        assert m.scheduler == "laps"
        assert m.host
        assert m.created_utc.endswith("Z")

    def test_config_snapshot_inlined(self, single_service):
        cfg = SimConfig(num_cores=4, services=single_service)
        m = RunManifest.capture(config=cfg)
        assert m.config["num_cores"] == 4
        assert m.config["services"][0]["name"] == "ip-forward"

    def test_extra_kwargs_recorded(self):
        m = RunManifest.capture(trace="caida-1", utilisation=1.05)
        assert m.extra == {"trace": "caida-1", "utilisation": 1.05}


class TestSnapshot:
    def test_default_config_is_json_clean(self):
        snap = config_snapshot(SimConfig())
        json.dumps(snap)  # must not raise
        assert snap["num_cores"] == 16
        assert len(snap["services"]) == 4
        assert snap["drain_ns"] > 0


class TestRoundTrip:
    def test_save_load(self, tmp_path, single_service):
        cfg = SimConfig(num_cores=2, services=single_service)
        m = RunManifest.capture(config=cfg, seed=3, scheduler="afs", note="x")
        path = m.save(tmp_path / "manifest.json")
        back = RunManifest.load(path)
        assert back == m

    def test_dict_round_trip(self):
        m = RunManifest.capture(seed=1)
        assert RunManifest.from_dict(m.to_dict()) == m
