"""Tests for the hot-loop profiling hooks."""

import pytest

from repro.obs import HotLoopProfile, profile_run
from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.system import NetworkProcessorSim


class TestProfileRun:
    def test_counts_and_rates(self, small_workload, small_config):
        sim = NetworkProcessorSim(small_config, FCFSScheduler(), small_workload)
        report, prof = profile_run(sim)
        assert prof.packets == report.generated == small_workload.num_packets
        assert prof.departed == report.departed
        assert prof.events_popped == report.departed
        # every arriving packet consulted the scheduler exactly once
        assert prof.sched_calls == report.generated
        assert prof.wall_s > 0
        assert prof.packets_per_sec > 0
        assert 0.0 <= prof.sched_share <= 1.0

    def test_wrapper_removed_after_run(self, small_workload, small_config):
        sched = FCFSScheduler()
        sim = NetworkProcessorSim(small_config, sched, small_workload)
        profile_run(sim)
        # the timing shadow must be gone (instance dict clean)
        assert "select_core" not in vars(sched)

    def test_wrapper_removed_on_error(self, small_workload, small_config):
        sched = FCFSScheduler()
        sim = NetworkProcessorSim(small_config, sched, small_workload)
        sim._ran = True  # force run() to raise
        with pytest.raises(Exception):
            profile_run(sim)
        assert "select_core" not in vars(sched)

    def test_summary_renders(self, small_workload, small_config):
        sim = NetworkProcessorSim(small_config, FCFSScheduler(), small_workload)
        _, prof = profile_run(sim)
        text = prof.summary()
        assert "pkts/s" in text and "scheduler" in text


class TestDataclass:
    def test_zero_wall_guarded(self):
        prof = HotLoopProfile(
            wall_s=0.0, packets=0, departed=0, events_popped=0,
            sched_calls=0, sched_s=0.0,
        )
        assert prof.packets_per_sec == 0.0
        assert prof.sched_share == 0.0


class TestKernelProfiling:
    def test_profiles_a_bare_kernel(self, small_workload, small_config):
        # profile_run needs only scheduler/run()/events_popped, which
        # SimKernel exposes directly; the per-arrival select_core
        # attribute lookup makes the shadowing wrapper take effect
        from repro.sim.kernel import SimKernel

        sched = FCFSScheduler()
        kernel = SimKernel(small_config, sched, small_workload)
        report, prof = profile_run(kernel)
        assert prof.packets == report.generated == small_workload.num_packets
        assert prof.sched_calls == report.generated
        assert "select_core" not in vars(sched)
