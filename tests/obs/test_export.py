"""Tests for the NDJSON/CSV exporters and the run loader."""

import numpy as np

from repro import units
from repro.obs import (
    RunManifest,
    TelemetryProbe,
    load_run,
    read_ndjson,
    write_csv,
    write_ndjson,
    write_run,
)
from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.system import simulate


class TestNdjson:
    def test_round_trip(self, tmp_path):
        records = [
            {"t_ns": 0, "occupancy": [1, 2], "dropped": 0},
            {"t_ns": 100, "occupancy": [0, 3], "dropped": 2},
        ]
        path = write_ndjson(tmp_path / "s.ndjson", records)
        assert read_ndjson(path) == records

    def test_numpy_values_coerced(self, tmp_path):
        records = [{"t_ns": np.int64(5), "occ": np.asarray([1, 2])}]
        path = write_ndjson(tmp_path / "s.ndjson", records)
        assert read_ndjson(path) == [{"t_ns": 5, "occ": [1, 2]}]


class TestCsv:
    def test_list_columns_flattened(self, tmp_path):
        records = [{"t_ns": 0, "occupancy": [7, 9]}]
        path = write_csv(tmp_path / "s.csv", records)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "t_ns,occupancy_0,occupancy_1"
        assert lines[1] == "0,7,9"


class TestRunRoundTrip:
    def test_simulated_run_round_trips(self, tmp_path, small_workload, small_config):
        probe = TelemetryProbe(units.us(100))
        rep = simulate(small_workload, FCFSScheduler(), small_config, probe=probe)
        manifest = RunManifest.capture(
            config=small_config, seed=1, scheduler="fcfs"
        )
        paths = write_run(
            tmp_path / "fcfs", report=rep, manifest=manifest, probe=probe,
            csv_mirror=True,
        )
        assert set(paths) == {"manifest", "report", "series", "csv"}

        back = load_run(tmp_path / "fcfs")
        assert back.manifest == manifest.to_dict()
        assert back.report["scheduler"] == "fcfs"
        assert back.report["departed"] == rep.departed
        assert back.num_samples == probe.num_samples
        np.testing.assert_array_equal(back.times_ns(), probe.times_ns)
        np.testing.assert_array_equal(
            back.series("departed"), probe.column("departed")
        )
        assert "occupancy" in back.columns()

    def test_load_empty_dir(self, tmp_path):
        rec = load_run(tmp_path)
        assert rec.manifest is None and rec.report is None
        assert rec.records == []

    def test_missing_column_is_nan(self, tmp_path):
        write_ndjson(tmp_path / "series.ndjson",
                     [{"t_ns": 0, "x": 1}, {"t_ns": 1}])
        rec = load_run(tmp_path)
        series = rec.series("x")
        assert series[0] == 1.0 and np.isnan(series[1])


class TestExperimentDump:
    def test_experiment_round_trip(self, tmp_path):
        from repro.experiments.runner import ExperimentResult

        result = ExperimentResult(
            experiment="demo", columns=["scheduler", "dropped"],
            meta={"seed": 0},
        )
        result.add(scheduler="fcfs", dropped=3)
        written = result.to_run_dir(tmp_path / "demo")
        assert set(written) == {"result", "rows", "manifest"}
        rows = read_ndjson(tmp_path / "demo" / "rows.ndjson")
        assert rows == [{"scheduler": "fcfs", "dropped": 3}]
        manifest = RunManifest.load(tmp_path / "demo" / "manifest.json")
        assert manifest.extra["experiment"] == "demo"
        assert manifest.seed == 0
