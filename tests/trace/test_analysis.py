"""Tests for offline trace analysis (AFD ground truth)."""

import numpy as np
import pytest

from repro.trace.analysis import (
    concentration,
    flow_sizes,
    rank_size,
    top_k_flows,
    windowed_top_k,
)


class TestFlowSizes:
    def test_by_bytes(self, tiny_trace):
        sizes = flow_sizes(tiny_trace, by="bytes")
        np.testing.assert_array_equal(sizes, [1700, 400, 64])

    def test_by_packets(self, tiny_trace):
        sizes = flow_sizes(tiny_trace, by="packets")
        np.testing.assert_array_equal(sizes, [3, 2, 1])

    def test_invalid_metric_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            flow_sizes(tiny_trace, by="nonsense")

    def test_silent_flows_zero(self, tiny_trace):
        head = tiny_trace.head(1)
        sizes = flow_sizes(head)
        assert sizes[1] == 0 and sizes[2] == 0


class TestRankSize:
    def test_sorted_descending(self, small_synthetic):
        curve = rank_size(small_synthetic)
        assert np.all(np.diff(curve.sizes.astype(np.int64)) <= 0)

    def test_drop_zero(self, tiny_trace):
        curve = rank_size(tiny_trace.head(1))
        assert curve.num_flows == 1

    def test_keep_zero(self, tiny_trace):
        curve = rank_size(tiny_trace.head(1), drop_zero=False)
        assert curve.num_flows == 3

    def test_share_of_top(self, tiny_trace):
        curve = rank_size(tiny_trace, by="bytes")
        assert curve.share_of_top(1) == pytest.approx(1700 / 2164)
        assert curve.share_of_top(3) == pytest.approx(1.0)

    def test_share_of_top_empty(self, tiny_trace):
        curve = rank_size(tiny_trace.head(0))
        assert curve.share_of_top(5) == 0.0


class TestTopK:
    def test_tiny(self, tiny_trace):
        assert top_k_flows(tiny_trace, 2, by="bytes") == [0, 1]

    def test_k_larger_than_active(self, tiny_trace):
        assert top_k_flows(tiny_trace, 10) == [0, 1, 2]

    def test_k_zero(self, tiny_trace):
        assert top_k_flows(tiny_trace, 0) == []

    def test_negative_k_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            top_k_flows(tiny_trace, -1)

    def test_ties_broken_by_lower_id(self, tiny_trace):
        # flows 0,1,2 each appear; give packets metric where 1 and 2 tie
        ids = top_k_flows(tiny_trace.head(4), 3, by="packets")
        # head(4): flow0 x2, flow1 x1, flow2 x1 -> tie between 1 and 2
        assert ids == [0, 1, 2]

    def test_matches_numpy_reference(self, small_synthetic):
        sizes = flow_sizes(small_synthetic, by="bytes")
        expected = sorted(range(len(sizes)), key=lambda i: (-sizes[i], i))[:16]
        assert top_k_flows(small_synthetic, 16, by="bytes") == expected


class TestWindowedTopK:
    def test_window_boundaries(self, small_synthetic):
        out = windowed_top_k(small_synthetic, 4, window=1000)
        assert out[0][0] == 1000
        assert out[-1][0] == small_synthetic.num_packets

    def test_each_window_top_is_correct(self, small_synthetic):
        out = windowed_top_k(small_synthetic, 4, window=2500, by="packets")
        end, ids = out[0]
        counts = np.bincount(
            small_synthetic.flow_id[:end], minlength=small_synthetic.num_flows
        )
        expected = sorted(range(len(counts)), key=lambda i: (-counts[i], i))[:4]
        assert ids == expected

    def test_bad_window_rejected(self, small_synthetic):
        with pytest.raises(ValueError):
            windowed_top_k(small_synthetic, 4, window=0)


class TestConcentration:
    def test_keys(self, small_synthetic):
        stats = concentration(small_synthetic)
        assert set(stats) == {
            "active_flows", "gini", "top1_share",
            "top10_share", "top16_share", "top100_share",
        }

    def test_monotone_shares(self, small_synthetic):
        stats = concentration(small_synthetic)
        assert stats["top1_share"] <= stats["top10_share"] <= stats["top16_share"]

    def test_empty_trace(self, tiny_trace):
        stats = concentration(tiny_trace.head(0))
        assert stats["active_flows"] == 0.0

    def test_presets_are_heavy_tailed(self, small_synthetic):
        """The motivation of the paper: a few flows carry a lot."""
        stats = concentration(small_synthetic, by="packets")
        assert stats["top16_share"] > 0.3
        assert stats["gini"] > 0.5
