"""Tests for synthetic trace generation (incl. churn and turnover)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.trace.analysis import flow_sizes
from repro.trace.synthetic import (
    PRESETS,
    SyntheticTraceConfig,
    generate_trace,
    preset_trace,
)


def cfg(**kw):
    defaults = dict(num_packets=3000, num_flows=300, num_elephants=6,
                    elephant_share=0.5, seed=11)
    defaults.update(kw)
    return SyntheticTraceConfig(**defaults)


class TestConfigValidation:
    def test_negative_packets_rejected(self):
        with pytest.raises(ConfigError):
            cfg(num_packets=-1)

    def test_zero_flows_rejected(self):
        with pytest.raises(ConfigError):
            cfg(num_flows=0)

    def test_burst_below_one_rejected(self):
        with pytest.raises(ConfigError):
            cfg(burst_mean=0.5)

    def test_epochs_require_elephant_model(self):
        with pytest.raises(ConfigError):
            cfg(num_elephants=None, mice_epochs=4)

    def test_turnover_requires_elephant_model(self):
        with pytest.raises(ConfigError):
            cfg(num_elephants=None, elephant_turnover=0.5)

    def test_turnover_bounds(self):
        with pytest.raises(ConfigError):
            cfg(elephant_turnover=1.5)

    def test_elephant_sizes_need_model(self):
        with pytest.raises(ConfigError):
            cfg(num_elephants=None, elephant_sizes=(64,))

    def test_rate_weights_shapes(self):
        assert cfg().rate_weights().shape == (300,)
        assert cfg(num_elephants=None).rate_weights().shape == (300,)
        assert cfg(num_elephants=None, weight_cap=0.05).rate_weights().max() <= 0.05


class TestGeneration:
    def test_length(self):
        trace = generate_trace(cfg())
        assert trace.num_packets == 3000

    def test_deterministic(self):
        a = generate_trace(cfg())
        b = generate_trace(cfg())
        np.testing.assert_array_equal(a.flow_id, b.flow_id)
        np.testing.assert_array_equal(a.size_bytes, b.size_bytes)
        np.testing.assert_array_equal(a.gap_ns, b.gap_ns)

    def test_seed_changes_output(self):
        a = generate_trace(cfg())
        b = generate_trace(cfg(seed=12))
        assert not np.array_equal(a.flow_id, b.flow_id)

    def test_empty_trace(self):
        trace = generate_trace(cfg(num_packets=0))
        assert trace.num_packets == 0
        assert trace.num_flows == 300

    def test_elephants_dominate(self):
        trace = generate_trace(cfg())
        sizes = flow_sizes(trace, by="packets")
        elephant_share = sizes[:6].sum() / sizes.sum()
        assert elephant_share == pytest.approx(0.5, abs=0.08)

    def test_iid_mode(self):
        trace = generate_trace(cfg(burst_mean=1.0))
        assert trace.num_packets == 3000

    def test_bursts_create_runs(self):
        bursty = generate_trace(cfg(burst_mean=8.0))
        iid = generate_trace(cfg(burst_mean=1.0))
        def run_fraction(t):
            return float((np.diff(t.flow_id) == 0).mean())
        assert run_fraction(bursty) > run_fraction(iid) + 0.2

    def test_mean_rate_respected(self):
        trace = generate_trace(cfg(num_packets=20_000, mean_rate_pps=1e6))
        mean_gap = trace.gap_ns.mean()
        assert mean_gap == pytest.approx(1000.0, rel=0.05)


class TestChurn:
    def test_mice_epochs_stripe_population(self):
        trace = generate_trace(cfg(num_packets=10_000, mice_epochs=4))
        n = trace.num_packets
        # mice ids in the first quarter differ from the second quarter
        q1 = set(trace.flow_id[: n // 4]) - set(range(6))
        q2 = set(trace.flow_id[n // 4 : n // 2]) - set(range(6))
        assert q1.isdisjoint(q2)

    def test_epochs_need_enough_mice(self):
        with pytest.raises(ConfigError):
            generate_trace(
                cfg(num_flows=10, num_elephants=2, elephant_share=0.7,
                    mice_epochs=16)
            )

    def test_turnover_adds_flow_ids(self):
        trace = generate_trace(cfg(elephant_turnover=0.5))
        assert trace.num_flows == 300 + 3

    def test_turnover_replacement_appears_later(self):
        trace = generate_trace(cfg(num_packets=10_000, elephant_turnover=0.5))
        for replacement in range(300, trace.num_flows):
            positions = np.nonzero(trace.flow_id == replacement)[0]
            if positions.size:
                assert positions[0] > 0  # never the very first packet

    def test_replaced_slot_disappears_after_switch(self):
        trace = generate_trace(
            cfg(num_packets=10_000, elephant_turnover=0.5, mice_epochs=2)
        )
        for j, replacement in enumerate(range(300, trace.num_flows)):
            slot = 6 - (trace.num_flows - 300) + j
            rep_pos = np.nonzero(trace.flow_id == replacement)[0]
            old_pos = np.nonzero(trace.flow_id == slot)[0]
            if rep_pos.size and old_pos.size:
                assert old_pos.max() < rep_pos.min()


class TestElephantSizes:
    def test_constant_size_per_elephant(self):
        trace = generate_trace(cfg(elephant_sizes=(96, 1500)))
        for eid in range(6):
            sizes = set(trace.size_bytes[trace.flow_id == eid].tolist())
            assert len(sizes) <= 1

    def test_sizes_from_classes(self):
        trace = generate_trace(cfg(elephant_sizes=(96, 1500)))
        elephant_mask = trace.flow_id < 6
        assert set(np.unique(trace.size_bytes[elephant_mask])) <= {96, 1500}

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigError):
            cfg(elephant_sizes=(0,))


class TestPresets:
    def test_all_presets_instantiate(self):
        for name in PRESETS:
            trace = preset_trace(name, num_packets=500)
            assert trace.num_packets == 500
            assert trace.name == name

    def test_preset_counts(self):
        assert sum(1 for n in PRESETS if n.startswith("caida")) == 6
        assert sum(1 for n in PRESETS if n.startswith("auck")) == 8

    def test_preset_deterministic_across_calls(self):
        a = preset_trace("caida-1", num_packets=1000)
        b = preset_trace("caida-1", num_packets=1000)
        np.testing.assert_array_equal(a.flow_id, b.flow_id)

    def test_presets_differ(self):
        a = preset_trace("caida-1", num_packets=1000)
        b = preset_trace("caida-2", num_packets=1000)
        assert not np.array_equal(a.flow_id, b.flow_id)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError):
            preset_trace("nope")

    def test_override_fields(self):
        trace = preset_trace("auck-1", num_packets=200, burst_mean=1.0)
        assert trace.num_packets == 200
