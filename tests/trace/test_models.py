"""Tests for the statistical traffic models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.models import (
    FlowPopulation,
    PacketSizeModel,
    TRIMODAL_INTERNET_SIZES,
    capped_zipf_weights,
    elephant_mice_weights,
    zipf_weights,
)


class TestZipfWeights:
    def test_sums_to_one(self):
        assert zipf_weights(100, 1.1).sum() == pytest.approx(1.0)

    def test_sorted_descending(self):
        w = zipf_weights(50, 0.8)
        assert np.all(np.diff(w) <= 0)

    def test_alpha_zero_uniform(self):
        np.testing.assert_allclose(zipf_weights(4, 0.0), [0.25] * 4)

    def test_single_flow(self):
        np.testing.assert_allclose(zipf_weights(1, 2.0), [1.0])

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(10, -0.5)

    @given(st.integers(2, 200), st.floats(0.0, 2.5))
    def test_rank_size_law(self, n, alpha):
        w = zipf_weights(n, alpha)
        # w_r / w_1 == r^-alpha
        assert w[n // 2] / w[0] == pytest.approx((n // 2 + 1) ** -alpha, rel=1e-9)


class TestCappedZipf:
    def test_respects_cap(self):
        w = capped_zipf_weights(100, 1.5, cap=0.05)
        assert w.max() <= 0.05 + 1e-12

    def test_sums_to_one(self):
        assert capped_zipf_weights(100, 1.5, cap=0.05).sum() == pytest.approx(1.0)

    def test_no_clipping_when_cap_loose(self):
        raw = zipf_weights(10, 0.5)
        capped = capped_zipf_weights(10, 0.5, cap=1.0)
        np.testing.assert_allclose(capped, raw)

    def test_infeasible_cap_rejected(self):
        with pytest.raises(ValueError):
            capped_zipf_weights(10, 1.0, cap=0.05)  # 10 * 0.05 < 1

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            capped_zipf_weights(10, 1.0, cap=0.0)

    @given(
        st.integers(10, 300),
        st.floats(0.0, 2.0),
        st.floats(0.01, 0.5),
    )
    @settings(max_examples=50)
    def test_waterfill_invariants(self, n, alpha, cap):
        if cap * n < 1.0:
            cap = 1.5 / n
        w = capped_zipf_weights(n, alpha, cap)
        assert w.sum() == pytest.approx(1.0)
        assert w.max() <= cap * (1 + 1e-9)
        assert np.all(w >= 0)
        # still non-increasing
        assert np.all(np.diff(w) <= 1e-12)


class TestElephantMice:
    def test_shares(self):
        w = elephant_mice_weights(1000, 20, 0.5)
        assert w[:20].sum() == pytest.approx(0.5)
        assert w.sum() == pytest.approx(1.0)

    def test_classes_separated(self):
        w = elephant_mice_weights(1000, 20, 0.5)
        assert w[19] > w[20]

    def test_sorted_descending(self):
        w = elephant_mice_weights(500, 10, 0.4)
        assert np.all(np.diff(w) <= 1e-15)

    def test_overlap_rejected(self):
        # tiny elephant share over many elephants vs few heavy mice
        with pytest.raises(ValueError):
            elephant_mice_weights(30, 20, 0.05, alpha_elephants=2.0, alpha_mice=0.0)

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            elephant_mice_weights(10, 0, 0.5)
        with pytest.raises(ValueError):
            elephant_mice_weights(10, 10, 0.5)

    def test_bad_share_rejected(self):
        with pytest.raises(ValueError):
            elephant_mice_weights(10, 2, 1.0)


class TestPacketSizeModel:
    def test_trimodal_valid(self):
        assert TRIMODAL_INTERNET_SIZES.mean == pytest.approx(
            40 * 0.58 + 576 * 0.33 + 1500 * 0.09
        )

    def test_sample_support(self, rng):
        out = TRIMODAL_INTERNET_SIZES.sample(500, rng)
        assert set(np.unique(out)) <= {40, 576, 1500}
        assert out.dtype == np.int32

    def test_sample_zero(self):
        assert TRIMODAL_INTERNET_SIZES.sample(0, 1).shape == (0,)

    def test_sample_negative_rejected(self):
        with pytest.raises(ValueError):
            TRIMODAL_INTERNET_SIZES.sample(-1, 1)

    def test_deterministic_model(self):
        m = PacketSizeModel((64,), (1.0,))
        assert set(m.sample(10, 0)) == {64}

    def test_probs_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PacketSizeModel((1, 2), (0.5, 0.6))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            PacketSizeModel((1, 2), (1.0,))

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            PacketSizeModel((0,), (1.0,))

    def test_sample_distribution_roughly_matches(self, rng):
        out = TRIMODAL_INTERNET_SIZES.sample(20_000, rng)
        frac_40 = float((out == 40).mean())
        assert frac_40 == pytest.approx(0.58, abs=0.03)


class TestFlowPopulation:
    def test_sample_shape(self, rng):
        pop = FlowPopulation.sample(100, 1.0, rng)
        assert pop.num_flows == 100
        assert pop.weights.shape == (100,)

    def test_five_tuples_distinct(self, rng):
        pop = FlowPopulation.sample(200, 1.0, rng)
        keys = set(
            zip(pop.src_ip.tolist(), pop.dst_ip.tolist(), pop.src_port.tolist(),
                pop.dst_port.tolist(), pop.proto.tolist())
        )
        assert len(keys) == 200

    def test_deterministic(self):
        a = FlowPopulation.sample(50, 1.0, 3)
        b = FlowPopulation.sample(50, 1.0, 3)
        np.testing.assert_array_equal(a.src_ip, b.src_ip)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_explicit_weights(self, rng):
        w = np.array([0.5, 0.3, 0.2])
        pop = FlowPopulation.sample(3, 0.0, rng, weights=w)
        np.testing.assert_allclose(pop.weights, w)

    def test_weights_length_checked(self, rng):
        with pytest.raises(ValueError):
            FlowPopulation.sample(3, 0.0, rng, weights=np.array([1.0]))

    def test_weight_cap_applied(self, rng):
        pop = FlowPopulation.sample(100, 2.0, rng, weight_cap=0.05)
        assert pop.weights.max() <= 0.05 + 1e-12

    def test_tcp_fraction_bounds(self, rng):
        with pytest.raises(ValueError):
            FlowPopulation.sample(10, 1.0, rng, tcp_fraction=1.5)

    def test_protocols_valid(self, rng):
        pop = FlowPopulation.sample(100, 1.0, rng)
        assert set(np.unique(pop.proto)) <= {6, 17}
