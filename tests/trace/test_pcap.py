"""Tests for the classic-pcap reader/writer."""

import gzip
import struct

import pytest

from repro.errors import TraceFormatError
from repro.hashing.five_tuple import FiveTuple
from repro.trace.pcap import (
    iter_pcap,
    new_counters,
    parse_pcap_bytes,
    read_pcap,
    trace_from_pcap,
    write_pcap,
)


def sample_packets():
    k1 = FiveTuple.from_strings("10.0.0.1", "192.168.1.1", 1000, 80, 6)
    k2 = FiveTuple.from_strings("10.0.0.2", "192.168.1.2", 2000, 53, 17)
    return [
        (1_000_000_000, k1, 500),
        (1_000_000_500, k2, 128),
        (1_000_001_000, k1, 1500),
    ]


class TestRoundtrip:
    def test_plain_roundtrip(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, sample_packets())
        packets, counters = read_pcap(path)
        assert counters["total"] == 3
        assert counters["tcp_udp"] == 3
        assert [p.key for p in packets] == [k for _, k, _ in sample_packets()]
        assert [p.ts_ns for p in packets] == [t for t, _, _ in sample_packets()]
        assert [p.wire_len for p in packets] == [500, 128, 1500]

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "t.pcap.gz"
        write_pcap(path, sample_packets())
        # verify it is actually gzipped
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"
        packets, _ = read_pcap(path)
        assert len(packets) == 3

    def test_microsecond_format(self, tmp_path):
        path = tmp_path / "us.pcap"
        write_pcap(path, sample_packets(), nanosecond=False)
        packets, _ = read_pcap(path)
        # microsecond resolution truncates sub-us digits
        assert packets[1].ts_ns == 1_000_000_000

    def test_trace_from_pcap(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, sample_packets())
        trace, counters = trace_from_pcap(path)
        assert trace.num_packets == 3
        assert trace.num_flows == 2
        assert trace.flow_id.tolist() == [0, 1, 0]
        assert trace.gap_ns.tolist() == [0, 500, 500]
        assert trace.size_bytes.tolist() == [500, 128, 1500]


class TestParsing:
    def test_too_short_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_pcap_bytes(b"\x00" * 10)

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_pcap_bytes(b"\xde\xad\xbe\xef" + b"\x00" * 20)

    def test_truncated_record_rejected(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, sample_packets())
        data = path.read_bytes()
        with pytest.raises(TraceFormatError):
            parse_pcap_bytes(data[:-4])

    def test_little_endian_accepted(self):
        header = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        packets, counters = parse_pcap_bytes(header)
        assert packets == [] and counters["total"] == 0

    def test_unsupported_linktype_rejected(self):
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 42)
        with pytest.raises(TraceFormatError):
            parse_pcap_bytes(header)

    def test_non_ip_frame_skipped(self):
        header = struct.pack(">IHHiIII", 0xA1B23C4D, 2, 4, 0, 0, 65535, 1)
        arp = b"\x00" * 12 + struct.pack(">H", 0x0806) + b"\x00" * 28
        rec = struct.pack(">IIII", 0, 0, len(arp), len(arp)) + arp
        packets, counters = parse_pcap_bytes(header + rec)
        assert packets[0].key is None
        assert counters["skipped_non_ip"] == 1

    def test_fragment_skipped(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, sample_packets()[:1])
        data = bytearray(path.read_bytes())
        # frame starts at 24 + 16; IP header at +14; frag field at +6
        ip_off = 24 + 16 + 14
        data[ip_off + 6 : ip_off + 8] = struct.pack(">H", 0x00FF)  # offset 255
        packets, counters = parse_pcap_bytes(bytes(data))
        assert packets[0].key is None
        assert counters["skipped_fragment"] == 1

    def test_non_tcp_udp_gets_zero_ports(self, tmp_path):
        path = tmp_path / "t.pcap"
        key = FiveTuple.from_strings("10.0.0.1", "10.0.0.2", 0, 0, 1)  # ICMP
        write_pcap(path, [(0, key, 100)])
        packets, counters = read_pcap(path)
        assert packets[0].key == key
        assert counters["tcp_udp"] == 0
        assert counters["ipv4"] == 1


class TestRawLinkType:
    def test_raw_ip_frames(self):
        # build a raw-IP pcap by hand
        header = struct.pack(">IHHiIII", 0xA1B23C4D, 2, 4, 0, 0, 65535, 101)
        ip = struct.pack(
            ">BBHHHBBHII", 0x45, 0, 28, 0, 0, 64, 17, 0, 0x0A000001, 0x0A000002
        ) + struct.pack(">HHHH", 5, 6, 8, 0)
        rec = struct.pack(">IIII", 1, 0, len(ip), len(ip)) + ip
        packets, counters = parse_pcap_bytes(header + rec)
        assert counters["tcp_udp"] == 1
        assert packets[0].key.src_port == 5
        assert packets[0].key.protocol == 17


class TestTraceFromPcapGz(object):
    def test_gz_trace(self, tmp_path):
        path = tmp_path / "t.pcap.gz"
        write_pcap(path, sample_packets())
        trace, _ = trace_from_pcap(path, name="mycap")
        assert trace.name == "mycap"
        assert isinstance(gzip.open, object)  # sanity: gz path exercised above

    def test_gz_roundtrip_full_columns(self, tmp_path):
        # write_pcap -> trace_from_pcap through the gzip path must
        # preserve flows, gaps and sizes exactly
        path = tmp_path / "round.pcap.gz"
        write_pcap(path, sample_packets())
        trace, counters = trace_from_pcap(path)
        assert counters["total"] == 3
        assert trace.flow_id.tolist() == [0, 1, 0]
        assert trace.gap_ns.tolist() == [0, 500, 500]
        assert trace.size_bytes.tolist() == [500, 128, 1500]


class TestStreaming:
    """The generator reader (iter_pcap) behind read_pcap."""

    def test_parity_with_read_pcap(self, tmp_path):
        path = tmp_path / "t.pcap.gz"
        write_pcap(path, sample_packets())
        eager, eager_counters = read_pcap(path)
        counters = new_counters()
        streamed = list(iter_pcap(path, counters))
        assert [p.key for p in streamed] == [p.key for p in eager]
        assert [p.ts_ns for p in streamed] == [p.ts_ns for p in eager]
        assert counters == eager_counters

    def test_lazy_header_validation(self, tmp_path):
        # the global header is validated on first next(), not at call
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\xde\xad\xbe\xef" + b"\x00" * 20)
        it = iter_pcap(path)
        with pytest.raises(TraceFormatError, match="magic"):
            next(it)

    def test_truncated_global_header(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\x00" * 10)
        with pytest.raises(TraceFormatError, match="too short"):
            list(iter_pcap(path))

    def test_truncated_record_header(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, sample_packets())
        data = path.read_bytes()
        record = (len(data) - 24) // 3  # equal-size synthesised records
        truncated = tmp_path / "trunc.pcap"
        # keep the first two records plus part of the third's header
        # (records differ in size; the average lands inside the header)
        truncated.write_bytes(data[: 24 + 2 * record + 10])
        it = iter_pcap(truncated)
        assert next(it).wire_len == 500
        assert next(it).wire_len == 128
        with pytest.raises(TraceFormatError, match="truncated record header"):
            next(it)

    def test_truncated_final_record_body(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, sample_packets())
        truncated = tmp_path / "trunc.pcap"
        truncated.write_bytes(path.read_bytes()[:-4])
        # packets before the cut are yielded, then the error surfaces
        it = iter_pcap(truncated)
        assert next(it).wire_len == 500
        assert next(it).wire_len == 128
        with pytest.raises(TraceFormatError, match="truncated record body"):
            next(it)

    def test_unsupported_linktype(self, tmp_path):
        path = tmp_path / "lt.pcap"
        path.write_bytes(
            struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 42)
        )
        with pytest.raises(TraceFormatError, match="linktype"):
            list(iter_pcap(path))

    def test_counters_optional(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, sample_packets())
        assert len(list(iter_pcap(path))) == 3
