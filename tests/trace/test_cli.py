"""Tests for the trace tooling CLI."""

import pytest

from repro.trace.cli import main
from repro.trace.trace import Trace


class TestGenerate:
    def test_generate_preset(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        assert main(["generate", "auck-1", str(out), "--packets", "500"]) == 0
        trace = Trace.load_npz(out)
        assert trace.num_packets == 500
        assert "wrote" in capsys.readouterr().out

    def test_unknown_preset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "nope", str(tmp_path / "x.npz")])


class TestAnalyze:
    def test_analyze_preset(self, capsys):
        assert main(["analyze", "auck-1", "--top", "4"]) == 0
        out = capsys.readouterr().out
        assert "top16_share" in out
        assert "top 4 flows" in out

    def test_analyze_npz(self, tmp_path, tiny_trace, capsys):
        path = tmp_path / "t.npz"
        tiny_trace.save_npz(path)
        assert main(["analyze", str(path), "--by", "packets"]) == 0
        assert "packets" in capsys.readouterr().out


class TestConvertAndExport:
    def test_roundtrip_via_pcap(self, tmp_path, tiny_trace, capsys):
        npz_in = tmp_path / "in.npz"
        pcap = tmp_path / "out.pcap.gz"
        npz_out = tmp_path / "back.npz"
        tiny_trace.save_npz(npz_in)

        assert main(["export-pcap", str(npz_in), str(pcap)]) == 0
        assert pcap.exists()
        assert main(["convert", str(pcap), str(npz_out)]) == 0

        back = Trace.load_npz(npz_out)
        assert back.num_packets == tiny_trace.num_packets
        assert back.num_flows == tiny_trace.num_flows
