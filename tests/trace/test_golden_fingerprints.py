"""Golden fingerprints: preset traces must never drift.

Preset seeds derive from the preset *name* via ``zlib.crc32`` — never
``hash()``, which PYTHONHASHSEED salts per process — so the same name
yields the same trace on every Python version and platform.  These
tests pin both the derivation and the resulting trace fingerprints;
if one fails, a change broke cross-run reproducibility of every
committed artifact (TOURNAMENT.json, EXPERIMENTS.md numbers).
"""

import zlib

from repro.trace.synthetic import _preset_seed, preset_trace
from repro.workloads.traces import cdf_preset_trace

#: name -> blake2b fingerprint of the 2000-packet preset trace
GOLDEN = {
    "caida-1": "8f9e815a49a2386da56508960bc9b11d",
    "auck-1": "322b97b39cb190812f0ce662f18f4f3a",
    "websearch-1": "650bba008fdb180761bd682daefaf74e",
    "datamining-1": "187f64d26f48644444838952e212a74d",
    "cachemice-1": "dcbbd6f5460a1515276b6267b993b285",
}

SYNTHETIC = ("caida-1", "auck-1")
CDF = ("websearch-1", "datamining-1", "cachemice-1")


class TestPresetSeed:
    def test_crc32_derivation(self):
        for name in GOLDEN:
            assert _preset_seed(name) == zlib.crc32(name.encode()) & 0x7FFFFFFF

    def test_pinned_values(self):
        # the exact integers, so an accidental derivation change is loud
        assert _preset_seed("caida-1") == 2082331475
        assert _preset_seed("websearch-1") == 1552781899


class TestGoldenTraces:
    def test_synthetic_fingerprints(self):
        for name in SYNTHETIC:
            trace = preset_trace(name, num_packets=2000)
            assert trace.fingerprint() == GOLDEN[name], name

    def test_cdf_fingerprints(self):
        for name in CDF:
            trace = cdf_preset_trace(name, num_packets=2000)
            assert trace.fingerprint() == GOLDEN[name], name

    def test_fingerprint_ignores_name(self):
        from dataclasses import replace

        from repro.workloads.traces import CDF_TRACE_PRESETS, generate_cdf_trace

        cfg = replace(CDF_TRACE_PRESETS["websearch-1"], num_packets=500)
        a = generate_cdf_trace(cfg, name="x")
        b = generate_cdf_trace(cfg, name="y")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_sensitive_to_content(self):
        a = preset_trace("caida-1", num_packets=500)
        b = preset_trace("caida-2", num_packets=500)
        assert a.fingerprint() != b.fingerprint()
