"""Tests for the Trace container and its persistence."""

import io

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.hashing.five_tuple import FiveTuple
from repro.trace.trace import Trace


class TestValidation:
    def test_tiny_trace_valid(self, tiny_trace):
        assert tiny_trace.num_packets == 6
        assert tiny_trace.num_flows == 3

    def test_mismatched_packet_columns(self, tiny_trace):
        with pytest.raises(TraceFormatError):
            Trace(
                tiny_trace.flow_id[:3], tiny_trace.size_bytes, tiny_trace.gap_ns,
                tiny_trace.flows_src_ip, tiny_trace.flows_dst_ip,
                tiny_trace.flows_src_port, tiny_trace.flows_dst_port,
                tiny_trace.flows_proto,
            )

    def test_flow_id_out_of_range(self, tiny_trace):
        bad = tiny_trace.flow_id.copy()
        bad[0] = 99
        with pytest.raises(TraceFormatError):
            Trace(
                bad, tiny_trace.size_bytes, tiny_trace.gap_ns,
                tiny_trace.flows_src_ip, tiny_trace.flows_dst_ip,
                tiny_trace.flows_src_port, tiny_trace.flows_dst_port,
                tiny_trace.flows_proto,
            )

    def test_negative_gap_rejected(self, tiny_trace):
        bad = tiny_trace.gap_ns.copy()
        bad[1] = -1
        with pytest.raises(TraceFormatError):
            Trace(
                tiny_trace.flow_id, tiny_trace.size_bytes, bad,
                tiny_trace.flows_src_ip, tiny_trace.flows_dst_ip,
                tiny_trace.flows_src_port, tiny_trace.flows_dst_port,
                tiny_trace.flows_proto,
            )

    def test_zero_size_rejected(self, tiny_trace):
        bad = tiny_trace.size_bytes.copy()
        bad[0] = 0
        with pytest.raises(TraceFormatError):
            Trace(
                tiny_trace.flow_id, bad, tiny_trace.gap_ns,
                tiny_trace.flows_src_ip, tiny_trace.flows_dst_ip,
                tiny_trace.flows_src_port, tiny_trace.flows_dst_port,
                tiny_trace.flows_proto,
            )


class TestViews:
    def test_timestamps_cumulative(self, tiny_trace):
        np.testing.assert_array_equal(
            tiny_trace.timestamps_ns, np.cumsum(tiny_trace.gap_ns)
        )

    def test_duration(self, tiny_trace):
        assert tiny_trace.duration_ns == int(tiny_trace.gap_ns.sum())

    def test_total_bytes(self, tiny_trace):
        assert tiny_trace.total_bytes == 100 + 200 + 100 + 64 + 1500 + 200

    def test_len(self, tiny_trace):
        assert len(tiny_trace) == 6

    def test_five_tuple_lookup(self, tiny_trace):
        key = tiny_trace.five_tuple(0)
        assert isinstance(key, FiveTuple)
        assert key.src_port == 1000

    def test_five_tuple_out_of_range(self, tiny_trace):
        with pytest.raises(IndexError):
            tiny_trace.five_tuple(3)

    def test_head(self, tiny_trace):
        head = tiny_trace.head(2)
        assert head.num_packets == 2
        assert head.num_flows == 3  # full flow table retained

    def test_head_negative_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.head(-1)

    def test_concat_rebases_flow_ids(self, tiny_trace):
        joined = tiny_trace.concat(tiny_trace)
        assert joined.num_packets == 12
        assert joined.num_flows == 6
        assert int(joined.flow_id[6:].min()) >= 3


class TestPersistence:
    def test_npz_roundtrip(self, tiny_trace, tmp_path):
        path = tmp_path / "t.npz"
        tiny_trace.save_npz(path)
        loaded = Trace.load_npz(path)
        np.testing.assert_array_equal(loaded.flow_id, tiny_trace.flow_id)
        np.testing.assert_array_equal(loaded.size_bytes, tiny_trace.size_bytes)
        np.testing.assert_array_equal(loaded.flows_src_ip, tiny_trace.flows_src_ip)
        assert loaded.name == "tiny"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            Trace.load_npz(tmp_path / "missing.npz")

    def test_load_missing_column(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, flow_id=np.zeros(1, dtype=np.int64))
        with pytest.raises(TraceFormatError):
            Trace.load_npz(path)

    def test_csv_export(self, tiny_trace):
        buf = io.StringIO()
        tiny_trace.to_csv(buf)
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 7  # header + 6 packets
        assert lines[0].startswith("flow_id,")

    def test_csv_to_file(self, tiny_trace, tmp_path):
        path = tmp_path / "t.csv"
        tiny_trace.to_csv(path)
        assert path.read_text().count("\n") >= 6


class TestFromPackets:
    def test_interning_order(self):
        k1 = FiveTuple(1, 2, 3, 4, 6)
        k2 = FiveTuple(5, 6, 7, 8, 17)
        trace = Trace.from_packets([(k1, 10, 0), (k2, 20, 1), (k1, 30, 2)])
        np.testing.assert_array_equal(trace.flow_id, [0, 1, 0])
        assert trace.five_tuple(1) == k2

    def test_empty(self):
        trace = Trace.from_packets([])
        assert trace.num_packets == 0
        assert trace.duration_ns == 0
