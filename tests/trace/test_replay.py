"""Tests for native-gap trace replay."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.trace.replay import native_workload


class TestNativeWorkload:
    def test_times_follow_gaps(self, tiny_trace):
        wl = native_workload([tiny_trace])
        np.testing.assert_array_equal(
            wl.arrival_ns, np.cumsum(tiny_trace.gap_ns)
        )

    def test_headers_preserved(self, tiny_trace):
        wl = native_workload([tiny_trace])
        np.testing.assert_array_equal(wl.flow_id, tiny_trace.flow_id)
        np.testing.assert_array_equal(wl.size_bytes, tiny_trace.size_bytes)

    def test_speedup_compresses_time(self, tiny_trace):
        base = native_workload([tiny_trace])
        fast = native_workload([tiny_trace], speedup=2.0)
        np.testing.assert_array_equal(fast.arrival_ns, base.arrival_ns // 2)

    def test_multi_trace_interleaves(self, tiny_trace, small_synthetic):
        wl = native_workload([tiny_trace, small_synthetic])
        assert wl.num_services == 2
        assert wl.num_flows == tiny_trace.num_flows + small_synthetic.num_flows
        assert np.all(np.diff(wl.arrival_ns) >= 0)

    def test_sequences_per_flow(self, tiny_trace):
        wl = native_workload([tiny_trace])
        # flow 0 appears at positions 0, 2, 4 of the tiny trace
        seqs = wl.seq[wl.flow_id == 0]
        np.testing.assert_array_equal(seqs, [0, 1, 2])

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigError):
            native_workload([])

    def test_empty_trace_rejected(self, tiny_trace):
        with pytest.raises(ConfigError):
            native_workload([tiny_trace.head(0)])

    def test_bad_speedup_rejected(self, tiny_trace):
        with pytest.raises(ConfigError):
            native_workload([tiny_trace], speedup=0)

    def test_simulates(self, tiny_trace, single_service):
        from repro.schedulers.hash_static import StaticHashScheduler
        from repro.sim.config import SimConfig
        from repro.sim.system import simulate

        wl = native_workload([tiny_trace])
        rep = simulate(
            wl, StaticHashScheduler(),
            SimConfig(num_cores=2, services=single_service),
        )
        assert rep.departed == tiny_trace.num_packets
