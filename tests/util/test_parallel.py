"""Tests for the process-parallel map helper."""

import os

import pytest

from repro.util.parallel import ParallelTaskError, default_jobs, parallel_map


def square(x):
    return x * x


def pid_of(_x):
    return os.getpid()


def explode_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestParallelMap:
    def test_inline_preserves_order(self):
        assert parallel_map(square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        assert parallel_map(square, list(range(10)), jobs=2) == [
            x * x for x in range(10)
        ]

    def test_auto_jobs(self):
        assert parallel_map(square, [1, 2], jobs=0) == [1, 4]

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(square, [1], jobs=-1)

    def test_empty(self):
        assert parallel_map(square, [], jobs=4) == []

    def test_single_item_stays_inline(self):
        assert parallel_map(pid_of, [1], jobs=4) == [os.getpid()]

    def test_workers_actually_fork(self):
        pids = set(parallel_map(pid_of, list(range(8)), jobs=4))
        # at least one task ran outside this process
        assert pids - {os.getpid()}

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestReproJobsOverride:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_env_override_not_capped(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "64")
        assert default_jobs() == 64

    @pytest.mark.parametrize("bad", ["0", "-2", "two"])
    def test_invalid_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_JOBS", bad)
        with pytest.raises(ValueError):
            default_jobs()

    def test_unset_uses_heuristic(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert 1 <= default_jobs() <= 8


class TestWorkerErrors:
    def test_pool_failure_names_the_item(self):
        with pytest.raises(ParallelTaskError) as err:
            parallel_map(explode_on_three, [1, 2, 3, 4], jobs=2)
        assert err.value.item_repr == "3"
        assert "ValueError" in str(err.value)
        assert "boom" in str(err.value)

    def test_inline_failure_raises_original(self):
        # jobs=1 keeps the plain traceback: no wrapping
        with pytest.raises(ValueError):
            parallel_map(explode_on_three, [1, 3], jobs=1)

    def test_error_survives_pickle(self):
        import pickle

        err = ParallelTaskError.wrap(("T1", 7), ValueError("bad rate"))
        back = pickle.loads(pickle.dumps(err))
        assert back.item_repr == repr(("T1", 7))
        assert "bad rate" in str(back)


class TestExperimentsIntegration:
    def test_fig7_jobs_matches_serial(self):
        from repro.experiments import fig7

        serial = fig7.run(quick=True, scenarios=("T1",), seed=0)
        parallel = fig7.run(quick=True, scenarios=("T1",), seed=0, jobs=2)
        assert serial.rows == parallel.rows
