"""Tests for the process pool and the parallel map facade."""

import os

import pytest

from repro.util.parallel import (
    ParallelTaskError,
    ProcessPool,
    default_jobs,
    in_pool_worker,
    parallel_map,
    shared_pool,
)


def square(x):
    return x * x


def pid_of(_x):
    return os.getpid()


def explode_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestParallelMap:
    def test_inline_preserves_order(self):
        assert parallel_map(square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        assert parallel_map(square, list(range(10)), jobs=2) == [
            x * x for x in range(10)
        ]

    def test_auto_jobs(self):
        assert parallel_map(square, [1, 2], jobs=0) == [1, 4]

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(square, [1], jobs=-1)

    def test_empty(self):
        assert parallel_map(square, [], jobs=4) == []

    def test_single_item_stays_inline(self):
        assert parallel_map(pid_of, [1], jobs=4) == [os.getpid()]

    def test_workers_actually_fork(self):
        pids = set(parallel_map(pid_of, list(range(8)), jobs=4))
        # at least one task ran outside this process
        assert pids - {os.getpid()}

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestReproJobsOverride:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_env_override_not_capped(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "64")
        assert default_jobs() == 64

    @pytest.mark.parametrize("bad", ["0", "-2", "two"])
    def test_invalid_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_JOBS", bad)
        with pytest.raises(ValueError):
            default_jobs()

    def test_unset_uses_heuristic(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert 1 <= default_jobs() <= 8


class TestWorkerErrors:
    def test_pool_failure_names_the_item(self):
        with pytest.raises(ParallelTaskError) as err:
            parallel_map(explode_on_three, [1, 2, 3, 4], jobs=2)
        assert err.value.item_repr == "3"
        assert "ValueError" in str(err.value)
        assert "boom" in str(err.value)

    def test_inline_failure_raises_original(self):
        # jobs=1 keeps the plain traceback: no wrapping
        with pytest.raises(ValueError):
            parallel_map(explode_on_three, [1, 3], jobs=1)

    def test_error_survives_pickle(self):
        import pickle

        err = ParallelTaskError.wrap(("T1", 7), ValueError("bad rate"))
        back = pickle.loads(pickle.dumps(err))
        assert back.item_repr == repr(("T1", 7))
        assert "bad rate" in str(back)


def stash(pair):
    """Drop a value into the worker's module state (sticky-slot probe)."""
    import repro.util.parallel as mod

    key, value = pair
    store = getattr(mod, "_test_stash", None)
    if store is None:
        store = mod._test_stash = {}
    if value is not None:
        store[key] = value
    return store.get(key)


def worker_flag(_x):
    return in_pool_worker()


def nested_map(items):
    # a pool worker fanning out again must degrade to inline execution
    return parallel_map(pid_of, items, jobs=4)


class TestProcessPool:
    def test_workers_persist_across_batches(self):
        with ProcessPool(2) as pool:
            first = pool.map(pid_of, range(4))
            second = pool.map(pid_of, range(4))
        assert set(first) == set(second)  # same processes served both
        assert os.getpid() not in first

    def test_sticky_slot_keeps_worker_state(self):
        with ProcessPool(2) as pool:
            assert pool.call(0, stash, ("k", "v0")) == "v0"
            pool.call(1, stash, ("k", "v1"))
            # slot 0 still holds its own value, untouched by slot 1
            assert pool.call(0, stash, ("k", None)) == "v0"
            # indexes wrap modulo the pool size
            assert pool.call(2, stash, ("k", None)) == "v0"

    def test_map_preserves_order(self):
        with ProcessPool(3) as pool:
            assert pool.map(square, range(10)) == [x * x for x in range(10)]

    def test_scatter_reports_first_error_and_stays_usable(self):
        with ProcessPool(2) as pool:
            with pytest.raises(ParallelTaskError) as err:
                pool.scatter([(i, explode_on_three, i) for i in range(6)])
            assert err.value.item_repr == "3"
            # the failure drained cleanly: the pool still works
            assert pool.map(square, [5, 6]) == [25, 36]

    def test_worker_env_flag(self):
        with ProcessPool(1) as pool:
            assert pool.map(worker_flag, [0]) == [True]
        assert not in_pool_worker()

    def test_nested_parallel_map_runs_inline(self):
        with ProcessPool(1) as pool:
            pids = pool.call(0, nested_map, [1, 2, 3])
        # all inner tasks ran in the (single) worker process itself
        assert len(set(pids)) == 1
        assert os.getpid() not in pids

    def test_shutdown_idempotent_and_rejects_new_work(self):
        pool = ProcessPool(1)
        pool.map(square, [2])
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.call(0, square, 2)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            ProcessPool(0)

    def test_shared_pool_reused_and_grows(self):
        a = shared_pool(2)
        assert shared_pool(1) is a  # large enough: reused
        b = shared_pool(a.size + 1)
        assert b.size == a.size + 1


class TestExperimentsIntegration:
    def test_fig7_jobs_matches_serial(self):
        from repro.experiments import fig7

        serial = fig7.run(quick=True, scenarios=("T1",), seed=0)
        parallel = fig7.run(quick=True, scenarios=("T1",), seed=0, jobs=2)
        assert serial.rows == parallel.rows
