"""Tests for the process-parallel map helper."""

import os

import pytest

from repro.util.parallel import default_jobs, parallel_map


def square(x):
    return x * x


def pid_of(_x):
    return os.getpid()


class TestParallelMap:
    def test_inline_preserves_order(self):
        assert parallel_map(square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        assert parallel_map(square, list(range(10)), jobs=2) == [
            x * x for x in range(10)
        ]

    def test_auto_jobs(self):
        assert parallel_map(square, [1, 2], jobs=0) == [1, 4]

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(square, [1], jobs=-1)

    def test_empty(self):
        assert parallel_map(square, [], jobs=4) == []

    def test_single_item_stays_inline(self):
        assert parallel_map(pid_of, [1], jobs=4) == [os.getpid()]

    def test_workers_actually_fork(self):
        pids = set(parallel_map(pid_of, list(range(8)), jobs=4))
        # at least one task ran outside this process
        assert pids - {os.getpid()}

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestExperimentsIntegration:
    def test_fig7_jobs_matches_serial(self):
        from repro.experiments import fig7

        serial = fig7.run(quick=True, scenarios=("T1",), seed=0)
        parallel = fig7.run(quick=True, scenarios=("T1",), seed=0, jobs=2)
        assert serial.rows == parallel.rows
