"""Tests for the ASCII table formatter."""

import math

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "b"], [[1, 2], [30, 40]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_nan_renders_as_dashes(self):
        out = format_table(["x"], [[math.nan]])
        assert "--" in out

    def test_none_renders_as_dashes(self):
        out = format_table(["x"], [[None]])
        assert "--" in out

    def test_float_format(self):
        out = format_table(["x"], [[3.14159]], float_fmt=".2f")
        assert "3.14" in out
        assert "3.142" not in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_columns_aligned(self):
        out = format_table(["name", "v"], [["x", 1], ["longer", 2]])
        lines = out.splitlines()
        # separator and data rows share the same pipe position
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) <= 2  # header/data vs separator (+ alignment)

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out
