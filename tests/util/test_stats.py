"""Tests for statistics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    gini,
    jain_fairness,
    normalize,
    percentile,
    ratio_or_nan,
    summarize,
)

nonneg_vectors = st.lists(
    st.floats(min_value=0, max_value=1e9, allow_nan=False), min_size=1, max_size=50
)


class TestJainFairness:
    def test_balanced_is_one(self):
        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_loaded_is_one_over_n(self):
        assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_zero_is_one(self):
        assert jain_fairness([0, 0, 0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([1, -1])

    @given(nonneg_vectors)
    def test_bounds(self, xs):
        f = jain_fairness(xs)
        assert 1.0 / len(xs) - 1e-9 <= f <= 1.0 + 1e-9

    @given(nonneg_vectors, st.floats(min_value=0.1, max_value=10))
    def test_scale_invariant(self, xs, k):
        scaled = [x * k for x in xs]
        assert jain_fairness(scaled) == pytest.approx(jain_fairness(xs), rel=1e-6)


class TestGini:
    def test_equal_is_zero(self):
        assert gini([3, 3, 3]) == pytest.approx(0.0)

    def test_concentrated_near_one(self):
        g = gini([0] * 99 + [100])
        assert g > 0.95

    def test_all_zero(self):
        assert gini([0, 0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([-1, 2])

    @given(nonneg_vectors)
    def test_bounds(self, xs):
        g = gini(xs)
        assert -1e-9 <= g <= 1.0

    def test_order_invariant(self):
        assert gini([1, 5, 2]) == pytest.approx(gini([5, 1, 2]))


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_extremes(self):
        assert percentile([1, 9], 0) == 1
        assert percentile([1, 9], 100) == 9

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestNormalize:
    def test_sums_to_one(self):
        out = normalize([1, 2, 3])
        assert out.sum() == pytest.approx(1.0)

    def test_all_zero_uniform(self):
        np.testing.assert_allclose(normalize([0, 0]), [0.5, 0.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize([1, -2])


class TestRatioOrNan:
    def test_plain(self):
        assert ratio_or_nan(6, 3) == 2.0

    def test_zero_denominator(self):
        assert math.isnan(ratio_or_nan(1, 0))

    def test_zero_numerator(self):
        assert ratio_or_nan(0, 5) == 0.0


class TestSummarize:
    def test_keys(self):
        s = summarize([1, 2, 3])
        assert set(s) == {"mean", "min", "max", "p50", "p95", "p99"}

    def test_values(self):
        s = summarize([2, 4, 6])
        assert s["mean"] == pytest.approx(4.0)
        assert s["min"] == 2
        assert s["max"] == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
