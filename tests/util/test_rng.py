"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_seed_deterministic(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(5), make_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(3)
        a = make_rng(seq).random(3)
        b = make_rng(np.random.SeedSequence(3)).random(3)
        np.testing.assert_array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        a, b = spawn_rngs(5, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_from_seed(self):
        first = [g.random(3) for g in spawn_rngs(9, 3)]
        second = [g.random(3) for g in spawn_rngs(9, 3)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_from_generator_advances_parent(self):
        parent = np.random.default_rng(1)
        spawn_rngs(parent, 2)
        # spawning twice from the same parent yields fresh children
        more = spawn_rngs(parent, 2)
        assert len(more) == 2
