"""Sharded execution: bit-identity, determinism and the barrier protocol.

The contract under test (see ``docs/architecture.md``, Sharded
execution):

* **cores mode** — any ``shard_static`` scheduler (the static maps)
  produces a merged report *bit-identical* to the single-process run,
  for any shard count, any worker count, materialized or streamed
  sources, with or without a fault schedule;
* **services mode** — LAPS is a deterministic function of
  (workload seed, window, shard count): worker counts never change the
  report, and cross-shard core donations resolve identically run to
  run;
* everything that cannot keep those promises is rejected loudly.
"""

import pytest

from repro import units
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.errors import ConfigError, SimulationError
from repro.faults import (
    CoreFail,
    CoreRecover,
    FaultInjector,
    FaultSchedule,
    TrafficSurge,
    apply_traffic_events,
)
from repro.net.service import Service, ServiceSet
from repro.obs.manifest import RunManifest
from repro.schedulers.base import make_scheduler
from repro.schedulers.hash_static import StaticHashScheduler
from repro.schedulers.rss_static import RSSStaticScheduler
from repro.sim.config import SimConfig
from repro.sim.generator import HoltWintersParams
from repro.sim.sharding import plan_topology, run_sharded
from repro.sim.source import StreamingSource
from repro.sim.system import simulate
from repro.sim.workload import build_workload
from repro.trace.synthetic import SyntheticTraceConfig, generate_trace

NUM_CORES = 8
DURATION = units.ms(2)


@pytest.fixture(scope="module")
def services():
    return ServiceSet([
        Service(0, "a", units.us(0.5)),
        Service(1, "b", units.us(1.0)),
        Service(2, "c", units.us(0.8)),
        Service(3, "d", units.us(1.2)),
    ])


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        SyntheticTraceConfig(
            num_packets=4000, num_flows=400, num_elephants=8,
            elephant_share=0.5, seed=7,
        ),
        name="shard-test",
    )


@pytest.fixture(scope="module")
def parts(services, trace):
    """(traces, Holt-Winters params) at 0.5x capacity per service."""
    cap = services.capacity_pps([2, 2, 2, 2], mean_size_bytes=348.0)
    return [trace] * 4, [HoltWintersParams(a=0.5 * cap / 4)] * 4


@pytest.fixture(scope="module")
def workload(parts):
    traces, hw = parts
    return build_workload(traces, hw, duration_ns=DURATION, seed=3)


@pytest.fixture(scope="module")
def config(services):
    return SimConfig(num_cores=NUM_CORES, services=services)


@pytest.fixture(scope="module")
def baseline_hash(workload, config):
    return simulate(workload, StaticHashScheduler(), config)


class TestCoresBitIdentity:
    @pytest.mark.parametrize("shards", [2, 3])
    def test_hash_static_matches_single_process(
        self, workload, config, baseline_hash, shards
    ):
        run = run_sharded(
            workload, StaticHashScheduler(), config,
            shards=shards, workers=1,
        )
        assert run.report == baseline_hash
        assert run.topology.mode == "cores"

    def test_rss_static_matches_single_process(self, workload, config):
        base = simulate(workload, RSSStaticScheduler(), config)
        run = run_sharded(
            workload, RSSStaticScheduler(), config, shards=2, workers=1,
        )
        assert run.report == base

    def test_multiprocess_equals_inline(self, workload, config, baseline_hash):
        run = run_sharded(
            workload, StaticHashScheduler(), config, shards=2, workers=2,
        )
        assert run.workers == 2
        assert run.report == baseline_hash

    def test_streamed_source_matches_materialized(
        self, parts, config, baseline_hash
    ):
        traces, hw = parts
        source = StreamingSource(
            traces, hw, DURATION, seed=3, chunk_size=512,
        )
        run = run_sharded(
            source, StaticHashScheduler(), config, shards=2, workers=1,
        )
        assert run.report == baseline_hash

    @pytest.mark.parametrize("make", [StaticHashScheduler, RSSStaticScheduler])
    def test_faulted_run_matches_single_process(self, workload, config, make):
        schedule = FaultSchedule([
            CoreFail(units.us(300), core_id=2),
            CoreRecover(units.us(900), core_id=2),
            TrafficSurge(units.us(100), duration_ns=units.us(400),
                         service_id=1, factor=2.0),
        ])
        # single-process semantics: traffic events are applied by the
        # caller, the injector carries the platform events
        base = simulate(
            apply_traffic_events(workload, schedule), make(), config,
            injector=FaultInjector(schedule, drain_policy="drop"),
        )
        run = run_sharded(
            workload, make(), config, shards=3, workers=2,
            schedule=schedule,
        )
        assert run.report == base
        assert run.report.fault_dropped == base.fault_dropped

    def test_simulate_shards_kwarg_delegates(
        self, workload, config, baseline_hash
    ):
        rep = simulate(
            workload, StaticHashScheduler(), config, shards=2,
            shard_workers=1,
        )
        assert rep == baseline_hash

    def test_shard_reports_cover_partition(self, workload, config):
        run = run_sharded(
            workload, StaticHashScheduler(), config, shards=2, workers=1,
        )
        assert len(run.shard_reports) == 2
        total = sum(r.generated for r in run.shard_reports)
        assert total == run.report.generated == workload.num_packets


class TestServicesMode:
    def _laps(self):
        return LAPSScheduler(LAPSConfig(num_services=4))

    def test_worker_count_never_changes_the_report(self, workload, config):
        a = run_sharded(workload, self._laps(), config, shards=2,
                        workers=1, window_ns=units.us(200))
        b = run_sharded(workload, self._laps(), config, shards=2,
                        workers=2, window_ns=units.us(200))
        assert a.report == b.report
        assert a.topology.mode == "services"
        assert a.windows == b.windows > 0

    def test_cross_shard_donation(self, services, trace, config):
        # shard 0 = services {0, 1} both saturated, shard 1 = services
        # {2, 3} nearly idle: the only way shard 0 gets relief is a
        # barrier-resolved donation from shard 1
        cap = services.capacity_pps([2, 2, 2, 2], mean_size_bytes=348.0)
        hw = [
            HoltWintersParams(a=1.3 * cap / 4),
            HoltWintersParams(a=1.3 * cap / 4),
            HoltWintersParams(a=0.03 * cap / 4),
            HoltWintersParams(a=0.03 * cap / 4),
        ]
        wl = build_workload([trace] * 4, hw, duration_ns=units.ms(4), seed=5)
        lc = LAPSConfig(num_services=4, idle_threshold_ns=units.us(150))
        a = run_sharded(wl, LAPSScheduler(lc), config, shards=2,
                        workers=1, window_ns=units.us(250))
        b = run_sharded(wl, LAPSScheduler(lc), config, shards=2,
                        workers=2, window_ns=units.us(250))
        assert a.report == b.report
        assert len(a.grants) > 0
        assert a.grants == b.grants
        for g in a.grants:
            assert g.donor_shard != g.recipient_shard
        assert (
            a.report.scheduler_stats["cross_shard_grants"] == len(a.grants)
        )
        assert (
            a.report.scheduler_stats["cross_shard_releases"] == len(a.grants)
        )

    def test_platform_faults_apply_sharded(self, workload, config):
        schedule = FaultSchedule([
            CoreFail(units.us(500), core_id=1),
            CoreRecover(units.ms(1), core_id=1),
        ])
        run = run_sharded(
            workload, self._laps(), config, shards=2, workers=1,
            window_ns=units.us(250), schedule=schedule,
        )
        assert run.report.generated == workload.num_packets

    def test_per_service_counts_scatter_to_global_ids(
        self, workload, config
    ):
        run = run_sharded(workload, self._laps(), config, shards=2,
                          workers=1, window_ns=units.us(200))
        assert len(run.report.generated_per_service) == 4
        assert sum(run.report.generated_per_service) == run.report.generated


class TestRejections:
    def test_global_load_scheduler_rejected(self, workload, config):
        with pytest.raises(SimulationError, match="neither sharding mode"):
            run_sharded(workload, make_scheduler("fcfs"), config, shards=2)

    def test_guarded_static_scheduler_rejected(self, workload, config):
        # afs routes statically until its guard trips, then consults
        # global occupancy — not partitionable without changing results
        with pytest.raises(SimulationError, match="neither sharding mode"):
            run_sharded(workload, make_scheduler("afs"), config, shards=2)

    def test_reassign_drain_with_platform_faults_rejected(
        self, workload, config
    ):
        schedule = FaultSchedule([CoreFail(units.us(300), core_id=2)])
        with pytest.raises(ConfigError, match="drain_policy"):
            run_sharded(
                workload, StaticHashScheduler(), config, shards=2,
                schedule=schedule, drain_policy="reassign",
            )

    def test_more_shards_than_cores_rejected(self, workload, config):
        with pytest.raises(ConfigError):
            run_sharded(
                workload, StaticHashScheduler(), config,
                shards=NUM_CORES + 1,
            )

    def test_more_shards_than_services_rejected(self, workload, config):
        with pytest.raises(ConfigError):
            run_sharded(
                workload, LAPSScheduler(LAPSConfig(num_services=4)),
                config, shards=5,
            )

    def test_bound_scheduler_rejected(self, workload, config, baseline_hash):
        sched = StaticHashScheduler()
        simulate(workload, sched, config)  # binds it
        with pytest.raises(ConfigError, match="unbound"):
            run_sharded(workload, sched, config, shards=2)

    def test_probe_with_shards_rejected(self, workload, config):
        from repro.obs import TelemetryProbe

        with pytest.raises(SimulationError, match="probes"):
            simulate(
                workload, StaticHashScheduler(), config,
                probe=TelemetryProbe(units.us(100)), shards=2,
            )

    def test_zero_shards_rejected(self, workload, config):
        with pytest.raises(ConfigError):
            run_sharded(workload, StaticHashScheduler(), config, shards=0)


class TestTopologyAndManifest:
    def test_plan_topology_cores(self):
        topo = plan_topology("cores", 3, 8, 4)
        assert [len(g) for g in topo.core_groups] == [3, 3, 2]
        assert sorted(c for g in topo.core_groups for c in g) == list(range(8))

    def test_plan_topology_services(self):
        topo = plan_topology("services", 2, 8, 4, window_ns=units.ms(1))
        assert [list(g) for g in topo.service_groups] == [[0, 1], [2, 3]]
        assert topo.window_ns == units.ms(1)

    def test_manifest_block_round_trips(self, workload, config):
        run = run_sharded(
            workload, StaticHashScheduler(), config, shards=2, workers=1,
            source_fingerprint="abc123",
        )
        block = run.manifest_dict()
        assert block["mode"] == "cores"
        assert block["num_shards"] == 2
        assert block["workers"] == 1
        assert block["source_fingerprint"] == "abc123"
        manifest = RunManifest.capture(config=config, sharding=block)
        again = RunManifest.from_dict(manifest.to_dict())
        assert again.sharding == block
