"""Tests for the power/energy model."""

import pytest

from repro.sim.metrics import SimReport
from repro.sim.power import PowerModel


def report(utils, duration_ns=1_000_000_000):
    return SimReport(
        scheduler="x", duration_ns=duration_ns, generated=0, dropped=0,
        departed=0, out_of_order=0, cold_cache_events=0,
        flow_migration_events=0, migrated_flows=0,
        generated_per_service=(0,), dropped_per_service=(0,),
        core_utilization=tuple(utils),
    )


class TestModel:
    def test_fully_busy_core(self):
        pr = PowerModel(active_w=1.0, idle_w=0.4, sleep_w=0.0).evaluate(
            report([1.0])
        )
        assert pr.total_j == pytest.approx(1.0)
        assert pr.savings_fraction == 0.0

    def test_idle_core_no_gating(self):
        pr = PowerModel(active_w=1.0, idle_w=0.4, sleep_w=0.0).evaluate(
            report([0.0])
        )
        assert pr.total_j == pytest.approx(0.4)

    def test_idle_core_full_gating(self):
        pr = PowerModel(active_w=1.0, idle_w=0.4, sleep_w=0.1).evaluate(
            report([0.0]), gating_fraction=1.0
        )
        assert pr.total_j == pytest.approx(0.1)
        assert pr.savings_fraction == pytest.approx(1 - 0.1 / 0.4)

    def test_mixed_utilisation(self):
        pr = PowerModel(active_w=1.0, idle_w=0.5, sleep_w=0.0).evaluate(
            report([0.5]), gating_fraction=0.5
        )
        # 0.5 s active (0.5 J) + 0.25 s idle (0.125 J) + 0.25 s sleep (0)
        assert pr.total_j == pytest.approx(0.625)

    def test_gating_never_increases_energy(self):
        model = PowerModel()
        base = model.evaluate(report([0.3, 0.7, 0.1]))
        gated = model.evaluate(report([0.3, 0.7, 0.1]), gating_fraction=0.8)
        assert gated.total_j <= base.total_j
        assert base.total_j == pytest.approx(base.baseline_j)

    def test_utilisation_clamped(self):
        pr = PowerModel(active_w=1.0, idle_w=0.0, sleep_w=0.0).evaluate(
            report([1.1])
        )
        assert pr.total_j == pytest.approx(1.0)

    def test_invalid_state_ordering(self):
        with pytest.raises(ValueError):
            PowerModel(active_w=0.1, idle_w=0.5, sleep_w=0.0)

    def test_invalid_gating_fraction(self):
        with pytest.raises(ValueError):
            PowerModel().evaluate(report([0.5]), gating_fraction=1.5)

    def test_components_sum(self):
        pr = PowerModel().evaluate(report([0.4, 0.9]), gating_fraction=0.3)
        assert pr.total_j == pytest.approx(pr.active_j + pr.idle_j + pr.sleep_j)
