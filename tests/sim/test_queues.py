"""Tests for bounded queues and the queue bank."""

import pytest

from repro.errors import ConfigError
from repro.sim.queues import BoundedQueue, QueueBank


class TestBoundedQueue:
    def test_fifo(self):
        q = BoundedQueue(4)
        for i in range(3):
            assert q.offer(i)
        assert [q.take() for _ in range(3)] == [0, 1, 2]

    def test_capacity_enforced(self):
        q = BoundedQueue(2)
        assert q.offer(1) and q.offer(2)
        assert not q.offer(3)
        assert q.drops == 1
        assert len(q) == 2

    def test_full_empty_flags(self):
        q = BoundedQueue(1)
        assert q.is_empty and not q.is_full
        q.offer(1)
        assert q.is_full and not q.is_empty

    def test_peak_tracking(self):
        q = BoundedQueue(8)
        for i in range(5):
            q.offer(i)
        q.take()
        q.take()
        assert q.peak == 5

    def test_take_empty_raises(self):
        with pytest.raises(IndexError):
            BoundedQueue(1).take()

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            BoundedQueue(0)

    def test_clear(self):
        q = BoundedQueue(4)
        q.offer(1)
        q.clear()
        assert q.is_empty


class TestQueueBank:
    def test_loadview_protocol(self):
        bank = QueueBank(4, 32)
        assert bank.num_cores == 4
        assert bank.queue_capacity == 32
        assert bank.occupancy(0) == 0

    def test_occupancy_tracks_queue(self):
        bank = QueueBank(2, 8)
        bank[1].offer(7)
        assert bank.occupancy(1) == 1
        assert bank.occupancies() == [0, 1]

    def test_total_drops(self):
        bank = QueueBank(2, 1)
        bank[0].offer(1)
        bank[0].offer(2)  # drop
        bank[1].offer(3)
        bank[1].offer(4)  # drop
        assert bank.total_drops() == 2

    def test_invalid_size(self):
        with pytest.raises(ConfigError):
            QueueBank(0, 32)

    def test_iteration(self):
        bank = QueueBank(3, 4)
        assert len(list(bank)) == 3
