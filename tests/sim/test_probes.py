"""Tests for the queue probe."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim.probes import QueueProbe


class FakeQueues:
    def __init__(self, occ):
        self._occ = occ

    def occupancies(self):
        return list(self._occ)


class FakeMetrics:
    def __init__(self):
        self.dropped = 0
        self.departed = 0


class TestProbe:
    def test_invalid_period(self):
        with pytest.raises(ConfigError):
            QueueProbe(0)

    def test_samples_each_period(self):
        probe = QueueProbe(100)
        q, m = FakeQueues([1, 2]), FakeMetrics()
        probe.maybe_sample(250, q, m)
        assert probe.times_ns == [0, 100, 200]

    def test_no_duplicate_samples(self):
        probe = QueueProbe(100)
        q, m = FakeQueues([0]), FakeMetrics()
        probe.maybe_sample(150, q, m)
        probe.maybe_sample(160, q, m)
        assert probe.num_samples == 2

    def test_occupancy_matrix(self):
        probe = QueueProbe(10)
        probe.maybe_sample(0, FakeQueues([3, 7]), FakeMetrics())
        mat = probe.occupancy_matrix()
        assert mat.shape == (1, 2)
        np.testing.assert_array_equal(mat[0], [3, 7])

    def test_empty_matrix(self):
        assert QueueProbe(10).occupancy_matrix().shape == (0, 0)

    def test_drop_rate_series(self):
        probe = QueueProbe(10)
        m = FakeMetrics()
        probe.maybe_sample(0, FakeQueues([0]), m)
        m.dropped = 5
        probe.maybe_sample(10, FakeQueues([0]), m)
        m.dropped = 7
        probe.maybe_sample(20, FakeQueues([0]), m)
        np.testing.assert_array_equal(probe.drop_rate_series(), [0, 5, 2])

    def test_imbalance_series(self):
        probe = QueueProbe(10)
        probe.maybe_sample(0, FakeQueues([1, 9]), FakeMetrics())
        np.testing.assert_array_equal(probe.imbalance_series(), [8])


class TestEndToEnd:
    def test_probe_in_simulation(self, small_workload, small_config):
        from repro import units
        from repro.schedulers.fcfs import FCFSScheduler
        from repro.sim.system import simulate

        probe = QueueProbe(units.us(100))
        rep = simulate(small_workload, FCFSScheduler(), small_config, probe=probe)
        assert probe.num_samples > 5
        assert probe.occupancy_matrix().shape[1] == small_config.num_cores
        # cumulative counters are non-decreasing
        assert all(np.diff(probe.dropped) >= 0)
        assert all(np.diff(probe.departed) >= 0)
        assert probe.dropped[-1] <= rep.dropped
