"""Tests for the queue probe."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim.probes import QueueProbe


class FakeQueues:
    def __init__(self, occ):
        self._occ = occ

    def occupancies(self):
        return list(self._occ)


class FakeMetrics:
    def __init__(self):
        self.dropped = 0
        self.departed = 0


class TestProbe:
    def test_invalid_period(self):
        with pytest.raises(ConfigError):
            QueueProbe(0)

    def test_samples_once_per_boundary(self):
        probe = QueueProbe(100)
        q, m = FakeQueues([1, 2]), FakeMetrics()
        probe.maybe_sample(0, q, m)
        probe.maybe_sample(120, q, m)
        probe.maybe_sample(130, q, m)   # same period: no sample
        probe.maybe_sample(200, q, m)
        assert probe.times_ns == [0, 120, 200]

    def test_no_backfill_of_skipped_boundaries(self):
        """A jump over several boundaries must NOT attribute present
        state to past timestamps (the old behaviour) — one sample, at
        the actual observation time."""
        probe = QueueProbe(100)
        q, m = FakeQueues([3]), FakeMetrics()
        m.dropped = 7
        probe.maybe_sample(250, q, m)
        assert probe.times_ns == [250]
        assert probe.dropped == [7]

    def test_no_duplicate_samples(self):
        probe = QueueProbe(100)
        q, m = FakeQueues([0]), FakeMetrics()
        probe.maybe_sample(150, q, m)
        probe.maybe_sample(160, q, m)
        assert probe.num_samples == 1
        probe.maybe_sample(205, q, m)
        assert probe.num_samples == 2

    def test_to_records(self):
        probe = QueueProbe(100)
        probe.maybe_sample(50, FakeQueues([1, 2]), FakeMetrics())
        recs = probe.to_records()
        assert recs == [
            {"t_ns": 50, "occupancy": [1, 2], "dropped": 0, "departed": 0}
        ]

    def test_occupancy_matrix(self):
        probe = QueueProbe(10)
        probe.maybe_sample(0, FakeQueues([3, 7]), FakeMetrics())
        mat = probe.occupancy_matrix()
        assert mat.shape == (1, 2)
        np.testing.assert_array_equal(mat[0], [3, 7])

    def test_empty_matrix(self):
        assert QueueProbe(10).occupancy_matrix().shape == (0, 0)

    def test_drop_rate_series(self):
        probe = QueueProbe(10)
        m = FakeMetrics()
        probe.maybe_sample(0, FakeQueues([0]), m)
        m.dropped = 5
        probe.maybe_sample(10, FakeQueues([0]), m)
        m.dropped = 7
        probe.maybe_sample(20, FakeQueues([0]), m)
        np.testing.assert_array_equal(probe.drop_rate_series(), [0, 5, 2])

    def test_imbalance_series(self):
        probe = QueueProbe(10)
        probe.maybe_sample(0, FakeQueues([1, 9]), FakeMetrics())
        np.testing.assert_array_equal(probe.imbalance_series(), [8])


class TestEndToEnd:
    def test_probe_in_simulation(self, small_workload, small_config):
        from repro import units
        from repro.schedulers.fcfs import FCFSScheduler
        from repro.sim.system import simulate

        probe = QueueProbe(units.us(100))
        rep = simulate(small_workload, FCFSScheduler(), small_config, probe=probe)
        assert probe.num_samples > 5
        assert probe.occupancy_matrix().shape[1] == small_config.num_cores
        # sample times are strictly increasing (one row per boundary)
        assert all(np.diff(probe.times_ns) > 0)
        # cumulative counters are non-decreasing
        assert all(np.diff(probe.dropped) >= 0)
        assert all(np.diff(probe.departed) >= 0)
        assert probe.dropped[-1] <= rep.dropped

    def test_probe_covers_drain_phase(self, small_workload, small_config):
        """The series must not end at the last arrival: queued packets
        keep departing for drain_ns and the probe keeps sampling."""
        from repro import units
        from repro.schedulers.fcfs import FCFSScheduler
        from repro.sim.system import simulate

        probe = QueueProbe(units.us(100))
        rep = simulate(small_workload, FCFSScheduler(), small_config, probe=probe)
        last_arrival = int(small_workload.arrival_ns[-1])
        drain_times = [t for t in probe.times_ns if t > last_arrival]
        assert drain_times, "no samples during the drain phase"
        # the final sample sees every departure scored in the report
        assert probe.departed[-1] == rep.departed
        # and the drained system has empty queues at the end
        assert probe.occupancy_matrix()[-1].sum() == 0
