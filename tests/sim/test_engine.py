"""Tests for the event heap."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(30, "c")
        q.push(10, "a")
        q.push(20, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_pop_in_insertion_order(self):
        q = EventQueue()
        q.push(5, "first")
        q.push(5, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_payloads_never_compared(self):
        q = EventQueue()
        q.push(1, object())
        q.push(1, object())  # would raise if tuples compared payloads
        q.pop()
        q.pop()


class TestCausality:
    def test_push_into_past_rejected(self):
        q = EventQueue()
        q.push(10, "a")
        q.pop()
        with pytest.raises(SimulationError):
            q.push(5, "late")

    def test_push_at_current_time_ok(self):
        q = EventQueue()
        q.push(10, "a")
        q.pop()
        q.push(10, "b")
        assert q.pop() == (10, "b")

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()


class TestPopUntil:
    def test_horizon_inclusive(self):
        q = EventQueue()
        for t in (1, 5, 10, 15):
            q.push(t, t)
        drained = [t for t, _ in q.pop_until(10)]
        assert drained == [1, 5, 10]
        assert len(q) == 1

    def test_events_pushed_while_draining(self):
        q = EventQueue()
        q.push(1, "a")
        seen = []
        for t, payload in q.pop_until(10):
            seen.append(payload)
            if payload == "a":
                q.push(5, "chained")
        assert seen == ["a", "chained"]

    def test_empty(self):
        assert list(EventQueue().pop_until(100)) == []


class TestMisc:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(1, "x")
        assert q and len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(7, "x")
        assert q.peek_time() == 7

    def test_clear(self):
        q = EventQueue()
        q.push(1, "x")
        q.pop()
        q.clear()
        q.push(0, "ok")  # causality reset

    def test_clear_resets_tie_break_counter(self):
        # a cleared queue must replay a push sequence with the same
        # (time, seq) heap entries as a fresh one; a stale counter
        # would make recycled queues order (and serialize) differently
        q = EventQueue()
        for i in range(5):
            q.push(10, i)
        q.pop()
        q.clear()
        q.push(7, "first")
        fresh = EventQueue()
        fresh.push(7, "first")
        assert q._heap == fresh._heap  # seq restarts at 0

    def test_cleared_queue_matches_fresh_pop_order(self):
        q = EventQueue()
        q.push(3, "x")
        q.clear()
        fresh = EventQueue()
        for target in (q, fresh):
            target.push(5, "a")
            target.push(5, "b")
            target.push(2, "c")
        assert [q.pop() for _ in range(3)] == [fresh.pop() for _ in range(3)]
        assert q.popped == fresh.popped == 3
