"""Engine bit-identity: heap vs calendar vs calendar-numba.

The event engine is a *speed* knob — ISSUE 8's acceptance bar is that
``SimReport``s are bit-identical across engines for every registered
scheduler, materialized and streamed sources, fault schedules, and
checkpoints resumed on a *different* engine than the one that took
them.  The heap engine is the scalar oracle; the calendar engine adds
the batched span drain; calendar-numba swaps the phase-1 recurrence
for the compiled twin (or degrades to calendar when numba is absent —
also pinned here).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.obs.manifest import RunManifest
from repro.sim.engine import available_engines, resolve_engine
from repro.sim.events.backend import (
    OUT_SLOTS,
    NumpyBackend,
    numba_available,
    simulate_core,
)
from repro.sim.kernel import SimKernel
from repro.sim.system import simulate
from repro.faults.injector import FaultInjector
from tests.schedulers.test_assign_batch import (
    KERNEL_SCHEDULERS,
    _config,
    _faults,
    _kernel_sched,
    _workload,
)

ENGINES = list(available_engines())


# ----------------------------------------------------------------------
# registry / fallback
# ----------------------------------------------------------------------


class TestRegistry:
    def test_known_engines(self):
        assert ENGINES == ["heap", "calendar", "calendar-numba"]

    def test_default_is_heap(self):
        assert resolve_engine(None).name == "heap"

    def test_unknown_rejected(self):
        with pytest.raises(Exception):
            resolve_engine("wheel-of-fortune")

    def test_numba_fallback_is_clean(self):
        """Requesting calendar-numba without numba must not raise: it
        degrades to the numpy calendar backend and says why."""
        spec = resolve_engine("calendar-numba")
        assert spec.requested == "calendar-numba"
        if numba_available()[0]:  # pragma: no cover - accel extra installed
            assert spec.name == "calendar-numba"
            assert spec.fallback_reason is None
        else:
            assert spec.name == "calendar"
            assert "numba" in spec.fallback_reason
            assert "repro[accel]" in spec.fallback_reason

    def test_fallback_engine_still_runs(self):
        wl = _workload(2, None)
        rep = simulate(wl, _kernel_sched("hash-static"), _config(),
                       engine="calendar-numba")
        assert rep.generated > 0

    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "calendar")
        assert resolve_engine(None).name == "calendar"


# ----------------------------------------------------------------------
# report bit-identity across engines
# ----------------------------------------------------------------------


def _run(name, engine, *, chunk_size=None, faulted=False, seed=3):
    wl = _workload(seed, chunk_size)
    injector = FaultInjector(_faults()) if faulted else None
    return simulate(wl, _kernel_sched(name), _config(),
                    injector=injector, engine=engine)


@pytest.mark.parametrize("name", KERNEL_SCHEDULERS)
def test_engines_bit_identical_materialized(name):
    baseline = _run(name, "heap")
    for engine in ("calendar", "calendar-numba"):
        assert _run(name, engine) == baseline


@pytest.mark.parametrize("name", KERNEL_SCHEDULERS)
def test_engines_bit_identical_streamed(name):
    baseline = _run(name, "heap", chunk_size=701)
    assert _run(name, "calendar", chunk_size=701) == baseline


@pytest.mark.parametrize("name", KERNEL_SCHEDULERS)
def test_engines_bit_identical_faulted(name):
    baseline = _run(name, "heap", faulted=True)
    assert _run(name, "calendar", faulted=True) == baseline


def test_spans_actually_commit():
    """Guard against the parity tests passing vacuously because the
    calendar engine silently never drained a span."""
    wl = _workload(3, None)
    kernel = SimKernel(_config(), _kernel_sched("hash-static"), wl,
                       engine="calendar")
    kernel.run()
    stats = kernel.span_stats
    assert stats["spans_committed"] > 0
    assert stats["packets_spanned"] > 0


# ----------------------------------------------------------------------
# cross-engine checkpoint / resume
# ----------------------------------------------------------------------


@pytest.mark.parametrize("pair", [
    ("heap", "calendar"),
    ("calendar", "heap"),
    ("calendar", "calendar"),
    ("heap", "calendar-numba"),
])
@pytest.mark.parametrize("name", ["laps", "hash-static"])
def test_cross_engine_checkpoint_resume(name, pair):
    """A checkpoint taken on one engine resumes bit-exactly on another:
    the blob stores an engine-independent EventSnapshot (v4), never a
    live queue."""
    eng_a, eng_b = pair
    cfg = _config()
    wl = _workload(1, None)
    base = simulate(wl, _kernel_sched(name), cfg,
                    injector=FaultInjector(_faults()), engine=eng_a)

    kernel = SimKernel(cfg, _kernel_sched(name), wl, engine=eng_a)
    kernel.attach_injector(FaultInjector(_faults()))
    kernel.run_until(units.us(400))  # mid-run, with a core down
    ckpt = kernel.checkpoint()
    resumed = SimKernel.resume(ckpt, cfg, wl, engine=eng_b)
    assert resumed.run() == base


def test_checkpoint_blob_is_engine_free():
    """The pickled state must contain an EventSnapshot, not a queue
    object — that is what makes cross-engine resume possible at all."""
    import pickle

    from repro.sim.events.base import EventSnapshot
    from repro.sim.events.calendar import CalendarEventQueue

    wl = _workload(4, None)
    kernel = SimKernel(_config(), _kernel_sched("hash-static"), wl,
                       engine="calendar")
    kernel.run_until(units.us(300))
    assert kernel.checkpoint().version == 4
    state, _sched, _inj, _extras = pickle.loads(kernel.checkpoint().blob)
    assert isinstance(state.events, EventSnapshot)
    # and the live kernel still holds its real queue (checkpoint must
    # not disturb the running instance)
    assert isinstance(kernel.state.events, CalendarEventQueue)
    kernel.run()  # completes without error


# ----------------------------------------------------------------------
# manifest provenance
# ----------------------------------------------------------------------


class TestManifestEngine:
    def test_engine_recorded_and_round_trips(self):
        m = RunManifest.capture(seed=1, scheduler="laps", engine="calendar")
        assert m.engine == "calendar"
        assert RunManifest.from_dict(m.to_dict()).engine == "calendar"

    def test_engine_optional_for_old_manifests(self):
        d = RunManifest.capture(seed=1).to_dict()
        del d["engine"]
        assert RunManifest.from_dict(d).engine is None


# ----------------------------------------------------------------------
# backend twin: interpreted lists vs int64 arrays
# ----------------------------------------------------------------------


def test_backend_list_and_array_modes_agree():
    """``simulate_core`` is one source compiled two ways: driving it
    with plain lists (the interpreted fast path) and with int64 arrays
    (what the numba twin would see) must produce identical outputs,
    including the mutated flow_last/migrated overlays."""
    rng = np.random.default_rng(99)
    cap = 8
    for trial in range(20):
        n_rows = int(rng.integers(1, 200))
        n_flows = int(rng.integers(1, 32))
        n_pre = int(rng.integers(0, min(cap, n_rows) + 1))
        has_busy = int(n_pre > 0 and rng.integers(0, 2))
        arr_t = np.sort(rng.integers(0, 60_000, size=n_rows)).astype(np.int64)
        arr_t[:n_pre] = 0  # prelude rows predate the span
        busy_fin = int(rng.integers(0, 5_000))
        proc = rng.integers(200, 3_000, size=n_rows).astype(np.int64)
        sid = rng.integers(0, 2, size=n_rows).astype(np.int64)
        floc = rng.integers(0, n_flows, size=n_rows).astype(np.int64)
        flow_last = rng.integers(-1, 4, size=n_flows).astype(np.int64)
        migrated = np.zeros(n_flows, dtype=np.int64)
        last_sid = int(rng.integers(-1, 2))
        guard = 10**9 if rng.random() < 0.5 else int(rng.integers(2, cap))
        t_h = int(arr_t[-1]) + int(rng.integers(0, 20_000))

        size = n_rows + cap + 2
        cols_a = (arr_t, proc, sid, floc, flow_last.copy(), migrated.copy())
        cols_l = tuple(c.tolist() for c in cols_a)
        bufs_a = [np.zeros(size, dtype=np.int64) for _ in range(6)]
        bufs_l = [[0] * size for _ in range(6)]
        out_a = np.zeros(OUT_SLOTS, dtype=np.int64)
        out_l = [0] * OUT_SLOTS

        simulate_core(
            0, n_rows, n_pre, has_busy, busy_fin, *cols_a,
            last_sid, guard, cap, 120, 80, t_h, *bufs_a, out_a,
        )
        simulate_core(
            0, n_rows, n_pre, has_busy, busy_fin, *cols_l,
            last_sid, guard, cap, 120, 80, t_h, *bufs_l, out_l,
        )
        assert out_a.tolist() == out_l, f"trial {trial}: scalar outs differ"
        for slot, (ba, bl) in enumerate(zip(bufs_a, bufs_l)):
            assert ba.tolist() == bl, f"trial {trial}: buffer {slot} differs"
        assert cols_a[4].tolist() == cols_l[4], f"trial {trial}: flow_last"
        assert cols_a[5].tolist() == cols_l[5], f"trial {trial}: migrated"


def test_numpy_backend_is_the_default_span_engine():
    spec = resolve_engine("calendar")
    assert isinstance(spec.span_backend, NumpyBackend)
    assert not spec.span_backend.wants_arrays
