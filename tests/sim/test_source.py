"""Tests for the streaming packet-source pipeline (repro.sim.source).

The contract under test is bit-identity: a :class:`StreamingSource`
must reproduce exactly the packet sequence of the eager
``build_workload`` for the same inputs — per column, per chunk size —
and a simulation fed chunks must produce the same :class:`SimReport`
as one fed the materialized arrays, including under fault injection
and across a mid-chunk checkpoint/resume.
"""

import numpy as np
import pytest

from repro import units
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.errors import ConfigError, SimulationError
from repro.faults.events import CoreFail, CoreRecover, CoreSlowdown, FaultSchedule
from repro.faults.injector import FaultInjector
from repro.net.service import Service, ServiceSet
from repro.schedulers.hash_static import StaticHashScheduler
from repro.sim.config import SimConfig
from repro.sim.generator import HoltWintersParams
from repro.sim.kernel import Checkpoint, SimKernel
from repro.sim.source import (
    MaterializedSource,
    StreamingSource,
    WorkloadChunk,
    concat_chunks,
    workload_fingerprint,
)
from repro.sim.system import simulate
from repro.sim.workload import build_workload
from repro.trace.synthetic import preset_trace

COLUMNS = ("arrival_ns", "service_id", "flow_id", "size_bytes",
           "flow_hash", "seq")


def two_service_inputs(trace_packets=2_000):
    traces = [preset_trace("caida-1", num_packets=trace_packets),
              preset_trace("auck-1", num_packets=trace_packets)]
    params = [HoltWintersParams(a=3e6, b=2e8, sigma=0.1),
              HoltWintersParams(a=2e6)]
    return traces, params


def streaming(chunk_size=1000, seed=0, duration_ns=units.ms(1)):
    traces, params = two_service_inputs()
    return StreamingSource(traces, params, duration_ns, seed=seed,
                           chunk_size=chunk_size)


def eager(seed=0, duration_ns=units.ms(1)):
    traces, params = two_service_inputs()
    return build_workload(traces, params, duration_ns=duration_ns, seed=seed)


def two_service_config(**kw):
    svc = ServiceSet([Service(0, "a", 800), Service(1, "b", 1200)])
    kw.setdefault("num_cores", 4)
    kw.setdefault("services", svc)
    return SimConfig(**kw)


def assert_same_columns(workload, reference):
    for col in COLUMNS:
        np.testing.assert_array_equal(
            getattr(workload, col), getattr(reference, col), err_msg=col
        )


# ----------------------------------------------------------------------
class TestMaterializedSource:
    def test_chunks_are_consecutive_slices(self):
        wl = eager()
        src = MaterializedSource(wl, chunk_size=777)
        chunks = list(src.iter_chunks())
        assert [c.base for c in chunks] == \
            list(range(0, wl.num_packets, 777))
        assert sum(len(c) for c in chunks) == wl.num_packets
        assert_same_columns(concat_chunks(chunks), wl)

    def test_materialize_returns_wrapped_workload(self):
        wl = eager()
        assert MaterializedSource(wl).materialize() is wl

    def test_concat_rejects_gap(self):
        wl = eager()
        chunks = list(MaterializedSource(wl, chunk_size=500).iter_chunks())
        with pytest.raises(ConfigError, match="not consecutive"):
            concat_chunks([chunks[0], chunks[2]])


class TestStreamingSource:
    @pytest.mark.parametrize("chunk_size", [333, 4096, 1 << 20])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_bit_identical_to_build_workload(self, chunk_size, seed):
        src = streaming(chunk_size=chunk_size, seed=seed)
        ref = eager(seed=seed)
        assert src.num_packets == ref.num_packets
        assert src.num_flows == ref.num_flows
        assert_same_columns(src.materialize(), ref)

    def test_chunk_shape_invariants(self):
        src = streaming(chunk_size=500)
        chunks = list(src.iter_chunks())
        assert all(isinstance(c, WorkloadChunk) for c in chunks)
        assert all(len(c) == 500 for c in chunks[:-1])
        assert chunks[0].base == 0
        assert all(a.end == b.base for a, b in zip(chunks, chunks[1:]))

    def test_fingerprint_shared_across_modes(self):
        ref = eager()
        fp = workload_fingerprint(ref)
        assert streaming(chunk_size=333).fingerprint() == fp
        assert MaterializedSource(ref, chunk_size=1000).fingerprint() == fp

    def test_fingerprint_differs_across_seeds(self):
        assert streaming(seed=0).fingerprint() != \
            streaming(seed=1).fingerprint()

    def test_generator_seed_rejected(self):
        traces, params = two_service_inputs()
        with pytest.raises(ConfigError, match="replay"):
            StreamingSource(traces, params, units.ms(1),
                            seed=np.random.default_rng(0))

    def test_clone_replays_identically(self):
        src = streaming(chunk_size=400)
        first = [src.next_chunk() for _ in range(3)]
        clone = src.clone()
        for want in first:
            got = clone.next_chunk()
            assert got.base == want.base
            np.testing.assert_array_equal(got.arrival_ns, want.arrival_ns)

    def test_snapshot_restore_roundtrip(self):
        src = streaming(chunk_size=256)
        for _ in range(3):
            src.next_chunk()
        snap = src.snapshot()
        tail = [src.next_chunk() for _ in range(4)]
        src.restore(snap)
        for want in tail:
            got = src.next_chunk()
            assert got.base == want.base
            for col in COLUMNS:
                np.testing.assert_array_equal(getattr(got, col),
                                              getattr(want, col))


# ----------------------------------------------------------------------
class TestStreamedSimulation:
    def test_hash_static_report_matches(self):
        ref = simulate(eager(), StaticHashScheduler(), two_service_config())
        got = simulate(streaming(chunk_size=512), StaticHashScheduler(),
                       two_service_config())
        assert got == ref

    def test_laps_report_matches(self):
        def sched():
            return LAPSScheduler(LAPSConfig(num_services=2), rng=5)
        ref = simulate(eager(), sched(), two_service_config())
        got = simulate(streaming(chunk_size=512), sched(),
                       two_service_config())
        assert got == ref
        assert got.flow_migration_events == ref.flow_migration_events

    def test_fault_schedule_report_matches(self):
        # an F-scenario-style run: fail, slow down, recover, reassign
        schedule = FaultSchedule([
            CoreFail(units.us(100), core_id=1),
            CoreSlowdown(units.us(150), core_id=2, factor=2.0),
            CoreRecover(units.us(500), core_id=1),
        ])

        def run(workload):
            return simulate(
                workload, StaticHashScheduler(), two_service_config(),
                injector=FaultInjector(schedule, drain_policy="reassign"),
            )

        assert run(streaming(chunk_size=512)) == run(eager())

    def test_source_survives_multiple_runs(self):
        src = streaming(chunk_size=512)
        first = simulate(src, StaticHashScheduler(), two_service_config())
        second = simulate(src, StaticHashScheduler(), two_service_config())
        assert first == second


# ----------------------------------------------------------------------
class TestStreamedCheckpoint:
    def _kernel(self, workload):
        return SimKernel(two_service_config(), StaticHashScheduler(),
                         workload)

    def test_midchunk_resume_bit_identical(self):
        baseline = self._kernel(streaming(chunk_size=512)).run()

        kern = self._kernel(streaming(chunk_size=512))
        kern.run_until(units.us(300))  # mid-run, mid-chunk
        blob = kern.checkpoint().to_bytes()
        ref = kern.run()

        resumed = SimKernel.resume(
            Checkpoint.from_bytes(blob), two_service_config(),
            streaming(chunk_size=512),
        )
        assert resumed.run() == ref == baseline

    def test_cross_mode_resume(self):
        # checkpoint a streamed run, resume it from materialized arrays
        kern = self._kernel(streaming(chunk_size=512))
        kern.run_until(units.us(300))
        blob = kern.checkpoint().to_bytes()
        ref = kern.run()

        resumed = SimKernel.resume(
            Checkpoint.from_bytes(blob), two_service_config(), eager()
        )
        assert resumed.run() == ref

        # and the reverse: materialized checkpoint, streamed resume
        kern2 = self._kernel(eager())
        kern2.run_until(units.us(300))
        blob2 = kern2.checkpoint().to_bytes()
        ref2 = kern2.run()
        resumed2 = SimKernel.resume(
            Checkpoint.from_bytes(blob2), two_service_config(),
            streaming(chunk_size=512),
        )
        assert resumed2.run() == ref2 == ref

    def test_resume_rejects_other_workload(self):
        kern = self._kernel(streaming(chunk_size=512))
        kern.run_until(units.us(300))
        blob = kern.checkpoint().to_bytes()
        with pytest.raises(SimulationError, match="different workload"):
            SimKernel.resume(Checkpoint.from_bytes(blob),
                             two_service_config(),
                             streaming(chunk_size=512, seed=9))
