"""Analytic validation: the simulator vs exact M/D/1/K results."""

import numpy as np
import pytest

from repro.net.service import Service, ServiceSet
from repro.schedulers.hash_static import StaticHashScheduler
from repro.sim.config import SimConfig
from repro.sim.system import simulate
from repro.sim.validation import md1k_loss_probability, md1k_metrics
from repro.sim.workload import Workload, _per_flow_sequences


def poisson_workload(rate_pps, n, seed=0, num_flows=1000):
    rng = np.random.default_rng(seed)
    arr = np.cumsum(rng.exponential(1e9 / rate_pps, n)).astype(np.int64)
    flows = np.arange(n, dtype=np.int64) % num_flows
    return Workload(
        arrival_ns=arr,
        service_id=np.zeros(n, np.int32),
        flow_id=flows,
        size_bytes=np.full(n, 64, np.int32),
        flow_hash=np.zeros(n, np.int64),
        seq=_per_flow_sequences(flows, num_flows),
        num_flows=num_flows,
        num_services=1,
        duration_ns=int(arr[-1]) + 1,
    )


class TestAnalyticFormula:
    def test_light_load_lossless(self):
        assert md1k_loss_probability(0.3, 33) < 1e-9

    def test_heavy_load_loses_excess(self):
        # at rho >> 1 the loss must approach 1 - 1/rho
        assert md1k_loss_probability(2.0, 33) == pytest.approx(0.5, abs=0.01)

    def test_monotone_in_rho(self):
        losses = [md1k_loss_probability(r, 9) for r in (0.5, 0.9, 1.1, 1.5)]
        assert losses == sorted(losses)

    def test_monotone_in_buffer(self):
        losses = [md1k_loss_probability(1.05, k) for k in (2, 9, 33, 65)]
        assert losses == sorted(losses, reverse=True)

    def test_single_slot_system(self):
        # M/G/1/1: P_loss = rho / (1 + rho)
        assert md1k_loss_probability(1.0, 1) == pytest.approx(0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            md1k_loss_probability(0.0, 4)
        with pytest.raises(ValueError):
            md1k_loss_probability(1.0, 0)

    def test_metrics_wrapper(self):
        m = md1k_metrics(2.1e6, 500, 32)
        assert m["rho"] == pytest.approx(1.05)
        assert 0 < m["loss_probability"] < 0.1
        assert m["throughput_pps"] < 2.1e6


class TestSimulatorMatchesTheory:
    """The DES core is an M/D/1/K when fed Poisson + fixed service."""

    @pytest.mark.parametrize(
        "utilisation,queue_capacity,atol",
        [(0.95, 32, 0.004), (1.05, 32, 0.008), (1.2, 8, 0.01)],
    )
    def test_loss_probability(self, utilisation, queue_capacity, atol):
        service_ns = 500
        rate = utilisation * 1e9 / service_ns
        wl = poisson_workload(rate, 200_000, seed=1)
        svc = ServiceSet([Service(0, "s", service_ns)])
        cfg = SimConfig(
            num_cores=1, queue_capacity=queue_capacity, services=svc,
            fm_penalty_ns=0, cc_penalty_ns=0, collect_latencies=False,
        )
        rep = simulate(wl, StaticHashScheduler(), cfg)
        expected = md1k_metrics(rate, service_ns, queue_capacity)
        assert rep.drop_fraction == pytest.approx(
            expected["loss_probability"], abs=atol
        )

    def test_underload_lossless(self):
        wl = poisson_workload(0.7 * 2e6, 50_000, seed=2)
        svc = ServiceSet([Service(0, "s", 500)])
        cfg = SimConfig(num_cores=1, queue_capacity=32, services=svc,
                        fm_penalty_ns=0, cc_penalty_ns=0,
                        collect_latencies=False)
        rep = simulate(wl, StaticHashScheduler(), cfg)
        assert rep.dropped == 0
