"""Tests for the eq. (3)-(5) processing-delay model."""

import pytest

from repro import units
from repro.net.service import default_services
from repro.sim.latency import LatencyModel, TABLE_III_CORE


@pytest.fixture
def model():
    return LatencyModel(services=default_services())


class TestEquation3:
    def test_bare_t_proc(self, model):
        assert model.processing_ns(1, 64, migrated=False, cold_cache=False) == 500

    def test_fm_penalty_added(self, model):
        pd = model.processing_ns(1, 64, migrated=True, cold_cache=False)
        assert pd == 500 + units.us(0.8)

    def test_cc_penalty_added(self, model):
        pd = model.processing_ns(1, 64, migrated=False, cold_cache=True)
        assert pd == 500 + units.us(10)

    def test_both_penalties(self, model):
        pd = model.processing_ns(1, 64, migrated=True, cold_cache=True)
        assert pd == 500 + units.us(0.8) + units.us(10)

    def test_t_proc_helper(self, model):
        assert model.t_proc_ns(2, 9999) == units.us(3.53)

    def test_size_dependent_service(self, model):
        pd64 = model.t_proc_ns(0, 64)
        pd128 = model.t_proc_ns(0, 128)
        assert pd128 - pd64 == units.us(0.23)


class TestDefaults:
    def test_paper_penalty_constants(self, model):
        assert model.fm_penalty_ns == 800
        assert model.cc_penalty_ns == 10_000

    def test_negative_penalties_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(services=default_services(), fm_penalty_ns=-1)

    def test_table3_config(self):
        assert TABLE_III_CORE.frequency_ghz == 1.0
        assert TABLE_III_CORE.icache_kb == 16
        assert TABLE_III_CORE.dcache_kb == 32
        assert TABLE_III_CORE.pipeline_stages == 7


class TestCapacity:
    def test_capacity_passthrough(self, model):
        cap = model.capacity_pps([0, 1, 0, 0], mean_size_bytes=64)
        assert cap == pytest.approx(2e6)
