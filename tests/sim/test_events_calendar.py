"""Calendar queue vs the heap oracle.

The calendar queue is only correct if it is *indistinguishable* from
``EventQueue`` — same pop order (including insertion-order ties at one
timestamp), same causality errors, same snapshot wire format.  The
hypothesis property drives both through random interleaved programs of
pushes, pops, and mid-stream ``clear()``/re-fill and requires identical
observable behaviour at every step.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.events.base import EventQueue
from repro.sim.events.calendar import CalendarEventQueue


def _drain(q):
    out = []
    while q:
        out.append(q.pop())
    return out


class TestOrdering:
    def test_time_order(self):
        q = CalendarEventQueue()
        q.push(30, "c")
        q.push(10, "a")
        q.push(20, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_pop_in_insertion_order(self):
        q = CalendarEventQueue()
        q.push(5, "first")
        q.push(5, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_spread_far_beyond_one_rotation(self):
        # times spanning many wheel rotations exercise the rescan path
        q = CalendarEventQueue(width_ns=16)
        times = [0, 1, 15, 16, 17, 1000, 5000, 5001, 100_000]
        for i, t in enumerate(reversed(times)):
            q.push(t, i)
        assert [t for t, _ in _drain(q)] == sorted(times)

    def test_doubling_preserves_order(self):
        q = CalendarEventQueue()
        n = 4096  # far past the initial bucket count -> several doublings
        for i in range(n):
            q.push((i * 37) % 1000, i)
        times = [t for t, _ in _drain(q)]
        assert times == sorted(times)


class TestCausality:
    def test_push_into_past_rejected(self):
        q = CalendarEventQueue()
        q.push(10, "a")
        q.pop()
        with pytest.raises(SimulationError):
            q.push(5, "late")

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            CalendarEventQueue().pop()

    def test_clear_resets_causality_and_seq(self):
        q = CalendarEventQueue()
        q.push(10, "x")
        q.pop()
        q.clear()
        q.push(0, "ok")
        fresh = CalendarEventQueue()
        fresh.push(0, "ok")
        assert q.entries() == fresh.entries()  # seq restarted at 0


class TestNextRef:
    def test_next_ref_tracks_minimum(self):
        q = CalendarEventQueue()
        assert q.next_ref[0] > 10**18  # empty -> sentinel "never"
        q.push(50, "a")
        assert q.next_ref[0] == 50
        q.push(20, "b")
        assert q.next_ref[0] == 20
        q.pop()
        assert q.next_ref[0] == 50
        q.pop()
        assert q.next_ref[0] > 10**18

    def test_next_ref_identity_survives_snapshot_restore(self):
        # the kernel binds next_ref once per activation; reset_entries
        # must update the same list object, never swap it out
        q = CalendarEventQueue()
        ref = q.next_ref
        q.push(9, "x")
        q.reset_entries(q.entries(), seq=q.snapshot().seq,
                        last_pop_ns=0, popped_delta=0)
        assert q.next_ref is ref and ref[0] == 9


class TestSnapshot:
    def test_round_trip(self):
        q = CalendarEventQueue()
        for t in (5, 1, 9, 1):
            q.push(t, ("payload", t))
        q.pop()
        snap = q.snapshot()
        back = CalendarEventQueue.from_snapshot(snap)
        assert _drain(back) == _drain(q)

    def test_cross_class_snapshots_interchange(self):
        # snapshots are engine-independent: heap state restores into a
        # calendar queue and vice versa with identical pop streams
        heap = EventQueue()
        cal = CalendarEventQueue()
        for t in (7, 3, 3, 12, 7):
            heap.push(t, t * 10)
            cal.push(t, t * 10)
        heap.pop()
        cal.pop()
        assert _drain(CalendarEventQueue.from_snapshot(heap.snapshot())) \
            == _drain(EventQueue.from_snapshot(cal.snapshot()))


# one program step: (op, time) where op 0=push, 1=pop, 2=clear.  Times
# are small so ties and bucket collisions are common; pops against an
# empty queue are skipped (the error case is tested directly above).
_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=300),
    ),
    max_size=120,
)


class TestOracleProperty:
    @settings(max_examples=200, deadline=None)
    @given(_steps, st.integers(min_value=1, max_value=64))
    def test_matches_heap_oracle(self, steps, width):
        """Any interleaving of push/pop/clear behaves exactly like the
        heap — pop results, lengths, peeks, and counters all agree."""
        oracle = EventQueue()
        cal = CalendarEventQueue(width_ns=width)
        payload = 0
        for op, t in steps:
            if op == 0:
                # respect causality: both queues share the same clock
                t += oracle.now_ns
                oracle.push(t, payload)
                cal.push(t, payload)
                payload += 1
            elif op == 1 and oracle:
                assert cal.pop() == oracle.pop()
            elif op == 2:
                # mid-stream clear: counters and causality must rewind
                oracle.clear()
                cal.clear()
            assert len(cal) == len(oracle)
            assert cal.peek_time() == oracle.peek_time()
            assert cal.popped == oracle.popped
        assert cal.entries() == sorted(oracle.heap)
        assert _drain(cal) == _drain(oracle)

    @settings(max_examples=50, deadline=None)
    @given(_steps)
    def test_snapshot_round_trip_any_state(self, steps):
        """snapshot() -> from_snapshot() is lossless at every program
        point, for both engines, in both directions."""
        q = CalendarEventQueue()
        for op, t in steps:
            if op == 0:
                q.push(t + q.now_ns, t)
            elif op == 1 and q:
                q.pop()
            elif op == 2:
                q.clear()
        snap = q.snapshot()
        as_cal = CalendarEventQueue.from_snapshot(snap)
        as_heap = EventQueue.from_snapshot(snap)
        assert as_cal.popped == as_heap.popped == q.popped
        assert _drain(as_cal) == _drain(as_heap) == _drain(q)
