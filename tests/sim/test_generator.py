"""Tests for the Holt-Winters rate model and arrival generation."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigError
from repro.sim.generator import HoltWinters, HoltWintersParams, arrival_times


class TestParams:
    def test_defaults(self):
        p = HoltWintersParams(a=1e6)
        assert p.b == 0 and p.sigma == 0

    @pytest.mark.parametrize("kw", [{"a": -1}, {"a": 1, "m": 0}, {"a": 1, "sigma": -1}])
    def test_invalid(self, kw):
        with pytest.raises(ConfigError):
            HoltWintersParams(**kw)

    def test_scaled(self):
        p = HoltWintersParams(a=10, b=2, c=3, m=7, sigma=1).scaled(2.0)
        assert (p.a, p.b, p.c, p.m, p.sigma) == (20, 4, 6, 7, 2)

    def test_scaled_invalid(self):
        with pytest.raises(ConfigError):
            HoltWintersParams(a=1).scaled(0)


class TestRateModel:
    def test_constant(self):
        hw = HoltWinters(HoltWintersParams(a=100.0))
        assert hw.mean_rate(0) == 100.0
        assert hw.mean_rate(10) == 100.0

    def test_trend(self):
        hw = HoltWinters(HoltWintersParams(a=100.0, b=10.0))
        assert hw.mean_rate(5) == pytest.approx(150.0)

    def test_seasonality_period(self):
        hw = HoltWinters(HoltWintersParams(a=100.0, c=50.0, m=4.0))
        assert hw.mean_rate(1.0) == pytest.approx(150.0)  # sin peak at m/4
        assert hw.mean_rate(3.0) == pytest.approx(50.0)   # trough
        assert hw.mean_rate(0.0) == pytest.approx(hw.mean_rate(4.0))

    def test_floor_clamps_negative(self):
        hw = HoltWinters(HoltWintersParams(a=100.0, c=1000.0, m=4.0))
        assert hw.mean_rate(3.0) == pytest.approx(100.0 * HoltWinters.FLOOR_FRACTION)

    def test_batch_matches_scalar(self):
        hw = HoltWinters(HoltWintersParams(a=10.0, b=1.0, c=3.0, m=2.0))
        ts = np.linspace(0, 5, 17)
        batch = hw.mean_rate_batch(ts)
        for t, r in zip(ts, batch):
            assert r == pytest.approx(hw.mean_rate(float(t)))

    def test_noise_sampled(self, rng):
        hw = HoltWinters(HoltWintersParams(a=100.0, sigma=10.0))
        rates = hw.sample_rates(np.zeros(1000), rng)
        assert rates.std() == pytest.approx(10.0, rel=0.2)

    def test_average_rate(self):
        hw = HoltWinters(HoltWintersParams(a=100.0, c=50.0, m=1.0))
        # sinusoid integrates to ~0 over whole periods
        assert hw.average_rate(4.0) == pytest.approx(100.0, rel=0.02)

    def test_average_rate_invalid_duration(self):
        with pytest.raises(ConfigError):
            HoltWinters(HoltWintersParams(a=1)).average_rate(0)


class TestArrivalTimes:
    def test_count_matches_rate(self, rng):
        hw = HoltWinters(HoltWintersParams(a=1e6))
        times = arrival_times(hw, units.ms(10), rng)
        assert times.shape[0] == pytest.approx(10_000, rel=0.1)

    def test_sorted_and_bounded(self, rng):
        hw = HoltWinters(HoltWintersParams(a=5e5, c=2e5, m=0.002))
        times = arrival_times(hw, units.ms(5), rng)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0
        assert times.max() < units.ms(5)

    def test_deterministic_with_seed(self):
        hw = HoltWinters(HoltWintersParams(a=1e5))
        a = arrival_times(hw, units.ms(5), 9)
        b = arrival_times(hw, units.ms(5), 9)
        np.testing.assert_array_equal(a, b)

    def test_seasonal_density_varies(self, rng):
        hw = HoltWinters(HoltWintersParams(a=1e6, c=9e5, m=0.01))
        times = arrival_times(hw, units.ms(10), rng)
        # first half-period (peak) busier than second (trough)
        peak = np.sum(times < units.ms(5))
        trough = np.sum(times >= units.ms(5))
        assert peak > trough * 1.5

    def test_invalid_duration(self):
        with pytest.raises(ConfigError):
            arrival_times(HoltWinters(HoltWintersParams(a=1e5)), 0)

    def test_zero_rate_floor_yields_few(self, rng):
        hw = HoltWinters(HoltWintersParams(a=1.0))
        times = arrival_times(hw, units.ms(1), rng)
        assert times.shape[0] <= 2
