"""Tests for the simulation CLI."""

import pytest

from repro.sim.cli import main


class TestCompare:
    def test_single_service_presets(self, capsys):
        rc = main([
            "compare", "--trace", "auck-1", "--packets", "5000",
            "--cores", "4", "--duration-ms", "2",
            "--schedulers", "hash-static", "laps",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scheduler comparison" in out
        assert "laps" in out and "hash-static" in out

    def test_multiservice(self, capsys):
        rc = main([
            "compare", "--trace", "caida-1", "--packets", "5000",
            "--cores", "8", "--duration-ms", "2", "--multiservice",
            "--schedulers", "fcfs", "laps",
        ])
        assert rc == 0
        assert "cold %" in capsys.readouterr().out

    def test_npz_source(self, tmp_path, tiny_trace, capsys):
        path = tmp_path / "t.npz"
        tiny_trace.save_npz(path)
        rc = main([
            "compare", "--trace", str(path), "--cores", "2",
            "--duration-ms", "1", "--utilisation", "0.5",
            "--schedulers", "fcfs",
        ])
        assert rc == 0

    def test_pcap_source(self, tmp_path, capsys):
        from repro.hashing.five_tuple import FiveTuple
        from repro.trace.pcap import write_pcap

        pcap = tmp_path / "c.pcap"
        key = FiveTuple.from_strings("10.0.0.1", "10.0.0.2", 5, 6, 6)
        write_pcap(pcap, [(i * 1000, key, 100) for i in range(20)])
        rc = main([
            "compare", "--pcap", str(pcap), "--cores", "2",
            "--duration-ms", "1", "--schedulers", "fcfs",
        ])
        assert rc == 0
        assert "[pcap]" in capsys.readouterr().out

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--schedulers", "bogus"])


class TestSharded:
    def test_sharded_row_matches_single_process(self, capsys):
        args = [
            "compare", "--trace", "auck-1", "--packets", "5000",
            "--cores", "4", "--duration-ms", "2",
            "--schedulers", "hash-static",
        ]
        assert main(args) == 0
        single = capsys.readouterr().out
        assert main(args + ["--shards", "2", "--shard-workers", "1"]) == 0
        sharded = capsys.readouterr().out
        assert "[shards] 2 shards" in sharded
        row = next(
            line for line in single.splitlines()
            if line.startswith("hash-static")
        )
        assert row in sharded  # the comparison-table row is identical

    def test_generic_services_flag(self, capsys):
        # --services N replicates a generic service N ways; LAPS then
        # shards per service group, hash-static per core group
        rc = main([
            "compare", "--trace", "caida-1", "--packets", "4000",
            "--cores", "8", "--duration-ms", "1", "--services", "2",
            "--schedulers", "hash-static", "laps",
            "--shards", "2", "--shard-workers", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[shards] 2 shards" in out
        assert "laps" in out and "hash-static" in out


class TestTelemetry:
    def test_telemetry_dump_round_trips(self, tmp_path, capsys):
        from repro.obs import load_run

        out_dir = tmp_path / "out"
        rc = main([
            "compare", "--trace", "auck-1", "--packets", "5000",
            "--cores", "4", "--duration-ms", "2",
            "--schedulers", "fcfs", "laps",
            "--telemetry", str(out_dir), "--telemetry-csv",
        ])
        assert rc == 0
        assert "[telemetry]" in capsys.readouterr().out
        for name in ("fcfs", "laps"):
            run_dir = out_dir / name
            assert (run_dir / "manifest.json").exists()
            assert (run_dir / "series.ndjson").exists()
            assert (run_dir / "series.csv").exists()
            rec = load_run(run_dir)
            assert rec.manifest["scheduler"] == name
            assert rec.manifest["config"]["num_cores"] == 4
            assert rec.manifest["extra"]["trace"] == "auck-1"
            assert rec.report["scheduler"] == name
            assert rec.num_samples > 0
            # series covers the drain phase: the last sample accounts
            # for every departure in the frozen report
            assert rec.series("departed")[-1] == rec.report["departed"]
