"""Tests for metrics accumulation and the report object."""

import math

import pytest

from repro.sim.metrics import SimMetrics, SimReport


def finalize(metrics, **kw):
    defaults = dict(
        duration_ns=1_000_000,
        out_of_order=0,
        scheduler_name="test",
        scheduler_stats={},
        migrated_flows=0,
    )
    defaults.update(kw)
    return metrics.finalize(**defaults)


class TestFinalize:
    def test_utilization_from_busy_time(self):
        m = SimMetrics(1, 2)
        m.busy_ns_per_core[0] = 500_000
        m.busy_ns_per_core[1] = 1_000_000
        rep = finalize(m)
        assert rep.core_utilization == (0.5, 1.0)
        assert rep.observed_ns == 1_000_000

    def test_utilization_uses_drain_horizon(self):
        """Busy time accrued while draining after the last arrival must
        not produce utilisation > 1: the denominator is the observed
        horizon (last departure), not the workload duration."""
        m = SimMetrics(1, 1)
        m.busy_ns_per_core[0] = 1_500_000   # kept busy through the drain
        m.last_depart_ns = 1_500_000
        rep = finalize(m)                    # duration_ns=1_000_000
        assert rep.observed_ns == 1_500_000
        assert rep.core_utilization == (1.0,)

    def test_utilization_bounded(self):
        """0 <= util <= 1 whenever busy intervals fit the horizon."""
        m = SimMetrics(1, 4)
        m.busy_ns_per_core[:] = [0, 400_000, 999_999, 1_200_000]
        m.last_depart_ns = 1_200_000
        rep = finalize(m)
        assert all(0.0 <= u <= 1.0 for u in rep.core_utilization)

    def test_underload_keeps_duration_horizon(self):
        """When the run ends before the nominal duration, idle tail
        still counts: horizon stays at duration_ns."""
        m = SimMetrics(1, 1)
        m.busy_ns_per_core[0] = 250_000
        m.last_depart_ns = 500_000
        rep = finalize(m)
        assert rep.observed_ns == 1_000_000
        assert rep.core_utilization == (0.25,)

    def test_latency_summary(self):
        m = SimMetrics(1, 1)
        m.latencies_ns.extend([100, 200, 300])
        rep = finalize(m)
        assert rep.latency_ns["mean"] == pytest.approx(200)

    def test_no_latencies_zeroed(self):
        rep = finalize(SimMetrics(1, 1))
        assert rep.latency_ns["p99"] == 0.0


class TestReportDerived:
    def make(self, **kw):
        defaults = dict(
            scheduler="x", duration_ns=int(1e9), generated=1000, dropped=100,
            departed=900, out_of_order=45, cold_cache_events=90,
            flow_migration_events=9, migrated_flows=3,
            generated_per_service=(1000,), dropped_per_service=(100,),
            core_utilization=(0.5, 0.5),
        )
        defaults.update(kw)
        return SimReport(**defaults)

    def test_fractions(self):
        rep = self.make()
        assert rep.drop_fraction == pytest.approx(0.1)
        assert rep.ooo_fraction == pytest.approx(0.05)
        assert rep.cold_cache_fraction == pytest.approx(0.1)
        assert rep.migration_fraction == pytest.approx(0.01)

    def test_zero_denominators(self):
        rep = self.make(generated=0, departed=0)
        assert rep.drop_fraction == 0.0
        assert rep.ooo_fraction == 0.0

    def test_throughput(self):
        rep = self.make()
        assert rep.throughput_pps == pytest.approx(900.0)

    def test_fairness(self):
        assert self.make().load_fairness == pytest.approx(1.0)

    def test_as_row_keys(self):
        row = self.make().as_row()
        assert row["scheduler"] == "x"
        assert "drop_frac" in row and "ooo_frac" in row

    def test_relative_to(self):
        base = self.make()
        other = self.make(dropped=50, out_of_order=9)
        rel = other.relative_to(base)
        assert rel["dropped"] == pytest.approx(0.5)
        assert rel["out_of_order"] == pytest.approx(0.2)

    def test_relative_to_zero_baseline_nan(self):
        base = self.make(out_of_order=0)
        rel = self.make().relative_to(base)
        assert math.isnan(rel["out_of_order"])
