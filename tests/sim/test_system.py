"""Integration tests for the full simulator."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigError, SimulationError
from repro.net.service import Service, ServiceSet, default_services
from repro.schedulers.base import Scheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.hash_static import StaticHashScheduler
from repro.sim.config import SimConfig
from repro.sim.generator import HoltWintersParams
from repro.sim.system import NetworkProcessorSim, simulate
from repro.sim.workload import Workload, build_workload


def manual_workload(arrivals, flows, services=None, sizes=None, num_services=1):
    n = len(arrivals)
    flows = np.asarray(flows, dtype=np.int64)
    num_flows = int(flows.max()) + 1 if n else 1
    seq = np.zeros(n, dtype=np.int64)
    seen = {}
    for i, f in enumerate(flows):
        seq[i] = seen.get(int(f), 0)
        seen[int(f)] = seq[i] + 1
    return Workload(
        arrival_ns=np.asarray(arrivals, dtype=np.int64),
        service_id=np.asarray(services or [0] * n, dtype=np.int32),
        flow_id=flows,
        size_bytes=np.asarray(sizes or [64] * n, dtype=np.int32),
        flow_hash=flows.copy(),
        seq=seq,
        num_flows=num_flows,
        num_services=num_services,
        duration_ns=int(arrivals[-1]) + 1 if n else 1,
    )


def one_core_config(**kw):
    svc = ServiceSet([Service(0, "s", 1000)])  # 1 us per packet
    kw.setdefault("num_cores", 1)
    kw.setdefault("queue_capacity", 2)
    kw.setdefault("services", svc)
    return SimConfig(**kw)


class TestHandComputedScenarios:
    def test_single_packet(self):
        wl = manual_workload([0], [0])
        rep = simulate(wl, StaticHashScheduler(), one_core_config())
        assert rep.generated == 1 and rep.departed == 1 and rep.dropped == 0
        assert rep.latency_ns["mean"] == pytest.approx(1000)

    def test_queueing_delay(self):
        # two packets arrive together: second waits 1 us
        wl = manual_workload([0, 0], [0, 0])
        rep = simulate(wl, StaticHashScheduler(), one_core_config())
        assert rep.departed == 2
        assert rep.latency_ns["max"] == pytest.approx(2000)

    def test_queue_overflow_drops(self):
        # 1 in service + 2 queued fills the system; the 4th drops
        wl = manual_workload([0, 0, 0, 0], [0, 0, 0, 0])
        rep = simulate(wl, StaticHashScheduler(), one_core_config())
        assert rep.dropped == 1
        assert rep.departed == 3

    def test_flow_migration_penalty_charged(self):
        # flow 0 alternates cores under FCFS-ish steering
        class PingPong(Scheduler):
            name = "pingpong"

            def __init__(self):
                super().__init__()
                self.turn = 0

            def select_core(self, flow_id, service_id, flow_hash, t_ns):
                self.turn ^= 1
                return self.turn

        svc = ServiceSet([Service(0, "s", 1000)])
        cfg = SimConfig(num_cores=2, queue_capacity=4, services=svc)
        wl = manual_workload([0, 5000, 10_000], [0, 0, 0])
        rep = simulate(wl, PingPong(), cfg)
        assert rep.flow_migration_events == 2
        assert rep.migrated_flows == 1

    def test_cold_cache_penalty_on_service_switch(self):
        wl = manual_workload(
            [0, 20_000], [0, 1], services=[0, 1], num_services=2
        )
        svc = ServiceSet([Service(0, "a", 1000), Service(1, "b", 1000)])
        cfg = SimConfig(num_cores=1, queue_capacity=4, services=svc,
                        cc_penalty_ns=10_000)
        rep = simulate(wl, FCFSScheduler(), cfg)
        assert rep.cold_cache_events == 1
        # second packet pays 1 us + 10 us
        assert rep.latency_ns["max"] == pytest.approx(11_000)

    def test_first_packet_never_cold(self):
        wl = manual_workload([0], [0])
        rep = simulate(wl, StaticHashScheduler(), one_core_config())
        assert rep.cold_cache_events == 0

    def test_reorder_via_migration(self):
        # flow packets: 1st to slow core 0 (long queue), 2nd to idle core 1
        class SplitOnce(Scheduler):
            name = "splitonce"

            def __init__(self):
                super().__init__()
                self.sent = 0

            def select_core(self, flow_id, service_id, flow_hash, t_ns):
                if flow_id == 9:
                    self.sent += 1
                    return 0 if self.sent == 1 else 1
                return 0

        svc = ServiceSet([Service(0, "s", 1000)])
        cfg = SimConfig(num_cores=2, queue_capacity=8, services=svc,
                        fm_penalty_ns=0)
        # three fillers on core 0, then flow 9 twice
        wl = manual_workload([0, 0, 0, 0, 100], [1, 2, 3, 9, 9])
        rep = simulate(wl, SplitOnce(), cfg)
        assert rep.out_of_order == 1


class TestConservation:
    def test_packet_conservation(self, small_workload, small_config):
        rep = simulate(small_workload, FCFSScheduler(), small_config)
        assert rep.generated == small_workload.num_packets
        assert rep.departed + rep.dropped <= rep.generated
        # with a generous drain everything is accounted
        assert rep.departed + rep.dropped == rep.generated

    def test_per_service_breakdown_sums(self, small_workload, small_config):
        rep = simulate(small_workload, FCFSScheduler(), small_config)
        assert sum(rep.generated_per_service) == rep.generated
        assert sum(rep.dropped_per_service) == rep.dropped

    def test_utilization_bounded(self, small_workload, small_config):
        """Strict bound: with the observed-horizon denominator, drain
        busy time can no longer push "utilisation" past 1.0."""
        rep = simulate(small_workload, FCFSScheduler(), small_config)
        assert all(0.0 <= u <= 1.0 for u in rep.core_utilization)
        assert rep.observed_ns >= rep.duration_ns

    def test_events_popped_matches_departures(self, small_workload, small_config):
        sim = NetworkProcessorSim(small_config, FCFSScheduler(), small_workload)
        rep = sim.run()
        # one completion event per departure
        assert sim.events_popped == rep.departed


class TestDeterminism:
    def test_same_inputs_same_report(self, small_workload, small_config):
        a = simulate(small_workload, StaticHashScheduler(), small_config)
        b = simulate(small_workload, StaticHashScheduler(), small_config)
        assert a.dropped == b.dropped
        assert a.out_of_order == b.out_of_order
        assert a.core_utilization == b.core_utilization


class TestGuards:
    def test_run_once(self, small_workload, small_config):
        sim = NetworkProcessorSim(small_config, FCFSScheduler(), small_workload)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run()

    def test_bad_core_id_detected(self, small_workload, small_config):
        class Broken(Scheduler):
            name = "broken"

            def select_core(self, *a):
                return 99

        with pytest.raises(SimulationError):
            simulate(small_workload, Broken(), small_config)

    def test_too_many_services_rejected(self, small_config):
        wl = manual_workload([0], [0], services=[3], num_services=4)
        with pytest.raises(ConfigError):
            NetworkProcessorSim(small_config, FCFSScheduler(), wl)

    def test_collect_latencies_toggle(self, small_workload, single_service):
        cfg = SimConfig(num_cores=4, services=single_service,
                        collect_latencies=False)
        rep = simulate(small_workload, FCFSScheduler(), cfg)
        assert rep.latency_ns["mean"] == 0.0


class TestSchedulerNotifications:
    def test_queue_edge_callbacks_fire(self, small_workload, small_config):
        events = []

        class Recording(FCFSScheduler):
            def on_queue_busy(self, core_id, t_ns):
                events.append("busy")

            def on_queue_empty(self, core_id, t_ns):
                events.append("empty")

        simulate(small_workload, Recording(), small_config)
        assert "busy" in events and "empty" in events


class TestEndToEndSchedulers:
    @pytest.mark.parametrize(
        "name", ["fcfs", "hash-static", "afs", "topk", "laps"]
    )
    def test_every_scheduler_runs(self, name, small_workload, single_service):
        from repro.core.laps import LAPSConfig
        from repro.schedulers.base import make_scheduler

        kwargs = {}
        if name == "laps":
            kwargs["config"] = LAPSConfig(num_services=1)
        sched = make_scheduler(name, **kwargs)
        cfg = SimConfig(num_cores=4, services=single_service,
                        collect_latencies=False)
        rep = simulate(small_workload, sched, cfg)
        assert rep.generated == small_workload.num_packets
        assert rep.departed > 0

    def test_multiservice_laps_partitions(self):
        """LAPS keeps services on disjoint cores -> zero cold caches in
        a stable under-loaded run."""
        from repro.core.laps import LAPSConfig, LAPSScheduler
        from repro.trace.synthetic import SyntheticTraceConfig, generate_trace

        traces = [
            generate_trace(
                SyntheticTraceConfig(num_packets=2000, num_flows=100,
                                     num_elephants=4, seed=i)
            )
            for i in range(4)
        ]
        services = default_services()
        caps = [4 * services[i].capacity_pps(348) for i in range(4)]
        params = [HoltWintersParams(a=0.5 * caps[i]) for i in range(4)]
        wl = build_workload(traces, params, units.ms(5), seed=2)
        cfg = SimConfig(num_cores=16, collect_latencies=False)
        rep = simulate(wl, LAPSScheduler(LAPSConfig(num_services=4)), cfg)
        assert rep.cold_cache_fraction < 0.01
        assert rep.drop_fraction < 0.05
