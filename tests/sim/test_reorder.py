"""Tests for the reorder detector, incl. a brute-force property check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.reorder import ReorderDetector


class TestInOrder:
    def test_sequential_departures_in_order(self):
        det = ReorderDetector()
        for seq in range(5):
            assert not det.on_depart(0, seq)
        assert det.out_of_order == 0
        assert det.departed == 5

    def test_flows_independent(self):
        det = ReorderDetector()
        det.on_depart(0, 0)
        det.on_depart(1, 0)
        det.on_depart(0, 1)
        det.on_depart(1, 1)
        assert det.out_of_order == 0


class TestOutOfOrder:
    def test_swap_counts_once(self):
        det = ReorderDetector()
        assert det.on_depart(0, 1)       # early: seq 0 still inside
        assert not det.on_depart(0, 0)   # the late one is not OOO itself
        assert det.out_of_order == 1

    def test_run_of_early_departures(self):
        det = ReorderDetector()
        for seq in (3, 2, 1):
            assert det.on_depart(0, seq)
        assert not det.on_depart(0, 0)
        assert det.out_of_order == 3

    def test_gap_then_catchup(self):
        det = ReorderDetector()
        det.on_depart(0, 0)
        det.on_depart(0, 2)  # ooo
        det.on_depart(0, 1)
        assert not det.on_depart(0, 3)  # sequencing recovered
        assert det.out_of_order == 1


class TestDrops:
    def test_drop_advances_sequence(self):
        det = ReorderDetector()
        det.on_drop(0, 0)
        assert not det.on_depart(0, 1)
        assert det.out_of_order == 0

    def test_drop_never_counts_as_ooo(self):
        det = ReorderDetector()
        det.on_drop(0, 2)  # dropped ahead of 0,1
        det.on_drop(0, 0)
        det.on_drop(0, 1)
        assert det.out_of_order == 0
        assert det.departed == 0

    def test_mixed_drop_and_depart(self):
        det = ReorderDetector()
        det.on_depart(0, 0)
        det.on_drop(0, 1)
        assert not det.on_depart(0, 2)

    def test_drop_advances_expected_without_ooo(self):
        """Drops advance the per-flow expected sequence: a later
        departure over a dropped gap is in order, and the drop itself
        never increments the OOO counter."""
        det = ReorderDetector()
        det.on_drop(0, 0)
        det.on_drop(0, 1)
        assert not det.on_depart(0, 2)
        assert det.out_of_order == 0
        assert det.departed == 1
        assert det.accounted == 3

    def test_early_drop_fills_gap_for_late_departure(self):
        det = ReorderDetector()
        assert not det.on_depart(0, 0)
        det.on_drop(0, 2)            # leaves seq 1 in flight
        assert det.in_flight_gaps == 1
        assert not det.on_depart(0, 1)  # late packet: not OOO itself
        assert det.in_flight_gaps == 0
        assert det.out_of_order == 0


class TestValidation:
    def test_double_account_rejected(self):
        det = ReorderDetector()
        det.on_depart(0, 0)
        with pytest.raises(ValueError):
            det.on_depart(0, 0)

    def test_double_account_pending_rejected(self):
        det = ReorderDetector()
        det.on_depart(0, 5)
        with pytest.raises(ValueError):
            det.on_depart(0, 5)

    def test_duplicate_drop_rejected(self):
        det = ReorderDetector()
        det.on_drop(0, 0)
        with pytest.raises(ValueError):
            det.on_drop(0, 0)

    def test_drop_after_depart_rejected(self):
        det = ReorderDetector()
        det.on_depart(0, 3)
        with pytest.raises(ValueError):
            det.on_drop(0, 3)

    def test_ooo_fraction(self):
        det = ReorderDetector()
        det.on_depart(0, 1)
        det.on_depart(0, 0)
        assert det.ooo_fraction() == pytest.approx(0.5)

    def test_ooo_fraction_empty(self):
        assert ReorderDetector().ooo_fraction() == 0.0

    def test_in_flight_gaps(self):
        det = ReorderDetector()
        det.on_depart(0, 2)
        det.on_depart(0, 4)
        assert det.in_flight_gaps == 2


def brute_force_ooo(events):
    """Reference: a departure of (flow, seq) is OOO iff some smaller seq
    of the same flow has not yet departed or dropped."""
    accounted = set()
    max_seq = {}
    ooo = 0
    for kind, flow, seq in events:
        earlier_missing = any(
            (flow, s) not in accounted for s in range(seq)
        )
        accounted.add((flow, seq))
        if kind == "depart" and earlier_missing:
            ooo += 1
        max_seq[flow] = max(max_seq.get(flow, -1), seq)
    return ooo


@st.composite
def event_streams(draw):
    """Per-flow permutations of 0..n-1 interleaved across flows."""
    flows = draw(st.integers(1, 3))
    events = []
    for flow in range(flows):
        n = draw(st.integers(0, 8))
        order = draw(st.permutations(list(range(n))))
        kinds = draw(
            st.lists(st.sampled_from(["depart", "drop"]), min_size=n, max_size=n)
        )
        events.extend((k, flow, s) for k, s in zip(kinds, order))
    return draw(st.permutations(events))


class TestBruteForceEquivalence:
    @given(event_streams())
    @settings(max_examples=300, deadline=None)
    def test_matches_reference(self, events):
        det = ReorderDetector()
        for kind, flow, seq in events:
            if kind == "depart":
                det.on_depart(flow, seq)
            else:
                det.on_drop(flow, seq)
        assert det.out_of_order == brute_force_ooo(events)

    @given(event_streams())
    @settings(max_examples=100, deadline=None)
    def test_gaps_drain_to_zero(self, events):
        """After every packet of every flow is accounted (each stream is
        a full permutation of 0..n-1 per flow), no sequence gap can
        remain in flight."""
        det = ReorderDetector()
        for kind, flow, seq in events:
            if kind == "depart":
                det.on_depart(flow, seq)
            else:
                det.on_drop(flow, seq)
        assert det.in_flight_gaps == 0


class TestFullRunDrains:
    def test_in_flight_gaps_zero_after_simulation(self, small_workload, small_config):
        """End-to-end: a generously drained run accounts every packet,
        so the detector's in-flight gap set is empty afterwards."""
        from repro.schedulers.fcfs import FCFSScheduler
        from repro.sim.system import NetworkProcessorSim

        sim = NetworkProcessorSim(small_config, FCFSScheduler(), small_workload)
        rep = sim.run()
        assert rep.departed + rep.dropped == rep.generated
        assert sim.reorder.in_flight_gaps == 0
