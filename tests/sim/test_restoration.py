"""Tests for the order-restoration egress buffer."""

import pytest

from repro.sim.restoration import RestorationBuffer, restoration_cost


def seqs(pairs):
    """(flow, seq) pairs -> departure tuples with dummy times."""
    return [(f, s, i) for i, (f, s) in enumerate(pairs)]


class TestUnbounded:
    def test_in_order_stream_costs_nothing(self):
        res = restoration_cost(seqs([(0, 0), (0, 1), (0, 2)]))
        assert res.max_occupancy == 0
        assert res.residual_out_of_order == 0
        assert res.released == 3

    def test_single_swap_buffers_one(self):
        res = restoration_cost(seqs([(0, 1), (0, 0)]))
        assert res.max_occupancy == 1
        assert res.residual_out_of_order == 0

    def test_deep_inversion_costs_linear_storage(self):
        n = 50
        stream = seqs([(0, s) for s in reversed(range(n))])
        res = restoration_cost(stream)
        assert res.max_occupancy == n - 1
        assert res.residual_out_of_order == 0

    def test_flows_independent(self):
        res = restoration_cost(seqs([(0, 1), (1, 0), (1, 1), (0, 0)]))
        assert res.residual_out_of_order == 0
        assert res.max_occupancy == 1

    def test_missing_predecessor_flushed_unordered(self):
        # seq 0 never departs (dropped); flush releases seq 1 without
        # counting it as reordered
        res = restoration_cost(seqs([(0, 1)]))
        assert res.released == 1
        assert res.residual_out_of_order == 0


class TestBounded:
    def test_overflow_releases_out_of_order(self):
        stream = seqs([(0, s) for s in reversed(range(10))])
        res = restoration_cost(stream, capacity=4)
        assert res.overflow_releases > 0
        assert res.residual_out_of_order > 0

    def test_larger_buffer_less_residual(self):
        stream = seqs([(0, s) for s in reversed(range(30))])
        small = restoration_cost(stream, capacity=2)
        big = restoration_cost(stream, capacity=16)
        assert big.residual_out_of_order <= small.residual_out_of_order

    def test_capacity_one_still_works(self):
        stream = seqs([(0, 2), (0, 1), (0, 0)])
        res = restoration_cost(stream, capacity=1)
        assert res.released == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RestorationBuffer(0)

    def test_late_packet_after_skip_is_residual(self):
        buf = RestorationBuffer(1)
        buf.push(0, 3)   # held
        buf.push(0, 2)   # held -> overflow forces 3 out (skips to 4)
        buf.push(0, 0)   # 0 < next(4): released, out of order
        buf.flush()
        res = buf.result()
        assert res.residual_out_of_order >= 2


class TestAccounting:
    def test_everything_released(self):
        import random

        r = random.Random(0)
        stream = []
        for flow in range(3):
            order = list(range(20))
            r.shuffle(order)
            stream.extend((flow, s) for s in order)
        r.shuffle(stream)
        res = restoration_cost(seqs(stream), capacity=8)
        assert res.released == 60

    def test_mean_occupancy_bounded_by_max(self):
        stream = seqs([(0, s) for s in reversed(range(20))])
        res = restoration_cost(stream)
        assert res.mean_occupancy <= res.max_occupancy

    def test_residual_fraction(self):
        res = restoration_cost(seqs([(0, 0), (0, 1)]))
        assert res.residual_fraction == 0.0


class TestEndToEnd:
    def test_with_simulator_departures(self, small_workload, single_service):
        """Record a reordering run and measure the restoration cost."""
        from repro.schedulers.fcfs import FCFSScheduler
        from repro.sim.config import SimConfig
        from repro.sim.system import simulate

        cfg = SimConfig(num_cores=4, services=single_service,
                        collect_latencies=False, record_departures=True)
        rep = simulate(small_workload, FCFSScheduler(), cfg)
        assert len(rep.departures) == rep.departed
        res = restoration_cost(rep.departures)
        # FCFS reorders heavily; full restoration needs real storage
        if rep.out_of_order > 0:
            assert res.max_occupancy > 0
        assert res.released == rep.departed
