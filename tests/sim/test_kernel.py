"""Tests for the steppable kernel: hook bus, stepping, checkpoint/resume,
drain-phase edge cases and run-to-run determinism."""

import numpy as np
import pytest

from repro import units
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.errors import ConfigError, SimulationError
from repro.faults.events import CoreFail, CoreRecover, CoreSlowdown, FaultSchedule
from repro.faults.injector import FaultInjector
from repro.net.service import Service, ServiceSet
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.hash_static import StaticHashScheduler
from repro.sim.config import SimConfig
from repro.sim.generator import HoltWintersParams
from repro.sim.hooks import HOOK_EVENTS, HookBus
from repro.sim.kernel import CHECKPOINT_VERSION, Checkpoint, SimKernel
from repro.sim.probes import QueueProbe
from repro.sim.system import simulate
from repro.sim.workload import Workload, build_workload
from repro.trace.synthetic import preset_trace


# ----------------------------------------------------------------------
# fixtures / builders
# ----------------------------------------------------------------------
def manual_workload(arrivals, flows, services=None, num_services=1):
    n = len(arrivals)
    flows = np.asarray(flows, dtype=np.int64)
    num_flows = int(flows.max()) + 1 if n else 1
    seq = np.zeros(n, dtype=np.int64)
    seen = {}
    for i, f in enumerate(flows):
        seq[i] = seen.get(int(f), 0)
        seen[int(f)] = seq[i] + 1
    return Workload(
        arrival_ns=np.asarray(arrivals, dtype=np.int64),
        service_id=np.asarray(services or [0] * n, dtype=np.int32),
        flow_id=flows,
        size_bytes=np.asarray([64] * n, dtype=np.int32),
        flow_hash=flows.copy(),
        seq=seq,
        num_flows=num_flows,
        num_services=num_services,
        duration_ns=int(arrivals[-1]) + 1 if n else 1,
    )


def small_config(**kw):
    svc = ServiceSet([Service(0, "s", 1000)])  # 1 us per packet
    kw.setdefault("num_cores", 4)
    kw.setdefault("services", svc)
    return SimConfig(**kw)


def trace_workload(num_packets=4_000, duration_ns=units.ms(1), seed=0):
    """A realistic overloaded workload (drops + migrations happen)."""
    trace = preset_trace("caida-1", num_packets=num_packets)
    return build_workload(
        [trace], [HoltWintersParams(a=8e6)], duration_ns=duration_ns, seed=seed
    )


def laps(seed=3):
    return LAPSScheduler(LAPSConfig(num_services=1), rng=seed)


# ----------------------------------------------------------------------
class TestHookBus:
    def test_unknown_event_rejected(self):
        bus = HookBus()
        with pytest.raises(ConfigError, match="unknown hook event"):
            bus.subscribe("nope", lambda: None)

    def test_frozen_bus_rejects_subscription(self):
        bus = HookBus()
        bus.freeze()
        with pytest.raises(SimulationError, match="frozen"):
            bus.subscribe("sample", lambda t: None)

    def test_dispatcher_zero_one_many(self):
        bus = HookBus()
        assert bus.dispatcher("queue_empty") is None
        seen = []
        one = seen.append
        bus.subscribe("queue_empty", one)
        # single subscriber: the callback itself, no wrapper
        assert bus.dispatcher("queue_empty") is one
        bus.subscribe("queue_empty", lambda x: seen.append(-x))
        fan = bus.dispatcher("queue_empty")
        fan(5)
        assert seen == [5, -5]

    def test_sample_period_tracks_minimum(self):
        bus = HookBus()
        bus.subscribe("sample", lambda t: None, period_ns=500)
        bus.subscribe("sample", lambda t: None, period_ns=200)
        bus.subscribe("sample", lambda t: None, period_ns=900)
        assert bus.sample_period_ns == 200

    def test_period_only_for_sample(self):
        bus = HookBus()
        with pytest.raises(ConfigError):
            bus.subscribe("queue_empty", lambda c, t: None, period_ns=10)
        with pytest.raises(ConfigError):
            bus.subscribe("sample", lambda t: None, period_ns=0)

    def test_all_declared_events_subscribable(self):
        bus = HookBus()
        for event in HOOK_EVENTS:
            bus.subscribe(event, lambda *a: None)
            assert bus.has(event)


# ----------------------------------------------------------------------
class TestKernelEquivalence:
    """The kernel in any drive mode == the one-shot simulate()."""

    def test_run_matches_simulate(self):
        wl = trace_workload()
        cfg = small_config(num_cores=8)
        via_simulate = simulate(wl, StaticHashScheduler(), cfg)
        kernel = SimKernel(cfg, StaticHashScheduler(), wl)
        assert kernel.run() == via_simulate
        assert kernel.finished

    def test_run_until_then_run(self):
        wl = trace_workload()
        cfg = small_config(num_cores=8)
        expected = simulate(wl, laps(), cfg)
        kernel = SimKernel(cfg, laps(), wl)
        mid = int(wl.arrival_ns[wl.num_packets // 2])
        kernel.run_until(mid)
        assert kernel.now_ns == mid
        assert not kernel.finished
        assert kernel.run() == expected

    def test_many_arbitrary_horizons(self):
        wl = trace_workload(num_packets=2_000)
        cfg = small_config(num_cores=8)
        expected = simulate(wl, laps(), cfg)
        kernel = SimKernel(cfg, laps(), wl)
        last = int(wl.arrival_ns[-1])
        rng = np.random.default_rng(11)
        for t in sorted(rng.integers(0, last, size=17).tolist()):
            kernel.run_until(t)
        assert kernel.run() == expected

    def test_step_is_monotone_and_completes(self):
        wl = manual_workload([0, 100, 2500, 2500], [0, 1, 0, 1])
        cfg = small_config(num_cores=2)
        expected = simulate(wl, StaticHashScheduler(), cfg)
        kernel = SimKernel(cfg, StaticHashScheduler(), wl)
        times = []
        while (t := kernel.step()) is not None:
            times.append(t)
        assert times == sorted(times)
        assert kernel.finalize() == expected

    def test_run_until_rejects_past_horizon(self):
        wl = manual_workload([0, 100], [0, 1])
        kernel = SimKernel(small_config(), StaticHashScheduler(), wl)
        kernel.run_until(500)
        with pytest.raises(SimulationError, match="behind current time"):
            kernel.run_until(100)

    def test_finished_kernel_refuses_further_work(self):
        wl = manual_workload([0], [0])
        kernel = SimKernel(small_config(), StaticHashScheduler(), wl)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.run()
        with pytest.raises(SimulationError):
            kernel.run_until(units.ms(1))
        with pytest.raises(SimulationError):
            kernel.checkpoint()


# ----------------------------------------------------------------------
class TestCheckpointResume:
    def _roundtrip(self, wl, cfg, make_sched, make_injector=None):
        """Pause mid-trace, serialize, resume; report must equal the
        uninterrupted run's bit for bit."""
        uninterrupted = simulate(
            wl, make_sched(), cfg,
            injector=make_injector() if make_injector else None,
        )
        kernel = SimKernel(cfg, make_sched(), wl)
        if make_injector:
            kernel.attach_injector(make_injector())
        mid = int(wl.arrival_ns[wl.num_packets // 2])
        kernel.run_until(mid)
        raw = kernel.checkpoint().to_bytes()
        ckpt = Checkpoint.from_bytes(raw)
        assert ckpt.time_ns == mid
        resumed = SimKernel.resume(ckpt, cfg, wl)
        assert resumed.now_ns == mid
        assert resumed.run() == uninterrupted

    def test_roundtrip_stateless_scheduler(self):
        self._roundtrip(
            trace_workload(), small_config(num_cores=8), StaticHashScheduler
        )

    def test_roundtrip_laps(self):
        # LAPS carries placement state (AFD caches, pin table, core
        # sets); the single-blob pickle must preserve it exactly
        self._roundtrip(trace_workload(), small_config(num_cores=8), laps)

    def test_roundtrip_with_faults(self):
        wl = trace_workload()
        last = int(wl.arrival_ns[-1])
        schedule = FaultSchedule([
            CoreFail(last // 4, core_id=2),
            CoreSlowdown(last // 3, core_id=1, factor=2.0),
            CoreRecover(3 * last // 4, core_id=2),
        ])
        self._roundtrip(
            wl,
            small_config(num_cores=8),
            FCFSScheduler,
            make_injector=lambda: FaultInjector(schedule, drain_policy="reassign"),
        )

    def test_checkpoint_before_any_advance(self):
        wl = trace_workload(num_packets=1_000)
        cfg = small_config(num_cores=8)
        expected = simulate(wl, laps(), cfg)
        kernel = SimKernel(cfg, laps(), wl)
        resumed = SimKernel.resume(kernel.checkpoint(), cfg, wl)
        assert resumed.run() == expected

    def test_config_fingerprint_mismatch(self):
        wl = manual_workload([0, 100], [0, 1])
        kernel = SimKernel(small_config(), StaticHashScheduler(), wl)
        ckpt = kernel.checkpoint()
        with pytest.raises(SimulationError, match="different SimConfig"):
            SimKernel.resume(ckpt, small_config(num_cores=2), wl)

    def test_workload_fingerprint_mismatch(self):
        wl = manual_workload([0, 100], [0, 1])
        cfg = small_config()
        ckpt = SimKernel(cfg, StaticHashScheduler(), wl).checkpoint()
        other = manual_workload([0, 100, 200], [0, 1, 0])
        with pytest.raises(SimulationError, match="different workload"):
            SimKernel.resume(ckpt, cfg, other)

    def test_version_mismatch(self):
        wl = manual_workload([0], [0])
        ckpt = SimKernel(small_config(), StaticHashScheduler(), wl).checkpoint()
        stale = Checkpoint(
            version=CHECKPOINT_VERSION + 1,
            time_ns=ckpt.time_ns,
            blob=ckpt.blob,
            config_fingerprint=ckpt.config_fingerprint,
            workload_fingerprint=ckpt.workload_fingerprint,
        )
        with pytest.raises(SimulationError, match="version"):
            Checkpoint.from_bytes(stale.to_bytes())
        with pytest.raises(SimulationError, match="version"):
            SimKernel.resume(stale, small_config(), wl)

    def test_from_bytes_rejects_foreign_pickle(self):
        import pickle

        with pytest.raises(SimulationError, match="not a simulation checkpoint"):
            Checkpoint.from_bytes(pickle.dumps({"hello": 1}))

    def test_resumed_probe_restarts_sampling(self):
        # probes are not checkpointed; a fresh one attached at resume
        # samples the remainder without disturbing the outcome
        wl = trace_workload()
        cfg = small_config(num_cores=8)
        expected = simulate(wl, StaticHashScheduler(), cfg)
        kernel = SimKernel(cfg, StaticHashScheduler(), wl)
        kernel.attach_probe(QueueProbe(units.us(50)))
        mid = int(wl.arrival_ns[wl.num_packets // 2])
        kernel.run_until(mid)
        probe2 = QueueProbe(units.us(50))
        resumed = SimKernel.resume(kernel.checkpoint(), cfg, wl, probe=probe2)
        assert resumed.run() == expected
        assert probe2.num_samples > 0


# ----------------------------------------------------------------------
class TestDrainEdgeCases:
    def test_probe_period_longer_than_drain(self):
        # the drain stepper must not spin or skip the final sample when
        # the sampling period exceeds the whole drain window
        wl = manual_workload([0, 0, 0], [0, 1, 2])
        cfg = small_config(num_cores=1, queue_capacity=8, drain_ns=3000)
        probe = QueueProbe(units.ms(10))  # period >> drain_ns
        rep = simulate(wl, StaticHashScheduler(), cfg, probe=probe)
        assert rep.departed == 3  # back-to-back service ends at 3000
        # one sample: the t=0 arrival; the drain-end call lands in the
        # same (huge) period, so the probe correctly dedupes it
        assert probe.times_ns == [0]

    def test_empty_workload(self):
        wl = manual_workload([], [])
        rep = simulate(wl, StaticHashScheduler(), small_config())
        assert rep.generated == 0 and rep.departed == 0 and rep.dropped == 0
        assert rep.out_of_order == 0

    def test_empty_workload_with_probe(self):
        wl = manual_workload([], [])
        probe = QueueProbe(units.us(1))
        rep = simulate(wl, StaticHashScheduler(), small_config(), probe=probe)
        assert rep.departed == 0
        assert probe.num_samples >= 1  # the final drain-end sample

    def test_completion_exactly_at_drain_end_departs(self):
        # service takes 1000 ns; arrival at 0 completes at exactly
        # last_arrival + drain_ns == 1000: inclusive bound, departs
        wl = manual_workload([0], [0])
        cfg = small_config(num_cores=1, drain_ns=1000)
        rep = simulate(wl, StaticHashScheduler(), cfg)
        assert rep.departed == 1

    def test_completion_past_drain_end_abandoned(self):
        wl = manual_workload([0], [0])
        cfg = small_config(num_cores=1, drain_ns=999)
        rep = simulate(wl, StaticHashScheduler(), cfg)
        # in flight past the bound: neither departed nor dropped
        assert rep.departed == 0 and rep.dropped == 0
        assert rep.generated == 1


# ----------------------------------------------------------------------
class TestDeterminism:
    def test_back_to_back_runs_identical(self):
        wl = trace_workload()
        cfg = small_config(num_cores=8)
        first = simulate(wl, laps(), cfg)
        second = simulate(wl, laps(), cfg)
        assert first == second  # dataclass: field-for-field

    def test_back_to_back_fault_runs_identical(self):
        wl = trace_workload()
        last = int(wl.arrival_ns[-1])
        cfg = small_config(num_cores=8)
        schedule = FaultSchedule([
            CoreFail(last // 3, core_id=0),
            CoreRecover(2 * last // 3, core_id=0),
        ])

        def once():
            return simulate(
                wl, FCFSScheduler(), cfg,
                injector=FaultInjector(schedule, drain_policy="reassign"),
            )

        assert once() == once()
