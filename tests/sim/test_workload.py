"""Tests for workload assembly."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigError
from repro.hashing.five_tuple import flow_hash
from repro.sim.generator import HoltWintersParams
from repro.sim.workload import Workload, _per_flow_sequences, build_workload


class TestPerFlowSequences:
    def test_simple(self):
        flow = np.array([0, 1, 0, 0, 1])
        seq = _per_flow_sequences(flow, 2)
        np.testing.assert_array_equal(seq, [0, 0, 1, 2, 1])

    def test_empty(self):
        assert _per_flow_sequences(np.empty(0, dtype=np.int64), 5).shape == (0,)

    def test_matches_reference(self, rng):
        flow = rng.integers(0, 20, size=500)
        seq = _per_flow_sequences(flow, 20)
        seen = {}
        for i, f in enumerate(flow):
            assert seq[i] == seen.get(int(f), 0)
            seen[int(f)] = seen.get(int(f), 0) + 1


class TestBuildWorkload:
    def test_basic_structure(self, small_synthetic):
        wl = build_workload(
            [small_synthetic], [HoltWintersParams(a=1e6)], units.ms(2), seed=0
        )
        assert wl.num_services == 1
        assert wl.num_flows == small_synthetic.num_flows
        assert np.all(np.diff(wl.arrival_ns) >= 0)
        assert wl.num_packets == len(wl)

    def test_multi_service_flow_rebasing(self, small_synthetic, tiny_trace):
        wl = build_workload(
            [tiny_trace, small_synthetic],
            [HoltWintersParams(a=1e6), HoltWintersParams(a=1e6)],
            units.ms(1),
            seed=0,
        )
        assert wl.num_flows == tiny_trace.num_flows + small_synthetic.num_flows
        flows_s1 = wl.flow_id[wl.service_id == 1]
        assert flows_s1.min() >= tiny_trace.num_flows

    def test_headers_follow_trace_order(self, tiny_trace):
        wl = build_workload(
            [tiny_trace], [HoltWintersParams(a=5e6)], units.ms(1), seed=1
        )
        n = tiny_trace.num_packets
        np.testing.assert_array_equal(
            wl.flow_id[:n], tiny_trace.flow_id
        )  # wraps around cyclically
        np.testing.assert_array_equal(
            wl.flow_id[n : 2 * n], tiny_trace.flow_id
        )

    def test_hashes_match_scalar(self, tiny_trace):
        wl = build_workload(
            [tiny_trace], [HoltWintersParams(a=5e6)], units.ms(1), seed=1
        )
        for i in range(min(20, wl.num_packets)):
            expected = flow_hash(tiny_trace.five_tuple(int(wl.flow_id[i])))
            assert int(wl.flow_hash[i]) == expected

    def test_sequences_valid(self, small_synthetic):
        wl = build_workload(
            [small_synthetic], [HoltWintersParams(a=2e6)], units.ms(2), seed=0
        )
        counts = np.bincount(wl.flow_id, minlength=wl.num_flows)
        for fid in np.nonzero(counts)[0][:50]:
            seqs = wl.seq[wl.flow_id == fid]
            np.testing.assert_array_equal(seqs, np.arange(counts[fid]))

    def test_deterministic(self, small_synthetic):
        a = build_workload([small_synthetic], [HoltWintersParams(a=1e6)], units.ms(1), seed=5)
        b = build_workload([small_synthetic], [HoltWintersParams(a=1e6)], units.ms(1), seed=5)
        np.testing.assert_array_equal(a.arrival_ns, b.arrival_ns)
        np.testing.assert_array_equal(a.flow_id, b.flow_id)

    def test_offered_rate(self, small_synthetic):
        wl = build_workload(
            [small_synthetic], [HoltWintersParams(a=1e6)], units.ms(10), seed=0
        )
        assert wl.offered_rate_pps() == pytest.approx(1e6, rel=0.1)

    def test_validation_errors(self, tiny_trace):
        with pytest.raises(ConfigError):
            build_workload([], [], units.ms(1))
        with pytest.raises(ConfigError):
            build_workload([tiny_trace], [], units.ms(1))
        with pytest.raises(ConfigError):
            build_workload([tiny_trace], [HoltWintersParams(a=1e6)], 0)

    def test_empty_trace_rejected(self, tiny_trace):
        with pytest.raises(ConfigError):
            build_workload(
                [tiny_trace.head(0)], [HoltWintersParams(a=1e6)], units.ms(1)
            )


class TestWorkloadValidation:
    def test_unsorted_rejected(self, small_workload):
        with pytest.raises(ConfigError):
            Workload(
                arrival_ns=small_workload.arrival_ns[::-1].copy(),
                service_id=small_workload.service_id,
                flow_id=small_workload.flow_id,
                size_bytes=small_workload.size_bytes,
                flow_hash=small_workload.flow_hash,
                seq=small_workload.seq,
                num_flows=small_workload.num_flows,
                num_services=1,
                duration_ns=small_workload.duration_ns,
            )

    def test_flow_out_of_range_rejected(self, small_workload):
        bad = small_workload.flow_id.copy()
        bad[0] = small_workload.num_flows + 10
        with pytest.raises(ConfigError):
            Workload(
                arrival_ns=small_workload.arrival_ns,
                service_id=small_workload.service_id,
                flow_id=bad,
                size_bytes=small_workload.size_bytes,
                flow_hash=small_workload.flow_hash,
                seq=small_workload.seq,
                num_flows=small_workload.num_flows,
                num_services=1,
                duration_ns=small_workload.duration_ns,
            )
