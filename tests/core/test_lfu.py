"""Tests for the O(1) LFU cache, including a model-based property test
against a naive reference implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lfu import LFUCache


class NaiveLFU:
    """Reference model: dict + linear scans, same tie-break (FIFO among
    the minimum-count bucket by move-time)."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.counts = {}
        self.moved = {}  # key -> tick it last changed count
        self.tick = 0

    def _touch(self, key):
        self.tick += 1
        self.moved[key] = self.tick

    def hit(self, key):
        if key in self.counts:
            self.counts[key] += 1
            self._touch(key)
            return True
        return False

    def lfu_key(self):
        return min(self.counts, key=lambda k: (self.counts[k], self.moved[k]))

    def insert(self, key, count=1):
        if key in self.counts:
            if self.counts[key] != count:
                self.counts[key] = count
                self._touch(key)
            return None
        victim = None
        if len(self.counts) >= self.capacity:
            victim = self.lfu_key()
            del self.counts[victim]
            del self.moved[victim]
        self.counts[key] = count
        self._touch(key)
        return victim

    def evict(self, key):
        self.moved.pop(key)
        return self.counts.pop(key)


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LFUCache(0)

    def test_hit_miss(self):
        c = LFUCache(2)
        assert not c.hit("a")
        c.insert("a")
        assert c.hit("a")
        assert c.count("a") == 2
        assert c.hits == 1 and c.misses == 1

    def test_access_miss_inserts(self):
        c = LFUCache(2)
        hit, victim = c.access("a")
        assert not hit and victim is None
        assert "a" in c

    def test_access_hit(self):
        c = LFUCache(2)
        c.insert("a")
        hit, victim = c.access("a")
        assert hit and victim is None

    def test_eviction_of_lfu(self):
        c = LFUCache(2)
        c.insert("a")
        c.insert("b")
        c.hit("a")
        victim = c.insert("c")
        assert victim == "b"
        assert "b" not in c

    def test_tie_break_fifo(self):
        c = LFUCache(2)
        c.insert("a")
        c.insert("b")
        assert c.insert("c") == "a"  # both count 1; a is older

    def test_hit_refreshes_tie_position(self):
        c = LFUCache(3)
        for k in "abc":
            c.insert(k)
        c.hit("a")  # a now count 2
        assert c.insert("d") == "b"

    def test_insert_with_count(self):
        c = LFUCache(2)
        c.insert("a", 100)
        c.insert("b", 1)
        assert c.insert("c", 5) == "b"

    def test_reinsert_overwrites_count(self):
        c = LFUCache(2)
        c.insert("a", 5)
        assert c.insert("a", 1) is None
        assert c.count("a") == 1

    def test_invalidate(self):
        c = LFUCache(2)
        c.insert("a")
        assert c.invalidate("a")
        assert not c.invalidate("a")
        assert len(c) == 0

    def test_evict_returns_count(self):
        c = LFUCache(2)
        c.insert("a", 7)
        assert c.evict("a") == 7

    def test_evict_missing_raises(self):
        with pytest.raises(KeyError):
            LFUCache(2).evict("x")

    def test_lfu_key_empty_raises(self):
        with pytest.raises(KeyError):
            LFUCache(2).lfu_key()

    def test_clear(self):
        c = LFUCache(2)
        c.insert("a")
        c.clear()
        assert len(c) == 0 and not c.is_full

    def test_keys_and_iter(self):
        c = LFUCache(3)
        for k in "abc":
            c.insert(k)
        assert set(c.keys()) == set("abc")
        assert set(iter(c)) == set("abc")

    def test_is_full(self):
        c = LFUCache(1)
        assert not c.is_full
        c.insert("a")
        assert c.is_full

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            LFUCache(2).insert("a", -1)


class TestMinTracking:
    def test_min_recomputed_after_hit_empties_bucket(self):
        """Regression: hitting the only min-count key must not leave a
        stale minimum pointing at a higher bucket."""
        c = LFUCache(3)
        c.insert("a")          # count 1
        c.insert("b", 5)
        c.hit("a")             # a -> 2, bucket 1 empties
        assert c.lfu_key() == "a"

    def test_min_after_invalidating_min(self):
        c = LFUCache(3)
        c.insert("a", 1)
        c.insert("b", 5)
        c.invalidate("a")
        assert c.lfu_key() == "b"

    def test_min_after_reinsert_lower(self):
        c = LFUCache(3)
        c.insert("a", 5)
        c.insert("b", 7)
        c.insert("a", 2)
        assert c.lfu_key() == "a"


class TestDecay:
    def test_decay_halves(self):
        c = LFUCache(4)
        c.insert("a", 8)
        c.insert("b", 3)
        c.decay()
        assert c.count("a") == 4 and c.count("b") == 1

    def test_decay_preserves_order(self):
        c = LFUCache(2)
        c.insert("a", 8)
        c.insert("b", 2)
        c.decay()
        assert c.lfu_key() == "b"

    def test_decay_zero_noop(self):
        c = LFUCache(2)
        c.insert("a", 8)
        c.decay(0)
        assert c.count("a") == 8

    def test_decay_negative_rejected(self):
        with pytest.raises(ValueError):
            LFUCache(2).decay(-1)

    def test_decay_empty(self):
        LFUCache(2).decay()  # must not raise


ops = st.lists(
    st.tuples(
        st.sampled_from(["hit", "insert", "access", "invalidate"]),
        st.integers(0, 12),
    ),
    max_size=200,
)


class TestModelEquivalence:
    @given(st.integers(1, 8), ops)
    @settings(max_examples=200, deadline=None)
    def test_matches_naive_reference(self, capacity, operations):
        fast = LFUCache(capacity)
        ref = NaiveLFU(capacity)
        for op, key in operations:
            if op == "hit":
                assert fast.hit(key) == ref.hit(key)
            elif op == "insert":
                v_fast = fast.insert(key)
                v_ref = ref.insert(key)
                assert v_fast == v_ref
            elif op == "access":
                hit_fast, v_fast = fast.access(key)
                hit_ref = ref.hit(key)
                v_ref = None if hit_ref else ref.insert(key)
                assert hit_fast == hit_ref and v_fast == v_ref
            else:
                present_ref = key in ref.counts
                if present_ref:
                    ref.evict(key)
                assert fast.invalidate(key) == present_ref
            assert set(fast.keys()) == set(ref.counts)
            for k in ref.counts:
                assert fast.count(k) == ref.counts[k]
