"""Tests for the migration table."""

import pytest

from repro.core.migration import MigrationTable


class TestBasics:
    def test_lookup_missing(self):
        assert MigrationTable().lookup(5) is None

    def test_add_and_lookup(self):
        t = MigrationTable()
        t.add(5, 2)
        assert t.lookup(5) == 2
        assert 5 in t and len(t) == 1

    def test_retarget_in_place(self):
        t = MigrationTable()
        t.add(5, 2)
        assert t.add(5, 3) is None
        assert t.lookup(5) == 3
        assert len(t) == 1

    def test_remove(self):
        t = MigrationTable()
        t.add(5, 2)
        assert t.remove(5)
        assert not t.remove(5)
        assert t.lookup(5) is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MigrationTable(0)


class TestEviction:
    def test_fifo_eviction(self):
        t = MigrationTable(capacity=2)
        t.add(1, 0)
        t.add(2, 0)
        victim = t.add(3, 0)
        assert victim == 1
        assert t.lookup(1) is None
        assert t.evictions == 1

    def test_retarget_does_not_evict(self):
        t = MigrationTable(capacity=2)
        t.add(1, 0)
        t.add(2, 0)
        assert t.add(1, 1) is None
        assert len(t) == 2

    def test_items_oldest_first(self):
        t = MigrationTable()
        t.add(1, 0)
        t.add(2, 1)
        assert t.items() == [(1, 0), (2, 1)]


class TestPerCoreCounts:
    def test_pins_on(self):
        t = MigrationTable()
        t.add(1, 0)
        t.add(2, 0)
        t.add(3, 1)
        assert t.pins_on(0) == 2
        assert t.pins_on(1) == 1
        assert t.pins_on(9) == 0

    def test_counts_follow_retarget(self):
        t = MigrationTable()
        t.add(1, 0)
        t.add(1, 1)
        assert t.pins_on(0) == 0 and t.pins_on(1) == 1

    def test_counts_follow_remove(self):
        t = MigrationTable()
        t.add(1, 0)
        t.remove(1)
        assert t.pins_on(0) == 0

    def test_counts_follow_eviction(self):
        t = MigrationTable(capacity=1)
        t.add(1, 0)
        t.add(2, 1)
        assert t.pins_on(0) == 0 and t.pins_on(1) == 1

    def test_counts_consistent_invariant(self):
        t = MigrationTable(capacity=8)
        import random

        r = random.Random(0)
        for _ in range(500):
            op = r.random()
            flow = r.randrange(20)
            if op < 0.6:
                t.add(flow, r.randrange(4))
            elif op < 0.8:
                t.remove(flow)
            else:
                t.drop_core(r.randrange(4))
            # invariant: per-core counts match entries
            for core in range(4):
                expected = sum(1 for _, c in t.items() if c == core)
                assert t.pins_on(core) == expected


class TestDropCore:
    def test_drop_core_removes_all(self):
        t = MigrationTable()
        t.add(1, 0)
        t.add(2, 0)
        t.add(3, 1)
        dropped = t.drop_core(0)
        assert set(dropped) == {1, 2}
        assert len(t) == 1
        assert t.lookup(3) == 1

    def test_drop_core_empty(self):
        assert MigrationTable().drop_core(3) == []

    def test_clear(self):
        t = MigrationTable()
        t.add(1, 0)
        t.clear()
        assert len(t) == 0 and t.pins_on(0) == 0
