"""Tests for the Aggressive Flow Detector (annex + AFC)."""

import numpy as np
import pytest

from repro.core.afd import AFDConfig, AggressiveFlowDetector


def feed(afd, flow_ids):
    for f in flow_ids:
        afd.observe(int(f))


def stream(weights, n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.choice(len(weights), size=n, p=np.asarray(weights) / sum(weights))


class TestConfig:
    def test_defaults(self):
        cfg = AFDConfig()
        assert cfg.afc_entries == 16
        assert cfg.annex_entries == 512

    @pytest.mark.parametrize(
        "kw",
        [
            {"afc_entries": 0},
            {"annex_entries": 0},
            {"promote_threshold": 0},
            {"sample_prob": 0.0},
            {"sample_prob": 1.5},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            AFDConfig(**kw)


class TestPromotionMechanics:
    def test_flow_enters_annex_first(self):
        afd = AggressiveFlowDetector(AFDConfig(promote_threshold=3))
        afd.observe(1)
        assert 1 in afd.annex and not afd.is_aggressive(1)

    def test_promotion_at_threshold(self):
        afd = AggressiveFlowDetector(AFDConfig(promote_threshold=3))
        feed(afd, [1, 1, 1])
        assert afd.is_aggressive(1)
        assert 1 not in afd.annex
        assert afd.promotions == 1

    def test_afc_hits_counted_in_afc(self):
        afd = AggressiveFlowDetector(AFDConfig(promote_threshold=2))
        feed(afd, [1, 1, 1, 1])
        assert afd.afc.count(1) == 4

    def test_challenge_blocks_weak_candidate(self):
        """A threshold-crosser must beat the AFC's weakest resident."""
        afd = AggressiveFlowDetector(
            AFDConfig(afc_entries=2, promote_threshold=2, annex_entries=8)
        )
        feed(afd, [1] * 10 + [2] * 10)  # AFC = {1, 2} with high counts
        feed(afd, [3, 3])  # crosses threshold but count 2 < resident counts
        assert not afd.is_aggressive(3)
        assert 3 in afd.annex

    def test_challenge_eventually_won(self):
        afd = AggressiveFlowDetector(
            AFDConfig(afc_entries=2, promote_threshold=2, annex_entries=8)
        )
        feed(afd, [1] * 5 + [2] * 5)
        feed(afd, [3] * 20)  # outgrows the weakest resident
        assert afd.is_aggressive(3)

    def test_victim_demoted_with_count(self):
        afd = AggressiveFlowDetector(
            AFDConfig(afc_entries=1, promote_threshold=2, annex_entries=8)
        )
        feed(afd, [1] * 5)       # AFC = {1: 5}
        feed(afd, [2] * 10)      # 2 beats 1; 1 demoted to the annex
        assert afd.is_aggressive(2)
        assert afd.annex.count(1) == 5
        assert afd.demotions == 1

    def test_no_demotion_when_disabled(self):
        afd = AggressiveFlowDetector(
            AFDConfig(afc_entries=1, promote_threshold=2, annex_entries=8,
                      demote_victims=False)
        )
        feed(afd, [1] * 5)
        feed(afd, [2] * 10)
        assert 1 not in afd.annex


class TestSchedulerInterface:
    def test_invalidate(self):
        afd = AggressiveFlowDetector(AFDConfig(promote_threshold=2))
        feed(afd, [1, 1])
        assert afd.invalidate(1)
        assert not afd.is_aggressive(1)
        assert not afd.invalidate(1)

    def test_aggressive_flows_listing(self):
        afd = AggressiveFlowDetector(AFDConfig(promote_threshold=2))
        feed(afd, [1, 1, 2, 2])
        assert set(afd.aggressive_flows()) == {1, 2}

    def test_reset(self):
        afd = AggressiveFlowDetector(AFDConfig(promote_threshold=2))
        feed(afd, [1, 1])
        afd.reset()
        assert afd.aggressive_flows() == []
        assert afd.observed == 0 and afd.promotions == 0


class TestAccuracyMetrics:
    def test_fpr_empty_afc(self):
        afd = AggressiveFlowDetector()
        assert afd.false_positive_ratio({1, 2}) == 0.0

    def test_fpr_counts_outsiders(self):
        afd = AggressiveFlowDetector(AFDConfig(promote_threshold=2))
        feed(afd, [1, 1, 2, 2])
        assert afd.false_positive_ratio({1}) == pytest.approx(0.5)
        assert afd.accuracy({1}) == pytest.approx(0.5)

    def test_detects_elephants_in_skewed_stream(self):
        """End-to-end: top-4 of a skewed stream land in the AFC."""
        weights = [100, 90, 80, 70] + [1] * 60
        afd = AggressiveFlowDetector(
            AFDConfig(afc_entries=4, annex_entries=32, promote_threshold=4)
        )
        feed(afd, stream(weights, 20_000))
        assert afd.accuracy({0, 1, 2, 3}) >= 0.75


class TestSampling:
    def test_sampling_thins_observations(self):
        afd = AggressiveFlowDetector(AFDConfig(sample_prob=0.1), rng=0)
        feed(afd, [1] * 1000)
        assert afd.observed == 1000
        assert 40 < afd.sampled < 250

    def test_full_sampling(self):
        afd = AggressiveFlowDetector(AFDConfig(sample_prob=1.0))
        feed(afd, [1] * 10)
        assert afd.sampled == 10

    def test_sampling_deterministic_with_seed(self):
        a = AggressiveFlowDetector(AFDConfig(sample_prob=0.5), rng=3)
        b = AggressiveFlowDetector(AFDConfig(sample_prob=0.5), rng=3)
        feed(a, range(100))
        feed(b, range(100))
        assert a.sampled == b.sampled
        assert a.annex.keys() == b.annex.keys()


class TestDecay:
    def test_decay_halves_counters(self):
        afd = AggressiveFlowDetector(
            AFDConfig(promote_threshold=2, decay_every=100)
        )
        feed(afd, [1] * 99)  # 1 promoted to the AFC with count ~98
        count_before = afd.afc.count(1)
        afd.observe(2)  # the 100th sampled packet triggers decay
        assert afd.afc.count(1) == count_before >> 1

    def test_decay_config_validation(self):
        with pytest.raises(ValueError):
            AFDConfig(decay_every=0)
        with pytest.raises(ValueError):
            AFDConfig(decay_shift=0)

    def test_decay_tracks_regime_change(self):
        """With aging, yesterday's elephants eventually yield their AFC
        slots to today's (they would keep them forever without it)."""
        old = list(range(4))
        new = list(range(100, 104))
        stream = old * 800 + new * 800

        def final_afc(decay_every):
            afd = AggressiveFlowDetector(
                AFDConfig(afc_entries=4, annex_entries=32,
                          promote_threshold=4, decay_every=decay_every)
            )
            feed(afd, stream)
            return set(afd.aggressive_flows())

        assert final_afc(None) == set(old)        # lifetime counts win
        assert final_afc(200) == set(new)         # aged counts track now


class TestInvariants:
    def test_flow_never_in_both_levels(self):
        afd = AggressiveFlowDetector(
            AFDConfig(afc_entries=4, annex_entries=8, promote_threshold=2)
        )
        rng = np.random.default_rng(1)
        for f in rng.integers(0, 30, size=5000):
            afd.observe(int(f))
            both = set(afd.afc.keys()) & set(afd.annex.keys())
            if both:
                pytest.fail(f"flows resident in both levels: {both}")

    def test_afc_never_exceeds_capacity(self):
        afd = AggressiveFlowDetector(
            AFDConfig(afc_entries=4, annex_entries=8, promote_threshold=2)
        )
        rng = np.random.default_rng(2)
        for f in rng.integers(0, 30, size=5000):
            afd.observe(int(f))
        assert len(afd.afc) <= 4
        assert len(afd.annex) <= 8
