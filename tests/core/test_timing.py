"""Tests for the Sec. III-G timing model."""

import pytest

from repro.core.timing import LAPSTimingModel, SRAMModel, estimate_max_rate_mpps


class TestSRAMModel:
    def test_monotone_in_words(self):
        sram = SRAMModel()
        assert sram.access_ns(64, 8) < sram.access_ns(4096, 8)

    def test_monotone_in_width(self):
        sram = SRAMModel()
        assert sram.access_ns(256, 8) < sram.access_ns(256, 128)

    def test_small_tables_subnanosecond(self):
        """The paper's Cacti observation: map table access is a
        fraction of a nanosecond."""
        assert SRAMModel().access_ns(256, 8) < 1.0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            SRAMModel().access_ns(0, 8)
        with pytest.raises(ValueError):
            SRAMModel().access_ns(8, 0)

    def test_single_word(self):
        assert SRAMModel().access_ns(1, 8) > 0


class TestLAPSTimingModel:
    def test_paper_claim_200mpps(self):
        """FPGA CRC16 at 200 MHz (5 ns) -> at least 200 Mpps."""
        model = LAPSTimingModel()  # defaults: hash 5 ns
        assert model.max_rate_mpps >= 200.0

    def test_hash_dominates(self):
        model = LAPSTimingModel()
        assert model.bottleneck_ns == model.hash_ns

    def test_latency_is_sum(self):
        model = LAPSTimingModel()
        assert model.critical_path_ns == pytest.approx(
            model.hash_ns + model.map_table_ns + model.mux_ns
        )

    def test_asic_scales_beyond(self):
        """Faster hash implementations push past 100 Gbps (Sec. III-G)."""
        fast = LAPSTimingModel(hash_ns=1.0)
        assert fast.max_rate_mpps > LAPSTimingModel().max_rate_mpps

    def test_breakdown_keys(self):
        b = LAPSTimingModel().breakdown()
        assert set(b) == {
            "hash_ns", "map_table_ns", "mux_ns",
            "critical_path_ns", "bottleneck_ns", "max_rate_mpps",
        }

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            LAPSTimingModel(hash_ns=0)
        with pytest.raises(ValueError):
            LAPSTimingModel(map_table_entries=0)


class TestEstimate:
    def test_convenience_wrapper(self):
        assert estimate_max_rate_mpps() >= 200.0

    def test_scales_with_hash(self):
        assert estimate_max_rate_mpps(hash_ns=2.5) == pytest.approx(400.0)
