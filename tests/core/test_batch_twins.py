"""Batch-native commit paths vs their scalar twins.

The span drain's scheduler commit rides on
``AggressiveFlowDetector.observe_batch`` and
``CoreAllocator.note_load_batch``, whose contract is *bit-identity*
with the scalar per-packet replay — not statistical equivalence.  The
hypothesis properties here drive random flow-id programs through both
paths and require every observable (counters, promotions, decay
boundaries, cache contents **including LFU bucket FIFO order**, the
RNG stream position under sampling) to match exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.afd import AFDConfig, AggressiveFlowDetector
from repro.core.allocator import CoreAllocator
from repro.core.lfu import LFUCache


def lfu_state(cache: LFUCache) -> dict:
    """Every observable of an LFU cache, including tie-break order."""
    return {
        "counts": dict(cache._counts),
        "insertion_order": list(cache._counts),
        "buckets": {c: list(b) for c, b in cache._buckets.items()},
        "min_count": cache._min_count,
        "hits": cache.hits,
        "misses": cache.misses,
        "evictions": cache.evictions,
    }


def afd_state(afd: AggressiveFlowDetector) -> dict:
    return {
        "afc": lfu_state(afd.afc),
        "annex": lfu_state(afd.annex),
        "promotions": afd.promotions,
        "demotions": afd.demotions,
        "observed": afd.observed,
        "sampled": afd.sampled,
    }


afd_configs = st.builds(
    AFDConfig,
    afc_entries=st.integers(1, 6),
    annex_entries=st.integers(1, 10),
    promote_threshold=st.integers(1, 6),
    sample_prob=st.sampled_from([1.0, 0.7, 0.3]),
    demote_victims=st.booleans(),
    decay_every=st.sampled_from([None, 3, 7, 16]),
)

flow_programs = st.lists(st.integers(0, 24), min_size=1, max_size=300)


class TestObserveBatchTwin:
    @settings(max_examples=300, deadline=None)
    @given(cfg=afd_configs, fids=flow_programs, seed=st.integers(0, 2**16))
    def test_batch_equals_scalar_replay(self, cfg, fids, seed):
        scalar = AggressiveFlowDetector(cfg, rng=seed)
        batch = AggressiveFlowDetector(cfg, rng=seed)
        for f in fids:
            scalar.observe(f)
        batch.observe_batch(np.asarray(fids, dtype=np.int64))
        assert afd_state(batch) == afd_state(scalar)

    @settings(max_examples=150, deadline=None)
    @given(
        cfg=afd_configs,
        fids=flow_programs,
        seed=st.integers(0, 2**16),
        data=st.data(),
    )
    def test_split_points_are_invisible(self, cfg, fids, seed, data):
        """Any partition of the stream into sub-batches commits the
        same state — spans of different sizes (chunk boundaries, guard
        truncations) cannot leak into the detector."""
        scalar = AggressiveFlowDetector(cfg, rng=seed)
        batch = AggressiveFlowDetector(cfg, rng=seed)
        for f in fids:
            scalar.observe(f)
        arr = np.asarray(fids, dtype=np.int64)
        lo = 0
        while lo < arr.size:
            step = data.draw(st.integers(1, arr.size - lo))
            batch.observe_batch(arr[lo : lo + step])
            lo += step
        assert afd_state(batch) == afd_state(scalar)

    def test_sampling_stream_identical(self):
        """One ``rng.random(n)`` draw consumes the generator stream
        exactly like n scalar draws, so scalar/batch twins stay aligned
        even *after* the compared window."""
        cfg = AFDConfig(sample_prob=0.5)
        scalar = AggressiveFlowDetector(cfg, rng=11)
        batch = AggressiveFlowDetector(cfg, rng=11)
        fids = list(range(64)) * 4
        for f in fids:
            scalar.observe(f)
        batch.observe_batch(np.asarray(fids, dtype=np.int64))
        # the generators themselves are in the same state
        assert scalar._rng.random() == batch._rng.random()

    def test_decay_boundary_mid_batch(self):
        """A decay that lands inside a batch fires at the exact sampled
        rank the scalar path would use (before the boundary packet)."""
        cfg = AFDConfig(promote_threshold=10, decay_every=5)
        scalar = AggressiveFlowDetector(cfg, rng=0)
        batch = AggressiveFlowDetector(cfg, rng=0)
        # 3 observes, then a batch of 7 straddling the rank-5 decay
        head, tail = [1, 1, 2], [1, 2, 3, 1, 1, 2, 4]
        for f in head + tail:
            scalar.observe(f)
        for f in head:
            batch.observe(f)
        batch.observe_batch(np.asarray(tail, dtype=np.int64))
        assert afd_state(batch) == afd_state(scalar)

    def test_empty_batch_is_a_noop(self):
        afd = AggressiveFlowDetector(AFDConfig(), rng=3)
        afd.observe_batch(np.empty(0, dtype=np.int64))
        assert afd.observed == 0 and afd.sampled == 0


class TestMergeHitsTwin:
    @settings(max_examples=200, deadline=None)
    @given(
        capacity=st.integers(2, 8),
        hits=st.lists(st.integers(0, 7), min_size=1, max_size=60),
    )
    def test_merge_equals_replay(self, capacity, hits):
        """merge_hits in last-occurrence order == one hit() per event."""
        replay = LFUCache(capacity)
        merged = LFUCache(capacity)
        for cache in (replay, merged):
            for k in range(capacity):
                cache.insert(k, count=k + 1)
        resident = [h % capacity for h in hits]
        for k in resident:
            replay.hit(k)
        last = {}
        for k in resident:  # re-insert moves the key to the dict tail
            last.pop(k, None)
            last[k] = None
        deltas = {k: resident.count(k) for k in last}
        merged.merge_hits(last.keys(), [deltas[k] for k in last])
        assert lfu_state(merged) == lfu_state(replay)


class TestNoteLoadBatchTwin:
    @settings(max_examples=200, deadline=None)
    @given(
        busy=st.integers(1, 6),
        events=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 8)),
            min_size=0,
            max_size=80,
        ),
    )
    def test_batch_equals_scalar(self, busy, events):
        """Occupancy swings around ``busy_occupancy``: the per-core
        last-busy timestamp must be the last *qualifying* arrival."""
        scalar = CoreAllocator(4, 2, idle_threshold_ns=1000, busy_occupancy=busy)
        batch = CoreAllocator(4, 2, idle_threshold_ns=1000, busy_occupancy=busy)
        t = np.arange(10, 10 + len(events), dtype=np.int64)
        for (core, occ), t_ns in zip(events, t.tolist()):
            scalar.note_load(core, occ, t_ns)
        cores = np.asarray([c for c, _ in events], dtype=np.int64)
        occs = np.asarray([o for _, o in events], dtype=np.int64)
        batch.note_load_batch(cores, occs, t)
        assert batch._last_busy_ns == scalar._last_busy_ns

    def test_unguarded_span_never_qualifies(self):
        """The span driver passes ``occ == -1`` when no guard read the
        queues; no core may be marked busy by it."""
        alloc = CoreAllocator(4, 2, idle_threshold_ns=1000, busy_occupancy=4)
        before = list(alloc._last_busy_ns)
        alloc.note_load_batch(
            np.arange(4, dtype=np.int64),
            np.full(4, -1, dtype=np.int64),
            np.arange(100, 104, dtype=np.int64),
        )
        assert alloc._last_busy_ns == before
