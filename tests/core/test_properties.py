"""Cross-cutting property tests on the LAPS building blocks.

These drive random operation sequences through the stateful components
and assert the structural invariants the scheduler's correctness rests
on: ownership always partitions the cores, every service keeps a core,
map tables always resolve to owned cores, and the migration table's
per-core counters never drift.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import CoreAllocator
from repro.core.map_table import ServiceMapTable
from repro.errors import SchedulerError


class TestAllocatorRandomWalk:
    @given(
        num_cores=st.integers(4, 12),
        num_services=st.integers(2, 4),
        steps=st.lists(
            st.tuples(
                st.sampled_from(["load", "request", "touch"]),
                st.integers(0, 11),   # core (mod num_cores)
                st.integers(0, 3),    # service (mod num_services)
                st.integers(0, 10),   # occupancy
            ),
            max_size=120,
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_invariants_hold(self, num_cores, num_services, steps):
        if num_cores < num_services:
            num_cores = num_services
        alloc = CoreAllocator(num_cores, num_services, idle_threshold_ns=50)
        t = 0
        for op, core, service, occ in steps:
            t += 17
            core %= num_cores
            service %= num_services
            if op == "load":
                alloc.note_load(core, occ, t)
            elif op == "touch":
                alloc.touch(core, t)
            else:
                transfer = alloc.request_core(service, t)
                if transfer is not None:
                    assert alloc.owner_of(transfer.core_id) == service
            # invariant 1: ownership partitions the cores
            owned = [c for s in range(num_services) for c in alloc.cores_of(s)]
            assert sorted(owned) == list(range(num_cores))
            # invariant 2: every service keeps at least one core
            for s in range(num_services):
                assert alloc.cores_of(s), f"service {s} stripped bare"
            # invariant 3: surplus cores are a subset of all cores
            assert set(alloc.surplus_cores(t)) <= set(range(num_cores))


class TestMapTableRandomWalk:
    @given(
        initial=st.integers(1, 6),
        ops=st.lists(st.booleans(), max_size=40),  # True=add, False=remove
    )
    @settings(max_examples=150, deadline=None)
    def test_lookup_always_owned(self, initial, ops):
        table = ServiceMapTable(0, list(range(initial)))
        next_core = initial
        for add in ops:
            if add:
                table.add_core(next_core)
                next_core += 1
            else:
                try:
                    table.remove_core(table.cores[-1])
                except SchedulerError:
                    continue
            # every key resolves to a core the service owns
            cores = set(table.cores)
            for k in range(0, 997, 13):
                assert table.lookup(k) in cores
            # bucket list has no duplicates
            assert len(cores) == len(table.cores)

    @given(st.integers(1, 8), st.integers(0, 12))
    @settings(max_examples=80, deadline=None)
    def test_distribution_covers_all_cores(self, initial, grows):
        """With enough keys, every bucket receives some."""
        table = ServiceMapTable(0, list(range(initial)))
        for i in range(grows):
            table.add_core(initial + i)
        hits = {table.lookup(k) for k in range(4096)}
        assert hits == set(table.cores)


class TestLAPSSchedulerWalk:
    def test_long_random_run_invariants(self):
        """Drive LAPS with random packets and adversarial queue states;
        the chosen core must always belong to the packet's service."""
        import random

        from repro.core.afd import AFDConfig
        from repro.core.laps import LAPSConfig, LAPSScheduler
        from tests.core.test_laps import FakeLoads

        rng = random.Random(0)
        sched = LAPSScheduler(
            LAPSConfig(num_services=3, high_threshold=6,
                       idle_threshold_ns=100,
                       afd=AFDConfig(promote_threshold=3, annex_entries=32)),
            rng=0,
        )
        loads = FakeLoads(9, queue_capacity=8)
        sched.bind(loads)
        for t in range(0, 40_000, 7):
            # scramble the queue picture
            for c in range(9):
                loads.occ[c] = rng.randrange(0, 8)
            flow = rng.randrange(0, 200)
            service = flow % 3
            core = sched.select_core(flow, service, flow * 31, t)
            assert core in sched.cores_of(service), (
                f"flow {flow} of service {service} sent to foreign core {core}"
            )
            # ownership partition intact
            owned = sorted(
                c for s in range(3) for c in sched.cores_of(s)
            )
            assert owned == list(range(9))
