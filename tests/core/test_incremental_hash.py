"""Tests for incremental (linear) hashing — Sec. III-C."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental_hash import IncrementalHash


class TestBasics:
    def test_initial_state(self):
        h = IncrementalHash(4)
        assert h.num_buckets == 4
        assert h.level_m == 4
        assert h.split_pointer == 0

    def test_invalid_initial_rejected(self):
        with pytest.raises(ValueError):
            IncrementalHash(0)

    def test_bucket_in_range(self):
        h = IncrementalHash(4)
        for k in range(100):
            assert 0 <= h.bucket_of(k) < 4

    def test_plain_modulo_at_level_start(self):
        h = IncrementalHash(4)
        assert all(h.bucket_of(k) == k % 4 for k in range(64))

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            IncrementalHash(4).bucket_of(-1)


class TestGrow:
    def test_grow_returns_split_bucket(self):
        h = IncrementalHash(4)
        assert h.grow() == 0
        assert h.grow() == 1

    def test_paper_formula(self):
        """h(k) = h2(k) if h1(k) < b-m else h1(k), with h2 = k % 2m."""
        h = IncrementalHash(4)
        h.grow()  # b=5, split pointer 1
        for k in range(200):
            h1 = k % 4
            expected = (k % 8) if h1 < 1 else h1
            assert h.bucket_of(k) == expected

    def test_level_doubles_at_2m(self):
        h = IncrementalHash(4)
        for _ in range(4):
            h.grow()
        assert h.num_buckets == 8
        assert h.level_m == 8
        assert all(h.bucket_of(k) == k % 8 for k in range(64))

    def test_minimal_remap_property(self):
        """Growing by one bucket moves ONLY keys of the split bucket,
        and those move only to the new bucket."""
        h = IncrementalHash(4)
        keys = list(range(1000))
        for _ in range(7):
            before = [h.bucket_of(k) for k in keys]
            split = h.grow()
            new_bucket = h.num_buckets - 1
            after = [h.bucket_of(k) for k in keys]
            for b, a in zip(before, after):
                if b != a:
                    assert b == split
                    assert a == new_bucket

    @given(st.integers(1, 16), st.integers(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_bucket_always_in_range(self, m, grows):
        h = IncrementalHash(m)
        for _ in range(grows):
            h.grow()
        for k in range(0, 3000, 37):
            assert 0 <= h.bucket_of(k) < h.num_buckets


class TestShrink:
    def test_shrink_reverses_grow(self):
        h = IncrementalHash(4)
        keys = list(range(500))
        before = [h.bucket_of(k) for k in keys]
        h.grow()
        h.shrink()
        assert [h.bucket_of(k) for k in keys] == before
        assert h.num_buckets == 4 and h.level_m == 4

    def test_shrink_returns_fold_target(self):
        h = IncrementalHash(4)
        h.grow()  # b=5; bucket 4 splits bucket 0
        assert h.shrink() == 0

    def test_shrink_below_one_rejected(self):
        h = IncrementalHash(1)
        with pytest.raises(ValueError):
            h.shrink()

    def test_shrink_below_initial_even_level(self):
        h = IncrementalHash(4)
        h.shrink()
        assert h.num_buckets == 3
        for k in range(100):
            assert 0 <= h.bucket_of(k) < 3

    def test_shrink_below_odd_level_full_rehash(self):
        """An odd level has no bucket pairing; shrinking rebuilds a
        fresh level at b-1 and reports -1 (full rehash)."""
        h = IncrementalHash(3)
        assert h.shrink() == -1
        assert h.num_buckets == 2 and h.level_m == 2
        for k in range(100):
            assert h.bucket_of(k) == k % 2

    @given(st.integers(1, 5), st.lists(st.booleans(), max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_grow_shrink_random_walk_consistent(self, level_pow, steps):
        m = 2 ** level_pow
        h = IncrementalHash(m)
        for grow in steps:
            if grow:
                h.grow()
            else:
                try:
                    h.shrink()
                except ValueError:
                    continue
            assert 1 <= h.num_buckets
            for k in range(0, 500, 23):
                assert 0 <= h.bucket_of(k) < h.num_buckets


class TestResizeAndDiagnostics:
    def test_resize_to(self):
        h = IncrementalHash(4)
        h.resize_to(11)
        assert h.num_buckets == 11
        h.resize_to(2)
        assert h.num_buckets == 2

    def test_resize_invalid(self):
        with pytest.raises(ValueError):
            IncrementalHash(4).resize_to(0)

    def test_remapped_fraction_small(self):
        h = IncrementalHash(8)
        frac = h.remapped_fraction(list(range(10_000)))
        # one of 8 buckets splits, half its keys move: ~1/16
        assert frac == pytest.approx(1 / 16, abs=0.01)

    def test_remapped_fraction_vs_full_rehash(self):
        """The point of Sec. III-C: incremental << naive %b rehash."""
        keys = list(range(5000))
        h = IncrementalHash(8)
        incremental = h.remapped_fraction(keys)
        naive = sum(1 for k in keys if k % 8 != k % 9) / len(keys)
        assert incremental < naive / 5

    def test_remapped_fraction_empty(self):
        assert IncrementalHash(4).remapped_fraction([]) == 0.0


class TestBatchScalarContract:
    def test_negative_batch_key_rejected_like_scalar(self):
        """Regression: the vectorized path silently accepted negative
        hashes (Python ``%`` keeps them in range) where ``bucket_of``
        raises — the twin paths must reject identical inputs."""
        import numpy as np

        h = IncrementalHash(4)
        with pytest.raises(ValueError):
            h.bucket_of(-1)
        with pytest.raises(ValueError):
            h.bucket_of_batch(np.array([3, -1, 7]))

    def test_batch_matches_scalar_after_resizes(self):
        import numpy as np

        h = IncrementalHash(4)
        for _ in range(5):
            h.grow()
        h.shrink()
        keys = np.arange(1000)
        batch = h.bucket_of_batch(keys)
        assert batch.tolist() == [h.bucket_of(int(k)) for k in keys]

    def test_empty_batch(self):
        import numpy as np

        h = IncrementalHash(4)
        assert h.bucket_of_batch(np.array([], dtype=np.int64)).size == 0
