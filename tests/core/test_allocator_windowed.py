"""Twin suite: ``request_core`` immediate vs barrier-deferred grants.

The sharded services mode defers cross-service core requests to window
barriers, where :func:`repro.sim.sharding.mailbox.resolve_grants`
matches them against offered surplus cores and the transfer executes
as a ``release``/``adopt`` pair.  These tests pin the twin property
that makes that safe:

* when no shard boundary separates requester and donor, the windowed
  protocol resolved at the same instant picks the **same core from the
  same donor** as an immediate ``request_core`` call — longest-quiet
  first, donor keeps at least one online core;
* when a boundary does intervene, the outcome is a pure function of
  the sorted mailbox contents — permuting requests/offers or re-running
  the barrier never changes the grants.
"""

import pytest

from repro.core.allocator import CoreAllocator
from repro.errors import SchedulerError
from repro.sim.sharding.mailbox import CoreOffer, CoreRequest, resolve_grants

IDLE = 100


def _immediate() -> CoreAllocator:
    """One allocator holding both services: cores {0, 1} -> service 0,
    {2, 3} -> service 1; core 3 quiet longest, core 2 next."""
    alloc = CoreAllocator(4, 2, idle_threshold_ns=IDLE)
    alloc.touch(0, 1000)
    alloc.touch(1, 1000)
    alloc.touch(2, 500)
    alloc.touch(3, 200)
    return alloc


def _sharded() -> tuple[CoreAllocator, CoreAllocator]:
    """The same system cut at the service boundary: shard A owns
    service 0 (cores 0, 1), shard B owns service 1 (cores 2, 3); each
    sees the other's cores as foreign (owner ``-1``) in the shared
    global core-id space, with identical quietness history."""
    a = CoreAllocator(4, 1, idle_threshold_ns=IDLE, owners=[0, 0, -1, -1])
    b = CoreAllocator(4, 1, idle_threshold_ns=IDLE, owners=[-1, -1, 0, 0])
    a.touch(0, 1000)
    a.touch(1, 1000)
    b.touch(2, 500)
    b.touch(3, 200)
    return a, b


def _offers_from(alloc: CoreAllocator, shard: int, t_ns: int) -> list[CoreOffer]:
    return [
        CoreOffer(
            last_busy_ns=alloc.last_busy_ns(core),
            shard=shard,
            core=core,
            service=alloc.owner_of(core),
            online_owned=len(alloc.online_cores_of(alloc.owner_of(core))),
        )
        for core in alloc.surplus_cores(t_ns)
    ]


class TestNoBoundary:
    """Windowed resolution at the same instant == immediate grant."""

    def test_same_core_same_donor(self):
        t = 1000
        transfer = _immediate().request_core(0, t)
        assert transfer is not None and not transfer.is_internal

        shard_a, shard_b = _sharded()
        grants = resolve_grants(
            [CoreRequest(t_ns=t, shard=0, service=0)],
            _offers_from(shard_b, shard=1, t_ns=t),
        )
        assert len(grants) == 1
        grant = grants[0]
        # both paths strip the longest-quiet core of the other service
        assert grant.core == transfer.core_id == 3
        assert grant.donor_shard == 1 and grant.recipient_shard == 0

        shard_b.release(grant.core)
        shard_a.adopt(grant.core, grant.recipient_service, t)
        # ownership converges with the single-allocator outcome
        assert shard_a.owner_of(3) == 0
        assert shard_b.owner_of(3) == -1
        assert _immediate_after_grant_owner() == 0

    def test_internal_reclaim_never_reaches_the_mailbox(self):
        # a service with its own surplus core reclaims it in place;
        # only *denied* requests become mailbox traffic
        alloc = _immediate()
        alloc.touch(0, 0)  # service 0's core 0 is quiet at t=1000 too
        transfer = alloc.request_core(0, 1000)
        assert transfer is not None and transfer.is_internal
        assert transfer.core_id == 0

    def test_donor_keeps_last_online_core_both_paths(self):
        t = 1000
        # immediate: service 1 down to one online core -> denied
        alloc = _immediate()
        alloc.set_offline(3)
        assert alloc.request_core(0, t) is None

        # windowed: the last-online-core guard lives in the budget
        # (online_owned < 2 never donates) and in release() itself
        _, shard_b = _sharded()
        shard_b.set_offline(3)
        grants = resolve_grants(
            [CoreRequest(t_ns=t, shard=0, service=0)],
            _offers_from(shard_b, shard=1, t_ns=t),
        )
        assert grants == []
        with pytest.raises(SchedulerError, match="last core"):
            shard_b.release(2)


class TestWithBoundary:
    """A barrier between request and grant: deterministic resolution."""

    def test_permutation_invariant(self):
        t = 2000
        requests = [
            CoreRequest(t_ns=900, shard=0, service=0),
            CoreRequest(t_ns=400, shard=2, service=0),
        ]
        offers = [
            CoreOffer(last_busy_ns=500, shard=1, core=2, service=0,
                      online_owned=3),
            CoreOffer(last_busy_ns=200, shard=1, core=3, service=0,
                      online_owned=3),
            CoreOffer(last_busy_ns=700, shard=1, core=4, service=0,
                      online_owned=3),
        ]
        base = resolve_grants(list(requests), list(offers))
        assert resolve_grants(requests[::-1], offers[::-1]) == base
        assert resolve_grants(requests[::-1], offers) == base
        # earliest request wins the quietest core
        assert base[0].recipient_shard == 2
        assert base[0].core == 3
        assert base[1].recipient_shard == 0
        assert base[1].core == 2

    def test_budget_spans_one_barrier(self):
        # a donor offering two of its three online cores may grant only
        # until it would drop below one spare: budget 3 -> two grants
        offers = [
            CoreOffer(last_busy_ns=100, shard=1, core=5, service=0,
                      online_owned=3),
            CoreOffer(last_busy_ns=150, shard=1, core=6, service=0,
                      online_owned=3),
        ]
        requests = [
            CoreRequest(t_ns=10, shard=0, service=0),
            CoreRequest(t_ns=20, shard=2, service=1),
        ]
        grants = resolve_grants(requests, offers)
        assert [g.core for g in grants] == [5, 6]

        # with only two online cores the second donation would strip
        # the donor to a single core: exactly one grant resolves
        tight = [
            CoreOffer(last_busy_ns=100, shard=1, core=5, service=0,
                      online_owned=2),
            CoreOffer(last_busy_ns=150, shard=1, core=6, service=0,
                      online_owned=2),
        ]
        grants = resolve_grants(requests, tight)
        assert [g.core for g in grants] == [5]

    def test_one_grant_per_service_per_barrier(self):
        offers = [
            CoreOffer(last_busy_ns=100, shard=1, core=5, service=0,
                      online_owned=4),
            CoreOffer(last_busy_ns=150, shard=1, core=6, service=0,
                      online_owned=4),
        ]
        requests = [
            CoreRequest(t_ns=10, shard=0, service=0),
            CoreRequest(t_ns=20, shard=0, service=0),
        ]
        grants = resolve_grants(requests, offers)
        assert len(grants) == 1  # the duplicate waits for the next window

    def test_never_donates_to_own_shard(self):
        offers = [
            CoreOffer(last_busy_ns=100, shard=0, core=1, service=1,
                      online_owned=3),
        ]
        requests = [CoreRequest(t_ns=10, shard=0, service=0)]
        # same-shard relief is request_core's job, not the mailbox's
        assert resolve_grants(requests, offers) == []


def _immediate_after_grant_owner() -> int:
    alloc = _immediate()
    transfer = alloc.request_core(0, 1000)
    return alloc.owner_of(transfer.core_id)
