"""Tests for dynamic core allocation (surplus list, donations)."""

import pytest

from repro.core.allocator import CoreAllocator
from repro.errors import ConfigError, SchedulerError

IDLE = 1000  # ns


def make(num_cores=8, num_services=4, idle=IDLE, busy=4):
    return CoreAllocator(num_cores, num_services, idle, busy_occupancy=busy)


class TestConstruction:
    def test_equal_division(self):
        alloc = make(8, 4)
        for sid in range(4):
            assert len(alloc.cores_of(sid)) == 2

    def test_remainder_to_first_services(self):
        alloc = make(10, 4)
        assert [len(alloc.cores_of(s)) for s in range(4)] == [3, 3, 2, 2]

    def test_initial_allocation_mapping(self):
        alloc = make(4, 2)
        assert alloc.initial_allocation() == {0: [0, 1], 1: [2, 3]}

    def test_more_services_than_cores_rejected(self):
        with pytest.raises(ConfigError):
            make(2, 4)

    @pytest.mark.parametrize(
        "kw", [{"num_cores": 0}, {"num_services": 0}, {"idle": -1}, {"busy": 0}]
    )
    def test_invalid_params(self, kw):
        with pytest.raises(ConfigError):
            make(**kw)


class TestSurplusTracking:
    def test_quiet_core_becomes_surplus(self):
        alloc = make()
        assert alloc.is_surplus(0, IDLE)
        assert not alloc.is_surplus(0, IDLE - 1)

    def test_backlog_resets_timer(self):
        alloc = make()
        alloc.note_load(0, occupancy=4, t_ns=500)
        assert not alloc.is_surplus(0, IDLE)
        assert alloc.is_surplus(0, 500 + IDLE)

    def test_light_load_does_not_reset(self):
        alloc = make()
        alloc.note_load(0, occupancy=3, t_ns=900)  # below busy_occupancy
        assert alloc.is_surplus(0, IDLE)

    def test_touch_marks_busy(self):
        alloc = make()
        alloc.touch(0, 700)
        assert not alloc.is_surplus(0, IDLE)

    def test_surplus_ordered_longest_quiet_first(self):
        alloc = make()
        alloc.note_load(1, 10, 100)
        alloc.note_load(0, 10, 200)
        surplus = alloc.surplus_cores(200 + IDLE)
        assert surplus.index(1) < surplus.index(0)

    def test_surplus_filtered_by_service(self):
        alloc = make(8, 4)
        own = alloc.surplus_cores(IDLE, service_id=0)
        assert own == alloc.cores_of(0)


class TestRequestCore:
    def test_internal_reclaim_preferred(self):
        alloc = make()
        transfer = alloc.request_core(0, IDLE)
        assert transfer is not None
        assert transfer.is_internal
        assert transfer.core_id in alloc.cores_of(0)
        assert alloc.internal_reclaims == 1

    def test_external_donation(self):
        alloc = make()
        # keep service 0's own cores busy
        for core in alloc.cores_of(0):
            alloc.touch(core, IDLE)
        transfer = alloc.request_core(0, IDLE)
        assert transfer is not None
        assert not transfer.is_internal
        assert alloc.owner_of(transfer.core_id) == 0
        assert alloc.transfers == 1

    def test_longest_quiet_donor_chosen(self):
        alloc = make()
        for core in alloc.cores_of(0):
            alloc.touch(core, IDLE)
        # make service 1's cores recently busy-ish, service 2's ancient
        for core in alloc.cores_of(1):
            alloc.note_load(core, 10, 500)
        t = 500 + IDLE
        transfer = alloc.request_core(0, t)
        assert transfer.donor_service in (2, 3)

    def test_denied_when_everyone_busy(self):
        alloc = make()
        for core in range(alloc.num_cores):
            alloc.touch(core, IDLE)
        assert alloc.request_core(0, IDLE) is None
        assert alloc.denied_requests == 1

    def test_never_strips_last_core(self):
        alloc = make(2, 2)
        # both cores quiet; service 0 asks repeatedly
        t = IDLE
        first = alloc.request_core(0, t)
        assert first.is_internal
        second = alloc.request_core(0, t)
        # service 1's only core cannot be donated
        assert second is None or second.is_internal

    def test_granted_core_marked_busy(self):
        alloc = make()
        transfer = alloc.request_core(0, IDLE)
        assert not alloc.is_surplus(transfer.core_id, IDLE + 1)


class TestRequestCoreEdgeCases:
    def test_no_surplus_anywhere_denied(self):
        alloc = make()
        # fresh allocator at t=0: nothing has been quiet for idle_th yet
        assert alloc.request_core(0, IDLE - 1) is None
        assert alloc.denied_requests == 1

    def test_denied_when_only_surplus_is_offline(self):
        alloc = make(8, 4)
        for core in range(alloc.num_cores):
            if alloc.owner_of(core) in (0, 1):
                alloc.touch(core, IDLE)
        # services 2 and 3 are quiet but down to one online core each
        alloc.set_offline(alloc.cores_of(2)[0])
        alloc.set_offline(alloc.cores_of(3)[0])
        assert alloc.request_core(0, IDLE) is None

    def test_offline_core_never_donated(self):
        alloc = make(8, 4)
        for core in alloc.cores_of(0):
            alloc.touch(core, IDLE)
        dead = alloc.cores_of(1)[0]
        alloc.set_offline(dead)
        granted = set()
        while (t := alloc.request_core(0, IDLE)) is not None:
            granted.add(t.core_id)
        assert granted and dead not in granted


class TestOfflineLifecycle:
    def test_release_keeps_owner(self):
        alloc = make(8, 4)
        core = alloc.cores_of(2)[0]
        assert alloc.set_offline(core) == 2
        assert alloc.owner_of(core) == 2
        assert alloc.is_offline(core)
        assert core not in alloc.online_cores_of(2)

    def test_release_with_backlog_still_excluded_from_surplus(self):
        alloc = make()
        core = alloc.cores_of(1)[0]
        # the core fails with packets still queued (real backlog noted)
        alloc.note_load(core, occupancy=10, t_ns=100)
        alloc.set_offline(core)
        assert not alloc.is_surplus(core, 100 + 2 * IDLE)
        assert core not in alloc.surplus_cores(100 + 2 * IDLE)

    def test_double_release_raises(self):
        alloc = make()
        alloc.set_offline(3)
        with pytest.raises(SchedulerError):
            alloc.set_offline(3)

    def test_release_unknown_core_raises(self):
        alloc = make(8, 4)
        with pytest.raises(SchedulerError):
            alloc.set_offline(8)

    def test_online_without_release_raises(self):
        alloc = make()
        with pytest.raises(SchedulerError):
            alloc.set_online(0)

    def test_recovered_core_rejoins_owner_as_busy(self):
        alloc = make()
        core = alloc.cores_of(1)[0]
        alloc.set_offline(core)
        assert alloc.set_online(core, t_ns=5000) == 1
        assert not alloc.is_offline(core)
        # touched on return: not surplus until a fresh idle period
        assert not alloc.is_surplus(core, 5000 + IDLE - 1)
        assert alloc.is_surplus(core, 5000 + IDLE)

    def test_offline_cores_sorted(self):
        alloc = make()
        alloc.set_offline(5)
        alloc.set_offline(2)
        assert alloc.offline_cores == [2, 5]

    def test_force_transfer_offline_rejected(self):
        alloc = make()
        core = alloc.cores_of(1)[0]
        alloc.set_offline(core)
        with pytest.raises(SchedulerError):
            alloc.force_transfer(core, 0)

    def test_force_transfer_respects_online_last_core(self):
        alloc = make(8, 4)
        a, b = alloc.cores_of(1)
        alloc.set_offline(a)
        # b is service 1's last *online* core: stripping it would leave
        # the service with only a dead core
        with pytest.raises(SchedulerError):
            alloc.force_transfer(b, 0)


class TestForceTransfer:
    def test_force(self):
        alloc = make()
        core = alloc.cores_of(1)[0]
        transfer = alloc.force_transfer(core, 0)
        assert transfer.donor_service == 1
        assert alloc.owner_of(core) == 0

    def test_force_same_owner_rejected(self):
        alloc = make()
        with pytest.raises(SchedulerError):
            alloc.force_transfer(alloc.cores_of(0)[0], 0)

    def test_force_last_core_rejected(self):
        alloc = make(2, 2)
        with pytest.raises(SchedulerError):
            alloc.force_transfer(alloc.cores_of(1)[0], 0)
