"""Tests for per-service map tables."""

import pytest

from repro.core.map_table import ServiceMapTable
from repro.errors import SchedulerError


class TestConstruction:
    def test_initial_lookup_round_robins(self):
        table = ServiceMapTable(0, [10, 11, 12, 13])
        assert [table.lookup(k) for k in range(4)] == [10, 11, 12, 13]

    def test_empty_rejected(self):
        with pytest.raises(SchedulerError):
            ServiceMapTable(0, [])

    def test_duplicates_rejected(self):
        with pytest.raises(SchedulerError):
            ServiceMapTable(0, [1, 1])

    def test_contains(self):
        table = ServiceMapTable(0, [5, 6])
        assert 5 in table and 7 not in table


class TestAddCore:
    def test_add_appends_bucket(self):
        table = ServiceMapTable(0, [1, 2])
        split = table.add_core(3)
        assert split == 0
        assert table.cores == (1, 2, 3)

    def test_add_duplicate_rejected(self):
        table = ServiceMapTable(0, [1, 2])
        with pytest.raises(SchedulerError):
            table.add_core(1)

    def test_lookup_after_add_splits_one_bucket(self):
        table = ServiceMapTable(0, [1, 2])
        keys = list(range(1000))
        before = [table.lookup(k) for k in keys]
        table.add_core(3)
        after = [table.lookup(k) for k in keys]
        for b, a in zip(before, after):
            if b != a:
                assert b == 1 and a == 3  # only bucket 0 (core 1) splits


class TestRemoveCore:
    def test_remove_last_bucket(self):
        table = ServiceMapTable(0, [1, 2, 3])
        table.remove_core(3)
        assert table.cores == (1, 2)

    def test_remove_middle_swaps_with_last(self):
        table = ServiceMapTable(0, [1, 2, 3])
        table.remove_core(1)
        assert set(table.cores) == {2, 3}
        assert len(table.cores) == 2

    def test_remove_unknown_rejected(self):
        table = ServiceMapTable(0, [1, 2])
        with pytest.raises(SchedulerError):
            table.remove_core(9)

    def test_remove_only_core_rejected(self):
        table = ServiceMapTable(0, [1])
        with pytest.raises(SchedulerError):
            table.remove_core(1)

    def test_lookups_stay_in_table_after_removal(self):
        table = ServiceMapTable(0, [1, 2, 3, 4, 5])
        table.remove_core(2)
        for k in range(500):
            assert table.lookup(k) in table.cores

    def test_add_remove_roundtrip(self):
        table = ServiceMapTable(0, [1, 2])
        before = [table.lookup(k) for k in range(200)]
        table.add_core(7)
        table.remove_core(7)
        assert [table.lookup(k) for k in range(200)] == before


class TestDiagnostics:
    def test_bucket_of_matches_lookup(self):
        table = ServiceMapTable(0, [4, 5, 6])
        for k in range(100):
            assert table.cores[table.bucket_of(k)] == table.lookup(k)

    def test_remap_fraction_on_grow(self):
        table = ServiceMapTable(0, [1, 2, 3, 4])
        frac = table.remapped_fraction_on_grow(list(range(2000)))
        assert 0 < frac < 0.25


class TestLookupBatchCache:
    def test_batch_matches_scalar_through_mutations(self):
        """Regression: ``lookup_batch`` caches the core array; the
        cache must be invalidated by every mutation (``add_core`` /
        ``remove_core``) or lookups would return stale cores."""
        import numpy as np

        table = ServiceMapTable(0, [10, 11, 12])
        keys = np.arange(500)

        def check():
            batch = table.lookup_batch(keys)
            assert batch.dtype == np.int64
            assert batch.tolist() == [table.lookup(int(k)) for k in keys]

        check()                  # populates the cache
        check()                  # served from the cache, bit-identical
        table.add_core(13)
        check()                  # cache invalidated by add_core
        table.remove_core(11)
        check()                  # ...and by remove_core
        table.add_core(14)
        table.add_core(15)
        check()
