"""Unit tests for the LAPS scheduler against a scripted load view."""

import pytest

from repro.core.afd import AFDConfig
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.errors import ConfigError


class FakeLoads:
    """A LoadView whose occupancies the test scripts directly."""

    def __init__(self, num_cores, queue_capacity=32):
        self._n = num_cores
        self._cap = queue_capacity
        self.occ = [0] * num_cores

    @property
    def num_cores(self):
        return self._n

    @property
    def queue_capacity(self):
        return self._cap

    def occupancy(self, core_id):
        return self.occ[core_id]


def make_laps(num_cores=8, num_services=2, **cfg_kw):
    cfg_kw.setdefault("afd", AFDConfig(promote_threshold=2))
    sched = LAPSScheduler(LAPSConfig(num_services=num_services, **cfg_kw), rng=0)
    loads = FakeLoads(num_cores)
    sched.bind(loads)
    return sched, loads


def pump(sched, flow, service, n, t=0, h=None):
    """Feed n packets of one flow; returns the last selected core."""
    core = None
    for i in range(n):
        core = sched.select_core(flow, service, h if h is not None else flow, t + i)
    return core


class TestBind:
    def test_partitions_cores(self):
        sched, _ = make_laps(8, 2)
        assert sched.cores_of(0) == (0, 1, 2, 3)
        assert sched.cores_of(1) == (4, 5, 6, 7)

    def test_too_few_cores_rejected(self):
        sched = LAPSScheduler(LAPSConfig(num_services=4))
        with pytest.raises(ConfigError):
            sched.bind(FakeLoads(2))

    def test_threshold_must_fit_queue(self):
        sched = LAPSScheduler(LAPSConfig(num_services=1, high_threshold=64))
        with pytest.raises(ConfigError):
            sched.bind(FakeLoads(4, queue_capacity=32))

    def test_rebind_resets_state(self):
        sched, _ = make_laps()
        pump(sched, 1, 0, 5)
        sched.bind(FakeLoads(8))
        assert len(sched.migration) == 0
        assert sched.afd.observed == 0


class TestSteadyState:
    def test_service_partitioning_respected(self):
        sched, _ = make_laps(8, 2)
        for flow in range(50):
            assert sched.select_core(flow, 0, flow * 7, 0) in sched.cores_of(0)
            assert sched.select_core(flow, 1, flow * 7, 1) in sched.cores_of(1)

    def test_flow_sticks_to_one_core(self):
        sched, _ = make_laps()
        cores = {pump(sched, 42, 0, 1, t=i, h=123) for i in range(20)}
        assert len(cores) == 1

    def test_no_migration_without_imbalance(self):
        sched, _ = make_laps()
        pump(sched, 1, 0, 100)
        assert sched.migrations_installed == 0
        assert sched.imbalance_events == 0


class TestMigration:
    def test_aggressive_flow_migrates_on_overload(self):
        sched, loads = make_laps(8, 2, high_threshold=4)
        # make flow 1 aggressive
        pump(sched, 1, 0, 5)
        home = sched.map_tables[0].lookup(1)
        loads.occ[home] = 4  # overloaded
        dest = sched.select_core(1, 0, 1, 100)
        assert dest != home
        assert dest in sched.cores_of(0)
        assert sched.migration.lookup(1) == dest
        assert sched.migrations_installed == 1

    def test_non_aggressive_flow_not_migrated(self):
        sched, loads = make_laps(8, 2, high_threshold=4)
        home = sched.map_tables[0].lookup(99)
        loads.occ[home] = 4
        dest = sched.select_core(99, 0, 99, 0)
        assert dest == home
        assert sched.migration.lookup(99) is None

    def test_afc_invalidated_after_migration(self):
        sched, loads = make_laps(8, 2, high_threshold=4)
        pump(sched, 1, 0, 5)
        loads.occ[sched.map_tables[0].lookup(1)] = 4
        sched.select_core(1, 0, 1, 100)
        assert not sched.afd.is_aggressive(1)

    def test_pinned_flow_returns_early(self):
        sched, loads = make_laps(8, 2, high_threshold=4)
        pump(sched, 1, 0, 5)
        home = sched.map_tables[0].lookup(1)
        loads.occ[home] = 4
        dest = sched.select_core(1, 0, 1, 100)
        loads.occ[home] = 0
        # pin persists even after the overload clears
        assert sched.select_core(1, 0, 1, 200) == dest

    def test_migration_stays_within_service(self):
        sched, loads = make_laps(8, 2, high_threshold=4)
        pump(sched, 1, 0, 5)
        for c in sched.cores_of(0):
            loads.occ[c] = 4
        loads.occ[sched.cores_of(1)[0]] = 0
        # all of service 0 is overloaded; service 1 has room but the
        # *migration* path must not cross services
        dest = sched.select_core(1, 0, 1, 100)
        assert dest in sched.cores_of(0) or dest in sched.cores_of(1)
        # if it crossed, it must be via a core transfer, not a pin
        if dest in sched.cores_of(1):
            pytest.fail("migrated into a foreign service's core")

    def test_pin_aware_placement_spreads_elephants(self):
        sched, loads = make_laps(8, 1, high_threshold=4)
        # make flows 1..3 aggressive
        for f in (1, 2, 3):
            pump(sched, f, 0, 5)
        # overload every hash home; cores 6 and 7 idle
        for f in (1, 2, 3):
            loads.occ[sched.map_tables[0].lookup(f)] = 4
        dests = set()
        for f in (1, 2, 3):
            if loads.occ[sched.map_tables[0].lookup(f)] >= 4:
                dests.add(sched.select_core(f, 0, f, 100))
        # pin-aware placement must not dump all elephants on one core
        assert len(dests) >= min(2, len(dests) or 1)


class TestCoreRequest:
    def test_request_core_on_total_overload(self):
        sched, loads = make_laps(8, 2, idle_threshold_ns=100, high_threshold=4)
        # service 1's cores are quiet since t=0; overload all of service 0
        for c in sched.cores_of(0):
            loads.occ[c] = 4
        t = 10_000
        before = len(sched.cores_of(0))
        sched.select_core(5, 0, 5, t)
        assert len(sched.cores_of(0)) == before + 1
        assert len(sched.cores_of(1)) == 3
        assert sched.core_requests == 1

    def test_denied_when_no_surplus(self):
        sched, loads = make_laps(8, 2, idle_threshold_ns=100, high_threshold=4)
        for c in range(8):
            loads.occ[c] = 4
            sched.allocator.touch(c, 10_000)
        sched.select_core(5, 0, 5, 10_000)
        assert sched.core_requests_denied >= 1

    def test_stale_pin_dropped_when_core_donated(self):
        sched, loads = make_laps(8, 2, idle_threshold_ns=100, high_threshold=4)
        # pin flow 1 of service 1 onto one of service 1's cores
        pump(sched, 1, 1, 5)
        home = sched.map_tables[1].lookup(1)
        loads.occ[home] = 4
        pinned = sched.select_core(1, 1, 1, 50)
        # donate that pinned core to service 0
        sched.allocator.force_transfer(pinned, 0)
        sched.map_tables[1].remove_core(pinned)
        sched.map_tables[0].add_core(pinned)
        loads.occ[pinned] = 0
        dest = sched.select_core(1, 1, 1, 60)
        assert dest in sched.cores_of(1)
        assert sched.stale_migrations_dropped >= 1


class TestStats:
    def test_stats_keys(self):
        sched, _ = make_laps()
        stats = sched.stats()
        assert "migrations_installed" in stats
        assert "core_transfers" in stats
        assert "afd_promotions" in stats
