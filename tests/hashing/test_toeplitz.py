"""Tests for the Toeplitz/RSS hash against the Microsoft spec vectors."""

import numpy as np
import pytest

from repro.hashing.toeplitz import MICROSOFT_RSS_KEY, ToeplitzHasher


def _ip(s: str) -> int:
    parts = [int(x) for x in s.split(".")]
    return (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]


#: (src, sport, dst, dport, expected) from the Microsoft RSS
#: verification suite (IPv4 with TCP ports).
MS_VECTORS = [
    ("66.9.149.187", 2794, "161.142.100.80", 1766, 0x51CCC178),
    ("199.92.111.2", 14230, "65.69.140.83", 4739, 0xC626B0EA),
    ("24.19.198.95", 12898, "12.22.207.184", 38024, 0x5C2B394A),
]


class TestMicrosoftVectors:
    @pytest.mark.parametrize("src,sport,dst,dport,expected", MS_VECTORS)
    def test_ipv4_tcp(self, src, sport, dst, dport, expected):
        th = ToeplitzHasher()
        assert th.hash_ipv4(_ip(src), _ip(dst), sport, dport) == expected


class TestHasher:
    def test_default_key(self):
        assert ToeplitzHasher().key == MICROSOFT_RSS_KEY
        assert len(MICROSOFT_RSS_KEY) == 40

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            ToeplitzHasher(b"abc")

    def test_empty_input(self):
        assert ToeplitzHasher().hash(b"") == 0

    def test_input_too_long_rejected(self):
        with pytest.raises(ValueError):
            ToeplitzHasher().hash(b"x" * 37)

    def test_hash_32_bit(self):
        h = ToeplitzHasher().hash(b"\xff" * 12)
        assert 0 <= h <= 0xFFFFFFFF

    def test_deterministic(self):
        th = ToeplitzHasher()
        assert th.hash(b"abcd") == th.hash(b"abcd")

    def test_linearity(self):
        """Toeplitz is linear over GF(2): H(a ^ b) == H(a) ^ H(b)."""
        th = ToeplitzHasher()
        a = bytes([1, 2, 3, 4])
        b = bytes([5, 6, 7, 8])
        xored = bytes(x ^ y for x, y in zip(a, b))
        assert th.hash(xored) == th.hash(a) ^ th.hash(b)


class TestBatch:
    def test_batch_matches_scalar(self, rng):
        th = ToeplitzHasher()
        rows = rng.integers(0, 256, size=(32, 12), dtype=np.uint8)
        batch = th.hash_batch(rows)
        for i in range(rows.shape[0]):
            assert int(batch[i]) == th.hash(rows[i].tobytes())

    def test_batch_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            ToeplitzHasher().hash_batch(np.zeros((2, 12), dtype=np.int64))

    def test_batch_rejects_too_wide(self):
        with pytest.raises(ValueError):
            ToeplitzHasher().hash_batch(np.zeros((2, 37), dtype=np.uint8))

    def test_batch_vectors(self):
        th = ToeplitzHasher()
        rows = np.zeros((len(MS_VECTORS), 12), dtype=np.uint8)
        for i, (src, sport, dst, dport, _) in enumerate(MS_VECTORS):
            rows[i, :4] = list(_ip(src).to_bytes(4, "big"))
            rows[i, 4:8] = list(_ip(dst).to_bytes(4, "big"))
            rows[i, 8:10] = list(sport.to_bytes(2, "big"))
            rows[i, 10:12] = list(dport.to_bytes(2, "big"))
        out = th.hash_batch(rows)
        for i, (_, _, _, _, expected) in enumerate(MS_VECTORS):
            assert int(out[i]) == expected
