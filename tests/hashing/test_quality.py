"""Tests for the hash-quality analysis (the Cao et al. [8] claim)."""

import numpy as np
import pytest

from repro.hashing.crc import CRC16_CCITT
from repro.hashing.five_tuple import flow_hash_batch
from repro.hashing.quality import (
    bucket_loads,
    chi_square_pvalue,
    chi_square_statistic,
    hash_quality_report,
    load_imbalance,
)
from repro.trace.models import FlowPopulation


def population_hashes(n=5000, seed=0):
    pop = FlowPopulation.sample(n, 1.0, seed)
    hashes = flow_hash_batch(
        pop.src_ip, pop.dst_ip, pop.src_port, pop.dst_port, pop.proto,
        spec=CRC16_CCITT,
    ).astype(np.int64)
    return hashes, pop.weights


class TestBucketLoads:
    def test_counts(self):
        loads = bucket_loads(np.array([0, 1, 2, 16]), 16)
        assert loads[0] == 2 and loads[1] == 1

    def test_weighted(self):
        loads = bucket_loads(np.array([0, 0, 1]), 2, np.array([1.0, 2.0, 5.0]))
        assert loads[0] == 3.0 and loads[1] == 5.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            bucket_loads(np.array([0]), 0)
        with pytest.raises(ValueError):
            bucket_loads(np.array([0, 1]), 4, np.array([1.0]))


class TestChiSquare:
    def test_crc16_is_uniform_on_real_keys(self):
        """Cao et al.'s finding: CRC16 of 5-tuples is ~uniform."""
        hashes, _ = population_hashes()
        assert chi_square_pvalue(hashes, 16) > 0.01

    def test_bad_hash_rejected(self):
        """A constant-bucket 'hash' must fail the uniformity test."""
        hashes = np.zeros(5000, dtype=np.int64)
        assert chi_square_pvalue(hashes, 16) < 1e-10

    def test_statistic_zero_when_exactly_uniform(self):
        hashes = np.arange(160)
        assert chi_square_statistic(hashes, 16) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            chi_square_statistic(np.array([], dtype=np.int64), 4)


class TestLoadImbalance:
    def test_uniform_is_one(self):
        assert load_imbalance(np.arange(160), 16) == pytest.approx(1.0)

    def test_skewed_weights_break_even_a_perfect_hash(self):
        """The paper's motivation: uniform hashing of skewed flows still
        overloads the elephant's bucket."""
        hashes, weights = population_hashes()
        unweighted = load_imbalance(hashes, 16)
        weighted = load_imbalance(hashes, 16, weights)
        assert weighted > unweighted

    def test_no_load_rejected(self):
        with pytest.raises(ValueError):
            load_imbalance(np.array([0]), 4, np.array([0.0]))


class TestReport:
    def test_keys(self):
        hashes, weights = population_hashes(1000)
        report = hash_quality_report(hashes, 16, weights)
        assert set(report) == {"chi2_pvalue", "weighted_imbalance", "jain_fairness"}
        assert 0 <= report["jain_fairness"] <= 1

    def test_crc16_vs_toeplitz_both_uniform(self):
        from repro.hashing.five_tuple import pack_five_tuples_batch
        from repro.hashing.toeplitz import ToeplitzHasher

        pop = FlowPopulation.sample(4000, 1.0, 1)
        crc = flow_hash_batch(
            pop.src_ip, pop.dst_ip, pop.src_port, pop.dst_port, pop.proto
        ).astype(np.int64)
        packed = pack_five_tuples_batch(
            pop.src_ip, pop.dst_ip, pop.src_port, pop.dst_port, pop.proto
        )[:, :12]  # Toeplitz over the RSS 12-byte input
        toep = ToeplitzHasher().hash_batch(packed).astype(np.int64)
        assert chi_square_pvalue(crc, 16) > 0.001
        assert chi_square_pvalue(toep, 16) > 0.001
