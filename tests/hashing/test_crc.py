"""Tests for the CRC family (known vectors + scalar/batch agreement)."""

import zlib

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.crc import (
    CRC16_CCITT,
    CRC16_IBM,
    CRC32,
    crc16_ccitt,
    crc16_ibm,
    crc32,
    make_crc_table,
)

CHECK = b"123456789"


class TestKnownVectors:
    """The standard check value of each CRC over b'123456789'."""

    def test_crc16_ccitt(self):
        assert crc16_ccitt(CHECK) == 0x29B1

    def test_crc16_ibm(self):
        assert crc16_ibm(CHECK) == 0xBB3D

    def test_crc32(self):
        assert crc32(CHECK) == 0xCBF43926

    @given(st.binary(max_size=256))
    def test_crc32_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    def test_empty_input(self):
        # CRC of nothing = init (^ xor_out)
        assert crc16_ccitt(b"") == 0xFFFF
        assert crc32(b"") == 0


class TestTable:
    def test_table_size(self):
        assert len(make_crc_table(0x1021, 16, False)) == 256

    def test_table_cached(self):
        assert make_crc_table(0x1021, 16, False) is make_crc_table(0x1021, 16, False)

    def test_values_fit_width(self):
        table = make_crc_table(0x1021, 16, False)
        assert all(0 <= v <= 0xFFFF for v in table)

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            make_crc_table(0x3, 4, False)


class TestBatch:
    @pytest.mark.parametrize("spec", [CRC16_CCITT, CRC16_IBM, CRC32])
    def test_batch_matches_scalar(self, spec, rng):
        rows = rng.integers(0, 256, size=(64, 13), dtype=np.uint8)
        batch = spec.checksum_batch(rows)
        for i in range(rows.shape[0]):
            assert int(batch[i]) == spec.checksum(rows[i].tobytes())

    def test_batch_empty(self):
        out = CRC16_CCITT.checksum_batch(np.empty((0, 13), dtype=np.uint8))
        assert out.shape == (0,)

    def test_batch_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            CRC16_CCITT.checksum_batch(np.zeros((2, 4), dtype=np.int32))

    def test_batch_rejects_1d(self):
        with pytest.raises(ValueError):
            CRC16_CCITT.checksum_batch(np.zeros(4, dtype=np.uint8))

    @given(st.integers(min_value=1, max_value=30))
    def test_batch_row_width_independent(self, width):
        rows = np.arange(width * 3, dtype=np.uint8).reshape(3, width)
        batch = CRC16_CCITT.checksum_batch(rows)
        for i in range(3):
            assert int(batch[i]) == CRC16_CCITT.checksum(rows[i].tobytes())


class TestSpecProperties:
    def test_mask(self):
        assert CRC16_CCITT.mask == 0xFFFF
        assert CRC32.mask == 0xFFFFFFFF

    def test_output_within_width(self, rng):
        for _ in range(20):
            data = rng.integers(0, 256, size=20, dtype=np.uint8).tobytes()
            assert 0 <= crc16_ccitt(data) <= 0xFFFF

    def test_different_inputs_usually_differ(self):
        assert crc16_ccitt(b"flow-a") != crc16_ccitt(b"flow-b")

    def test_deterministic(self):
        assert crc16_ccitt(b"x" * 13) == crc16_ccitt(b"x" * 13)
