"""Tests for flow keys: packing layout, validation, batch agreement."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.crc import CRC16_CCITT
from repro.hashing.five_tuple import (
    KEY_BYTES,
    FiveTuple,
    flow_hash,
    flow_hash_batch,
    pack_five_tuple,
    pack_five_tuples_batch,
)

ipv4 = st.integers(min_value=0, max_value=0xFFFFFFFF)
port = st.integers(min_value=0, max_value=0xFFFF)
proto = st.integers(min_value=0, max_value=0xFF)
five_tuples = st.builds(FiveTuple, ipv4, ipv4, port, port, proto)


class TestPacking:
    def test_layout(self):
        key = FiveTuple(0x0A000001, 0xC0A80101, 0x1234, 0x0050, 6)
        packed = pack_five_tuple(key)
        assert len(packed) == KEY_BYTES == 13
        assert packed == bytes(
            [0x0A, 0, 0, 1, 0xC0, 0xA8, 1, 1, 0x12, 0x34, 0x00, 0x50, 6]
        )

    @given(five_tuples)
    def test_packed_method_matches(self, key):
        assert key.packed() == pack_five_tuple(key)

    def test_out_of_range_ip_rejected(self):
        with pytest.raises(ValueError):
            pack_five_tuple(FiveTuple(1 << 32, 0, 0, 0, 0))

    def test_out_of_range_port_rejected(self):
        with pytest.raises(ValueError):
            pack_five_tuple(FiveTuple(0, 0, 70000, 0, 0))

    def test_out_of_range_proto_rejected(self):
        with pytest.raises(ValueError):
            pack_five_tuple(FiveTuple(0, 0, 0, 0, 300))


class TestFromStrings:
    def test_roundtrip(self):
        key = FiveTuple.from_strings("10.1.2.3", "192.168.0.1", 80, 443, 6)
        assert key.src_ip == (10 << 24) | (1 << 16) | (2 << 8) | 3
        assert key.dst_ip == (192 << 24) | (168 << 16) | 1

    def test_str_rendering(self):
        key = FiveTuple.from_strings("10.0.0.1", "10.0.0.2", 1, 2, 17)
        assert "10.0.0.1:1" in str(key)

    def test_bad_address_rejected(self):
        with pytest.raises(ValueError):
            FiveTuple.from_strings("10.0.0", "10.0.0.1", 1, 2, 6)

    def test_bad_octet_rejected(self):
        with pytest.raises(ValueError):
            FiveTuple.from_strings("10.0.0.300", "10.0.0.1", 1, 2, 6)


class TestBatchPacking:
    @given(st.lists(five_tuples, min_size=1, max_size=20))
    def test_batch_matches_scalar(self, keys):
        packed = pack_five_tuples_batch(
            np.array([k.src_ip for k in keys]),
            np.array([k.dst_ip for k in keys]),
            np.array([k.src_port for k in keys]),
            np.array([k.dst_port for k in keys]),
            np.array([k.protocol for k in keys]),
        )
        for i, key in enumerate(keys):
            assert packed[i].tobytes() == pack_five_tuple(key)


class TestHashing:
    def test_flow_hash_is_crc16_of_packed(self):
        key = FiveTuple.from_strings("1.2.3.4", "5.6.7.8", 9, 10, 6)
        assert flow_hash(key) == CRC16_CCITT.checksum(key.packed())

    @given(st.lists(five_tuples, min_size=1, max_size=16))
    def test_batch_hash_matches_scalar(self, keys):
        hashes = flow_hash_batch(
            np.array([k.src_ip for k in keys]),
            np.array([k.dst_ip for k in keys]),
            np.array([k.src_port for k in keys]),
            np.array([k.dst_port for k in keys]),
            np.array([k.protocol for k in keys]),
        )
        for i, key in enumerate(keys):
            assert int(hashes[i]) == flow_hash(key)

    def test_hash_in_16_bit_range(self):
        key = FiveTuple.from_strings("8.8.8.8", "1.1.1.1", 53, 53, 17)
        assert 0 <= flow_hash(key) <= 0xFFFF
