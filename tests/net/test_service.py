"""Tests for services and the default service set (eq. 4-5 constants)."""

import pytest

from repro import units
from repro.net.service import Service, ServiceSet, default_services


class TestService:
    def test_fixed_cost(self):
        svc = Service(0, "ip", units.us(0.5))
        assert svc.processing_ns(64) == 500
        assert svc.processing_ns(1500) == 500

    def test_affine_cost_eq4(self):
        """Path 1: 3.7us + 0.23us per 64 B (paper eq. 4)."""
        svc = Service(0, "vpn-out", units.us(3.7), units.us(0.23))
        assert svc.processing_ns(64) == units.us(3.7) + units.us(0.23)
        assert svc.processing_ns(128) == units.us(3.7) + 2 * units.us(0.23)

    def test_fractional_size_scaling(self):
        svc = Service(0, "x", 1000, 640)
        assert svc.processing_ns(32) == 1000 + 320

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            default_services()[0].processing_ns(0)

    def test_capacity(self):
        svc = Service(0, "ip", units.us(0.5))
        assert svc.capacity_pps(64) == pytest.approx(2e6)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Service(-1, "x", 100)

    def test_zero_base_rejected(self):
        with pytest.raises(ValueError):
            Service(0, "x", 0)


class TestServiceSet:
    def test_dense_ids_required(self):
        with pytest.raises(ValueError):
            ServiceSet([Service(1, "x", 100)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ServiceSet([])

    def test_indexing_and_iteration(self):
        services = default_services()
        assert len(services) == 4
        assert services[1].name == "ip-forward"
        assert [s.service_id for s in services] == [0, 1, 2, 3]

    def test_names(self):
        assert default_services().names == (
            "vpn-out", "ip-forward", "malware-scan", "vpn-in-scan",
        )

    def test_capacity_aggregate(self):
        services = default_services()
        cap = services.capacity_pps([0, 1, 0, 0], mean_size_bytes=64)
        assert cap == pytest.approx(2e6)  # one ip-forward core

    def test_capacity_needs_count_per_service(self):
        with pytest.raises(ValueError):
            default_services().capacity_pps([1, 2])


class TestPaperConstants:
    """Sec. IV-C3's published values."""

    def test_ip_forward_half_us(self):
        assert default_services()[1].processing_ns(64) == 500

    def test_malware_scan(self):
        assert default_services()[2].processing_ns(1000) == 3530

    def test_vpn_out_eq4(self):
        svc = default_services()[0]
        assert svc.base_ns == 3700 and svc.per_64b_ns == 230

    def test_vpn_in_eq5(self):
        svc = default_services()[3]
        assert svc.base_ns == 5800 and svc.per_64b_ns == 210
