"""Tests for the Frame-Manager packet classifier."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hashing.five_tuple import FiveTuple
from repro.net.classifier import MatchRule, ServiceClassifier, default_edge_rules


def key(src="10.0.0.1", dst="192.168.0.1", sport=40000, dport=80, proto=6):
    return FiveTuple.from_strings(src, dst, sport, dport, proto)


class TestMatchRule:
    def test_wildcard_matches_everything(self):
        assert MatchRule(0).matches(key())

    def test_protocol_filter(self):
        rule = MatchRule(0, protocol=17)
        assert not rule.matches(key(proto=6))
        assert rule.matches(key(proto=17))

    def test_port_range(self):
        rule = MatchRule(0, dst_ports=(80, 90))
        assert rule.matches(key(dport=85))
        assert not rule.matches(key(dport=79))

    def test_src_prefix(self):
        rule = MatchRule(0, src_prefix="10.0.0.0/8")
        assert rule.matches(key(src="10.200.3.4"))
        assert not rule.matches(key(src="11.0.0.1"))

    def test_dst_prefix_exact_host(self):
        rule = MatchRule(0, dst_prefix="192.168.0.1/32")
        assert rule.matches(key(dst="192.168.0.1"))
        assert not rule.matches(key(dst="192.168.0.2"))

    def test_zero_length_prefix_matches_all(self):
        assert MatchRule(0, src_prefix="0.0.0.0/0").matches(key())

    def test_conjunction(self):
        rule = MatchRule(0, protocol=6, dst_ports=(443, 443))
        assert rule.matches(key(dport=443))
        assert not rule.matches(key(dport=443, proto=17))

    @pytest.mark.parametrize(
        "kw",
        [
            {"service_id": -1},
            {"service_id": 0, "dst_ports": (5, 2)},
            {"service_id": 0, "dst_ports": (0, 70000)},
            {"service_id": 0, "src_prefix": "10.0.0/8"},
            {"service_id": 0, "src_prefix": "10.0.0.0/40"},
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ConfigError):
            MatchRule(**kw)


class TestClassifier:
    def make(self):
        return ServiceClassifier(
            rules=[
                MatchRule(2, protocol=6, dst_ports=(443, 443)),
                MatchRule(1, protocol=17),
            ],
            default_service=0,
        )

    def test_first_match_wins(self):
        clf = ServiceClassifier(
            rules=[MatchRule(1, protocol=6), MatchRule(2, dst_ports=(80, 80))],
        )
        assert clf.classify(key(dport=80, proto=6)) == 1

    def test_default_service(self):
        assert self.make().classify(key(dport=22, proto=6)) == 0

    def test_num_services(self):
        assert self.make().num_services == 3

    def test_classify_flows_matches_scalar(self, small_synthetic):
        clf = default_edge_rules()
        per_flow = clf.classify_flows(small_synthetic)
        for fid in range(0, small_synthetic.num_flows, 37):
            assert per_flow[fid] == clf.classify(small_synthetic.five_tuple(fid))

    def test_split_trace_partitions_packets(self, small_synthetic):
        clf = default_edge_rules()
        parts = clf.split_trace(small_synthetic)
        assert sum(p.num_packets for p in parts) == small_synthetic.num_packets
        per_flow = clf.classify_flows(small_synthetic)
        for sid, part in enumerate(parts):
            if part.num_packets:
                assert set(per_flow[np.unique(part.flow_id)]) == {sid}

    def test_split_trace_shares_flow_table(self, small_synthetic):
        parts = default_edge_rules().split_trace(small_synthetic)
        for p in parts:
            assert p.num_flows == small_synthetic.num_flows

    def test_invalid_default(self):
        with pytest.raises(ConfigError):
            ServiceClassifier([], default_service=-1)


class TestDefaultEdgeRules:
    def test_https_goes_to_scan(self):
        assert default_edge_rules().classify(key(dport=443)) == 2

    def test_vpn_out(self):
        assert default_edge_rules().classify(key(dport=1194, proto=17)) == 0

    def test_vpn_in(self):
        assert default_edge_rules().classify(key(sport=1194, dport=9999)) == 3

    def test_default_forwarding(self):
        assert default_edge_rules().classify(key(dport=12345, proto=17)) == 1

    def test_covers_four_services(self):
        assert default_edge_rules().num_services == 4

    def test_end_to_end_with_workload(self, small_synthetic, tiny_trace):
        """A single mixed trace drives a 4-service simulation."""
        from repro import units
        from repro.core.laps import LAPSConfig, LAPSScheduler
        from repro.net.service import default_services
        from repro.sim.config import SimConfig
        from repro.sim.generator import HoltWintersParams
        from repro.sim.system import simulate
        from repro.sim.workload import build_workload

        clf = default_edge_rules()
        parts = clf.split_trace(small_synthetic)
        # guard against empty parts: give each at least one packet
        parts = [p if p.num_packets else tiny_trace for p in parts]
        services = default_services()
        params = [
            HoltWintersParams(a=0.4 * 4 * services[i].capacity_pps(348))
            for i in range(4)
        ]
        wl = build_workload(parts, params, units.ms(3), seed=0)
        rep = simulate(
            wl, LAPSScheduler(LAPSConfig(num_services=4)),
            SimConfig(num_cores=16, collect_latencies=False),
        )
        assert rep.departed > 0
        assert rep.cold_cache_fraction < 0.05
