"""Tests for the Fig. 5 edge-router task graph."""

import pytest

from repro import units
from repro.net.service import default_services
from repro.net.taskgraph import (
    Task,
    TaskGraph,
    build_edge_router_graph,
    services_from_graph,
)


class TestTaskGraph:
    def test_duplicate_task_rejected(self):
        tg = TaskGraph()
        tg.add_task(Task("a", 1))
        with pytest.raises(ValueError):
            tg.add_task(Task("a", 2))

    def test_path_needs_known_tasks(self):
        tg = TaskGraph()
        tg.add_task(Task("a", 1))
        with pytest.raises(ValueError):
            tg.add_path("p", ["a", "ghost"])

    def test_path_needs_two_tasks(self):
        tg = TaskGraph()
        tg.add_task(Task("a", 1))
        with pytest.raises(ValueError):
            tg.add_path("p", ["a"])

    def test_duplicate_path_rejected(self):
        tg = TaskGraph()
        for name in "ab":
            tg.add_task(Task(name, 1))
        tg.add_path("p", ["a", "b"])
        with pytest.raises(ValueError):
            tg.add_path("p", ["a", "b"])

    def test_cycle_rejected(self):
        tg = TaskGraph()
        for name in "ab":
            tg.add_task(Task(name, 1))
        tg.add_path("p", ["a", "b"])
        with pytest.raises(ValueError):
            tg.add_path("q", ["b", "a"])

    def test_path_cost_sums_tasks(self):
        tg = TaskGraph()
        tg.add_task(Task("a", 100, 10))
        tg.add_task(Task("b", 200, 20))
        tg.add_path("p", ["a", "b"])
        assert tg.path_cost("p") == (300, 30)

    def test_unknown_path_cost_rejected(self):
        with pytest.raises(KeyError):
            TaskGraph().path_cost("nope")

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Task("bad", -1)


class TestEdgeRouterGraph:
    def test_four_paths(self):
        tg = build_edge_router_graph()
        assert set(tg.paths) == {"vpn-out", "ip-forward", "malware-scan", "vpn-in-scan"}

    def test_path_costs_match_paper(self):
        """The per-task costs must sum to the Sec. IV-C service models."""
        tg = build_edge_router_graph()
        assert tg.path_cost("ip-forward") == (units.us(0.5), 0)
        assert tg.path_cost("malware-scan") == (units.us(3.53), 0)
        assert tg.path_cost("vpn-out") == (units.us(3.7), units.us(0.23))
        assert tg.path_cost("vpn-in-scan") == (units.us(5.8), units.us(0.21))

    def test_is_dag(self):
        import networkx as nx

        assert nx.is_directed_acyclic_graph(build_edge_router_graph().graph)

    def test_task_lookup(self):
        tg = build_edge_router_graph()
        assert tg.task("scan").base_ns == units.us(3.03)


class TestServicesFromGraph:
    def test_matches_default_services(self):
        """Collapsing Fig. 5's paths must yield the paper's services."""
        derived = services_from_graph(build_edge_router_graph())
        reference = default_services()
        assert len(derived) == len(reference)
        for d, r in zip(derived, reference):
            assert d.name == r.name
            assert d.base_ns == r.base_ns
            assert d.per_64b_ns == r.per_64b_ns
