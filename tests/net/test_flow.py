"""Tests for flow records and the flow table."""

import pytest

from repro.hashing.five_tuple import FiveTuple
from repro.net.flow import FlowRecord, FlowTable


def key(i: int) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0xC0A80001, 1000 + i, 80, 6)


class TestFlowRecord:
    def test_observe_accumulates(self):
        rec = FlowRecord(0)
        rec.observe(100, 10)
        rec.observe(200, 30)
        assert rec.packets == 2
        assert rec.bytes == 300
        assert rec.first_ns == 10 and rec.last_ns == 30

    def test_assign_core_first_time_not_migration(self):
        rec = FlowRecord(0)
        assert rec.assign_core(3) is False
        assert rec.migrations == 0

    def test_assign_core_same_core_not_migration(self):
        rec = FlowRecord(0)
        rec.assign_core(3)
        assert rec.assign_core(3) is False

    def test_assign_core_change_is_migration(self):
        rec = FlowRecord(0)
        rec.assign_core(3)
        assert rec.assign_core(5) is True
        assert rec.migrations == 1
        assert rec.last_core == 5

    def test_mean_rate(self):
        rec = FlowRecord(0)
        rec.observe(1, 0)
        rec.observe(1, 1_000_000_000)  # 1 s apart
        assert rec.mean_rate_pps == pytest.approx(1.0)

    def test_mean_rate_single_packet_zero(self):
        rec = FlowRecord(0)
        rec.observe(1, 5)
        assert rec.mean_rate_pps == 0.0


class TestFlowTable:
    def test_intern_assigns_dense_ids(self):
        table = FlowTable()
        assert table.intern(key(0)) == 0
        assert table.intern(key(1)) == 1
        assert table.intern(key(0)) == 0
        assert len(table) == 2

    def test_lookup(self):
        table = FlowTable()
        table.intern(key(7))
        assert table.lookup(key(7)) == 0
        assert table.lookup(key(8)) is None

    def test_ensure_grows(self):
        table = FlowTable()
        rec = table.ensure(4, service_id=2)
        assert len(table) == 5
        assert rec.flow_id == 4
        assert rec.service_id == 2

    def test_ensure_keeps_existing_service(self):
        table = FlowTable()
        table.ensure(0, service_id=1)
        rec = table.ensure(0, service_id=3)
        assert rec.service_id == 1

    def test_ensure_negative_rejected(self):
        with pytest.raises(ValueError):
            FlowTable().ensure(-1)

    def test_top_by_bytes(self):
        table = FlowTable()
        for i, size in enumerate([100, 500, 300]):
            table.ensure(i).observe(size, 0)
        top = table.top_by_bytes(2)
        assert [r.flow_id for r in top] == [1, 2]

    def test_top_by_packets_tie_break_by_id(self):
        table = FlowTable()
        for i in range(3):
            table.ensure(i).observe(10, 0)
        top = table.top_by_packets(2)
        assert [r.flow_id for r in top] == [0, 1]

    def test_top_negative_rejected(self):
        with pytest.raises(ValueError):
            FlowTable().top_by_bytes(-1)

    def test_total_migrations(self):
        table = FlowTable()
        rec = table.ensure(0)
        rec.assign_core(0)
        rec.assign_core(1)
        rec.assign_core(0)
        assert table.total_migrations() == 2

    def test_iteration(self):
        table = FlowTable()
        table.ensure(2)
        assert [r.flow_id for r in table] == [0, 1, 2]
