"""Tests for the Packet descriptor."""

import pytest

from repro.net.packet import Packet


def make(**kw):
    defaults = dict(flow_id=0, service_id=0, size_bytes=64, seq=0, arrival_ns=100)
    defaults.update(kw)
    return Packet(**defaults)


class TestValidation:
    def test_valid(self):
        p = make()
        assert p.flow_id == 0 and not p.dropped

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            make(size_bytes=0)

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            make(seq=-1)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            make(arrival_ns=-5)


class TestDerived:
    def test_latency_before_departure(self):
        assert make().latency_ns == -1

    def test_latency(self):
        p = make(arrival_ns=100)
        p.depart_ns = 350
        assert p.latency_ns == 250

    def test_queueing_before_start(self):
        assert make().queueing_ns == -1

    def test_queueing(self):
        p = make(arrival_ns=100)
        p.start_ns = 180
        assert p.queueing_ns == 80

    def test_slots_prevent_new_attrs(self):
        with pytest.raises(AttributeError):
            make().nonsense = 1
