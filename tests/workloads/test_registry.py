"""Tests for the named-workload registry and its harness adapters."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigError
from repro.sim.source import PacketSource, workload_fingerprint
from repro.sim.workload import Workload
from repro.workloads.registry import (
    BUNDLED_PCAP,
    WORKLOAD_PRESETS,
    catalog,
    make_workload,
    registry_workload,
    workload_preset_names,
)

SMALL = dict(duration_ns=units.ms(3), trace_packets=3_000, seed=2)


class TestCatalog:
    def test_at_least_six_presets(self):
        assert len(WORKLOAD_PRESETS) >= 6

    def test_kinds_covered(self):
        kinds = {p.kind for p in WORKLOAD_PRESETS.values()}
        assert {"cdf", "mmpp", "diurnal", "replay"} <= kinds

    def test_bundled_pcap_exists(self):
        assert BUNDLED_PCAP.exists()

    def test_catalog_rows(self):
        rows = catalog()
        assert [r["name"] for r in rows] == workload_preset_names()
        for row in rows:
            assert row["description"] and row["provenance"]
        tiny = next(r for r in rows if r["name"] == "replay-tiny")
        assert tiny["pcap"] == "tiny.pcap.gz" and tiny["repeat"] >= 1


class TestMakeWorkload:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_PRESETS))
    def test_both_modes_bit_identical(self, name):
        wl = make_workload(name, **SMALL)
        src = make_workload(name, stream=True, chunk_size=513, **SMALL)
        assert isinstance(wl, Workload)
        assert isinstance(src, PacketSource)
        assert workload_fingerprint(wl) == src.fingerprint()

    def test_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            make_workload("nope")

    def test_utilisation_calibration(self):
        # offered rate tracks the utilisation knob across model families
        for name in ("websearch", "websearch-mmpp", "diurnal-flash"):
            lo = make_workload(name, utilisation=0.4, **SMALL)
            hi = make_workload(name, utilisation=0.8, **SMALL)
            assert hi.num_packets > 1.5 * lo.num_packets, name

    def test_pcap_scheme(self, tmp_path):
        src = make_workload(f"pcap:{BUNDLED_PCAP}", stream=True)
        assert isinstance(src, PacketSource)
        assert src.num_services == 1
        with pytest.raises(ConfigError, match="needs a path"):
            make_workload("pcap:")

    def test_replay_speedup(self):
        slow = make_workload("replay-tiny")
        fast = make_workload("replay-tiny", speedup=2.0)
        assert fast.duration_ns < slow.duration_ns
        assert fast.num_packets == slow.num_packets

    def test_registry_workload_adapter(self):
        a = registry_workload("websearch", **SMALL)
        b = make_workload("websearch", **SMALL)
        assert workload_fingerprint(a) == workload_fingerprint(b)

    def test_four_service_presets_split_services(self):
        wl = make_workload("websearch", **SMALL)
        assert wl.num_services == 4
        assert set(np.unique(wl.service_id)) == {0, 1, 2, 3}


class TestHarnessIntegration:
    def test_sim_cli_workload_flag(self, capsys):
        from repro.sim.cli import main

        rc = main([
            "compare", "--workload", "websearch", "--duration-ms", "2",
            "--packets", "2000", "--schedulers", "hash-static",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "preset 'websearch'" in out
        assert "hash-static" in out

    def test_sim_cli_workload_streamed(self, capsys):
        from repro.sim.cli import main

        rc = main([
            "compare", "--workload", "replay-tiny", "--stream",
            "--schedulers", "hash-static",
        ])
        assert rc == 0
        assert "streamed" in capsys.readouterr().out

    def test_experiments_harness(self):
        from repro.experiments import workloads

        result = workloads.run(
            quick=True, presets=("websearch", "replay-tiny"),
            duration_ns=units.ms(2), trace_packets=2_000,
        )
        assert len(result.rows) == 2 * len(workloads.SCHEDULERS)
        assert set(result.column("workload")) == {"websearch", "replay-tiny"}

    def test_faults_harness_trace_names(self):
        from repro.faults.harness import fault_workload

        wl = fault_workload(
            0.5, units.ms(2), trace_packets=2_000,
            trace_names=("websearch-1", "websearch-2", "datamining-1",
                         "cachemice-1"),
        )
        assert wl.num_services == 4

    def test_tournament_w1_group(self):
        from repro.experiments.tournament import _zoo_workload

        wl = _zoo_workload(
            group="W1", utilisation=0.5, duration_ns=units.ms(2),
            trace_packets=2_000, seed=0, fault="none",
        )
        assert wl.num_packets > 0

    def test_tournament_quick_keeps_explicit_groups(self):
        from repro.experiments.tournament import run_tournament

        payload = run_tournament(
            schedulers=("hash-static",), groups=("W1",), faults=("none",),
            quick=True, duration_ns=units.ms(2), trace_packets=2_000,
        )
        assert {r["group"] for r in payload["runs"]} == {"W1"}
