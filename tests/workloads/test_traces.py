"""Tests for CDF trace generation and the unified resolver."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.trace.synthetic import preset_trace
from repro.workloads.traces import (
    CDF_TRACE_PRESETS,
    CDFTraceConfig,
    cdf_preset_trace,
    generate_cdf_trace,
    resolve_trace,
    trace_preset_names,
)


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ConfigError):
            CDFTraceConfig(num_packets=0)
        with pytest.raises(ConfigError):
            CDFTraceConfig(num_packets=100, mtu=0)
        with pytest.raises(ConfigError):
            CDFTraceConfig(num_packets=100, concurrency=0)
        with pytest.raises(ConfigError):
            CDFTraceConfig(num_packets=100, max_flow_packets=0)
        with pytest.raises(ConfigError):
            CDFTraceConfig(num_packets=100, max_flow_fraction=0.0)
        with pytest.raises(ConfigError):
            CDFTraceConfig(num_packets=100, mean_rate_pps=0.0)

    def test_unknown_distribution(self):
        cfg = CDFTraceConfig(num_packets=100, distribution="nope")
        with pytest.raises(ConfigError, match="unknown size distribution"):
            cfg.resolve_distribution()


class TestGeneration:
    def test_exact_packet_count(self):
        for n in (1, 97, 5000):
            trace = generate_cdf_trace(
                CDFTraceConfig(num_packets=n, distribution="websearch")
            )
            assert trace.num_packets == n

    def test_deterministic(self):
        cfg = CDFTraceConfig(num_packets=2000, distribution="datamining", seed=4)
        a, b = generate_cdf_trace(cfg), generate_cdf_trace(cfg)
        assert a.fingerprint() == b.fingerprint()

    def test_flow_cap_respected(self):
        cfg = CDFTraceConfig(
            num_packets=4000, distribution="datamining",
            max_flow_packets=50, max_flow_fraction=1.0, seed=1,
        )
        trace = generate_cdf_trace(cfg)
        assert np.bincount(trace.flow_id).max() <= 50

    def test_fractional_cap_scales_down(self):
        # a short websearch trace must not collapse into one huge flow
        trace = generate_cdf_trace(
            CDFTraceConfig(num_packets=2000, distribution="websearch",
                           max_flow_fraction=0.05, seed=0)
        )
        counts = np.bincount(trace.flow_id)
        assert counts.max() <= 100  # 5% of 2000
        assert trace.num_flows > 10

    def test_sizes_bounded_by_mtu(self):
        trace = generate_cdf_trace(
            CDFTraceConfig(num_packets=3000, distribution="cache-mice", seed=2)
        )
        assert trace.size_bytes.min() >= 64
        assert trace.size_bytes.max() <= 1500

    def test_trains_interleave(self):
        # with concurrency > 1 a multi-packet flow's packets must not
        # all be consecutive
        trace = generate_cdf_trace(
            CDFTraceConfig(num_packets=3000, distribution="websearch",
                           concurrency=32, seed=3)
        )
        fid = trace.flow_id
        runs = np.diff(np.flatnonzero(np.diff(fid) != 0)).max()
        assert runs < 3000  # not one giant run
        # adjacent packets mostly belong to different flows
        assert float((fid[1:] != fid[:-1]).mean()) > 0.5


class TestPresets:
    def test_twelve_presets(self):
        assert len(CDF_TRACE_PRESETS) == 12
        for stem in ("websearch", "datamining", "cachemice"):
            for i in range(1, 5):
                assert f"{stem}-{i}" in CDF_TRACE_PRESETS

    def test_siblings_differ(self):
        a = cdf_preset_trace("websearch-1", num_packets=1000)
        b = cdf_preset_trace("websearch-2", num_packets=1000)
        assert a.fingerprint() != b.fingerprint()

    def test_unknown_preset(self):
        with pytest.raises(ConfigError, match="unknown CDF trace preset"):
            cdf_preset_trace("websearch-9")

    def test_preset_names_cover_both_families(self):
        names = trace_preset_names()
        assert "caida-1" in names and "websearch-1" in names


class TestResolve:
    def test_resolves_cdf_and_synthetic(self):
        a = resolve_trace("websearch-1", num_packets=800)
        b = resolve_trace("caida-1", num_packets=800)
        assert a.num_packets == b.num_packets == 800
        assert a.fingerprint() == cdf_preset_trace(
            "websearch-1", num_packets=800).fingerprint()
        assert b.fingerprint() == preset_trace(
            "caida-1", num_packets=800).fingerprint()

    def test_resolves_npz_path(self, tmp_path):
        trace = preset_trace("caida-1", num_packets=600)
        path = tmp_path / "t.npz"
        trace.save_npz(path)
        loaded = resolve_trace(str(path))
        assert loaded.fingerprint() == trace.fingerprint()
        head = resolve_trace(str(path), num_packets=100)
        assert head.num_packets == 100

    def test_unknown_name_lists_presets(self):
        with pytest.raises(ConfigError, match="unknown trace"):
            resolve_trace("not-a-preset")
