"""Tests for CDF-driven flow-size distributions."""

import io

import numpy as np
import pytest

from repro.errors import ConfigError, TraceFormatError
from repro.workloads.sizes import (
    CACHE_MICE,
    DATAMINING,
    SIZE_DISTRIBUTIONS,
    WEBSEARCH,
    SizeDistribution,
)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            SizeDistribution(name="x", points=())

    def test_non_increasing_probs_rejected(self):
        with pytest.raises(ConfigError, match="increasing"):
            SizeDistribution(name="x", points=((0.5, 100), (0.5, 200)))

    def test_non_increasing_sizes_rejected(self):
        with pytest.raises(ConfigError, match="sizes"):
            SizeDistribution(name="x", points=((0.5, 200), (1.0, 100)))

    def test_must_end_at_one(self):
        with pytest.raises(ConfigError, match="end at 1.0"):
            SizeDistribution(name="x", points=((0.5, 100), (0.9, 200)))

    def test_prob_above_one_rejected(self):
        with pytest.raises(ConfigError):
            SizeDistribution(name="x", points=((1.5, 100),))


class TestFromWeights:
    def test_normalises_and_sorts(self):
        d = SizeDistribution.from_weights([(10.0, 1000), (90.0, 100)])
        assert d.points == ((0.9, 100), (1.0, 1000))

    def test_bad_weights_rejected(self):
        with pytest.raises(ConfigError):
            SizeDistribution.from_weights([])
        with pytest.raises(ConfigError):
            SizeDistribution.from_weights([(0.0, 100)])

    def test_mean(self):
        d = SizeDistribution.from_weights([(50.0, 100), (50.0, 300)])
        assert d.mean_bytes() == pytest.approx(200.0)


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "d.csv"
        WEBSEARCH.to_csv(path)
        back = SizeDistribution.from_csv(path)
        assert back.points == WEBSEARCH.points
        assert back.name == "d"

    def test_stream_roundtrip(self):
        buf = io.StringIO()
        CACHE_MICE.to_csv(buf)
        buf.seek(0)
        back = SizeDistribution.from_csv(buf, name="cache")
        assert back.points == CACHE_MICE.points

    def test_header_required(self):
        with pytest.raises(TraceFormatError, match="header"):
            SizeDistribution.from_csv(io.StringIO("100,0.5\n200,1.0\n"))


class TestStatistics:
    def test_pdf_sums_to_one(self):
        for d in SIZE_DISTRIBUTIONS.values():
            assert sum(p for p, _ in d.pdf()) == pytest.approx(1.0)

    def test_quantiles(self):
        d = SizeDistribution.from_weights([(50.0, 100), (50.0, 300)])
        assert d.quantile(0.0) == 100
        assert d.quantile(0.5) == 100
        assert d.quantile(0.51) == 300
        assert d.quantile(1.0) == 300
        with pytest.raises(ConfigError):
            d.quantile(1.5)

    def test_bundled_shapes(self):
        # websearch: moderate tail; datamining: extreme mice + monsters
        assert WEBSEARCH.quantile(0.5) < 50_000
        assert DATAMINING.quantile(0.5) <= 100
        assert DATAMINING.points[-1][1] == 1_000_000_000
        assert CACHE_MICE.quantile(0.5) == 1_250


class TestSampling:
    def test_samples_take_listed_sizes(self):
        d = SizeDistribution.from_weights([(50.0, 100), (50.0, 300)])
        samples = d.sample_bytes(500, rng=1)
        assert set(np.unique(samples)) <= {100, 300}

    def test_deterministic_per_seed(self):
        a = WEBSEARCH.sample_bytes(100, rng=7)
        b = WEBSEARCH.sample_bytes(100, rng=7)
        assert np.array_equal(a, b)

    def test_empirical_frequencies(self):
        d = SizeDistribution.from_weights([(90.0, 100), (10.0, 1000)])
        samples = d.sample_bytes(20_000, rng=3)
        frac_small = float((samples == 100).mean())
        assert frac_small == pytest.approx(0.9, abs=0.02)

    def test_sample_packets_floor_one(self):
        pkts = DATAMINING.sample_packets(1000, rng=2, mtu=1500)
        assert pkts.min() >= 1
        with pytest.raises(ConfigError):
            DATAMINING.sample_packets(10, rng=2, mtu=0)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            WEBSEARCH.sample_bytes(-1)
