"""Tests for MMPP and diurnal/flash-crowd arrival models."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigError
from repro.sim.generator import build_rate_model
from repro.sim.source import StreamingSource, workload_fingerprint
from repro.sim.workload import build_workload
from repro.trace.synthetic import preset_trace
from repro.workloads.arrivals import (
    MMPP,
    DiurnalParams,
    DiurnalRate,
    FlashCrowd,
    MMPPParams,
)


class TestMMPPParams:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MMPPParams(rates_pps=(), mean_dwell_s=())
        with pytest.raises(ConfigError):
            MMPPParams(rates_pps=(1.0, 2.0), mean_dwell_s=(1.0,))
        with pytest.raises(ConfigError):
            MMPPParams(rates_pps=(-1.0,), mean_dwell_s=(1.0,))
        with pytest.raises(ConfigError):
            MMPPParams(rates_pps=(0.0, 0.0), mean_dwell_s=(1.0, 1.0))
        with pytest.raises(ConfigError):
            MMPPParams(rates_pps=(1.0,), mean_dwell_s=(0.0,))
        with pytest.raises(ConfigError):
            MMPPParams(rates_pps=(1.0, 2.0), mean_dwell_s=(1.0, 1.0),
                       start_state=2)

    def test_transition_validation(self):
        with pytest.raises(ConfigError, match="diagonal"):
            MMPPParams(
                rates_pps=(1.0, 2.0), mean_dwell_s=(1.0, 1.0),
                transition=((0.5, 0.5), (1.0, 0.0)),
            )
        with pytest.raises(ConfigError, match="distribution"):
            MMPPParams(
                rates_pps=(1.0, 2.0), mean_dwell_s=(1.0, 1.0),
                transition=((0.0, 0.5), (1.0, 0.0)),
            )
        with pytest.raises(ConfigError, match="2x2"):
            MMPPParams(
                rates_pps=(1.0, 2.0), mean_dwell_s=(1.0, 1.0),
                transition=((0.0, 1.0),),
            )

    def test_scaled(self):
        p = MMPPParams(rates_pps=(1.0, 4.0), mean_dwell_s=(2.0, 1.0))
        q = p.scaled(3.0)
        assert q.rates_pps == (3.0, 12.0)
        assert q.mean_dwell_s == p.mean_dwell_s
        with pytest.raises(ConfigError):
            p.scaled(0.0)

    def test_build_dispatch(self):
        p = MMPPParams(rates_pps=(1.0, 4.0), mean_dwell_s=(2.0, 1.0))
        assert isinstance(build_rate_model(p), MMPP)


class TestMMPPModel:
    def test_stationary_two_state(self):
        # equal dwell -> equal time share -> mean of the rates
        p = MMPPParams(rates_pps=(1.0, 3.0), mean_dwell_s=(1.0, 1.0))
        m = MMPP(p)
        assert m.stationary_distribution() == pytest.approx([0.5, 0.5])
        assert m.stationary_rate() == pytest.approx(2.0)
        assert m.average_rate(10.0) == pytest.approx(2.0)

    def test_stationary_weighted_by_dwell(self):
        p = MMPPParams(rates_pps=(0.0, 4.0), mean_dwell_s=(3.0, 1.0))
        m = MMPP(p)
        assert m.stationary_distribution() == pytest.approx([0.75, 0.25])
        assert m.stationary_rate() == pytest.approx(1.0)

    def test_single_state_degenerates_to_poisson(self):
        p = MMPPParams(rates_pps=(5.0,), mean_dwell_s=(1.0,))
        m = MMPP(p)
        t = np.linspace(0, 10, 100)
        assert np.all(m.sample_rates(t, rng=0) == 5.0)

    def test_trajectory_takes_state_rates(self):
        p = MMPPParams(rates_pps=(1.0, 8.0), mean_dwell_s=(0.01, 0.01))
        rates = MMPP(p).sample_rates(np.linspace(0, 1, 2000), rng=3)
        values = set(np.unique(rates))
        assert values == {1.0, 8.0}  # both states visited, nothing else

    def test_trajectory_deterministic_per_seed(self):
        p = MMPPParams(rates_pps=(1.0, 8.0), mean_dwell_s=(0.05, 0.02))
        t = np.linspace(0, 1, 500)
        assert np.array_equal(MMPP(p).sample_rates(t, rng=9),
                              MMPP(p).sample_rates(t, rng=9))

    def test_segment_hint_resolves_shortest_dwell(self):
        p = MMPPParams(rates_pps=(1.0, 8.0), mean_dwell_s=(1.0, 0.04))
        assert MMPP(p).segment_hint_s() == pytest.approx(0.5)


class TestFlashCrowd:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FlashCrowd(t_start_s=-1.0, magnitude=1.0, ramp_s=1.0, decay_s=1.0)
        with pytest.raises(ConfigError):
            FlashCrowd(t_start_s=0.0, magnitude=0.0, ramp_s=1.0, decay_s=1.0)
        with pytest.raises(ConfigError):
            FlashCrowd(t_start_s=0.0, magnitude=1.0, ramp_s=0.0, decay_s=1.0)

    def test_envelope_shape(self):
        fc = FlashCrowd(t_start_s=10.0, magnitude=2.0, ramp_s=2.0, decay_s=4.0)
        t = np.array([0.0, 10.0, 11.0, 12.0, 16.0, 100.0])
        env = fc.envelope(t)
        assert env[0] == 0.0 and env[1] == 0.0  # nothing before onset
        assert env[2] == pytest.approx(0.5)      # mid-ramp
        assert env[3] == pytest.approx(1.0)      # peak
        assert env[4] == pytest.approx(np.exp(-1.0))  # one decay constant
        assert env[5] < 1e-6                     # long gone


class TestDiurnal:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DiurnalParams(a=0.0)
        with pytest.raises(ConfigError):
            DiurnalParams(a=1.0, amplitude=1.0)
        with pytest.raises(ConfigError):
            DiurnalParams(a=1.0, period_s=0.0)
        with pytest.raises(ConfigError):
            DiurnalParams(a=1.0, sigma=-1.0)

    def test_sinusoid_and_floor(self):
        p = DiurnalParams(a=100.0, amplitude=0.5, period_s=1.0)
        r = DiurnalRate(p)
        assert r.mean_rate(0.25) == pytest.approx(150.0)
        assert r.mean_rate(0.75) == pytest.approx(50.0)
        assert r.average_rate(1.0) == pytest.approx(100.0, rel=0.01)
        # floor: even a crazy trend cannot push the rate to zero
        steep = DiurnalRate(DiurnalParams(a=100.0, trend_pps_per_s=-1e6))
        assert steep.mean_rate(10.0) == pytest.approx(1.0)  # a * 0.01

    def test_flash_crowd_multiplies(self):
        fc = FlashCrowd(t_start_s=0.5, magnitude=2.0, ramp_s=0.01, decay_s=0.05)
        base = DiurnalRate(DiurnalParams(a=100.0, amplitude=0.0, period_s=1.0))
        surged = DiurnalRate(DiurnalParams(
            a=100.0, amplitude=0.0, period_s=1.0, flash_crowds=(fc,),
        ))
        at_peak = 0.51
        assert surged.mean_rate(at_peak) == pytest.approx(
            base.mean_rate(at_peak) * 3.0
        )

    def test_scaled_preserves_shape(self):
        p = DiurnalParams(a=10.0, trend_pps_per_s=1.0, sigma=0.5)
        q = p.scaled(4.0)
        assert (q.a, q.trend_pps_per_s, q.sigma) == (40.0, 4.0, 2.0)
        assert q.amplitude == p.amplitude and q.period_s == p.period_s

    def test_build_dispatch(self):
        assert isinstance(build_rate_model(DiurnalParams(a=1.0)), DiurnalRate)


# ----------------------------------------------------------------------
class TestStreamedBitIdentity:
    """New model families through the workload pipeline: streamed ==
    materialized, per column — the PR 4 contract."""

    COLUMNS = ("arrival_ns", "service_id", "flow_id", "size_bytes",
               "flow_hash", "seq")

    def _inputs(self, params):
        traces = [preset_trace("caida-1", num_packets=1500),
                  preset_trace("auck-1", num_packets=1500)]
        return traces, params

    @pytest.mark.parametrize("params", [
        MMPPParams(rates_pps=(0.4e6, 2.8e6), mean_dwell_s=(4e-4, 1.5e-4)),
        DiurnalParams(
            a=1.5e6, amplitude=0.5, period_s=2e-3, sigma=0.05e6,
            flash_crowds=(FlashCrowd(
                t_start_s=8e-4, magnitude=2.0, ramp_s=5e-5, decay_s=2e-4,
            ),),
        ),
    ], ids=["mmpp", "diurnal-flash"])
    def test_streamed_equals_materialized(self, params):
        traces, params = self._inputs(
            [params, params.scaled(0.7)]
        )
        duration = units.ms(2)
        wl = build_workload(traces, params, duration_ns=duration, seed=5)
        src = StreamingSource(traces, params, duration, seed=5, chunk_size=777)
        mat = src.materialize()
        for col in self.COLUMNS:
            assert np.array_equal(getattr(wl, col), getattr(mat, col)), col
        assert workload_fingerprint(wl) == src.fingerprint()

    def test_fingerprint_chunk_size_independent(self):
        traces, params = self._inputs([
            MMPPParams(rates_pps=(0.4e6, 2.8e6), mean_dwell_s=(4e-4, 1.5e-4)),
            MMPPParams(rates_pps=(0.4e6, 2.8e6), mean_dwell_s=(4e-4, 1.5e-4),
                       start_state=1),
        ])
        fps = {
            StreamingSource(traces, params, units.ms(2), seed=5,
                            chunk_size=cs).fingerprint()
            for cs in (123, 1024, 65_536)
        }
        assert len(fps) == 1
