"""Tests for the repro-workloads CLI."""

import json

from repro.workloads.cli import main
from repro.workloads.registry import workload_preset_names


class TestList:
    def test_table(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in workload_preset_names():
            assert name in out

    def test_json_catalog(self, capsys):
        assert main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["name"] for r in rows] == workload_preset_names()
        assert all("provenance" in r for r in rows)


class TestShow:
    def test_known(self, capsys):
        assert main(["show", "websearch-mmpp"]) == 0
        out = capsys.readouterr().out
        assert "mmpp" in out and "provenance" in out

    def test_unknown(self, capsys):
        assert main(["show", "nope"]) == 2
        assert "unknown preset" in capsys.readouterr().err


class TestSample:
    def test_prints_shape(self, capsys):
        rc = main([
            "sample", "websearch", "--packets", "2000",
            "--duration-ms", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fingerprint:" in out and "flows:" in out


class TestSmoke:
    def test_quick_smoke_passes(self, capsys):
        assert main(["smoke", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "all cells bit-identical" in out
