"""PcapReplaySource: the full PR 4 source-contract battery.

The oracle for ``repeat=1`` is the materialising path the repo already
trusts: ``native_workload([trace_from_pcap(path)[0]], speedup)``.  The
streamed source must match it column for column, then satisfy
chunk-size-independent fingerprints, clone/snapshot/restore, streamed ==
materialized SimReports (hash-static AND LAPS), and bit-identical
mid-chunk checkpoint/resume.
"""

import numpy as np
import pytest

from repro import units
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.errors import ConfigError
from repro.hashing.five_tuple import FiveTuple
from repro.net.service import Service, ServiceSet
from repro.schedulers.hash_static import StaticHashScheduler
from repro.sim.config import SimConfig
from repro.sim.kernel import Checkpoint, SimKernel
from repro.sim.system import simulate
from repro.trace.pcap import trace_from_pcap, write_pcap
from repro.trace.replay import native_workload
from repro.workloads.registry import BUNDLED_PCAP
from repro.workloads.replay import PcapReplaySource

COLUMNS = ("arrival_ns", "service_id", "flow_id", "size_bytes",
           "flow_hash", "seq")


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    """A small deterministic capture with interleaved repeating flows."""
    rng = np.random.default_rng(42)
    keys = [
        FiveTuple.from_strings(f"10.0.0.{i}", "192.168.1.1", 1000 + i, 80, 6)
        for i in range(1, 9)
    ]
    ts = 0
    packets = []
    for _ in range(400):
        ts += int(rng.exponential(2_000))
        key = keys[int(rng.integers(len(keys)))]
        size = int(rng.choice([64, 576, 1500]))
        packets.append((ts, key, size))
    path = tmp_path_factory.mktemp("pcap") / "cap.pcap.gz"
    write_pcap(path, packets)
    return path


def replay_config(**kw):
    kw.setdefault("num_cores", 4)
    return SimConfig(
        services=ServiceSet([Service(0, "ip-forward", units.us(0.5))]), **kw,
    )


class TestOracleIdentity:
    def test_matches_native_workload(self, capture):
        src = PcapReplaySource(capture, chunk_size=97)
        trace, _ = trace_from_pcap(capture)
        oracle = native_workload([trace])
        mat = src.materialize()
        for col in COLUMNS:
            assert np.array_equal(getattr(mat, col), getattr(oracle, col)), col
        assert src.num_packets == oracle.num_packets
        assert src.num_flows == oracle.num_flows
        assert src.duration_ns == oracle.duration_ns

    def test_matches_oracle_with_speedup(self, capture):
        src = PcapReplaySource(capture, chunk_size=64, speedup=2.5)
        oracle = native_workload([trace_from_pcap(capture)[0]], speedup=2.5)
        mat = src.materialize()
        for col in COLUMNS:
            assert np.array_equal(getattr(mat, col), getattr(oracle, col)), col

    def test_bundled_capture_replays(self):
        src = PcapReplaySource(BUNDLED_PCAP, repeat=4)
        assert src.num_packets == 10_000
        assert src.num_flows == 96
        assert src.counters["total"] >= src.num_packets // 4


class TestContract:
    def test_fingerprint_chunk_size_independent(self, capture):
        fps = {
            PcapReplaySource(capture, chunk_size=cs, repeat=2).fingerprint()
            for cs in (31, 256, None)
        }
        assert len(fps) == 1

    def test_repeat_extends_timeline(self, capture):
        one = PcapReplaySource(capture, chunk_size=128)
        three = PcapReplaySource(capture, chunk_size=128, repeat=3)
        assert three.num_packets == 3 * one.num_packets
        assert three.num_flows == one.num_flows  # same flows, later passes
        mat = three.materialize()
        assert np.all(np.diff(mat.arrival_ns) >= 0)  # monotone across seams
        # per-flow seq keeps counting across passes
        counts = np.bincount(mat.flow_id)
        for fid in range(three.num_flows):
            seqs = mat.seq[mat.flow_id == fid]
            assert np.array_equal(seqs, np.arange(counts[fid]))

    def test_clone_shares_prescan_and_restarts(self, capture):
        src = PcapReplaySource(capture, chunk_size=50)
        first = src.next_chunk()
        clone = src.clone()
        assert clone._meta is src._meta
        again = clone.next_chunk()
        assert np.array_equal(first.arrival_ns, again.arrival_ns)
        assert np.array_equal(first.seq, again.seq)

    def test_snapshot_restore_mid_chunk(self, capture):
        src = PcapReplaySource(capture, chunk_size=77, repeat=2)
        src.next_chunk()
        snap = src.snapshot()
        ref = [c for c in iter_all(src)]
        other = PcapReplaySource(capture, chunk_size=77, repeat=2)
        other.restore(snap)
        got = [c for c in iter_all(other)]
        assert len(ref) == len(got)
        for a, b in zip(ref, got):
            for col in COLUMNS:
                assert np.array_equal(getattr(a, col), getattr(b, col)), col

    def test_validation(self, capture):
        with pytest.raises(ConfigError):
            PcapReplaySource(capture, chunk_size=0)
        with pytest.raises(ConfigError):
            PcapReplaySource(capture, speedup=0.0)
        with pytest.raises(ConfigError):
            PcapReplaySource(capture, repeat=0)
        with pytest.raises(ConfigError):
            PcapReplaySource(capture, wrap_gap_ns=-1)

    def test_empty_capture_rejected(self, tmp_path):
        path = tmp_path / "empty.pcap"
        write_pcap(path, [])
        with pytest.raises(ConfigError, match="no usable"):
            PcapReplaySource(path)


def iter_all(src):
    while True:
        chunk = src.next_chunk()
        if chunk is None:
            return
        yield chunk


class TestSimulation:
    def test_hash_static_report_matches(self, capture):
        src = PcapReplaySource(capture, chunk_size=64, repeat=2, speedup=4.0)
        ref = simulate(src.materialize(), StaticHashScheduler(),
                       replay_config())
        got = simulate(src.clone(), StaticHashScheduler(), replay_config())
        assert got == ref

    def test_laps_report_matches(self, capture):
        def sched():
            return LAPSScheduler(LAPSConfig(num_services=1), rng=5)
        src = PcapReplaySource(capture, chunk_size=64, repeat=2, speedup=4.0)
        ref = simulate(src.materialize(), sched(), replay_config())
        got = simulate(src.clone(), sched(), replay_config())
        assert got == ref

    def test_midchunk_checkpoint_resume(self, capture):
        def source():
            return PcapReplaySource(capture, chunk_size=64, repeat=2,
                                    speedup=4.0)
        baseline = SimKernel(replay_config(), StaticHashScheduler(),
                             source()).run()
        kern = SimKernel(replay_config(), StaticHashScheduler(), source())
        kern.run_until(source().duration_ns // 3)  # mid-run, mid-chunk
        blob = kern.checkpoint().to_bytes()
        ref = kern.run()
        resumed = SimKernel.resume(
            Checkpoint.from_bytes(blob), replay_config(), source(),
        )
        assert resumed.run() == ref == baseline
