"""Tests for resilience metrics over synthetic telemetry series."""

import pytest

from repro.errors import ConfigError
from repro.faults.events import CoreFail, CoreRecover, FaultSchedule
from repro.faults.metrics import compute_resilience

MS = 1_000_000


def series(drops, ooo=None, occ=None, remap=None, period_ns=MS,
           generated_per_ms=1000):
    """Build probe records from cumulative per-sample column values."""
    n = len(drops)
    ooo = ooo or [0] * n
    occ = occ if occ is not None else [4] * n
    remap = remap or [0] * n
    return [
        {
            "t_ns": i * period_ns,
            "dropped": drops[i],
            "out_of_order": ooo[i],
            "occ_max": occ[i],
            "generated": generated_per_ms * i,
            "sched_core_transfers": remap[i],
        }
        for i in range(n)
    ]


class TestEdgeCases:
    def test_empty_records(self):
        res = compute_resilience([], FaultSchedule([CoreFail(0, core_id=0)]))
        assert res.impacts == ()
        assert res.recovered  # vacuously: no impacts observed

    def test_invalid_settle_samples(self):
        with pytest.raises(ConfigError):
            compute_resilience(
                series([0, 0]), FaultSchedule(), settle_samples=0
            )

    def test_no_events_no_impacts(self):
        res = compute_resilience(series([0, 0, 5, 5]), FaultSchedule())
        assert res.impacts == ()
        assert res.worst_recovery_ns is None


class TestRecovery:
    def test_clean_recovery_time(self):
        # fault at 5 ms; drops burst for two samples then stop
        drops = [0, 0, 0, 0, 0, 0, 100, 200, 200, 200, 200, 200]
        schedule = FaultSchedule([CoreFail(5 * MS, core_id=0)])
        res = compute_resilience(
            series(drops), schedule, drop_eps_per_ms=1.0, settle_samples=3
        )
        [impact] = res.impacts
        # calm from sample 8 (rate 0): settled at t=8ms, 3 ms after
        assert impact.recovery_ns == 3 * MS
        assert res.recovered

    def test_never_recovers(self):
        drops = [0, 0, 0, 0, 0, 0] + [100 * i for i in range(1, 7)]
        schedule = FaultSchedule([CoreFail(5 * MS, core_id=0)])
        res = compute_resilience(series(drops), schedule,
                                 drop_eps_per_ms=1.0)
        assert not res.recovered
        assert res.worst_recovery_ns is None

    def test_drain_phase_not_counted_as_recovery(self):
        # drops persist until arrivals end at 8 ms; the flat tail beyond
        # is the drain, which must not count as settling
        drops = [0, 0, 0, 0, 0, 0, 100, 200, 300, 300, 300, 300]
        schedule = FaultSchedule([CoreFail(5 * MS, core_id=0)])
        free_run = compute_resilience(series(drops), schedule,
                                      drop_eps_per_ms=1.0)
        bounded = compute_resilience(series(drops), schedule,
                                     drop_eps_per_ms=1.0,
                                     arrivals_end_ns=8 * MS)
        assert free_run.recovered
        assert not bounded.recovered

    def test_occupancy_blocks_recovery(self):
        # drops stop but queues stay pinned above baseline + eps
        drops = [0, 0, 0, 0, 0, 0, 100, 100, 100, 100, 100, 100]
        occ = [4] * 6 + [32] * 6
        schedule = FaultSchedule([CoreFail(5 * MS, core_id=0)])
        res = compute_resilience(series(drops, occ=occ), schedule,
                                 drop_eps_per_ms=1.0, occ_eps=8.0)
        assert not res.recovered

    def test_recovery_relative_to_nonzero_baseline(self):
        # overload run: steady 50 drops/ms before the fault, 50 after
        # the burst -> "recovered" means back at the old rate
        drops = [50 * i for i in range(6)]
        drops += [drops[-1] + 500, drops[-1] + 1000]
        drops += [drops[-1] + 50 * i for i in range(1, 5)]
        schedule = FaultSchedule([CoreFail(5 * MS, core_id=0)])
        res = compute_resilience(series(drops), schedule,
                                 drop_eps_per_ms=5.0)
        assert res.baseline_drop_per_ms == pytest.approx(50.0)
        assert res.recovered


class TestAttribution:
    def test_window_deltas(self):
        drops = [0, 0, 0, 10, 30, 30, 30, 30, 30, 30, 30, 30]
        ooo = [0, 0, 0, 5, 5, 5, 5, 5, 5, 5, 5, 5]
        remap = [0, 0, 0, 2, 3, 3, 3, 3, 3, 3, 3, 3]
        schedule = FaultSchedule([
            CoreFail(2 * MS, core_id=0), CoreRecover(6 * MS, core_id=0),
        ])
        res = compute_resilience(
            series(drops, ooo=ooo, remap=remap), schedule,
            drop_eps_per_ms=100.0,
        )
        [impact] = res.impacts  # recover folds into the fail window
        assert impact.drops == 30
        assert impact.ooo == 5
        assert impact.flows_remapped == 3

    def test_post_fault_totals(self):
        drops = [0, 0, 0, 10, 30, 40, 40, 40, 40, 40, 40, 45]
        schedule = FaultSchedule([CoreFail(2 * MS, core_id=0)])
        res = compute_resilience(series(drops), schedule,
                                 drop_eps_per_ms=100.0)
        assert res.post_fault_drops == 45

    def test_adaptive_epsilon_scales_with_offered_rate(self):
        # 20 drops/ms of post-fault noise: negligible at 10k pkts/ms
        # (1% = 100/ms) but a real regression at 100 pkts/ms (1% = 1/ms)
        drops = [0] * 6 + [20 * i for i in range(1, 7)]
        schedule = FaultSchedule([CoreFail(5 * MS, core_id=0)])
        loose = compute_resilience(
            series(drops, generated_per_ms=10_000), schedule
        )
        tight = compute_resilience(
            series(drops, generated_per_ms=100), schedule
        )
        assert loose.recovered
        assert not tight.recovered


class TestSummaryShape:
    def test_as_row(self):
        drops = [0, 0, 0, 0, 0, 0, 100, 200, 200, 200, 200, 200]
        schedule = FaultSchedule([CoreFail(5 * MS, core_id=0)])
        row = compute_resilience(
            series(drops), schedule, scheduler="laps", drop_eps_per_ms=1.0
        ).as_row()
        assert row["scheduler"] == "laps"
        assert row["recovered"] is True
        assert row["recover_ms"] == pytest.approx(3.0)
