"""Acceptance tests for the F1-F4 fault scenarios (quick sizes)."""

import pytest

from repro.faults.harness import FAULT_SCENARIOS, run, run_scenario


@pytest.fixture(scope="module")
def f1_results():
    """F1 (single core loss under-load) once, shared across tests."""
    return run_scenario(FAULT_SCENARIOS["F1"], quick=True, seed=0)


class TestScenarioCatalogue:
    def test_expected_scenarios(self):
        assert list(FAULT_SCENARIOS) == ["F1", "F2", "F3", "F4"]

    def test_schedules_validate_on_the_paper_platform(self):
        for sc in FAULT_SCENARIOS.values():
            sc.schedule(10_000_000).validate_platform(16, 4)


class TestF1Acceptance:
    """The issue's headline criterion: after a single core loss under
    load, LAPS returns to its pre-fault drop rate and reorders strictly
    less than AFS while doing so."""

    def test_laps_recovers(self, f1_results):
        _, res = f1_results["laps"]
        assert res.recovered
        assert res.worst_recovery_ns is not None

    def test_laps_fewer_post_fault_ooo_than_afs(self, f1_results):
        _, laps = f1_results["laps"]
        _, afs = f1_results["afs"]
        assert laps.post_fault_ooo < afs.post_fault_ooo

    def test_laps_remaps_the_dead_cores_flows(self, f1_results):
        rep, res = f1_results["laps"]
        assert res.flows_remapped > 0
        assert rep.scheduler_stats["cores_failed"] == 1

    def test_naive_schedulers_degrade_more(self, f1_results):
        laps_rep, _ = f1_results["laps"]
        for name in ("fcfs", "afs"):
            rep, _ = f1_results[name]
            assert rep.dropped > laps_rep.dropped

    def test_fault_drops_attributed(self, f1_results):
        for name, (rep, _) in f1_results.items():
            assert 0 < rep.fault_dropped <= rep.dropped


class TestDeterminism:
    def test_same_seed_same_schedule_same_metrics(self):
        a = run_scenario(FAULT_SCENARIOS["F1"], quick=True, seed=0,
                         schedulers=("laps",))
        b = run_scenario(FAULT_SCENARIOS["F1"], quick=True, seed=0,
                         schedulers=("laps",))
        rep_a, res_a = a["laps"]
        rep_b, res_b = b["laps"]
        assert (rep_a.dropped, rep_a.fault_dropped, rep_a.out_of_order) == \
               (rep_b.dropped, rep_b.fault_dropped, rep_b.out_of_order)
        assert res_a == res_b


class TestRunTable:
    def test_run_single_scenario_table(self):
        result = run(quick=True, scenarios=("F1",))
        assert len(result.rows) == 3
        assert set(result.column("scheduler")) == {"fcfs", "afs", "laps"}
        laps_row = next(r for r in result.rows if r["scheduler"] == "laps")
        assert laps_row["recovered"] is True
        assert laps_row["recover_ms"] is not None
