"""Tests for declarative fault events and schedules."""

import pytest

from repro import units
from repro.errors import ConfigError
from repro.faults.events import (
    CoreFail,
    CoreRecover,
    CoreSlowdown,
    FaultSchedule,
    ServiceFlap,
    TrafficSurge,
    core_flap,
)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            CoreFail(-1, core_id=0)

    def test_slowdown_factor_below_one_rejected(self):
        with pytest.raises(ConfigError):
            CoreSlowdown(0, core_id=0, factor=0.5)

    def test_surge_factor_must_exceed_one(self):
        with pytest.raises(ConfigError):
            TrafficSurge(0, service_id=0, factor=1.0, duration_ns=100)

    def test_flap_duty_bounds(self):
        with pytest.raises(ConfigError):
            ServiceFlap(0, service_id=0, duty=1.0)

    def test_windowed_slowdown_expands_to_apply_and_restore(self):
        ev = CoreSlowdown(100, core_id=2, factor=3.0, duration_ns=50)
        apply, restore = ev.expand()
        assert apply.factor == 3.0 and apply.time_ns == 100
        assert restore.factor == 1.0 and restore.time_ns == 150

    def test_open_slowdown_expands_to_itself(self):
        ev = CoreSlowdown(100, core_id=2, factor=3.0)
        assert ev.expand() == [ev]


class TestScheduleConstruction:
    def test_events_time_sorted(self):
        s = FaultSchedule([
            CoreSlowdown(500, core_id=1, factor=2.0),
            CoreFail(100, core_id=0),
            CoreRecover(300, core_id=0),
        ])
        assert [ev.time_ns for ev in s] == [100, 300, 500]

    def test_recover_without_fail_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule([CoreRecover(100, core_id=0)])

    def test_double_fail_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule([CoreFail(100, core_id=0), CoreFail(200, core_id=0)])

    def test_fail_recover_fail_allowed(self):
        s = FaultSchedule(core_flap(0, 100, down_ns=50, up_ns=50, cycles=3))
        assert len(s) == 6

    def test_non_event_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule(["not an event"])

    def test_platform_traffic_split(self):
        s = FaultSchedule([
            CoreFail(100, core_id=0),
            TrafficSurge(200, service_id=1, factor=2.0, duration_ns=50),
        ])
        assert len(s.platform_events()) == 1
        assert len(s.traffic_events()) == 1

    def test_platform_events_expand_windowed_slowdowns(self):
        s = FaultSchedule([CoreSlowdown(100, core_id=0, factor=2.0,
                                        duration_ns=50)])
        times = [ev.time_ns for ev in s.platform_events()]
        assert times == [100, 150]

    def test_first_event_ns(self):
        assert FaultSchedule().first_event_ns() is None
        s = FaultSchedule([CoreFail(700, core_id=0)])
        assert s.first_event_ns() == 700


class TestWindows:
    def test_fail_window_closes_at_recover(self):
        s = FaultSchedule([
            CoreFail(100, core_id=0),
            CoreRecover(400, core_id=0),
        ])
        windows = s.windows(horizon_ns=1000)
        assert len(windows) == 1  # the recover is folded into the fail
        ev, start, end = windows[0]
        assert isinstance(ev, CoreFail)
        assert (start, end) == (100, 400)

    def test_unrecovered_fail_extends_to_horizon(self):
        s = FaultSchedule([CoreFail(100, core_id=0)])
        [(ev, start, end)] = s.windows(horizon_ns=1000)
        assert (start, end) == (100, 1000)

    def test_windows_clip_to_horizon(self):
        s = FaultSchedule([TrafficSurge(100, service_id=0, factor=2.0,
                                        duration_ns=10_000)])
        [(_, start, end)] = s.windows(horizon_ns=1000)
        assert end == 1000


class TestPlatformValidation:
    def test_core_out_of_range(self):
        s = FaultSchedule([CoreFail(0, core_id=9)])
        with pytest.raises(ConfigError):
            s.validate_platform(num_cores=8, num_services=4)

    def test_service_out_of_range(self):
        s = FaultSchedule([TrafficSurge(0, service_id=4, factor=2.0,
                                        duration_ns=10)])
        with pytest.raises(ConfigError):
            s.validate_platform(num_cores=8, num_services=4)

    def test_failing_every_core_rejected(self):
        s = FaultSchedule([CoreFail(i, core_id=i) for i in range(2)])
        with pytest.raises(ConfigError):
            s.validate_platform(num_cores=2, num_services=1)

    def test_staggered_failures_with_recovery_ok(self):
        s = FaultSchedule([
            CoreFail(0, core_id=0),
            CoreRecover(10, core_id=0),
            CoreFail(20, core_id=1),
        ])
        s.validate_platform(num_cores=2, num_services=1)


class TestSerialisation:
    def test_json_roundtrip(self):
        s = FaultSchedule([
            CoreFail(100, core_id=3),
            CoreRecover(500, core_id=3),
            CoreSlowdown(200, core_id=1, factor=2.5, duration_ns=300),
            TrafficSurge(50, service_id=2, factor=3.0, duration_ns=400),
            ServiceFlap(75, service_id=0, period_ns=100, cycles=2, duty=0.3),
        ])
        assert FaultSchedule.from_json(s.to_json()).events == s.events

    def test_from_json_path(self, tmp_path):
        s = FaultSchedule([CoreFail(100, core_id=0)])
        path = tmp_path / "spec.json"
        s.to_json(path)
        assert FaultSchedule.from_json(path).events == s.events

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule.from_json('{"events": [{"type": "meteor"}]}')


class TestRandomSchedules:
    def test_same_seed_same_schedule(self):
        kw = dict(duration_ns=units.ms(10), num_cores=16, num_services=4)
        a = FaultSchedule.random(42, **kw)
        b = FaultSchedule.random(42, **kw)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        kw = dict(duration_ns=units.ms(10), num_cores=16, num_services=4,
                  num_events=8)
        assert (FaultSchedule.random(1, **kw).events
                != FaultSchedule.random(2, **kw).events)

    def test_random_schedules_are_platform_valid(self):
        for seed in range(10):
            s = FaultSchedule.random(
                seed, duration_ns=units.ms(10), num_cores=8, num_services=4,
                num_events=10,
            )
            s.validate_platform(num_cores=8, num_services=4)

    def test_event_times_inside_run(self):
        s = FaultSchedule.random(
            7, duration_ns=units.ms(10), num_cores=8, num_services=4,
            num_events=12,
        )
        assert all(0 <= ev.time_ns <= units.ms(10) for ev in s)


class TestRandomConcurrencyCap:
    KW = dict(duration_ns=units.ms(10), num_cores=8, num_services=4,
              num_events=20)

    def test_zero_cap_means_no_core_failures(self):
        """Regression: ``max_concurrent_failures=0`` used to be
        coalesced into the default (half the cores) by an ``or``
        fallback, so "no core failures" schedules still failed cores."""
        for seed in range(10):
            s = FaultSchedule.random(
                seed, max_concurrent_failures=0, **self.KW
            )
            assert not any(isinstance(ev, CoreFail) for ev in s)
            assert len(s.events) > 0  # other event kinds still occur

    def test_explicit_cap_bounds_failed_cores(self):
        for seed in range(10):
            s = FaultSchedule.random(
                seed, max_concurrent_failures=2, **self.KW
            )
            fails = {ev.core_id for ev in s if isinstance(ev, CoreFail)}
            assert len(fails) <= 2

    def test_negative_cap_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule.random(
                0, max_concurrent_failures=-1, **self.KW
            )
