"""Tests for the fault-injection engine hook (hand-computed runs)."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.faults.events import (
    CoreFail,
    CoreRecover,
    CoreSlowdown,
    FaultSchedule,
    ServiceFlap,
    TrafficSurge,
)
from repro.faults.injector import (
    FaultInjector,
    TrafficTransformSource,
    apply_traffic_events,
)
from repro.net.service import Service, ServiceSet
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.hash_static import StaticHashScheduler
from repro.sim.config import SimConfig
from repro.sim.source import MaterializedSource
from repro.sim.system import simulate
from repro.sim.workload import Workload


def manual_workload(arrivals, flows, services=None, num_services=1):
    """Tiny hand-built workload; flow_hash == flow_id."""
    n = len(arrivals)
    flows = np.asarray(flows, dtype=np.int64)
    num_flows = int(flows.max()) + 1 if n else 1
    seq = np.zeros(n, dtype=np.int64)
    seen = {}
    for i, f in enumerate(flows):
        seq[i] = seen.get(int(f), 0)
        seen[int(f)] = seq[i] + 1
    return Workload(
        arrival_ns=np.asarray(arrivals, dtype=np.int64),
        service_id=np.asarray(services or [0] * n, dtype=np.int32),
        flow_id=flows,
        size_bytes=np.asarray([64] * n, dtype=np.int32),
        flow_hash=flows.copy(),
        seq=seq,
        num_flows=num_flows,
        num_services=num_services,
        duration_ns=int(arrivals[-1]) + 1 if n else 1,
    )


def two_core_config(**kw):
    svc = ServiceSet([Service(0, "s", 1000)])  # 1 us per packet
    kw.setdefault("num_cores", 2)
    kw.setdefault("services", svc)
    return SimConfig(**kw)


def run(workload, schedule, scheduler=None, drain_policy="drop", **cfg_kw):
    inj = FaultInjector(schedule, drain_policy=drain_policy)
    rep = simulate(
        workload,
        scheduler or StaticHashScheduler(),
        two_core_config(**cfg_kw),
        injector=inj,
    )
    return rep, inj


class TestConstruction:
    def test_unknown_drain_policy_rejected(self):
        with pytest.raises(ConfigError):
            FaultInjector(FaultSchedule(), drain_policy="teleport")

    def test_binds_once(self):
        wl = manual_workload([0], [0])
        schedule = FaultSchedule([CoreFail(100, core_id=1)])
        inj = FaultInjector(schedule)
        simulate(wl, StaticHashScheduler(), two_core_config(), injector=inj)
        with pytest.raises(SimulationError):
            simulate(wl, StaticHashScheduler(), two_core_config(),
                     injector=inj)

    def test_platform_validated_at_bind(self):
        wl = manual_workload([0], [0])
        schedule = FaultSchedule([CoreFail(100, core_id=7)])
        with pytest.raises(ConfigError):
            simulate(wl, StaticHashScheduler(), two_core_config(),
                     injector=FaultInjector(schedule))


class TestCoreFail:
    def test_in_flight_packet_dies_with_core(self):
        # flow 0 hashes to core 0 and is in service when the core dies
        wl = manual_workload([0], [0])
        rep, inj = run(wl, FaultSchedule([CoreFail(500, core_id=0)]))
        assert rep.departed == 0
        assert rep.dropped == 1
        assert rep.fault_dropped == 1
        assert inj.packets_killed == 1

    def test_dead_core_black_holes_arrivals(self):
        # arrivals to core 0 after its death drop; core 1 keeps serving
        wl = manual_workload([0, 1000, 1000], [0, 0, 1])
        rep, inj = run(wl, FaultSchedule([CoreFail(500, core_id=0)]))
        assert rep.departed == 1  # only flow 1 on core 1
        assert rep.dropped == 2
        assert rep.fault_dropped == 2

    def test_queued_descriptors_drop_policy(self):
        # three packets pile onto core 0, then it dies
        wl = manual_workload([0, 0, 0], [0, 0, 0])
        rep, inj = run(wl, FaultSchedule([CoreFail(500, core_id=0)]))
        assert rep.departed == 0
        assert rep.dropped == 3
        assert inj.packets_killed == 1
        assert inj.packets_drained == 2

    def test_queued_descriptors_reassign_policy(self):
        # JSQ spreads the burst: core 0 holds one in service + one
        # queued, core 1 one in service.  The queued packet survives by
        # re-dispatch to core 1.
        wl = manual_workload([0, 0, 0], [0, 0, 0])
        rep, inj = run(
            wl, FaultSchedule([CoreFail(500, core_id=0)]),
            scheduler=FCFSScheduler(), drain_policy="reassign",
        )
        assert inj.packets_killed == 1  # the in-flight one still dies
        assert inj.packets_reassigned == 1
        assert rep.departed == 2
        assert rep.dropped == 1

    def test_reassign_through_naive_scheduler_can_redrop(self):
        # static hashing re-selects the dead core, so "reassigned"
        # descriptors bounce off the downed queue and drop
        wl = manual_workload([0, 0, 0], [0, 0, 0])
        rep, inj = run(
            wl, FaultSchedule([CoreFail(500, core_id=0)]),
            drain_policy="reassign",
        )
        assert inj.packets_reassigned == 0
        assert inj.reassign_drops == 2
        assert rep.dropped == 3

    def test_double_fail_without_recover_is_schedule_error(self):
        with pytest.raises(ConfigError):
            FaultSchedule([
                CoreFail(100, core_id=0), CoreFail(200, core_id=0),
            ])


class TestCoreRecover:
    def test_recovered_core_serves_again(self):
        wl = manual_workload([0, 10_000], [0, 0])
        schedule = FaultSchedule([
            CoreFail(2000, core_id=0),
            CoreRecover(5000, core_id=0),
        ])
        rep, inj = run(wl, schedule)
        # first packet departed before the fail; second arrives after
        # recovery and is served normally
        assert rep.departed == 2
        assert rep.dropped == 0
        assert inj.events_applied == 2
        assert inj.cores_down == set()

    def test_recovered_core_restarts_cold(self):
        # two services; core 0 runs service 0, dies, recovers, then runs
        # service 0 again -> the i-cache was wiped, so no cc penalty is
        # *avoided* by history: the first packet after recovery loads the
        # image fresh (no penalty counted because last_service is -1)
        svc = ServiceSet([Service(0, "a", 1000), Service(1, "b", 1000)])
        wl = manual_workload([0, 10_000], [0, 0], services=[0, 0],
                             num_services=2)
        schedule = FaultSchedule([
            CoreFail(2000, core_id=0), CoreRecover(5000, core_id=0),
        ])
        rep, _ = run(wl, schedule, services=svc)
        assert rep.cold_cache_events == 0


class TestCoreSlowdown:
    def test_slowdown_stretches_service_time(self):
        wl = manual_workload([0, 10_000], [0, 0])
        schedule = FaultSchedule([CoreSlowdown(5000, core_id=0, factor=4.0)])
        rep, inj = run(wl, schedule, collect_latencies=True)
        assert rep.departed == 2
        # packet 1 at normal speed (1000 ns), packet 2 at 4x
        assert rep.latency_ns["max"] == pytest.approx(4000)
        assert inj.slow_cores == {0: 4.0}

    def test_windowed_slowdown_restores_speed(self):
        wl = manual_workload([0, 10_000], [0, 0])
        schedule = FaultSchedule([
            CoreSlowdown(2000, core_id=0, factor=4.0, duration_ns=3000),
        ])
        rep, inj = run(wl, schedule, collect_latencies=True)
        # the window [2000, 5000) closed before packet 2 started
        assert rep.latency_ns["max"] == pytest.approx(1000)
        assert inj.slow_cores == {}


class TestSchedulerHooks:
    def test_laps_counts_fail_and_recover(self):
        from repro.core.laps import LAPSConfig, LAPSScheduler

        wl = manual_workload([0, 10_000], [0, 1])
        schedule = FaultSchedule([
            CoreFail(2000, core_id=5), CoreRecover(6000, core_id=5),
        ])
        sched = LAPSScheduler(LAPSConfig(num_services=1), rng=1)
        inj = FaultInjector(schedule)
        simulate(wl, sched, SimConfig(num_cores=16), injector=inj)
        stats = sched.stats()
        assert stats["cores_failed"] == 1
        assert stats["cores_recovered"] == 1

    def test_naive_scheduler_needs_no_hooks(self):
        # base-class no-op hooks: FCFS survives fail + recover untouched
        wl = manual_workload([0, 10_000], [0, 1])
        schedule = FaultSchedule([
            CoreFail(2000, core_id=0), CoreRecover(6000, core_id=0),
        ])
        rep, _ = run(wl, schedule, scheduler=FCFSScheduler())
        assert rep.generated == 2


class TestDeterminism:
    def test_identical_runs_identical_metrics(self):
        from repro.faults.harness import fault_workload

        wl = fault_workload(0.8, duration_ns=2_000_000, trace_packets=4_000)
        schedule = FaultSchedule.random(
            3, duration_ns=2_000_000, num_cores=16, num_services=4,
            num_events=5,
        )
        wl = apply_traffic_events(wl, schedule)
        reports = []
        for _ in range(2):
            rep, inj = [], None
            injector = FaultInjector(schedule)
            r = simulate(wl, FCFSScheduler(), SimConfig(num_cores=16),
                         injector=injector)
            reports.append((r.dropped, r.fault_dropped, r.out_of_order,
                            r.departed, injector.stats()))
        assert reports[0] == reports[1]


class TestTrafficTransforms:
    def test_no_traffic_events_returns_same_object(self):
        wl = manual_workload([0, 100], [0, 1])
        schedule = FaultSchedule([CoreFail(50, core_id=0)])
        assert apply_traffic_events(wl, schedule) is wl

    def test_surge_compresses_window(self):
        arrivals = [0, 1000, 2000, 3000, 4000]
        wl = manual_workload(arrivals, [0, 1, 2, 3, 4])
        schedule = FaultSchedule([
            TrafficSurge(1000, service_id=0, factor=2.0, duration_ns=3000),
        ])
        out = apply_traffic_events(wl, schedule)
        # packets inside [1000, 4000) move to 1000 + (t-1000)/2
        assert list(out.arrival_ns) == [0, 1000, 1500, 2000, 4000]

    def test_surge_only_touches_its_service(self):
        wl = manual_workload([0, 1000, 2000], [0, 1, 2],
                             services=[0, 1, 1], num_services=2)
        schedule = FaultSchedule([
            TrafficSurge(0, service_id=0, factor=2.0, duration_ns=5000),
        ])
        out = apply_traffic_events(wl, schedule)
        svc1 = out.arrival_ns[out.service_id == 1]
        assert list(svc1) == [1000, 2000]

    def test_flap_defers_outage_arrivals(self):
        arrivals = [0, 1000, 1500, 3000]
        wl = manual_workload(arrivals, [0, 1, 2, 3])
        schedule = FaultSchedule([
            ServiceFlap(1000, service_id=0, period_ns=2000, cycles=1,
                        duty=0.5),
        ])
        out = apply_traffic_events(wl, schedule)
        # outage [1000, 2000): those arrivals burst in at 2000
        assert sorted(out.arrival_ns) == [0, 2000, 2000, 3000]

    def test_transform_keeps_per_flow_order(self):
        arrivals = list(range(0, 10_000, 100))
        flows = [i % 4 for i in range(len(arrivals))]
        wl = manual_workload(arrivals, flows)
        schedule = FaultSchedule([
            TrafficSurge(2000, service_id=0, factor=3.0, duration_ns=4000),
            ServiceFlap(7000, service_id=0, period_ns=1000, cycles=2,
                        duty=0.4),
        ])
        out = apply_traffic_events(wl, schedule)
        assert list(out.arrival_ns) == sorted(out.arrival_ns)
        for f in range(4):
            seqs = out.seq[out.flow_id == f]
            assert list(seqs) == sorted(seqs)

    def test_transformed_workload_simulates(self):
        wl = manual_workload(list(range(0, 5000, 50)),
                             [i % 3 for i in range(100)])
        schedule = FaultSchedule([
            TrafficSurge(1000, service_id=0, factor=2.0, duration_ns=2000),
        ])
        out = apply_traffic_events(wl, schedule)
        rep = simulate(out, FCFSScheduler(), two_core_config())
        assert rep.generated == 100


class TestTrafficTransformSource:
    """Per-chunk traffic transforms must compose exactly like the
    whole-array :func:`apply_traffic_events` — same event order, same
    output — no matter where the chunk boundaries fall."""

    COLUMNS = ("arrival_ns", "service_id", "flow_id", "size_bytes",
               "flow_hash", "seq")

    def composed_schedule(self):
        # surge → flap → second surge, all on service 0: the ordering
        # regression this pins is exactly the sequential composition
        return FaultSchedule([
            TrafficSurge(2000, service_id=0, factor=2.0, duration_ns=4000),
            ServiceFlap(5000, service_id=0, period_ns=2000, cycles=2,
                        duty=0.5),
            TrafficSurge(8000, service_id=0, factor=4.0, duration_ns=2000),
        ])

    def workload(self):
        arrivals = list(range(0, 12_000, 150))
        return manual_workload(arrivals, [i % 5 for i in range(len(arrivals))])

    @pytest.mark.parametrize("chunk_size", [1, 7, 13, 1000])
    def test_per_chunk_matches_whole_array(self, chunk_size):
        wl = self.workload()
        schedule = self.composed_schedule()
        whole = apply_traffic_events(wl, schedule)
        chunked = TrafficTransformSource(
            MaterializedSource(wl, chunk_size=chunk_size), schedule
        ).materialize()
        for col in self.COLUMNS:
            np.testing.assert_array_equal(
                getattr(chunked, col), getattr(whole, col), err_msg=col
            )

    def test_pinned_composed_output(self):
        # hand-checked composition: surge [1000,4000) /2, then flap
        # outage [4000,5000) bursting at 5000
        wl = manual_workload([0, 1500, 3000, 4500, 6000], [0, 1, 2, 3, 4])
        schedule = FaultSchedule([
            TrafficSurge(1000, service_id=0, factor=2.0, duration_ns=3000),
            ServiceFlap(4000, service_id=0, period_ns=2000, cycles=1,
                        duty=0.5),
        ])
        out = TrafficTransformSource(
            MaterializedSource(wl, chunk_size=2), schedule
        ).materialize()
        # 1500→1250, 3000→2000, 4500 hits the outage → 5000, 6000 stays
        assert list(out.arrival_ns) == [0, 1250, 2000, 5000, 6000]
        assert list(out.arrival_ns) == \
            list(apply_traffic_events(wl, schedule).arrival_ns)

    def test_no_events_passes_chunks_through(self):
        wl = self.workload()
        schedule = FaultSchedule([CoreFail(50, core_id=0)])
        src = TrafficTransformSource(
            MaterializedSource(wl, chunk_size=16), schedule
        )
        assert src.fingerprint() == MaterializedSource(wl).fingerprint()

    def test_transformed_fingerprint_matches_eager_transform(self):
        wl = self.workload()
        schedule = self.composed_schedule()
        src = TrafficTransformSource(
            MaterializedSource(wl, chunk_size=32), schedule
        )
        from repro.sim.source import workload_fingerprint
        assert src.fingerprint() == \
            workload_fingerprint(apply_traffic_events(wl, schedule))

    def test_streamed_faulted_run_matches(self):
        wl = self.workload()
        schedule = self.composed_schedule()
        eager_rep = simulate(apply_traffic_events(wl, schedule),
                             StaticHashScheduler(), two_core_config())
        chunked_rep = simulate(
            TrafficTransformSource(MaterializedSource(wl, chunk_size=9),
                                   schedule),
            StaticHashScheduler(), two_core_config(),
        )
        assert chunked_rep == eager_rep


class TestStats:
    def test_stats_keys(self):
        inj = FaultInjector(FaultSchedule())
        assert set(inj.stats()) == {
            "events_applied", "cores_down", "cores_slow", "packets_killed",
            "packets_drained", "packets_reassigned", "reassign_drops",
        }
