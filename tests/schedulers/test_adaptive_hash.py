"""Tests for the adaptive-hashing scheduler (Shi & Kencl extension)."""

import pytest

from repro.schedulers.adaptive_hash import AdaptiveHashScheduler
from tests.schedulers.test_base import FakeLoads


def make(num_cores=4, **kw):
    kw.setdefault("rebalance_every_ns", 1000)
    sched = AdaptiveHashScheduler(**kw)
    sched.bind(FakeLoads([0] * num_cores))
    return sched


class TestConstruction:
    @pytest.mark.parametrize(
        "kw",
        [
            {"buckets_per_core": 0},
            {"rebalance_every_ns": 0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"max_moves_per_round": 0},
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            AdaptiveHashScheduler(**kw)

    def test_initial_round_robin(self):
        sched = make()
        assert sched.select_core(0, 0, 0, 0) == 0
        assert sched.select_core(0, 0, 5, 0) == 1

    def test_registered(self):
        from repro.schedulers.base import make_scheduler

        assert make_scheduler("adaptive-hash").name == "adaptive-hash"


class TestRebalancing:
    def test_rebalance_fires_on_schedule(self):
        sched = make()
        sched.select_core(0, 0, 0, 0)
        assert sched.rebalances == 0
        sched.select_core(0, 0, 0, 1500)
        assert sched.rebalances == 1

    def test_catches_up_after_gap(self):
        sched = make()
        sched.select_core(0, 0, 0, 10_500)
        sched.select_core(0, 0, 0, 10_600)
        assert sched.rebalances == 1  # one rebalance, schedule caught up

    def test_overloaded_core_sheds_a_bucket(self):
        sched = make()
        # buckets 0 and 4 both live on core 0 and both carry medium
        # load; the other cores carry a trickle -> moving one of core
        # 0's buckets flattens the load
        t = 0
        for _ in range(6):
            for _ in range(40):
                sched.select_core(0, 0, 0, t)
                sched.select_core(1, 0, 4, t)
            for other in (1, 2, 3):
                sched.select_core(2, 0, other, t)
            t += 1100
        assert sched.bucket_moves > 0
        # after the move, buckets 0 and 4 sit on different cores
        assert sched.select_core(0, 0, 0, t) != sched.select_core(1, 0, 4, t)

    def test_balanced_traffic_moves_nothing(self):
        sched = make()
        t = 0
        for _ in range(5):
            for h in range(64):
                sched.select_core(0, 0, h, t)
            t += 1100
        assert sched.bucket_moves == 0

    def test_flow_affinity_between_rebalances(self):
        sched = make(rebalance_every_ns=10**9)
        picks = {sched.select_core(1, 0, 7, t) for t in range(100)}
        assert len(picks) == 1

    def test_stats(self):
        sched = make()
        assert set(sched.stats()) == {"rebalances", "bucket_moves"}


class TestEndToEnd:
    def test_runs_in_simulator(self, small_workload, single_service):
        from repro.sim.config import SimConfig
        from repro.sim.system import simulate

        cfg = SimConfig(num_cores=4, services=single_service,
                        collect_latencies=False)
        rep = simulate(small_workload, AdaptiveHashScheduler(), cfg)
        assert rep.departed > 0

    def test_beats_static_hash_on_skewed_load(self, single_service):
        """Periodic re-balancing should not lose to a frozen map."""
        from repro import units
        from repro.schedulers.hash_static import StaticHashScheduler
        from repro.sim.config import SimConfig
        from repro.sim.generator import HoltWintersParams
        from repro.sim.system import simulate
        from repro.sim.workload import build_workload
        from repro.trace.synthetic import preset_trace

        trace = preset_trace("caida-1", num_packets=60_000)
        cap = single_service.capacity_pps([8], 348)
        wl = build_workload(
            [trace], [HoltWintersParams(a=1.02 * cap)], units.ms(8), seed=3
        )
        cfg = SimConfig(num_cores=8, services=single_service,
                        collect_latencies=False)
        adaptive = simulate(wl, AdaptiveHashScheduler(
            rebalance_every_ns=units.us(200)), cfg)
        static = simulate(wl, StaticHashScheduler(), cfg)
        assert adaptive.dropped <= static.dropped * 1.05
