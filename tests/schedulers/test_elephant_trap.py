"""Tests for the single-cache ElephantTrap comparator."""

import numpy as np
import pytest

from repro.core.afd import AFDConfig, AggressiveFlowDetector
from repro.schedulers.elephant_trap import ElephantTrap


def stream(weights, n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.choice(len(weights), size=n, p=np.asarray(weights) / sum(weights))


class TestBasics:
    def test_observe_and_query(self):
        trap = ElephantTrap(entries=4)
        for _ in range(3):
            trap.observe(1)
        assert trap.is_aggressive(1)

    def test_invalidate(self):
        trap = ElephantTrap(entries=4)
        trap.observe(1)
        assert trap.invalidate(1)
        assert not trap.is_aggressive(1)

    def test_reset(self):
        trap = ElephantTrap(entries=4)
        trap.observe(1)
        trap.reset()
        assert trap.aggressive_flows() == []
        assert trap.observed == 0

    @pytest.mark.parametrize("kw", [{"entries": 0}, {"admit_prob": 0.0}, {"admit_prob": 2.0}])
    def test_invalid_params(self, kw):
        with pytest.raises(ValueError):
            ElephantTrap(**kw)

    def test_probabilistic_admission_thins_inserts(self):
        trap = ElephantTrap(entries=1000, admit_prob=0.05, rng=0)
        for f in range(1000):
            trap.observe(f)
        assert len(trap.cache) < 200

    def test_fpr_and_accuracy(self):
        trap = ElephantTrap(entries=2)
        trap.observe(1)
        trap.observe(2)
        assert trap.false_positive_ratio({1}) == pytest.approx(0.5)
        assert trap.accuracy({1}) == pytest.approx(0.5)

    def test_fpr_empty(self):
        assert ElephantTrap().false_positive_ratio({1}) == 0.0


class TestVersusAFD:
    def test_two_level_filters_better(self):
        """The paper's Sec. VI claim: a single cache admits mice that
        the annex would have filtered out."""
        weights = [50] * 8 + [1] * 400  # 8 elephants among many mice
        flows = stream(weights, 40_000, seed=3)
        truth = set(range(8))

        afd = AggressiveFlowDetector(
            AFDConfig(afc_entries=8, annex_entries=128, promote_threshold=4),
            rng=0,
        )
        trap = ElephantTrap(entries=8, rng=0)
        for f in flows:
            afd.observe(int(f))
            trap.observe(int(f))
        assert afd.false_positive_ratio(truth) <= trap.false_positive_ratio(truth)
