"""Tests for the exact top-k detector and migration scheduler."""

import pytest

from repro.schedulers.oracle import ExactTopKDetector, TopKMigrationScheduler
from tests.schedulers.test_base import FakeLoads


class TestExactTopKDetector:
    def test_tracks_top_k(self):
        det = ExactTopKDetector(2, refresh_every=10)
        for _ in range(20):
            det.observe(1)
        for _ in range(15):
            det.observe(2)
        for _ in range(5):
            det.observe(3)
        assert det.is_aggressive(1) and det.is_aggressive(2)
        assert not det.is_aggressive(3)
        assert det.top_flows() == [1, 2]

    def test_k_zero_never_aggressive(self):
        det = ExactTopKDetector(0, refresh_every=5)
        for _ in range(50):
            det.observe(1)
        assert not det.is_aggressive(1)

    def test_refresh_cadence(self):
        det = ExactTopKDetector(1, refresh_every=100)
        for _ in range(99):
            det.observe(1)
        assert not det.is_aggressive(1)  # no refresh yet
        det.observe(1)
        assert det.is_aggressive(1)

    def test_invalidation_suppresses(self):
        det = ExactTopKDetector(1, refresh_every=5, suppress_for=20)
        for _ in range(10):
            det.observe(1)
        assert det.invalidate(1)
        assert not det.is_aggressive(1)

    def test_suppression_expires(self):
        det = ExactTopKDetector(1, refresh_every=5, suppress_for=10)
        for _ in range(10):
            det.observe(1)
        det.invalidate(1)
        for _ in range(15):
            det.observe(1)
        assert det.is_aggressive(1)

    def test_weighted_observation(self):
        det = ExactTopKDetector(1, refresh_every=2)
        det.observe(1, weight=100)
        det.observe(2, weight=1)
        assert det.is_aggressive(1)

    @pytest.mark.parametrize(
        "kw", [{"k": -1}, {"k": 1, "refresh_every": 0}, {"k": 1, "suppress_for": -1}]
    )
    def test_invalid_params(self, kw):
        with pytest.raises(ValueError):
            ExactTopKDetector(**kw)


class TestTopKMigrationScheduler:
    def make(self, num_cores=4, **kw):
        kw.setdefault("high_threshold", 4)
        kw.setdefault("detector", ExactTopKDetector(2, refresh_every=1))
        sched = TopKMigrationScheduler(**kw)
        loads = FakeLoads([0] * num_cores)
        sched.bind(loads)
        return sched, loads

    def test_hash_dispatch_when_balanced(self):
        sched, _ = self.make()
        assert sched.select_core(0, 0, 7, 0) == 3

    def test_topk_flow_migrates(self):
        sched, loads = self.make()
        for t in range(10):
            sched.select_core(1, 0, 5, t)  # flow 1 becomes top-k
        home = 5 % 4
        loads.occ[home] = 4
        dest = sched.select_core(1, 0, 5, 100)
        assert dest != home
        assert sched.migration.lookup(1) == dest
        assert sched.migrations_installed == 1

    def test_mouse_not_migrated(self):
        sched, loads = self.make()
        for t in range(10):
            sched.select_core(1, 0, 5, t)
            sched.select_core(2, 0, 6, t)
        loads.occ[3] = 4
        dest = sched.select_core(9, 0, 7, 100)  # one-packet mouse
        assert dest == 3
        assert sched.migration.lookup(9) is None

    def test_pin_persists(self):
        sched, loads = self.make()
        for t in range(10):
            sched.select_core(1, 0, 5, t)
        loads.occ[5 % 4] = 4
        dest = sched.select_core(1, 0, 5, 100)
        loads.occ[5 % 4] = 0
        assert sched.select_core(1, 0, 5, 200) == dest

    def test_pin_aware_placement(self):
        sched, loads = self.make(num_cores=8)
        for f, h in ((1, 0), (2, 8)):
            for t in range(10):
                sched.select_core(f, 0, h, t)
        loads.occ[0] = 4
        d1 = sched.select_core(1, 0, 0, 100)
        d2 = sched.select_core(2, 0, 8, 101)
        assert d1 != d2  # second elephant avoids the first's pin

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            TopKMigrationScheduler(high_threshold=0)

    def test_stats(self):
        sched, _ = self.make()
        assert "migrations_installed" in sched.stats()
