"""Tests for the AFS (bucket-shift) baseline."""

import pytest

from repro.schedulers.afs import AFSScheduler
from tests.schedulers.test_base import FakeLoads


def make(num_cores=4, **kw):
    kw.setdefault("high_threshold", 4)
    kw.setdefault("cooldown_ns", 0)
    sched = AFSScheduler(**kw)
    loads = FakeLoads([0] * num_cores)
    sched.bind(loads)
    return sched, loads


class TestConstruction:
    def test_buckets_scale_with_cores(self):
        sched, _ = make(num_cores=4)
        assert sched.num_buckets == 4 * 16

    @pytest.mark.parametrize(
        "kw", [{"buckets_per_core": 0}, {"high_threshold": 0}, {"cooldown_ns": -1}]
    )
    def test_invalid_params(self, kw):
        with pytest.raises(ValueError):
            AFSScheduler(**kw)

    def test_threshold_must_fit_queue(self):
        sched = AFSScheduler(high_threshold=64)
        with pytest.raises(ValueError):
            sched.bind(FakeLoads([0] * 2))

    def test_rebind_resets(self):
        sched, loads = make()
        loads.occ[sched.select_core(0, 0, 0, 0)] = 4
        sched.select_core(0, 0, 0, 1)
        sched.bind(FakeLoads([0] * 4))
        assert sched.bucket_migrations == 0


class TestSteering:
    def test_initial_round_robin(self):
        sched, _ = make()
        assert sched.select_core(0, 0, 0, 0) == 0
        assert sched.select_core(0, 0, 1, 0) == 1

    def test_flow_affinity_when_balanced(self):
        sched, _ = make()
        picks = {sched.select_core(3, 0, 777, t) for t in range(10)}
        assert len(picks) == 1


class TestBucketMigration:
    def test_bucket_shifts_on_overload(self):
        sched, loads = make()
        home = sched.select_core(0, 0, 5, 0)
        loads.occ[home] = 4
        dest = sched.select_core(0, 0, 5, 1)
        assert dest != home
        assert sched.bucket_migrations == 1
        # the whole bucket moved: same hash keeps the new core
        loads.occ[home] = 0
        assert sched.select_core(0, 0, 5, 2) == dest

    def test_all_bucket_flows_move_together(self):
        sched, loads = make()
        h1, h2 = 5, 5 + sched.num_buckets  # same bucket
        home = sched.select_core(0, 0, h1, 0)
        loads.occ[home] = 4
        dest = sched.select_core(0, 0, h1, 1)
        assert sched.select_core(1, 0, h2, 2) == dest

    def test_cooldown_rate_limits(self):
        sched, loads = make(cooldown_ns=1000)
        for occ in range(4):
            loads.occ[occ] = 4
        loads.occ[3] = 0
        sched.select_core(0, 0, 0, 0)   # migrates bucket 0
        before = sched.bucket_migrations
        sched.select_core(0, 0, 1, 10)  # within cooldown: no shift
        assert sched.bucket_migrations == before

    def test_no_migration_when_all_overloaded(self):
        sched, loads = make()
        for c in range(4):
            loads.occ[c] = 4
        home = sched.select_core(0, 0, 7, 0)
        assert home == 7 % sched.num_buckets % 4 or home in range(4)
        assert sched.bucket_migrations == 0

    def test_stats(self):
        sched, _ = make()
        stats = sched.stats()
        assert "bucket_migrations" in stats and "imbalance_events" in stats
