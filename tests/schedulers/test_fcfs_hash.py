"""Tests for the FCFS and static-hash baselines."""

from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.hash_static import StaticHashScheduler
from tests.schedulers.test_base import FakeLoads


class TestFCFS:
    def test_picks_least_loaded(self):
        sched = FCFSScheduler()
        sched.bind(FakeLoads([5, 1, 3]))
        assert sched.select_core(0, 0, 0, 0) == 1

    def test_rotating_tie_break(self):
        sched = FCFSScheduler()
        sched.bind(FakeLoads([0, 0, 0]))
        picks = [sched.select_core(i, 0, i, i) for i in range(6)]
        # ties rotate instead of always picking core 0
        assert set(picks) == {0, 1, 2}

    def test_ignores_flow_and_service(self):
        sched = FCFSScheduler()
        loads = FakeLoads([2, 0])
        sched.bind(loads)
        assert sched.select_core(1, 0, 99, 0) == sched.select_core(2, 3, 7, 1)

    def test_zero_queue_short_circuit(self):
        sched = FCFSScheduler()
        sched.bind(FakeLoads([0] * 64))
        assert sched.select_core(0, 0, 0, 0) in range(64)


class TestStaticHash:
    def test_modulo_mapping(self):
        sched = StaticHashScheduler()
        sched.bind(FakeLoads([0] * 4))
        for h in range(32):
            assert sched.select_core(0, 0, h, 0) == h % 4

    def test_flow_affinity(self):
        sched = StaticHashScheduler()
        sched.bind(FakeLoads([0] * 8))
        picks = {sched.select_core(7, 0, 12345, t) for t in range(10)}
        assert len(picks) == 1

    def test_oblivious_to_load(self):
        sched = StaticHashScheduler()
        loads = FakeLoads([0, 100])
        sched.bind(loads)
        assert sched.select_core(0, 0, 1, 0) == 1  # despite the backlog
