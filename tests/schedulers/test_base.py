"""Tests for the scheduler interface and registry."""

import pytest

import repro.schedulers  # noqa: F401  (registers everything)
from repro.errors import SchedulerError
from repro.schedulers.base import (
    Scheduler,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)


class FakeLoads:
    def __init__(self, occ):
        self.occ = occ

    @property
    def num_cores(self):
        return len(self.occ)

    @property
    def queue_capacity(self):
        return 32

    def occupancy(self, core_id):
        return self.occ[core_id]


class TestRegistry:
    def test_known_schedulers_registered(self):
        names = available_schedulers()
        for expected in ("fcfs", "afs", "hash-static", "laps", "topk"):
            assert expected in names

    def test_make_unknown_rejected(self):
        with pytest.raises(SchedulerError):
            make_scheduler("definitely-not-a-scheduler")

    def test_make_passes_kwargs(self):
        sched = make_scheduler("afs", high_threshold=10)
        assert sched.high_threshold == 10

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            @register_scheduler("fcfs")
            class Dup(Scheduler):  # pragma: no cover
                def select_core(self, *a):
                    return 0

    def test_name_attached(self):
        assert make_scheduler("fcfs").name == "fcfs"


class TestBindLifecycle:
    def test_unbound_use_rejected(self):
        sched = make_scheduler("fcfs")
        with pytest.raises(SchedulerError):
            sched.select_core(0, 0, 0, 0)

    def test_is_bound(self):
        sched = make_scheduler("fcfs")
        assert not sched.is_bound
        sched.bind(FakeLoads([0, 0]))
        assert sched.is_bound

    def test_min_queue_core_helper(self):
        sched = make_scheduler("fcfs")
        sched.bind(FakeLoads([3, 1, 2]))
        assert sched._min_queue_core(range(3)) == 1

    def test_min_queue_tie_lowest_id(self):
        sched = make_scheduler("fcfs")
        sched.bind(FakeLoads([2, 2, 2]))
        assert sched._min_queue_core(range(3)) == 0

    def test_min_queue_empty_set_rejected(self):
        sched = make_scheduler("fcfs")
        sched.bind(FakeLoads([1]))
        with pytest.raises(SchedulerError):
            sched._min_queue_core([])

    def test_default_stats_empty(self):
        assert make_scheduler("fcfs").stats() == {}
