"""Scalar/batch scheduling equivalence (the map-epoch protocol).

Two layers of pinning for the vectorized fast path:

* **scheduler-level** — twin instances of every registered policy see
  the same packet sequence, one through per-packet ``select_core``,
  the other through a consumer that replays the kernel's column
  discipline (plan via ``assign_batch``, honour ``-1`` sentinels, the
  occupancy guard and ``batch_commit``, replan on every ``map_epoch``
  bump).  The chosen cores must match packet for packet — including
  across mid-sequence epoch bumps forced by occupancy swings and core
  down/up events — and the final ``stats()`` must be equal.

* **kernel-level** — full simulations with ``vectorized=True`` vs
  ``False`` must produce bit-equal reports across schedulers, seeds,
  materialized vs streamed sources at several chunk sizes, fault
  schedules, and mid-run checkpoint/resume in either direction
  (a vectorized checkpoint resumed scalar and vice versa).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.faults.events import (
    CoreFail,
    CoreRecover,
    CoreSlowdown,
    FaultSchedule,
)
from repro.faults.injector import FaultInjector
from repro.net.service import Service, ServiceSet
from repro.schedulers.base import Scheduler, available_schedulers, make_scheduler
from repro.sim.config import SimConfig
from repro.sim.generator import HoltWintersParams
from repro.sim.kernel import SimKernel
from repro.sim.source import StreamingSource
from repro.sim.system import simulate
from repro.sim.workload import build_workload
from repro.trace.synthetic import preset_trace

# ----------------------------------------------------------------------
# scheduler-level twins
# ----------------------------------------------------------------------


class MutableLoads:
    """A LoadView whose occupancies the test script mutates."""

    def __init__(self, num_cores: int = 8, queue_capacity: int = 32) -> None:
        self.num_cores = num_cores
        self.queue_capacity = queue_capacity
        self.occ = [0] * num_cores

    def occupancy(self, core_id: int) -> int:
        return self.occ[core_id]


def _make(name: str) -> Scheduler:
    if name == "laps":
        return LAPSScheduler(LAPSConfig(num_services=2), rng=3)
    return make_scheduler(name)


def _sequence(n: int = 3000, seed: int = 11):
    rng = np.random.default_rng(seed)
    flow_id = rng.integers(0, 200, size=n).astype(np.int64)
    flow_hash = (flow_id * 2654435761) % 65536
    service_id = (flow_id % 2).astype(np.int32)
    arrival_ns = np.cumsum(rng.integers(200, 2000, size=n)).astype(np.int64)
    return flow_hash, service_id, flow_id.astype(np.int64), arrival_ns


def _script(loads: MutableLoads, n: int):
    """index -> mutation applied to (sched, loads) just before that
    packet, identically on both twins.  Swings occupancy across any
    plausible ``batch_guard`` and flaps a core, so every epoch-bump
    source fires mid-sequence."""

    def spike(sched, ld, t):
        ld.occ[:] = [31, 30, 2, 29, 31, 28, 30, 27][: ld.num_cores]

    def calm(sched, ld, t):
        ld.occ[:] = [0] * ld.num_cores

    def down(sched, ld, t):
        sched.on_core_down(1, t)

    def up(sched, ld, t):
        sched.on_core_up(1, t)

    return {n // 5: spike, 2 * n // 5: calm, 3 * n // 5: down, 4 * n // 5: up}


def _run_scalar(sched, loads, cols, script):
    fh, sid, fid, arr = cols
    chosen = []
    for i in range(len(fh)):
        t = int(arr[i])
        if i in script:
            script[i](sched, loads, t)
        chosen.append(sched.select_core(int(fid[i]), int(sid[i]), int(fh[i]), t))
    return chosen


def _run_batched(sched, loads, cols, script):
    """The kernel's column discipline, replayed in miniature."""
    fh, sid, fid, arr = cols
    n = len(fh)
    chosen = []
    col: list[int] = []
    cl = ch = 0
    epoch = -1
    plan_li = -1
    guard = sched.batch_guard
    commit = sched.batch_commit
    for i in range(n):
        t = int(arr[i])
        if i in script:
            script[i](sched, loads, t)
        if sched.map_epoch != epoch or (i >= ch and i > plan_li):
            out = sched.assign_batch(fh[i:], sid[i:], fid[i:], arr[i:], i)
            col = [] if out is None else out.tolist()
            cl = plan_li = i
            ch = i + len(col)
            epoch = sched.map_epoch
        if cl <= i < ch:
            core = col[i - cl]
            if core < 0:
                core = sched.select_core(int(fid[i]), int(sid[i]), int(fh[i]), t)
            elif guard is not None:
                occ = loads.occupancy(core)
                if occ >= guard:
                    core = sched.select_core(int(fid[i]), int(sid[i]), int(fh[i]), t)
                elif commit is not None:
                    commit(int(fid[i]), int(fh[i]), core, occ, t)
            elif commit is not None:
                commit(int(fid[i]), int(fh[i]), core, -1, t)
        else:
            core = sched.select_core(int(fid[i]), int(sid[i]), int(fh[i]), t)
        chosen.append(core)
    return chosen


@pytest.mark.parametrize("name", available_schedulers())
def test_batched_consumption_matches_scalar(name):
    cols = _sequence()
    scalar, batched = _make(name), _make(name)
    loads_a, loads_b = MutableLoads(), MutableLoads()
    scalar.bind(loads_a)
    batched.bind(loads_b)
    # batch_guard may only be fixed at bind time (LAPS)
    a = _run_scalar(scalar, loads_a, cols, _script(loads_a, len(cols[0])))
    b = _run_batched(batched, loads_b, cols, _script(loads_b, len(cols[0])))
    assert a == b
    assert scalar.stats() == batched.stats()


@pytest.mark.parametrize("name", available_schedulers())
def test_epoch_bumps_on_bind(name):
    sched = _make(name)
    before = sched.map_epoch
    sched.bind(MutableLoads())
    assert sched.map_epoch > before


def test_base_assign_batch_is_none():
    fh, sid, fid, arr = _sequence(16)
    sched = _make("fcfs")
    sched.bind(MutableLoads())
    if type(sched).assign_batch is Scheduler.assign_batch:
        assert sched.assign_batch(fh, sid, fid, arr, 0) is None


@pytest.mark.parametrize(
    "name",
    [
        "hash-static", "afs", "adaptive-hash", "laps",
        "rss-static", "flow-director", "sprinklers", "flowlet",
    ],
)
def test_planning_is_idempotent(name):
    """Planning twice over overlapping spans must not change state
    (the kernel replans the same suffix after every epoch bump)."""
    fh, sid, fid, arr = _sequence(512)
    a, b = _make(name), _make(name)
    a.bind(MutableLoads())
    b.bind(MutableLoads())
    if type(a).assign_batch is Scheduler.assign_batch:
        pytest.skip(f"{name} has no batch path")
    once = a.assign_batch(fh, sid, fid, arr, 0)
    b.assign_batch(fh, sid, fid, arr, 0)
    twice = b.assign_batch(fh, sid, fid, arr, 0)
    assert once is not None and twice is not None
    np.testing.assert_array_equal(once, twice)
    assert a.stats() == b.stats()
    assert a.map_epoch == b.map_epoch


class TestLapsPinOverlayCache:
    """The migration-pin overlay snapshot is cached on the migration
    table's epoch (regression for the per-plan ``np.fromiter`` rebuild
    — same bug shape as the PR 6 ``lookup_batch`` cache fix)."""

    def _bound_laps(self):
        sched = LAPSScheduler(LAPSConfig(num_services=2), rng=3)
        sched.bind(MutableLoads())
        return sched

    def _plan(self, sched, fids):
        n = len(fids)
        fid = np.asarray(fids, dtype=np.int64)
        fh = fid * 7 + 1
        sid = np.zeros(n, dtype=np.int64)
        arr = np.arange(n, dtype=np.int64)
        return sched.assign_batch(fh, sid, fid, arr, 0)

    def test_snapshot_reused_while_epoch_holds(self):
        sched = self._bound_laps()
        core = sched.allocator.cores_of(0)[0]
        sched.migration.add(5, core)
        self._plan(sched, [5, 6, 7])
        first = sched._pin_fids
        assert first is not None
        self._plan(sched, [8, 5, 9])
        assert sched._pin_fids is first  # no rebuild without a mutation

    def test_every_mutation_invalidates(self):
        sched = self._bound_laps()
        cores = sched.allocator.cores_of(0)
        mig = sched.migration
        mig.add(5, cores[0])
        assert self._plan(sched, [5]).tolist() == [cores[0]]
        # retarget in place
        mig.add(5, cores[1])
        assert self._plan(sched, [5]).tolist() == [cores[1]]
        # add a second pin
        mig.add(6, cores[0])
        assert self._plan(sched, [5, 6]).tolist() == [cores[1], cores[0]]
        # remove one
        mig.remove(5)
        out = self._plan(sched, [5, 6])
        assert out.tolist()[1] == cores[0]
        assert out.tolist()[0] != cores[1] or 5 not in mig
        # drop a whole core's pins
        mig.drop_core(cores[0])
        assert 6 not in mig

    def test_stale_pin_maps_to_sentinel(self):
        """A pin whose target core left the service plans as ``-1`` so
        the scalar path prunes it."""
        sched = self._bound_laps()
        foreign = sched.allocator.cores_of(1)[0]
        sched.migration.add(5, foreign)  # pinned outside service 0
        assert self._plan(sched, [5]).tolist() == [-1]

    def test_overlay_matches_scalar_lookup(self):
        sched = self._bound_laps()
        cores = sched.allocator.cores_of(0)
        for f in range(0, 40, 3):
            sched.migration.add(f, cores[f % len(cores)])
        fids = list(range(50))
        out = self._plan(sched, fids).tolist()
        for f, planned in zip(fids, out):
            pin = sched.migration.lookup(f)
            if pin is not None and sched.allocator.owner_of(pin) == 0:
                assert planned == pin


# ----------------------------------------------------------------------
# kernel-level bit-identity
# ----------------------------------------------------------------------

KERNEL_SCHEDULERS = [
    "hash-static", "afs", "adaptive-hash", "laps",
    # the zoo (PR 6): every new scheduler rides the same epoch/batch
    # contract, so it gets the full kernel-level bit-identity battery
    "rss-static", "flow-director", "sprinklers", "flowlet",
]


def _two_service_inputs(packets=3_000):
    traces = [
        preset_trace("caida-1", num_packets=packets),
        preset_trace("auck-1", num_packets=packets),
    ]
    params = [
        HoltWintersParams(a=3e6, b=2e8, sigma=0.1),
        HoltWintersParams(a=2e6),
    ]
    return traces, params


def _config(**kw):
    svc = ServiceSet([Service(0, "a", 800), Service(1, "b", 1200)])
    kw.setdefault("num_cores", 4)
    kw.setdefault("services", svc)
    kw.setdefault("collect_latencies", True)
    kw.setdefault("record_departures", True)
    return SimConfig(**kw)


def _kernel_sched(name: str, rng: int = 5) -> Scheduler:
    if name == "laps":
        return LAPSScheduler(LAPSConfig(num_services=2), rng=rng)
    return make_scheduler(name)


def _workload(seed: int, chunk_size: int | None):
    traces, params = _two_service_inputs()
    if chunk_size is None:
        return build_workload(traces, params, duration_ns=units.ms(1), seed=seed)
    return StreamingSource(
        traces, params, units.ms(1), seed=seed, chunk_size=chunk_size
    )


def _faults() -> FaultSchedule:
    return FaultSchedule(
        [
            CoreSlowdown(units.us(150), core_id=2, factor=1.5),
            CoreFail(units.us(300), core_id=1),
            CoreSlowdown(units.us(450), core_id=2, factor=1.0),
            CoreRecover(units.us(650), core_id=1),
        ]
    )


@pytest.mark.parametrize("name", KERNEL_SCHEDULERS)
@pytest.mark.parametrize("chunk_size", [None, 701, 4096])
@pytest.mark.parametrize("seed", [0, 9])
def test_vectorized_report_identical(name, chunk_size, seed):
    cfg = _config()
    wl = _workload(seed, chunk_size)
    fast = simulate(wl, _kernel_sched(name), cfg, vectorized=True)
    slow = simulate(wl, _kernel_sched(name), cfg, vectorized=False)
    assert fast == slow


@pytest.mark.parametrize("name", KERNEL_SCHEDULERS)
def test_vectorized_identical_under_faults(name):
    cfg = _config()
    wl = _workload(3, 997)
    fast = simulate(
        wl, _kernel_sched(name), cfg,
        injector=FaultInjector(_faults()), vectorized=True,
    )
    slow = simulate(
        wl, _kernel_sched(name), cfg,
        injector=FaultInjector(_faults()), vectorized=False,
    )
    assert fast == slow


def _flap_faults() -> FaultSchedule:
    """A core that fails and recovers twice (flap): every down/up edge
    is an epoch-bump source for map-keeping schedulers and an eviction
    trigger for flowlet/LAPS, so the planned columns churn mid-run."""
    return FaultSchedule(
        [
            CoreFail(units.us(200), core_id=2),
            CoreRecover(units.us(320), core_id=2),
            CoreFail(units.us(450), core_id=2),
            CoreRecover(units.us(600), core_id=2),
        ]
    )


@pytest.mark.parametrize("name", KERNEL_SCHEDULERS)
def test_vectorized_identical_under_core_flaps(name):
    cfg = _config()
    wl = _workload(6, 701)
    fast = simulate(
        wl, _kernel_sched(name), cfg,
        injector=FaultInjector(_flap_faults()), vectorized=True,
    )
    slow = simulate(
        wl, _kernel_sched(name), cfg,
        injector=FaultInjector(_flap_faults()), vectorized=False,
    )
    assert fast == slow


@pytest.mark.parametrize("name", KERNEL_SCHEDULERS)
@pytest.mark.parametrize("vec_first", [True, False])
def test_cross_mode_checkpoint_resume(name, vec_first):
    """A checkpoint taken by one mode resumes exactly in the other —
    planned columns are never serialized and batch bookkeeping commits
    per dispatched packet, so the modes share all durable state."""
    cfg = _config()
    wl = _workload(1, None)
    expected = simulate(wl, _kernel_sched(name), cfg, vectorized=True)

    kernel = SimKernel(cfg, _kernel_sched(name), wl, vectorized=vec_first)
    kernel.attach_injector(FaultInjector(_faults()))
    base = simulate(
        wl, _kernel_sched(name), cfg,
        injector=FaultInjector(_faults()), vectorized=True,
    )
    kernel.run_until(units.us(400))  # mid-run, with a core down
    ckpt = kernel.checkpoint()
    resumed = SimKernel.resume(ckpt, cfg, wl, vectorized=not vec_first)
    assert resumed.run() == base
    # and the fault-free report differs (the schedule really did bite),
    # guarding against a vacuous comparison above
    assert base != expected or base.fault_events == 0
