"""Behavior tests for the literature zoo (PR 6): RSS static hashing,
Flow Director rebinding, Sprinklers striping and flowlet switching.

The batch/scalar bit-identity contract is exercised by the shared twin
suite in ``test_assign_batch.py`` (every registered scheduler rides it
automatically); this file pins each scheme's *behavior* — the steering
decisions that give it its tournament profile.
"""

import numpy as np
import pytest

from repro import units
from repro.hashing.toeplitz import ToeplitzHasher
from repro.schedulers.flow_director import FlowDirectorScheduler
from repro.schedulers.flowlet import FlowletScheduler
from repro.schedulers.rss_static import RSSStaticScheduler
from repro.schedulers.sprinklers import SprinklersScheduler
from tests.schedulers.test_base import FakeLoads


class TestRSSStatic:
    def make(self, num_cores=4, **kw):
        sched = RSSStaticScheduler(**kw)
        loads = FakeLoads([0] * num_cores)
        sched.bind(loads)
        return sched, loads

    @pytest.mark.parametrize("entries", [0, -8, 3, 129])
    def test_non_power_of_two_table_rejected(self, entries):
        with pytest.raises(ValueError):
            RSSStaticScheduler(indirection_entries=entries)

    def test_table_round_robins_cores(self):
        sched, _ = self.make(num_cores=4, indirection_entries=8)
        assert sched.indirection_table == (0, 1, 2, 3, 0, 1, 2, 3)

    def test_select_core_is_toeplitz_of_flow_id(self):
        sched, _ = self.make(num_cores=4, indirection_entries=128)
        hasher = ToeplitzHasher()
        for flow_id in (0, 1, 17, 123_456, 2**40 + 5):
            bucket = hasher.hash(flow_id.to_bytes(8, "big")) & 127
            expected = sched.indirection_table[bucket]
            assert sched.select_core(flow_id, 0, 0, 0) == expected

    def test_custom_key_changes_steering(self):
        default, _ = self.make(num_cores=8)
        custom, _ = self.make(num_cores=8, key=bytes(range(40)))
        flows = range(256)
        assert any(
            default.select_core(f, 0, 0, 0) != custom.select_core(f, 0, 0, 0)
            for f in flows
        )

    def test_static_under_load_and_faults(self):
        sched, loads = self.make(num_cores=4)
        before = sched.map_epoch
        core = sched.select_core(7, 0, 0, 0)
        loads.occ[core] = 32  # full queue: RSS does not care
        assert sched.select_core(7, 0, 0, 1) == core
        sched.on_core_down(core, 10)
        assert sched.select_core(7, 0, 0, 20) == core  # black-holes
        assert sched.map_epoch == before

    def test_batch_matches_scalar(self):
        sched, _ = self.make(num_cores=4)
        flow_id = np.array([0, 5, 5, 2**33, 9, 0], dtype=np.int64)
        zeros = np.zeros(len(flow_id), dtype=np.int64)
        planned = sched.assign_batch(zeros, zeros, flow_id, zeros)
        scalar = [sched.select_core(int(f), 0, 0, 0) for f in flow_id]
        assert planned.tolist() == scalar


class TestFlowDirector:
    def make(self, num_cores=4, **kw):
        sched = FlowDirectorScheduler(**kw)
        loads = FakeLoads([0] * num_cores)
        sched.bind(loads)
        return sched, loads

    @pytest.mark.parametrize(
        "kw", [{"table_entries": 0}, {"rebind_threshold": 0}]
    )
    def test_invalid_params(self, kw):
        with pytest.raises(ValueError):
            FlowDirectorScheduler(**kw)

    def test_threshold_must_fit_queue(self):
        sched = FlowDirectorScheduler(rebind_threshold=64)
        with pytest.raises(ValueError):
            sched.bind(FakeLoads([0] * 2))

    def test_first_packet_binds_least_loaded(self):
        sched, loads = self.make()
        loads.occ[:] = [3, 0, 2, 5]
        assert sched.select_core(1, 0, 0, 0) == 1
        assert sched.flows_bound == 1

    def test_sticky_below_threshold(self):
        sched, loads = self.make(rebind_threshold=8)
        core = sched.select_core(1, 0, 0, 0)
        loads.occ[core] = 7  # loaded, but under threshold
        assert sched.select_core(1, 0, 0, 1) == core
        assert sched.rebinds == 0

    def test_rebinds_on_overload_ignoring_inflight(self):
        """The Wu et al. pathology: the bound core crosses the
        threshold and the very next packet jumps queues immediately."""
        sched, loads = self.make(rebind_threshold=8)
        core = sched.select_core(1, 0, 0, 0)
        loads.occ[core] = 8
        epoch = sched.map_epoch
        dest = sched.select_core(1, 0, 0, 1)
        assert dest != core
        assert sched.rebinds == 1
        assert sched.map_epoch == epoch + 1  # planned entries go stale
        # and it keeps following the load, flapping back if asked
        loads.occ[dest] = 9
        loads.occ[core] = 0
        assert sched.select_core(1, 0, 0, 2) == core
        assert sched.rebinds == 2

    def test_no_rebind_when_everywhere_is_overloaded(self):
        sched, loads = self.make(rebind_threshold=4)
        core = sched.select_core(1, 0, 0, 0)
        loads.occ[:] = [4, 4, 4, 4]
        assert sched.select_core(1, 0, 0, 1) == core
        assert sched.rebinds == 0

    def test_fifo_eviction_unbinds_oldest(self):
        sched, loads = self.make(table_entries=2)
        sched.select_core(1, 0, 0, 0)
        sched.select_core(2, 0, 0, 1)
        epoch = sched.map_epoch
        sched.select_core(3, 0, 0, 2)  # evicts flow 1
        assert sched.evictions == 1
        assert sched.map_epoch == epoch + 1
        assert len(sched) == 2
        # flow 1 is rebound as if brand new
        loads.occ[:] = [9, 0, 9, 9]
        assert sched.select_core(1, 0, 0, 3) == 1
        assert sched.flows_bound == 4

    def test_batch_plans_bound_flows_only(self):
        sched, loads = self.make()
        loads.occ[:] = [2, 0, 1, 3]
        core1 = sched.select_core(10, 0, 0, 0)
        zeros = np.zeros(4, dtype=np.int64)
        flow_id = np.array([10, 99, 10, 98], dtype=np.int64)
        planned = sched.assign_batch(zeros, zeros, flow_id, zeros)
        assert planned.tolist() == [core1, -1, core1, -1]

    def test_guard_covers_rebind_machinery(self):
        # planned entries are only trusted under the rebind threshold —
        # the scalar path owns every occupancy above it
        sched, _ = self.make(rebind_threshold=12)
        assert sched.batch_guard == 12


class TestSprinklers:
    def make(self, num_cores=8, **kw):
        kw.setdefault("stripe_chunk", 2)
        kw.setdefault("width_threshold", 4)
        kw.setdefault("max_width", 4)
        sched = SprinklersScheduler(**kw)
        loads = FakeLoads([0] * num_cores)
        sched.bind(loads)
        return sched, loads

    @pytest.mark.parametrize(
        "kw",
        [
            {"stripe_chunk": 0},
            {"width_threshold": 0},
            {"max_width": 0},
            {"max_width": 3},
        ],
    )
    def test_invalid_params(self, kw):
        with pytest.raises(ValueError):
            SprinklersScheduler(**kw)

    def test_width_ladder_is_quadratic(self):
        sched, _ = self.make()  # threshold 4, cap 4
        widths = [sched._width(c) for c in (0, 3, 4, 15, 16, 1000)]
        assert widths == [1, 1, 2, 2, 4, 4]

    def test_width_cap_respects_core_count(self):
        sched, _ = self.make(num_cores=2, max_width=8)
        assert sched._width(10**6) == 2

    def test_mice_stay_pinned(self):
        sched, _ = self.make()
        picks = {sched.select_core(5, 0, 40, t) for t in range(4)}
        assert len(picks) == 1  # width 1: no striping below threshold

    def test_heavy_flow_stripes_over_consecutive_cores(self):
        sched, _ = self.make()
        cores = [sched.select_core(5, 0, 40, t) for t in range(24)]
        base = 40 % 8
        # after 16 packets the flow is width 4, chunked every 2 packets
        assert set(cores[16:24]) == {base, base + 1, base + 2, base + 3}
        assert sched.stripes_widened == 2  # 1->2 at count 4, 2->4 at 16

    def test_oblivious_to_queue_state(self):
        """Placement depends only on (hash, committed count): loading
        the queues changes nothing (Sprinklers never consults them)."""
        idle, _ = self.make()
        loaded, loads = self.make()
        loads.occ[:] = [31] * 8
        seq_idle = [idle.select_core(5, 0, 40, t) for t in range(20)]
        seq_loaded = [loaded.select_core(5, 0, 40, t) for t in range(20)]
        assert seq_idle == seq_loaded

    def test_batch_reconstructs_interleaved_counts(self):
        sched, _ = self.make()
        # interleave two flows; committed counts must line up exactly
        flow_id = np.array([1, 2, 1, 2, 1, 1, 2, 1], dtype=np.int64)
        flow_hash = flow_id * 3
        zeros = np.zeros(len(flow_id), dtype=np.int64)
        planned = sched.assign_batch(flow_hash, zeros, flow_id, zeros)
        scalar = [
            sched.select_core(int(f), 0, int(h), 0)
            for f, h in zip(flow_id, flow_hash)
        ]
        assert planned.tolist() == scalar

    def test_batch_respects_committed_counts(self):
        sched, _ = self.make()
        for t in range(5):  # commit 5 packets of flow 7 (width now 2)
            sched.select_core(7, 0, 21, t)
        flow_id = np.full(4, 7, dtype=np.int64)
        flow_hash = np.full(4, 21, dtype=np.int64)
        zeros = np.zeros(4, dtype=np.int64)
        planned = sched.assign_batch(flow_hash, zeros, flow_id, zeros)
        scalar = [sched.select_core(7, 0, 21, t) for t in range(4)]
        assert planned.tolist() == scalar


class TestFlowlet:
    GAP = units.us(50)

    def make(self, num_cores=4, **kw):
        kw.setdefault("gap_ns", self.GAP)
        sched = FlowletScheduler(**kw)
        loads = FakeLoads([0] * num_cores)
        sched.bind(loads)
        return sched, loads

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            FlowletScheduler(gap_ns=0)

    def test_first_packet_joins_shortest_queue(self):
        sched, loads = self.make()
        loads.occ[:] = [4, 2, 0, 3]
        assert sched.select_core(1, 0, 0, 0) == 2
        assert sched.flowlets == 1

    def test_sticky_within_burst_despite_load(self):
        sched, loads = self.make()
        core = sched.select_core(1, 0, 0, 0)
        loads.occ[core] = 30  # overload mid-burst: flowlet stays put
        epoch = sched.map_epoch
        for dt in range(1, 10):
            assert sched.select_core(1, 0, 0, dt * (self.GAP // 20)) == core
        assert sched.switches == 0
        assert sched.map_epoch == epoch

    def test_switches_only_at_idle_gap(self):
        sched, loads = self.make()
        core = sched.select_core(1, 0, 0, 0)
        loads.occ[core] = 30
        epoch = sched.map_epoch
        dest = sched.select_core(1, 0, 0, self.GAP)  # gap reached
        assert dest != core
        assert sched.switches == 1
        assert sched.map_epoch == epoch + 1

    def test_gap_resets_with_every_packet(self):
        """The gap is idle time, not flowlet age: a continuous trickle
        never switches no matter how long it runs."""
        sched, loads = self.make()
        core = sched.select_core(1, 0, 0, 0)
        loads.occ[core] = 30
        t = 0
        for _ in range(100):
            t += self.GAP - 1
            assert sched.select_core(1, 0, 0, t) == core
        assert sched.switches == 0

    def test_gap_without_better_core_stays_put(self):
        sched, loads = self.make()
        core = sched.select_core(1, 0, 0, 0)
        epoch = sched.map_epoch
        # boundary crossed but the bound core is still the least loaded:
        # re-pick lands on the same core, no switch, no epoch bump
        assert sched.select_core(1, 0, 0, self.GAP * 2) == core
        assert sched.flowlets == 2
        assert sched.switches == 0
        assert sched.map_epoch == epoch

    def test_core_down_evicts_bindings_immediately(self):
        sched, loads = self.make()
        loads.occ[:] = [0, 9, 9, 9]
        assert sched.select_core(1, 0, 0, 0) == 0
        epoch = sched.map_epoch
        sched.on_core_down(0, 10)
        assert sched.fault_evictions == 1
        assert sched.map_epoch == epoch + 1
        # next packet re-picks mid-burst instead of black-holing
        loads.occ[:] = [32, 9, 0, 9]
        assert sched.select_core(1, 0, 0, 20) == 2

    def test_batch_plans_sticky_stretch_and_sentinels_boundary(self):
        sched, loads = self.make()
        loads.occ[:] = [0, 9, 9, 9]
        core = sched.select_core(1, 0, 0, 0)
        zeros = np.zeros(4, dtype=np.int64)
        flow_id = np.array([1, 1, 1, 2], dtype=np.int64)
        arrivals = np.array(
            [10, 20, self.GAP * 3, 30], dtype=np.int64
        )
        planned = sched.assign_batch(zeros, zeros, flow_id, arrivals)
        # packets 0-1 are mid-burst (sticky); packet 2 crosses the gap
        # (boundary -> scalar); flow 2 is unbound (-> scalar)
        assert planned.tolist() == [core, core, -1, -1]
