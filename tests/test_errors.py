"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigError,
            errors.TraceError,
            errors.TraceFormatError,
            errors.SimulationError,
            errors.SchedulerError,
            errors.CapacityError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_config_error_is_value_error(self):
        assert issubclass(errors.ConfigError, ValueError)

    def test_trace_format_error_is_trace_error(self):
        assert issubclass(errors.TraceFormatError, errors.TraceError)

    def test_simulation_error_is_runtime_error(self):
        assert issubclass(errors.SimulationError, RuntimeError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            raise errors.SchedulerError("boom")
