"""Shared fixtures: small deterministic traces and workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.hashing.five_tuple import FiveTuple
from repro.net.service import Service, ServiceSet
from repro.sim.config import SimConfig
from repro.sim.generator import HoltWintersParams
from repro.sim.workload import build_workload
from repro.trace.synthetic import SyntheticTraceConfig, generate_trace
from repro.trace.trace import Trace


@pytest.fixture
def tiny_trace() -> Trace:
    """A hand-built 6-packet, 3-flow trace."""
    keys = [
        FiveTuple.from_strings("10.0.0.1", "192.168.1.1", 1000, 80, 6),
        FiveTuple.from_strings("10.0.0.2", "192.168.1.2", 2000, 443, 6),
        FiveTuple.from_strings("10.0.0.3", "192.168.1.3", 3000, 53, 17),
    ]
    packets = [
        (keys[0], 100, 0),
        (keys[1], 200, 10),
        (keys[0], 100, 10),
        (keys[2], 64, 5),
        (keys[0], 1500, 5),
        (keys[1], 200, 20),
    ]
    return Trace.from_packets(packets, name="tiny")


@pytest.fixture
def small_synthetic() -> Trace:
    """A 5k-packet synthetic trace with 8 elephants (fast to generate)."""
    config = SyntheticTraceConfig(
        num_packets=5_000,
        num_flows=500,
        num_elephants=8,
        elephant_share=0.5,
        seed=42,
    )
    return generate_trace(config, name="small-synthetic")


@pytest.fixture
def single_service() -> ServiceSet:
    return ServiceSet([Service(0, "ip-forward", units.us(0.5))])


@pytest.fixture
def small_workload(small_synthetic, single_service):
    """~10k packets at roughly 105% of a 4-core system's capacity."""
    capacity = single_service.capacity_pps([4], mean_size_bytes=348.0)
    return build_workload(
        [small_synthetic],
        [HoltWintersParams(a=1.05 * capacity)],
        duration_ns=units.ms(2),
        seed=1,
    )


@pytest.fixture
def small_config(single_service) -> SimConfig:
    return SimConfig(num_cores=4, services=single_service, collect_latencies=True)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
