"""The README quickstart and public API surface must keep working."""

import repro
from repro import units


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestQuickstart:
    def test_readme_flow(self):
        """The exact flow shown in the package docstring / README."""
        trace = repro.preset_trace("caida-1", num_packets=5_000)
        wl = repro.build_workload(
            [trace],
            [repro.HoltWintersParams(a=1e6)],
            duration_ns=units.ms(4),
        )
        report = repro.simulate(
            wl,
            repro.make_scheduler("laps", config=repro.LAPSConfig(num_services=1)),
            repro.SimConfig(num_cores=8),
        )
        row = report.as_row()
        assert row["scheduler"] == "laps"
        assert report.generated == wl.num_packets

    def test_detector_standalone(self):
        trace = repro.preset_trace("auck-1", num_packets=5_000)
        afd = repro.AggressiveFlowDetector(repro.AFDConfig(annex_entries=128))
        for fid in trace.flow_id:
            afd.observe(int(fid))
        truth = set(repro.top_k_flows(trace, 16, by="bytes"))
        assert afd.accuracy(truth) >= 0.5

    def test_timing_model(self):
        assert repro.LAPSTimingModel().max_rate_mpps >= 200
