"""Ablations of LAPS's design choices (DESIGN.md §6).

Thin timed wrappers over :mod:`repro.experiments.ablations`; each
prints its table and asserts the ablation's finding.
"""

from repro.experiments import ablations

from benchmarks.conftest import full_scale


def _quick() -> bool:
    return not full_scale()


def test_ablation_promote_threshold(benchmark, show):
    result = benchmark.pedantic(
        lambda: ablations.run_promote_threshold(quick=_quick()),
        rounds=1, iterations=1,
    )
    show(result)
    # lower thresholds promote more aggressively (the challenge rule
    # keeps *migration* counts roughly flat -- that is the ablation's
    # finding: promotion churn, not migration churn, tracks threshold)
    promos = result.column("promotions")
    assert promos[0] > promos[-1]


def test_ablation_queue_depth(benchmark, show):
    result = benchmark.pedantic(
        lambda: ablations.run_queue_depth(quick=_quick()),
        rounds=1, iterations=1,
    )
    show(result)
    drops = result.column("dropped")
    assert drops[-1] < drops[0]  # deeper queues absorb more burst


def test_ablation_migration_table_size(benchmark, show):
    result = benchmark.pedantic(
        lambda: ablations.run_migration_table(quick=_quick()),
        rounds=1, iterations=1,
    )
    show(result)
    ev = result.column("evictions")
    assert ev[-1] <= ev[0]  # large tables stop evicting pins


def test_ablation_pin_weight(benchmark, show):
    result = benchmark.pedantic(
        lambda: ablations.run_pin_weight(quick=_quick()),
        rounds=1, iterations=1,
    )
    show(result)
    assert len(result.rows) == 4


def test_ablation_order_restoration(benchmark, show):
    result = benchmark.pedantic(
        lambda: ablations.run_restoration(quick=_quick()),
        rounds=1, iterations=1,
    )
    show(result)
    residuals = result.column("residual_ooo")
    assert residuals == sorted(residuals, reverse=True)
    assert residuals[-1] == 0  # unbounded buffer restores fully
    # ...but needs real storage (the paper's criticism)
    assert result.rows[-1]["max_occupancy"] > 8


def test_ablation_power_gating(benchmark, show):
    result = benchmark.pedantic(
        lambda: ablations.run_power_gating(quick=_quick()),
        rounds=1, iterations=1,
    )
    show(result)
    savings = result.column("savings")
    assert savings == sorted(savings)
    assert savings[-1] > 0.05
