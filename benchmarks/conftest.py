"""Benchmark plumbing.

Two kinds of benchmarks live here:

* **kernel benchmarks** (``bench_kernels.py``) — classic
  pytest-benchmark micro-measurements of the hot paths;
* **figure benchmarks** (one file per paper table/figure) — each runs
  the corresponding experiment harness exactly once
  (``benchmark.pedantic(rounds=1)``), times it, and *prints the
  regenerated table* so ``pytest benchmarks/ --benchmark-only -s``
  reproduces the paper's evaluation output end-to-end.

Figure benches default to a "medium" scale that finishes in tens of
seconds; set ``REPRO_BENCH_FULL=1`` for the full-size runs recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


@pytest.fixture
def show():
    """Print a result table beneath the benchmark output."""

    def _show(result) -> None:
        print()
        print(result.format())

    return _show
