"""Fig. 2 — regenerate the flow rank-size distribution.

Also benchmarks synthetic trace generation throughput (the substrate
every other experiment stands on).
"""

from repro.experiments import fig2
from repro.trace.synthetic import preset_trace

from benchmarks.conftest import full_scale


def test_fig2_rank_size(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig2.run_rank_size(quick=not full_scale()),
        rounds=1, iterations=1,
    )
    show(result)
    # heavy tail: rank-1 flows dwarf the tail on every trace
    by_trace = {}
    for row in result.rows:
        by_trace.setdefault(row["trace"], []).append(row["size_bytes"])
    for sizes in by_trace.values():
        assert sizes[0] > 10 * sizes[-1]


def test_fig2_concentration(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig2.run_concentration(quick=not full_scale()),
        rounds=1, iterations=1,
    )
    show(result)
    assert all(row["top16_share"] > 0.25 for row in result.rows)


def test_trace_generation_throughput(benchmark):
    """Packets generated per second of wall time (vectorised path)."""
    n = 200_000 if full_scale() else 50_000
    trace = benchmark(lambda: preset_trace("caida-1", num_packets=n))
    assert trace.num_packets == n
