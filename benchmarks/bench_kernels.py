"""Micro-benchmarks of the hot paths (classic pytest-benchmark).

These quantify the claims the simulator's design leans on: vectorised
CRC16 hashing, O(1) AFD accesses, cheap scheduling decisions, and the
event loop's packet rate.

``REPRO_BENCH_QUICK=1`` shrinks the event-loop workload (CI's
benchmark smoke job uses it: the goal there is "the hot paths still
run and haven't collapsed", not stable timings); ``REPRO_BENCH_MIN_PPS``
optionally enforces a simulated-packets-per-second floor on the event
loop (default 20000 — far below the usual ~200k so normal machine
noise can't trip it, but an order-of-magnitude regression does).
"""

import os
import time

import numpy as np
import pytest

from repro import units
from repro.core.afd import AFDConfig, AggressiveFlowDetector
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.core.lfu import LFUCache
from repro.hashing.crc import CRC16_CCITT
from repro.hashing.five_tuple import pack_five_tuples_batch
from repro.net.service import Service, ServiceSet
from repro.schedulers.base import make_scheduler
from repro.sim.config import SimConfig
from repro.sim.generator import HoltWintersParams
from repro.sim.system import simulate
from repro.sim.workload import build_workload
from repro.trace.synthetic import preset_trace


@pytest.fixture(scope="module")
def packed_keys(rng=np.random.default_rng(0)):
    return rng.integers(0, 256, size=(100_000, 13), dtype=np.uint8)


def test_crc16_batch_hash(benchmark, packed_keys):
    """Vectorised CRC16 of 100k 5-tuples (the trace-ingest path)."""
    out = benchmark(CRC16_CCITT.checksum_batch, packed_keys)
    assert out.shape == (100_000,)


def test_crc16_scalar_hash(benchmark):
    data = b"\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d"
    assert benchmark(CRC16_CCITT.checksum, data) == CRC16_CCITT.checksum(data)


def test_five_tuple_batch_packing(benchmark):
    rng = np.random.default_rng(1)
    n = 100_000
    args = (
        rng.integers(0, 2**32, n, dtype=np.uint64),
        rng.integers(0, 2**32, n, dtype=np.uint64),
        rng.integers(0, 2**16, n, dtype=np.uint64),
        rng.integers(0, 2**16, n, dtype=np.uint64),
        rng.integers(0, 2**8, n, dtype=np.uint64),
    )
    out = benchmark(pack_five_tuples_batch, *args)
    assert out.shape == (n, 13)


def test_lfu_access(benchmark):
    """One access on a 512-entry LFU under realistic churn."""
    cache = LFUCache(512)
    rng = np.random.default_rng(2)
    keys = rng.integers(0, 5000, size=10_000).tolist()
    for k in keys:
        cache.access(k)
    stream = iter(keys * 1000)

    def op():
        cache.access(next(stream))

    benchmark(op)


def test_afd_observe(benchmark):
    """Per-packet AFD work (AFC probe + annex update)."""
    afd = AggressiveFlowDetector(AFDConfig())
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 20_000, size=10_000).tolist()
    for k in keys:
        afd.observe(k)
    stream = iter(keys * 1000)

    def op():
        afd.observe(next(stream))

    benchmark(op)


def test_laps_decision(benchmark):
    """One LAPS scheduling decision on a balanced 16-core system."""

    class Loads:
        num_cores = 16
        queue_capacity = 32

        def occupancy(self, core_id):
            return 3

    sched = LAPSScheduler(LAPSConfig(num_services=4), rng=0)
    sched.bind(Loads())
    rng = np.random.default_rng(4)
    flows = rng.integers(0, 10_000, size=10_000).tolist()
    stream = iter(flows * 1000)

    def op():
        f = next(stream)
        sched.select_core(f, f & 3, f * 2654435761 % 65536, 0)

    benchmark(op)


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _event_loop_inputs():
    svc = ServiceSet([Service(0, "ip-forward", units.us(0.5))])
    packets = 4_000 if _quick() else 20_000
    duration = units.ms(1) if _quick() else units.ms(3)
    trace = preset_trace("caida-1", num_packets=packets)
    wl = build_workload(
        [trace], [HoltWintersParams(a=8e6)], duration_ns=duration, seed=0
    )
    cfg = SimConfig(num_cores=8, services=svc, collect_latencies=False)
    return wl, cfg


def test_simulator_event_loop(benchmark):
    """End-to-end simulated packets per second of wall time.

    Telemetry disabled (``probe=None``) — this is the number the < 5%
    overhead budget of the observability layer is judged against.
    """
    wl, cfg = _event_loop_inputs()

    def run():
        t0 = time.perf_counter()
        report = simulate(wl, make_scheduler("hash-static"), cfg)
        return report, time.perf_counter() - t0

    report, elapsed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.generated == wl.num_packets
    floor = float(os.environ.get("REPRO_BENCH_MIN_PPS", "20000"))
    pps = report.generated / elapsed
    assert pps >= floor, (
        f"event loop at {pps:,.0f} simulated pkts/s, below the "
        f"REPRO_BENCH_MIN_PPS floor of {floor:,.0f}"
    )


def test_kernel_chunked_run_until(benchmark):
    """The steppable path: many ``run_until`` slices vs one ``run()``.

    Measures the overhead of re-entering the kernel (the checkpointing
    and live-inspection use cases run this way) and proves the chunked
    run reproduces the monolithic report exactly.
    """
    from repro.sim.kernel import SimKernel

    wl, cfg = _event_loop_inputs()
    whole = simulate(wl, make_scheduler("hash-static"), cfg)
    last_t = int(wl.arrival_ns[-1])
    chunk = max(1, last_t // 64)

    def run():
        kernel = SimKernel(cfg, make_scheduler("hash-static"), wl)
        t = chunk
        while t < last_t:
            kernel.run_until(t)
            t += chunk
        return kernel.run()

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report == whole


def test_simulator_event_loop_scalar(benchmark):
    """The per-packet ``select_core`` baseline of the same run.

    The vectorized fast path (``vectorized=True``, the default) is
    judged against this; the two reports are bit-identical by contract,
    so the only difference a run may show is wall time.
    """
    wl, cfg = _event_loop_inputs()

    def run():
        return simulate(wl, make_scheduler("hash-static"), cfg, vectorized=False)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report == simulate(wl, make_scheduler("hash-static"), cfg)


def test_simulator_event_loop_streamed_vectorized(benchmark):
    """The production path — streamed source, vectorized scheduling —
    held to the same ``REPRO_BENCH_MIN_PPS`` floor as the materialized
    loop, so a regression in the chunk pipeline or the epoch-cached
    column planner fails CI just like one in the core loop."""
    from repro.sim.source import StreamingSource
    from repro.trace.synthetic import preset_trace as _preset

    packets = 4_000 if _quick() else 20_000
    duration = units.ms(1) if _quick() else units.ms(3)
    trace = _preset("caida-1", num_packets=packets)
    source = StreamingSource(
        [trace], [HoltWintersParams(a=8e6)], duration, seed=0
    )
    svc = ServiceSet([Service(0, "ip-forward", units.us(0.5))])
    cfg = SimConfig(num_cores=8, services=svc, collect_latencies=False)

    def run():
        t0 = time.perf_counter()
        report = simulate(source, make_scheduler("hash-static"), cfg)
        return report, time.perf_counter() - t0

    report, elapsed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.generated > 0
    floor = float(os.environ.get("REPRO_BENCH_MIN_PPS", "20000"))
    pps = report.generated / elapsed
    assert pps >= floor, (
        f"streamed vectorized loop at {pps:,.0f} simulated pkts/s, "
        f"below the REPRO_BENCH_MIN_PPS floor of {floor:,.0f}"
    )


def test_epoch_churn_stress(benchmark):
    """Worst case for the epoch-cached column: a scheduler that churns
    its tables constantly.  Adaptive-hash rebalancing every 50 us (20x
    the default rate) bumps ``map_epoch`` over and over, so the kernel
    replans the window suffix hundreds of times per run; the stressed
    run must stay bit-identical to the scalar path and never collapse
    (it falls under the smoke floor's order of magnitude)."""
    from repro.schedulers.adaptive_hash import AdaptiveHashScheduler

    wl, cfg = _event_loop_inputs()

    def mk():
        return AdaptiveHashScheduler(rebalance_every_ns=units.us(50))

    def run():
        t0 = time.perf_counter()
        report = simulate(wl, mk(), cfg, vectorized=True)
        return report, time.perf_counter() - t0

    report, elapsed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report == simulate(wl, mk(), cfg, vectorized=False)
    floor = float(os.environ.get("REPRO_BENCH_MIN_PPS", "20000"))
    pps = report.generated / elapsed
    assert pps >= floor / 2, (
        f"epoch-churn stress at {pps:,.0f} simulated pkts/s — replan "
        f"thrash has made the vectorized path pathological"
    )


def test_laps_calendar_commit_floor(benchmark):
    """LAPS on the calendar span drain must not lose to the scalar heap
    oracle.  The batch-native commit path (``AFD.observe_batch`` +
    ``CoreAllocator.note_load_batch``) is what pays for the span
    machinery; a silent regression back to per-packet scalar replay
    shows up here as calendar < heap.  The workload is sized past the
    span warm-up crossover (the AIMD span cap and column planner
    amortize over ~100k packets — below that the heap oracle wins on
    fixed overhead alone, so this test ignores ``REPRO_BENCH_QUICK``),
    and the engines are interleaved round-by-round so a slow patch on
    a shared runner hits both equally.  The ``commit_vectorized``
    capability bit is pinned structurally too — without it the span
    driver ignores ``batch_commit_span`` entirely."""
    assert LAPSScheduler.commit_vectorized, (
        "LAPS lost its commit_vectorized bit — the span driver will "
        "ignore batch_commit_span and replay batch_commit per packet"
    )
    packets = 150_000
    svc = ServiceSet([Service(0, "ip-forward", units.us(0.5))])
    trace = preset_trace("caida-1", num_packets=packets)
    wl = build_workload(
        [trace], [HoltWintersParams(a=8e6)],
        duration_ns=int(round(packets / 8e6 * units.SEC)), seed=0,
    )
    cfg = SimConfig(num_cores=8, services=svc, collect_latencies=False)

    def one(engine):
        sched = LAPSScheduler(LAPSConfig(num_services=1), rng=7)
        t0 = time.perf_counter()
        rep = simulate(wl, sched, cfg, engine=engine)
        return rep.generated / (time.perf_counter() - t0), rep

    def run():
        cal_pps = heap_pps = 0.0
        cal_rep = heap_rep = None
        for _ in range(3):  # interleaved: noise drifts hit both engines
            pps, cal_rep = one("calendar")
            cal_pps = max(cal_pps, pps)
            pps, heap_rep = one("heap")
            heap_pps = max(heap_pps, pps)
        return cal_pps, cal_rep, heap_pps, heap_rep

    cal_pps, cal_rep, heap_pps, heap_rep = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert cal_rep == heap_rep  # engines trade speed, never outcomes
    floor = float(os.environ.get("REPRO_BENCH_MIN_PPS", "20000"))
    assert cal_pps >= floor, (
        f"LAPS on calendar at {cal_pps:,.0f} simulated pkts/s, below "
        f"the REPRO_BENCH_MIN_PPS floor of {floor:,.0f}"
    )
    assert cal_pps >= heap_pps, (
        f"LAPS calendar ({cal_pps:,.0f} pkts/s) lost to heap "
        f"({heap_pps:,.0f} pkts/s) — has the span commit path gone "
        f"scalar again?"
    )


def test_simulator_event_loop_with_telemetry(benchmark):
    """Same loop with the full default probe battery attached, for a
    direct before/after read of the telemetry cost."""
    from repro.obs import TelemetryProbe

    wl, cfg = _event_loop_inputs()

    def run():
        probe = TelemetryProbe(units.us(100))
        return simulate(wl, make_scheduler("hash-static"), cfg, probe=probe)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.generated == wl.num_packets


def test_simulator_profile_hooks(capsys):
    """Wall-clock profile of one run: packets/sec, events popped,
    scheduler time share (printed so bench runs surface the numbers)."""
    from repro.obs import profile_run
    from repro.sim.system import NetworkProcessorSim

    wl, cfg = _event_loop_inputs()
    sim = NetworkProcessorSim(cfg, make_scheduler("hash-static"), wl)
    report, prof = profile_run(sim)
    assert prof.packets == report.generated
    assert prof.events_popped == report.departed
    assert 0.0 <= prof.sched_share <= 1.0
    with capsys.disabled():
        print(f"\n[profile] {prof.summary()}")
