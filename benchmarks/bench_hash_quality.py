"""Hash-choice evidence (Sec. III / Cao et al. [8]).

Two claims in one table: CRC16 of real-shaped 5-tuples is
statistically uniform (so the hash is not the problem), and *weighted*
imbalance remains large anyway because flow sizes are skewed (so
migration is needed — the paper's motivation).
"""

import numpy as np

from repro.experiments.runner import ExperimentResult
from repro.hashing.crc import CRC16_CCITT, CRC16_IBM
from repro.hashing.five_tuple import flow_hash_batch, pack_five_tuples_batch
from repro.hashing.quality import hash_quality_report
from repro.hashing.toeplitz import ToeplitzHasher
from repro.trace.analysis import flow_sizes
from repro.trace.synthetic import preset_trace

from benchmarks.conftest import full_scale


def _run():
    trace = preset_trace(
        "caida-1", num_packets=None if full_scale() else 60_000
    )
    weights = flow_sizes(trace, by="bytes").astype(np.float64)
    active = weights > 0
    result = ExperimentResult(
        "Hash quality on caida-1 flows (16 buckets)",
        columns=["hash", "chi2_pvalue", "weighted_imbalance", "jain_fairness"],
        meta={"flows": int(active.sum())},
    )
    hashes = {
        "crc16-ccitt": flow_hash_batch(
            trace.flows_src_ip, trace.flows_dst_ip,
            trace.flows_src_port, trace.flows_dst_port, trace.flows_proto,
            spec=CRC16_CCITT,
        ),
        "crc16-ibm": flow_hash_batch(
            trace.flows_src_ip, trace.flows_dst_ip,
            trace.flows_src_port, trace.flows_dst_port, trace.flows_proto,
            spec=CRC16_IBM,
        ),
        "toeplitz-rss": ToeplitzHasher().hash_batch(
            pack_five_tuples_batch(
                trace.flows_src_ip, trace.flows_dst_ip,
                trace.flows_src_port, trace.flows_dst_port, trace.flows_proto,
            )[:, :12]
        ),
        "src-ip-only": trace.flows_src_ip.astype(np.int64),
    }
    for name, h in hashes.items():
        rep = hash_quality_report(
            np.asarray(h, dtype=np.int64)[active], 16, weights[active]
        )
        result.add(hash=name, **{k: round(v, 4) for k, v in rep.items()})
    return result


def test_hash_quality(benchmark, show):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    show(result)
    rows = {r["hash"]: r for r in result.rows}
    # the proper hashes are uniform on keys...
    for name in ("crc16-ccitt", "crc16-ibm", "toeplitz-rss"):
        assert rows[name]["chi2_pvalue"] > 1e-4
    # ...but skewed flow sizes leave real weighted imbalance anyway:
    # the paper's case for migrating elephants rather than re-hashing
    assert rows["crc16-ccitt"]["weighted_imbalance"] > 1.3
