"""Peak-RSS benchmark of the streaming workload pipeline.

The point of :class:`repro.sim.source.StreamingSource` is bounded
memory: a streamed run holds O(chunk) packets resident while a
materialized run holds all six per-packet columns (~40 bytes/packet)
for the whole workload.  Each measurement runs one simulation in a
fresh subprocess and reads ``ru_maxrss`` (a process-lifetime
high-watermark, hence the subprocess per point) — the assertions are
relational, not absolute timings.  The watermark is read from
``/proc/self/status`` ``VmHWM`` rather than ``ru_maxrss``: the rusage
figure is polluted by fork inheritance (the pre-exec copy of the
parent's resident set counts toward the child's maximum, so a large
pytest parent would floor every measurement), while ``VmHWM`` tracks
only the post-exec address space.  ``ru_maxrss`` remains the fallback
where ``/proc`` is unavailable.  Assertions:

* streamed peak RSS stays (near) flat as the packet count scales;
* materialized peak RSS grows with the packet count;
* at the large size, streamed stays below materialized and below a
  generous fixed ceiling over the interpreter baseline.

The same harness covers pcap replay:
:class:`repro.workloads.replay.PcapReplaySource` re-streams the capture
file pass by pass, so peak RSS must stay flat as ``repeat`` scales the
replayed packet count (the multi-GB-capture story: memory is O(chunk +
flows), never O(capture)), while ``materialize()`` of the same source
grows with it.

``REPRO_BENCH_QUICK=1`` shrinks the packet counts (CI's bench-smoke
job); the full run simulates 2M packets per mode.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

_QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
# (small, large) simulated packet targets per mode
_SIZES = (75_000, 300_000) if _QUICK else (500_000, 2_000_000)
# (small, large) replayed packet targets (repeat scales the passes)
_REPLAY_SIZES = (50_000, 400_000) if _QUICK else (250_000, 2_000_000)
#: streamed growth allowance small→large, and the fixed headroom over
#: the interpreter baseline a streamed large run must stay within
_FLAT_MB = 48.0
_CEILING_MB = 160.0

_CHILD = r"""
import sys

def peak_rss_kib():
    try:
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

mode, n_packets = sys.argv[1], int(sys.argv[2])
from repro import units
from repro.net.service import Service, ServiceSet
from repro.schedulers.hash_static import StaticHashScheduler
from repro.sim.config import SimConfig
from repro.sim.generator import HoltWintersParams
from repro.sim.source import StreamingSource
from repro.sim.system import simulate
from repro.sim.workload import build_workload
from repro.trace.synthetic import preset_trace

if mode.startswith("replay"):
    from repro.workloads.registry import BUNDLED_PCAP
    from repro.workloads.replay import PcapReplaySource

    probe = PcapReplaySource(BUNDLED_PCAP, chunk_size=1)
    repeat = max(1, -(-n_packets // probe.num_packets))
    source = PcapReplaySource(BUNDLED_PCAP, repeat=repeat, speedup=0.25)
    workload = source if mode == "replay-streamed" else source.materialize()
    config = SimConfig(
        num_cores=16,
        services=ServiceSet([Service(0, "ip-forward", units.us(1))]),
        collect_latencies=False,
    )
    report = simulate(workload, StaticHashScheduler(), config)
    assert report.generated == source.num_packets, report.generated
elif mode != "baseline":
    rate = 2e7  # offered pps; 16 us-cores give ~1.6e7 -> mild overload
    duration = max(1, int(round(n_packets / rate * units.SEC)))
    trace = preset_trace("caida-1", num_packets=20_000)
    params = [HoltWintersParams(a=rate)]
    if mode == "streamed":
        workload = StreamingSource([trace], params, duration, seed=3)
    else:
        workload = build_workload([trace], params, duration_ns=duration,
                                  seed=3)
    config = SimConfig(
        num_cores=16,
        services=ServiceSet([Service(0, "ip-forward", units.us(1))]),
        collect_latencies=False,
    )
    report = simulate(workload, StaticHashScheduler(), config)
    assert report.generated >= n_packets // 2, report.generated
print(peak_rss_kib())
"""


def _peak_rss_mb(mode: str, n_packets: int = 0) -> float:
    """Peak RSS in MiB of one fresh-subprocess simulation."""
    src_dir = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src_dir), env.get("PYTHONPATH")) if p
    )
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(n_packets)],
        capture_output=True, text=True, env=env, check=True,
    )
    # VmHWM / ru_maxrss are KiB on Linux
    return int(out.stdout.strip().splitlines()[-1]) / 1024.0


def test_streamed_rss_stays_flat_while_materialized_grows():
    small, large = _SIZES
    baseline = _peak_rss_mb("baseline")
    streamed = {n: _peak_rss_mb("streamed", n) for n in (small, large)}
    materialized = {n: _peak_rss_mb("materialized", n) for n in (small, large)}
    print(
        f"\n[rss MiB] baseline={baseline:.1f}  "
        f"streamed {small}={streamed[small]:.1f} "
        f"{large}={streamed[large]:.1f}  "
        f"materialized {small}={materialized[small]:.1f} "
        f"{large}={materialized[large]:.1f}"
    )

    # streamed memory is bounded: scaling the workload 4x barely moves it
    assert streamed[large] - streamed[small] < _FLAT_MB
    # ... and stays under a fixed ceiling over the interpreter baseline
    assert streamed[large] < baseline + _CEILING_MB

    # materialized memory scales with the packet count (6 columns *
    # ~40 B/packet, plus build-time intermediates)
    expected_growth_mb = (large - small) * 40 / (1024 * 1024)
    assert materialized[large] - materialized[small] > expected_growth_mb / 2

    # at the large size the streamed run is the cheaper one
    assert streamed[large] < materialized[large]


def test_replay_rss_stays_flat_as_repeat_scales():
    """Pcap replay is O(chunk + flows): repeating the capture 8x must
    not move the streamed high-watermark, while materializing the same
    source grows with the replayed packet count."""
    small, large = _REPLAY_SIZES
    baseline = _peak_rss_mb("baseline")
    streamed = {n: _peak_rss_mb("replay-streamed", n) for n in (small, large)}
    materialized = {n: _peak_rss_mb("replay-materialized", n)
                    for n in (small, large)}
    print(
        f"\n[rss MiB] baseline={baseline:.1f}  "
        f"replay-streamed {small}={streamed[small]:.1f} "
        f"{large}={streamed[large]:.1f}  "
        f"replay-materialized {small}={materialized[small]:.1f} "
        f"{large}={materialized[large]:.1f}"
    )

    # streamed replay stays flat as repeat scales the packet count 8x
    assert streamed[large] - streamed[small] < _FLAT_MB
    assert streamed[large] < baseline + _CEILING_MB

    # materializing the replay scales with the packet count
    expected_growth_mb = (large - small) * 40 / (1024 * 1024)
    assert materialized[large] - materialized[small] > expected_growth_mb / 2

    assert streamed[large] < materialized[large]
