"""Sec. III-G / Table III — scheduler critical-path timing tables."""

from repro.experiments import timing


def test_timing_critical_path(benchmark, show):
    result = benchmark.pedantic(timing.run_critical_path, rounds=1, iterations=1)
    show(result)
    assert all(row["sustains_100gbps"] for row in result.rows)
    base = next(
        r for r in result.rows if r["hash_ns"] == 5.0 and r["map_entries"] == 256
    )
    # the paper's claim: the FPGA CRC16 datapoint sustains >= 200 Mpps
    assert base["max_rate_mpps"] >= 200.0


def test_table3_core_config(benchmark, show):
    result = benchmark.pedantic(timing.run_table3, rounds=1, iterations=1)
    show(result)
    assert len(result.rows) == 5
