"""Fig. 9(a-c) — benefit of migrating only the top flows, vs AFS.

Single service (IP forwarding), 16 cores, ~105% offered load.  The
bench regenerates all three relative panels (drops / OOO / migrations).
"""

from repro.experiments import fig9

from benchmarks.conftest import full_scale


def _run():
    if full_scale():
        return fig9.run(quick=False)
    return fig9.run(quick=False, traces=("caida-1", "auck-1"), k_sweep=(1, 8, 16))


def test_fig9_topk_migration(benchmark, show):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    show(result)
    for trace in {row["trace"] for row in result.rows}:
        rows = {r["policy"]: r for r in result.rows if r["trace"] == trace}
        none, afs = rows["none"], rows["afs"]
        top16 = rows["top-16"]
        # (a) no migration loses the most packets
        assert none["dropped"] >= afs["dropped"] * 0.9
        assert top16["dropped"] <= none["dropped"]
        # (b) OOO collapses when only elephants move (paper: -85%)
        assert top16["ooo_rel_afs"] < 0.6
        # (c) migrations collapse too (paper: -80%)
        assert top16["migrations_rel_afs"] < 0.5
        # the real AFD gets close to the oracle detector
        assert rows["laps-afd"]["dropped"] <= afs["dropped"] * 1.2
