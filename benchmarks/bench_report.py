"""Emit ``BENCH_kernel.json`` — the machine-readable kernel scorecard.

Measures end-to-end simulated packets per second of wall time for the
scheduler zoo (hash-static, rss-static, adaptive-hash, flowlet, LAPS)
over the event-engine x materialized x streamed grid, plus the peak RSS
of each run.  Every cell carries an ``engine`` column: ``heap`` is the
scalar oracle, ``calendar`` the batched numpy span drain, and
``calendar-numba`` the compiled backend (recorded with its fallback
when numba is absent — see docs/performance.md).  A pair of
``vectorized=False`` cells preserves the scalar floor tracked since the
first scorecard.  Every cell runs in a fresh subprocess
(``ru_maxrss``/``VmHWM`` are process-lifetime high-watermarks) and
reports the best of several rounds, so the numbers are comparable
across commits on the same box.

Since schema ``repro.bench_kernel/3`` every cell records ``shards``
(1 = single-process) and the grid adds sharded cells: hash-static cut
across worker processes on the 8-core platform, and the 120-core /
8-service scale scenario driven through ``repro.sim.sharding``.  The
scale cell's aggregate throughput multiplies with *physical* cores; on
a single-CPU runner the shards time-share one core and the cell
documents that honestly in its ``note`` instead of near-linear scaling
(see docs/performance.md, Sharded scaling).

Since schema ``repro.bench_kernel/4`` every single-process cell also
carries a ``span`` object — the kernel's batched-drain phase breakdown
for the best round (``plan_ms`` column planning, ``drain_ms`` phase-1
per-core simulation, ``commit_ms`` phase-2 state commit including the
scheduler's span commit, plus spans committed/bailed and packets
dispatched through spans).  On the heap engine only ``plan_ms`` is
non-zero; sharded cells record ``span: null`` (the kernels live in
worker processes).  The breakdown shows *where* a scheduler's calendar
cell spends its time — e.g. whether LAPS is bound by the AFD commit or
by the drain itself.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_report.py            # full
    PYTHONPATH=src REPRO_BENCH_QUICK=1 python benchmarks/bench_report.py

The JSON lands at the repository root (override with ``--out``); CI
runs the quick form and uploads the file as a build artifact.  Absolute
throughput depends on the machine — compare cells within one file, or
whole files from the same runner.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

_CHILD = r"""
import json, os, sys, time

def peak_rss_kib():
    try:
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

(scheduler, source_kind, vectorized, packets, rounds, engine, shards,
 workers, num_cores, num_services) = (
    sys.argv[1], sys.argv[2], sys.argv[3] == "1", int(sys.argv[4]),
    int(sys.argv[5]), sys.argv[6] or None, int(sys.argv[7]),
    int(sys.argv[8]), int(sys.argv[9]), int(sys.argv[10]),
)

from repro import units
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.net.service import Service, ServiceSet
from repro.schedulers.base import make_scheduler
from repro.sim.config import SimConfig
from repro.sim.engine import resolve_engine
from repro.sim.generator import HoltWintersParams
from repro.sim.source import StreamingSource
from repro.sim.system import NetworkProcessorSim, simulate
from repro.sim.workload import build_workload
from repro.trace.synthetic import preset_trace

engine_spec = resolve_engine(engine)

RATE = 8e6  # offered pps (HoltWinters level, summed over services)
trace = preset_trace("caida-1", num_packets=max(1, packets // num_services))
services = ServiceSet([
    Service(i, f"svc{i}", units.us(0.5)) for i in range(num_services)
])
traces = [trace] * num_services
params = [HoltWintersParams(a=RATE / num_services)] * num_services
duration = max(1, int(round(packets / RATE * units.SEC)))
config = SimConfig(
    num_cores=num_cores,
    services=services,
    collect_latencies=False,
)

def make_sched():
    if scheduler == "laps":
        return LAPSScheduler(LAPSConfig(num_services=num_services), rng=7)
    return make_scheduler(scheduler)

def make_workload():
    if source_kind == "streamed":
        return StreamingSource(traces, params, duration, seed=0)
    return build_workload(traces, params, duration_ns=duration, seed=0)

workload = make_workload()
best_pps, generated, span = 0.0, 0, None
for _ in range(rounds):
    # the kernel clones a source argument, so one object seeds all rounds
    t0 = time.perf_counter()
    if shards > 1:
        # sharded kernels live in worker processes: no span breakdown
        report = simulate(workload, make_sched(), config,
                          vectorized=vectorized, engine=engine,
                          shards=shards, shard_workers=workers)
        stats = None
    else:
        sim = NetworkProcessorSim(config, make_sched(), workload,
                                  vectorized=vectorized, engine=engine)
        report = sim.run()
        s = sim.kernel.span_stats
        stats = {
            "spans_committed": s["spans_committed"],
            "spans_bailed": s["spans_bailed"],
            "packets_spanned": s["packets_spanned"],
            "plan_ms": round(s["plan_ns"] / 1e6, 1),
            "drain_ms": round(s["drain_ns"] / 1e6, 1),
            "commit_ms": round(s["commit_ns"] / 1e6, 1),
        }
    dt = time.perf_counter() - t0
    generated = report.generated
    pps = report.generated / dt
    if pps > best_pps:
        best_pps, span = pps, stats

json.dump(
    {
        "pkts_per_sec": round(best_pps, 1),
        "generated": generated,
        "span": span,
        "peak_rss_mb": round(peak_rss_kib() / 1024.0, 1),
        "engine": engine_spec.name,
        "engine_requested": engine_spec.requested,
        "engine_fallback": engine_spec.fallback_reason,
        "cpus": os.cpu_count(),
    },
    sys.stdout,
)
"""


def _run_cell(
    scheduler: str, source_kind: str, vectorized: bool, packets: int,
    rounds: int, engine: str | None = None, shards: int = 1,
    workers: int = 0, num_cores: int = 8, num_services: int = 1,
) -> dict:
    src_dir = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src_dir), env.get("PYTHONPATH")) if p
    )
    out = subprocess.run(
        [
            sys.executable, "-c", _CHILD, scheduler, source_kind,
            "1" if vectorized else "0", str(packets), str(rounds),
            engine or "", str(shards), str(workers), str(num_cores),
            str(num_services),
        ],
        capture_output=True, text=True, env=env, check=True,
    )
    cell = json.loads(out.stdout.strip().splitlines()[-1])
    cell.update(
        scheduler=scheduler, source=source_kind, vectorized=vectorized,
        shards=shards, num_cores=num_cores, num_services=num_services,
    )
    return cell


def main(argv: list[str] | None = None) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=repo_root / "BENCH_kernel.json",
        help="output path (default: <repo root>/BENCH_kernel.json)",
    )
    args = parser.parse_args(argv)

    quick = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
    packets = 20_000 if quick else 200_000
    rounds = 1 if quick else 3
    # the 120-core/8-service scale scenario: full size aims at the
    # 1e8-packet regime but is wall-clock bound, not memory bound, so
    # the scorecard samples it (streamed shards keep RSS at O(chunk);
    # throughput per packet is flat beyond ~1e5 packets per shard)
    scale_packets = 40_000 if quick else 400_000
    cpus = os.cpu_count() or 1

    # the grid: scheduler zoo x engines on the vectorized path, plus
    # the two historical scalar-floor cells (vectorized=False, heap) —
    # those MUST NOT regress relative to earlier scorecards.
    schedulers = ("hash-static", "rss-static", "adaptive-hash", "flowlet",
                  "laps")
    grid: list[dict] = []
    for scheduler in schedulers:
        for source_kind in ("materialized", "streamed"):
            engines = ("heap", "calendar", "calendar-numba") \
                if source_kind == "materialized" else ("heap", "calendar")
            for engine in engines:
                grid.append(dict(scheduler=scheduler, source_kind=source_kind,
                                 vectorized=True, engine=engine))
    for scheduler in ("hash-static", "laps"):
        grid.append(dict(scheduler=scheduler, source_kind="materialized",
                         vectorized=False, engine="heap"))
    # sharded cells: the 8-core platform cut 2 ways (directly comparable
    # with the single-process hash-static cells above), then the
    # 120-core/8-service scale scenario sharded 8 ways
    grid.append(dict(scheduler="hash-static", source_kind="streamed",
                     vectorized=True, engine=None, shards=2, workers=2))
    grid.append(dict(scheduler="hash-static", source_kind="streamed",
                     vectorized=True, engine=None, shards=8, workers=0,
                     num_cores=120, num_services=8,
                     packets=scale_packets))

    results = []
    for spec in grid:
        cell = _run_cell(
            spec["scheduler"], spec["source_kind"], spec["vectorized"],
            spec.get("packets", packets), rounds,
            engine=spec.get("engine"), shards=spec.get("shards", 1),
            workers=spec.get("workers", 0),
            num_cores=spec.get("num_cores", 8),
            num_services=spec.get("num_services", 1),
        )
        if spec.get("shards", 1) > 1:
            cell["note"] = (
                "aggregate of all shards; scales with physical cores — "
                f"this runner has {cpus} CPU(s)"
                + (", so shards time-share one core" if cpus <= 1 else "")
            )
        results.append(cell)
        note = f" (fallback: {cell['engine_fallback']})" \
            if cell.get("engine_fallback") else ""
        span = cell.get("span")
        if span and span["packets_spanned"]:
            note += (
                f"  [plan {span['plan_ms']:.0f} / drain "
                f"{span['drain_ms']:.0f} / commit {span['commit_ms']:.0f} ms,"
                f" {span['packets_spanned']:,d} pkts spanned]"
            )
        print(
            f"{cell['scheduler']:14s} {cell['source']:12s} "
            f"vectorized={str(cell['vectorized']):5s} "
            f"engine={cell['engine_requested'] or 'default':14s} "
            f"shards={cell['shards']:<3d} cores={cell['num_cores']:<4d} "
            f"{cell['pkts_per_sec']:>12,.0f} pkts/s  "
            f"rss {cell['peak_rss_mb']:.1f} MiB{note}"
        )

    doc = {
        "schema": "repro.bench_kernel/4",
        "generated_by": "benchmarks/bench_report.py",
        "quick": quick,
        "packets": packets,
        "scale_packets": scale_packets,
        "rounds": rounds,
        "num_cores": 8,
        "cpus": cpus,
        "python": sys.version.split()[0],
        "results": results,
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
