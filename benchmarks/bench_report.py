"""Emit ``BENCH_kernel.json`` — the machine-readable kernel scorecard.

Measures end-to-end simulated packets per second of wall time for the
scheduler zoo (hash-static, rss-static, adaptive-hash, flowlet, LAPS)
over the event-engine x materialized x streamed grid, plus the peak RSS
of each run.  Every cell carries an ``engine`` column: ``heap`` is the
scalar oracle, ``calendar`` the batched numpy span drain, and
``calendar-numba`` the compiled backend (recorded with its fallback
when numba is absent — see docs/performance.md).  A pair of
``vectorized=False`` cells preserves the scalar floor tracked since the
first scorecard.  Every cell runs in a fresh subprocess
(``ru_maxrss``/``VmHWM`` are process-lifetime high-watermarks) and
reports the best of several rounds, so the numbers are comparable
across commits on the same box.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_report.py            # full
    PYTHONPATH=src REPRO_BENCH_QUICK=1 python benchmarks/bench_report.py

The JSON lands at the repository root (override with ``--out``); CI
runs the quick form and uploads the file as a build artifact.  Absolute
throughput depends on the machine — compare cells within one file, or
whole files from the same runner.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

_CHILD = r"""
import json, sys, time

def peak_rss_kib():
    try:
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

scheduler, source_kind, vectorized, packets, rounds, engine = (
    sys.argv[1], sys.argv[2], sys.argv[3] == "1", int(sys.argv[4]),
    int(sys.argv[5]), sys.argv[6] or None,
)

from repro import units
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.net.service import Service, ServiceSet
from repro.schedulers.base import make_scheduler
from repro.sim.config import SimConfig
from repro.sim.engine import resolve_engine
from repro.sim.generator import HoltWintersParams
from repro.sim.source import StreamingSource
from repro.sim.system import simulate
from repro.sim.workload import build_workload
from repro.trace.synthetic import preset_trace

engine_spec = resolve_engine(engine)

RATE = 8e6  # offered pps (HoltWinters level)
trace = preset_trace("caida-1", num_packets=packets)
params = [HoltWintersParams(a=RATE)]
duration = max(1, int(round(packets / RATE * units.SEC)))
config = SimConfig(
    num_cores=8,
    services=ServiceSet([Service(0, "ip-forward", units.us(0.5))]),
    collect_latencies=False,
)

def make_sched():
    if scheduler == "laps":
        return LAPSScheduler(LAPSConfig(num_services=1), rng=7)
    return make_scheduler(scheduler)

def make_workload():
    if source_kind == "streamed":
        return StreamingSource([trace], params, duration, seed=0)
    return build_workload([trace], params, duration_ns=duration, seed=0)

workload = make_workload()
best_pps, generated = 0.0, 0
for _ in range(rounds):
    # the kernel clones a source argument, so one object seeds all rounds
    t0 = time.perf_counter()
    report = simulate(workload, make_sched(), config, vectorized=vectorized,
                      engine=engine)
    dt = time.perf_counter() - t0
    generated = report.generated
    best_pps = max(best_pps, report.generated / dt)

json.dump(
    {
        "pkts_per_sec": round(best_pps, 1),
        "generated": generated,
        "peak_rss_mb": round(peak_rss_kib() / 1024.0, 1),
        "engine": engine_spec.name,
        "engine_requested": engine_spec.requested,
        "engine_fallback": engine_spec.fallback_reason,
    },
    sys.stdout,
)
"""


def _run_cell(
    scheduler: str, source_kind: str, vectorized: bool, packets: int,
    rounds: int, engine: str | None = None,
) -> dict:
    src_dir = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src_dir), env.get("PYTHONPATH")) if p
    )
    out = subprocess.run(
        [
            sys.executable, "-c", _CHILD, scheduler, source_kind,
            "1" if vectorized else "0", str(packets), str(rounds),
            engine or "",
        ],
        capture_output=True, text=True, env=env, check=True,
    )
    cell = json.loads(out.stdout.strip().splitlines()[-1])
    cell.update(
        scheduler=scheduler, source=source_kind, vectorized=vectorized
    )
    return cell


def main(argv: list[str] | None = None) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=repo_root / "BENCH_kernel.json",
        help="output path (default: <repo root>/BENCH_kernel.json)",
    )
    args = parser.parse_args(argv)

    quick = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
    packets = 20_000 if quick else 200_000
    rounds = 1 if quick else 3

    # the grid: scheduler zoo x engines on the vectorized path, plus
    # the two historical scalar-floor cells (vectorized=False, heap) —
    # those MUST NOT regress relative to earlier scorecards.
    schedulers = ("hash-static", "rss-static", "adaptive-hash", "flowlet",
                  "laps")
    grid: list[tuple[str, str, bool, str | None]] = []
    for scheduler in schedulers:
        for source_kind in ("materialized", "streamed"):
            engines = ("heap", "calendar", "calendar-numba") \
                if source_kind == "materialized" else ("heap", "calendar")
            for engine in engines:
                grid.append((scheduler, source_kind, True, engine))
    for scheduler in ("hash-static", "laps"):
        grid.append((scheduler, "materialized", False, "heap"))

    results = []
    for scheduler, source_kind, vectorized, engine in grid:
        cell = _run_cell(
            scheduler, source_kind, vectorized, packets, rounds,
            engine=engine,
        )
        results.append(cell)
        note = f" (fallback: {cell['engine_fallback']})" \
            if cell.get("engine_fallback") else ""
        print(
            f"{scheduler:14s} {source_kind:12s} "
            f"vectorized={str(vectorized):5s} "
            f"engine={cell['engine_requested'] or 'default':14s} "
            f"{cell['pkts_per_sec']:>12,.0f} pkts/s  "
            f"rss {cell['peak_rss_mb']:.1f} MiB{note}"
        )

    doc = {
        "schema": "repro.bench_kernel/2",
        "generated_by": "benchmarks/bench_report.py",
        "quick": quick,
        "packets": packets,
        "rounds": rounds,
        "num_cores": 8,
        "python": sys.version.split()[0],
        "results": results,
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
