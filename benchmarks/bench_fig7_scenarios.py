"""Fig. 7(a-c) — LAPS vs FCFS vs AFS over the Table VI scenarios.

One pedantic round regenerates all three panels (drops, cold-cache
fraction, out-of-order) plus the paper's headline claim.  Medium scale
runs T1/T3/T5/T7 at 20 ms; ``REPRO_BENCH_FULL=1`` runs all eight
scenarios at the full 60 ms.
"""

from repro import units
from repro.experiments import fig7

from benchmarks.conftest import full_scale


def _run():
    if full_scale():
        return fig7.run(quick=False)
    return fig7.run(
        scenarios=("T1", "T3", "T5", "T7"),
        duration_ns=units.ms(20),
        trace_packets=60_000,
    )


def test_fig7_scenarios(benchmark, show):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    show(result)
    head = fig7.headline(result)
    print(
        f"[headline] LAPS vs best baseline: "
        f"{head['drop_improvement']:.0%} fewer drops, "
        f"{head['ooo_improvement']:.0%} fewer OOO "
        f"(paper: 60% / 80%)"
    )
    # the paper's ordering must hold in every scenario
    by_scenario = {}
    for row in result.rows:
        by_scenario.setdefault(row["scenario"], {})[row["scheduler"]] = row
    for rows in by_scenario.values():
        assert rows["laps"]["dropped"] < rows["afs"]["dropped"]
        assert rows["afs"]["dropped"] < rows["fcfs"]["dropped"]
        assert rows["laps"]["cold_cache_frac"] < rows["fcfs"]["cold_cache_frac"]
        assert rows["fcfs"]["ooo"] > rows["laps"]["ooo"]
    assert head["drop_improvement"] > 0.5
