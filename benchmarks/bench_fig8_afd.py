"""Fig. 8(a-c) — Aggressive Flow Detector accuracy panels, plus the
single- vs two-level ablation."""

from repro.experiments import fig8

from benchmarks.conftest import full_scale


def test_fig8a_annex_sweep(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig8.run_annex_sweep(quick=not full_scale()),
        rounds=1, iterations=1,
    )
    show(result)
    by_trace = {}
    for row in result.rows:
        by_trace.setdefault(row["trace"], {})[row["annex_entries"]] = row["fpr"]
    for trace, fprs in by_trace.items():
        # FPR is non-increasing in annex size (Fig. 8a's shape)
        sizes = sorted(fprs)
        for a, b in zip(sizes, sizes[1:]):
            assert fprs[b] <= fprs[a] + 1e-9
        # auckland-like traces reach 100% accuracy at 512 (paper)
        if trace.startswith("auck"):
            assert fprs[512] == 0.0
    # the caida false positives are top-20 flows (paper's observation)
    assert all(row["fpr_vs_top20"] <= row["fpr"] for row in result.rows)


def test_fig8b_window_accuracy(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig8.run_window_accuracy(quick=not full_scale()),
        rounds=1, iterations=1,
    )
    show(result)
    # paper: above 90% accuracy from 1000-packet steps upward.  At the
    # quick trace length the caida presets' byte-vs-packet ranking
    # mismatch costs ~2 slots on short prefixes, so the gate is 0.78
    # there and the paper's 0.90 at full scale.
    floor = 0.90 if full_scale() else 0.78
    assert all(row["mean_accuracy"] >= floor for row in result.rows)


def test_fig8c_sampling(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig8.run_sampling(quick=not full_scale()),
        rounds=1, iterations=1,
    )
    show(result)
    for trace in {row["trace"] for row in result.rows}:
        rows = {r["sample_prob"]: r["fpr"] for r in result.rows if r["trace"] == trace}
        # sampling at 1/10 does not hurt (paper: it helps up to ~1/1k)
        assert rows[0.1] <= rows[1.0] + 0.13


def test_fig8_single_vs_two_level(benchmark, show):
    result = benchmark.pedantic(
        lambda: fig8.run_single_vs_two_level(quick=not full_scale()),
        rounds=1, iterations=1,
    )
    show(result)
    total = {}
    for row in result.rows:
        total[row["detector"]] = total.get(row["detector"], 0.0) + row["fpr"]
    assert total["afd-two-level"] <= total["single-lfu"]
