"""Command-line entry point: ``python -m repro.experiments`` /
``repro-experiments``.

Runs the selected experiment harnesses and prints their tables; with
``--json DIR`` each result is also written as JSON for archival
(EXPERIMENTS.md links to these outputs).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import (
    ablations,
    fig2,
    fig7,
    fig8,
    fig9,
    timing,
    tournament,
    workloads,
)
from repro.faults import harness as faults_harness
from repro.sim.engine import available_engines
from repro.sim.source import DEFAULT_CHUNK_SIZE

__all__ = ["main"]

# harnesses that build their workloads through the streaming-capable
# factories accept stream/chunk_size; the rest ignore the flags
_EXPERIMENTS = {
    "fig2": lambda quick, jobs, **_: fig2.run(quick=quick),
    "fig7": lambda quick, jobs, **st: [fig7.run(quick=quick, jobs=jobs, **st)],
    "fig8": lambda quick, jobs, **_: fig8.run(quick=quick),
    "fig9": lambda quick, jobs, **st: [fig9.run(quick=quick, jobs=jobs, **st)],
    "timing": lambda quick, jobs, **_: timing.run(quick=quick),
    "ablations": lambda quick, jobs, **st: ablations.run(
        quick=quick, jobs=jobs, **st),
    "faults": lambda quick, jobs, engine=None, **_: [
        faults_harness.run(quick=quick, jobs=jobs, engine=engine)],
    "tournament": lambda quick, jobs, engine=None, **_: tournament.run(
        quick=quick, jobs=jobs, engine=engine),
    "workloads": lambda quick, jobs, **st: [
        workloads.run(quick=quick, jobs=jobs, **st)],
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*_EXPERIMENTS, "all"],
        help="which experiments to run (default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes (seconds instead of minutes; used by CI)",
    )
    parser.add_argument(
        "--json", metavar="DIR", default=None,
        help="also write each result as JSON into DIR",
    )
    parser.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help="dump each result as a telemetry run dir "
             "(manifest.json + result.json + rows.ndjson) under DIR",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallel worker processes for fig7/fig9/ablations/faults "
             "(0 = auto)",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="generate workloads chunk by chunk (bounded memory, "
             "bit-identical rows; fig7/fig9/ablations)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="packets per streamed chunk (needs --stream; default "
             f"{DEFAULT_CHUNK_SIZE})",
    )
    parser.add_argument(
        "--engine", choices=available_engines(), default=None,
        help="event core for the simulator-backed harnesses "
             "(faults/tournament); results are engine-independent",
    )
    args = parser.parse_args(argv)

    selected = args.experiments or ["all"]
    names = list(_EXPERIMENTS) if "all" in selected else selected
    json_dir = Path(args.json) if args.json else None
    if json_dir:
        json_dir.mkdir(parents=True, exist_ok=True)
    telemetry_dir = Path(args.telemetry) if args.telemetry else None

    for name in names:
        t0 = time.perf_counter()
        kwargs = dict(stream=args.stream, chunk_size=args.chunk_size)
        if name in ("faults", "tournament"):
            kwargs["engine"] = args.engine
        results = _EXPERIMENTS[name](args.quick, args.jobs, **kwargs)
        elapsed = time.perf_counter() - t0
        for i, result in enumerate(results):
            print(result.format())
            print()
            stem = name if len(results) == 1 else f"{name}_{i}"
            if json_dir:
                result.to_json(json_dir / f"{stem}.json")
            if telemetry_dir:
                result.to_run_dir(telemetry_dir / stem)
        if name == "fig7":
            head = fig7.headline(results[0])
            print(
                f"[headline] LAPS vs best baseline: "
                f"{head['drop_improvement']:.0%} fewer drops, "
                f"{head['ooo_improvement']:.0%} fewer out-of-order packets "
                f"(paper claims 60% / 80%)"
            )
            print()
        print(f"[{name} done in {elapsed:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
