"""Fig. 8 — effectiveness of the Aggressive Flow Detector.

Three panels, all trace-driven (no queueing simulation — the AFD is
evaluated standalone against offline ground truth, as in Sec. V-B):

* (a) false-positive ratio of a 16-entry AFC as the annex size varies
  (64..1024).  Auckland-like traces reach 0 FPR by 512 entries; the
  CAIDA-like ones keep a couple of boundary confusions whose culprits
  sit just outside the top-16 (the paper notes they "fall into the
  top-20");
* (b) accuracy when the AFC is inspected every N packets (annex fixed
  at 512) — the detector must be accurate *whenever* the balancer
  peeks, not just at the end;
* (c) FPR under packet sampling with probability p — sampling acts as
  a pre-filter and *helps* until roughly 1/1k, then hurts the
  many-elephants CAIDA-like traces.

An extra panel compares the two-level AFD against Lu et al.'s
single-cache ElephantTrap (the paper's Sec. VI argument for the annex).
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.afd import AFDConfig, AggressiveFlowDetector
from repro.experiments.runner import ExperimentResult
from repro.schedulers.elephant_trap import ElephantTrap
from repro.trace.analysis import top_k_flows
from repro.trace.synthetic import preset_trace
from repro.trace.trace import Trace

__all__ = [
    "feed",
    "run_annex_sweep",
    "run_window_accuracy",
    "run_sampling",
    "run_single_vs_two_level",
    "run",
    "DEFAULT_TRACES",
]

DEFAULT_TRACES = ("caida-1", "caida-2", "auck-1", "auck-2")
ANNEX_SIZES = (64, 128, 256, 512, 1024)
SAMPLE_PROBS = (1.0, 0.1, 0.01, 1e-3, 1e-4)


@lru_cache(maxsize=None)
def _trace(name: str, num_packets: int | None) -> Trace:
    """Memoised preset-trace construction.

    The four panels re-read the same presets at the same size; traces
    are immutable once built (the panels only iterate their arrays), so
    one build serves the whole ``run()``.
    """
    return preset_trace(name, num_packets=num_packets)


def feed(detector, trace: Trace) -> None:
    """Run every packet of *trace* through a detector's ``observe``."""
    observe = detector.observe
    for fid in trace.flow_id:
        observe(int(fid))


def _truth(trace: Trace, k: int = 16) -> set[int]:
    """Offline ground truth: top-k flows by *bytes* (the paper's "flow
    size"), while the AFD itself observes packet hits — the same
    mismatch the hardware faces."""
    return set(top_k_flows(trace, k, by="bytes"))


def run_annex_sweep(
    traces: tuple[str, ...] = DEFAULT_TRACES,
    *,
    quick: bool = False,
    annex_sizes: tuple[int, ...] = ANNEX_SIZES,
    afc_entries: int = 16,
    promote_threshold: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 8(a): FPR of the 16-entry AFC vs annex size."""
    num_packets = 30_000 if quick else None
    result = ExperimentResult(
        "Fig. 8a - AFC false-positive ratio vs annex size",
        columns=["trace", "annex_entries", "fpr", "accuracy", "fpr_vs_top20"],
        meta={
            "quick": quick, "afc_entries": afc_entries,
            "promote_threshold": promote_threshold,
        },
    )
    for name in traces:
        trace = _trace(name, num_packets)
        truth = _truth(trace, afc_entries)
        truth20 = _truth(trace, 20)
        for annex in annex_sizes:
            afd = AggressiveFlowDetector(
                AFDConfig(
                    afc_entries=afc_entries,
                    annex_entries=annex,
                    promote_threshold=promote_threshold,
                ),
                rng=seed,
            )
            feed(afd, trace)
            fpr = afd.false_positive_ratio(truth)
            result.add(
                trace=name, annex_entries=annex,
                fpr=round(fpr, 4), accuracy=round(1 - fpr, 4),
                # the paper notes its Caida false positives "fall into
                # the top-20"; this column checks the same property
                fpr_vs_top20=round(afd.false_positive_ratio(truth20), 4),
            )
    return result


def run_window_accuracy(
    traces: tuple[str, ...] = DEFAULT_TRACES,
    *,
    quick: bool = False,
    intervals: tuple[int, ...] = (1_000, 5_000, 10_000, 25_000, 50_000),
    annex_entries: int = 512,
    afc_entries: int = 16,
    promote_threshold: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 8(b): mean AFC accuracy when checked every N packets.

    At each checkpoint the AFC contents are scored against the offline
    top-16 *of the trace so far* (the balancer cares about currently
    aggressive flows).
    """
    num_packets = 30_000 if quick else None
    result = ExperimentResult(
        "Fig. 8b - AFC accuracy vs check interval (annex=512)",
        columns=["trace", "interval", "mean_accuracy", "min_accuracy", "checks"],
        meta={"quick": quick, "annex_entries": annex_entries},
    )
    import numpy as np

    for name in traces:
        trace = _trace(name, num_packets)
        for interval in intervals:
            if interval >= trace.num_packets:
                continue
            afd = AggressiveFlowDetector(
                AFDConfig(
                    afc_entries=afc_entries,
                    annex_entries=annex_entries,
                    promote_threshold=promote_threshold,
                ),
                rng=seed,
            )
            accs: list[float] = []
            counts = np.zeros(trace.num_flows, dtype=np.int64)
            sizes = trace.size_bytes
            next_check = interval
            for i, fid in enumerate(trace.flow_id, start=1):
                f = int(fid)
                afd.observe(f)
                counts[f] += int(sizes[i - 1])
                if i == next_check:
                    order = np.argsort(-counts, kind="stable")
                    k = min(afc_entries, int((counts > 0).sum()))
                    truth = {int(x) for x in order[:k]}
                    accs.append(afd.accuracy(truth))
                    next_check += interval
            if accs:
                result.add(
                    trace=name, interval=interval,
                    mean_accuracy=round(sum(accs) / len(accs), 4),
                    min_accuracy=round(min(accs), 4),
                    checks=len(accs),
                )
    return result


def run_sampling(
    traces: tuple[str, ...] = DEFAULT_TRACES,
    *,
    quick: bool = False,
    probs: tuple[float, ...] = SAMPLE_PROBS,
    annex_entries: int = 512,
    afc_entries: int = 16,
    promote_threshold: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 8(c): FPR when each packet consults the AFD with prob. p.

    Thresholds scale with p is *not* applied — the paper keeps the
    detector identical and only thins its input, which is why very
    aggressive sampling eventually starves promotion.
    """
    num_packets = 30_000 if quick else None
    result = ExperimentResult(
        "Fig. 8c - AFC false-positive ratio vs sampling probability",
        columns=["trace", "sample_prob", "fpr", "sampled_packets"],
        meta={"quick": quick, "annex_entries": annex_entries},
    )
    for name in traces:
        trace = _trace(name, num_packets)
        truth = _truth(trace, afc_entries)
        for p in probs:
            afd = AggressiveFlowDetector(
                AFDConfig(
                    afc_entries=afc_entries,
                    annex_entries=annex_entries,
                    promote_threshold=promote_threshold,
                    sample_prob=p,
                ),
                rng=seed,
            )
            feed(afd, trace)
            result.add(
                trace=name, sample_prob=p,
                fpr=round(afd.false_positive_ratio(truth), 4),
                sampled_packets=afd.sampled,
            )
    return result


def run_single_vs_two_level(
    traces: tuple[str, ...] = DEFAULT_TRACES,
    *,
    quick: bool = False,
    entries: int = 16,
    annex_entries: int = 512,
    seed: int = 0,
) -> ExperimentResult:
    """Ablation: two-level AFD vs a single-cache ElephantTrap of the
    same AFC size (the paper's Sec. VI claim that one cache suffers
    many mice-induced false positives)."""
    num_packets = 30_000 if quick else None
    result = ExperimentResult(
        "Fig. 8 (ablation) - two-level AFD vs single-cache detector",
        columns=["trace", "detector", "fpr"],
        meta={"quick": quick, "afc_entries": entries},
    )
    for name in traces:
        trace = _trace(name, num_packets)
        truth = _truth(trace, entries)
        afd = AggressiveFlowDetector(
            AFDConfig(afc_entries=entries, annex_entries=annex_entries),
            rng=seed,
        )
        feed(afd, trace)
        result.add(trace=name, detector="afd-two-level",
                   fpr=round(afd.false_positive_ratio(truth), 4))
        trap = ElephantTrap(entries=entries, rng=seed)
        feed(trap, trace)
        result.add(trace=name, detector="single-lfu",
                   fpr=round(trap.false_positive_ratio(truth), 4))
        trap_p = ElephantTrap(entries=entries, admit_prob=0.1, rng=seed)
        feed(trap_p, trace)
        result.add(trace=name, detector="single-lfu-p0.1",
                   fpr=round(trap_p.false_positive_ratio(truth), 4))
    return result


def run(quick: bool = False) -> list[ExperimentResult]:
    """All Fig. 8 panels."""
    return [
        run_annex_sweep(quick=quick),
        run_window_accuracy(quick=quick),
        run_sampling(quick=quick),
        run_single_vs_two_level(quick=quick),
    ]
