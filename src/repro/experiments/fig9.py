"""Fig. 9 — benefit of migrating only the top flows, relative to AFS.

Setup per Sec. V-C: a single active service (IP forwarding), 16 cores,
offered load slightly above 100% of ideal capacity, real-trace flow
mixes.  Compared policies:

* ``none``      — static hash, no migration (the "lot more packets
  lost" extreme);
* ``afs``       — arbitrary flow shift (the relative baseline = 1.0);
* ``top-k``     — hash + migrate-on-overload gated on exact top-k
  membership, k in {1, 4, 8, 10, 16};
* ``laps-afd``  — the same balancer driven by the real two-level AFD.

Three panels from the same runs, all relative to AFS: (a) packets
dropped, (b) out-of-order packets, (c) flow migrations.
"""

from __future__ import annotations

from repro import units
from repro.core.afd import AFDConfig
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.experiments.runner import ExperimentResult
from repro.net.service import Service, ServiceSet
from repro.schedulers.afs import AFSScheduler
from repro.schedulers.hash_static import StaticHashScheduler
from repro.schedulers.oracle import ExactTopKDetector, TopKMigrationScheduler
from repro.sim.config import SimConfig
from repro.sim.generator import HoltWintersParams
from repro.sim.system import simulate
from repro.sim.workload import build_workload
from repro.trace.models import TRIMODAL_INTERNET_SIZES
from repro.trace.synthetic import preset_trace
from repro.util.parallel import parallel_map

__all__ = ["run", "DEFAULT_TRACES", "K_SWEEP", "single_service_workload"]

DEFAULT_TRACES = ("caida-1", "caida-2", "auck-1", "auck-2")
K_SWEEP = (1, 4, 8, 10, 16)


def single_service_workload(
    trace_name: str,
    *,
    num_cores: int = 16,
    utilisation: float = 1.05,
    duration_ns: int = units.ms(15),
    trace_packets: int = 200_000,
    seed: int = 7,
):
    """IP-forwarding-only workload at *utilisation* of ideal capacity."""
    service = ServiceSet([Service(0, "ip-forward", units.us(0.5))])
    trace = preset_trace(trace_name, num_packets=trace_packets)
    capacity = service.capacity_pps([num_cores], TRIMODAL_INTERNET_SIZES.mean)
    params = [HoltWintersParams(a=utilisation * capacity)]
    workload = build_workload([trace], params, duration_ns=duration_ns, seed=seed)
    config = SimConfig(num_cores=num_cores, services=service, collect_latencies=False)
    return workload, config


def _trace_task(args: tuple) -> list[dict]:
    """All policies for one trace (module-level for pickling)."""
    name, k_sweep, duration_ns, trace_packets, seed = args
    workload, config = single_service_workload(
        name, duration_ns=duration_ns, trace_packets=trace_packets, seed=seed
    )
    baseline = simulate(
        workload, AFSScheduler(cooldown_ns=units.us(100)), config
    )
    rows: list[dict] = []

    def emit(policy: str, rep) -> None:
        rel = rep.relative_to(baseline)
        rows.append(dict(
            trace=name, policy=policy,
            dropped=rep.dropped, ooo=rep.out_of_order,
            flow_migrations=rep.flow_migration_events,
            drop_rel_afs=round(rel["dropped"], 4),
            ooo_rel_afs=round(rel["out_of_order"], 4),
            migrations_rel_afs=round(rel["flow_migrations"], 4),
        ))

    emit("afs", baseline)
    emit("none", simulate(workload, StaticHashScheduler(), config))
    for k in k_sweep:
        sched = TopKMigrationScheduler(
            detector=ExactTopKDetector(k), migration_table_entries=4096
        )
        emit(f"top-{k}", simulate(workload, sched, config))
    laps = LAPSScheduler(
        LAPSConfig(
            num_services=1,
            migration_table_entries=4096,
            afd=AFDConfig(promote_threshold=64),
        ),
        rng=seed,
    )
    emit("laps-afd", simulate(workload, laps, config))
    return rows


def run(
    quick: bool = False,
    traces: tuple[str, ...] = DEFAULT_TRACES,
    k_sweep: tuple[int, ...] = K_SWEEP,
    seed: int = 7,
    jobs: int = 1,
) -> ExperimentResult:
    """Fig. 9(a-c): every policy on every trace, relative to AFS.

    ``jobs`` parallelises across traces with a process pool (0 = auto).
    """
    duration_ns = units.ms(4) if quick else units.ms(15)
    trace_packets = 50_000 if quick else 200_000
    if quick:
        traces = traces[:2]

    result = ExperimentResult(
        "Fig. 9 - migrating only top flows, relative to AFS",
        columns=[
            "trace", "policy",
            "dropped", "ooo", "flow_migrations",
            "drop_rel_afs", "ooo_rel_afs", "migrations_rel_afs",
        ],
        meta={"quick": quick, "utilisation": 1.05, "seed": seed},
    )
    tasks = [
        (name, tuple(k_sweep), duration_ns, trace_packets, seed)
        for name in traces
    ]
    for rows in parallel_map(_trace_task, tasks, jobs=jobs):
        for row in rows:
            result.add(**row)
    return result
