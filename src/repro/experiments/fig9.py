"""Fig. 9 — benefit of migrating only the top flows, relative to AFS.

Setup per Sec. V-C: a single active service (IP forwarding), 16 cores,
offered load slightly above 100% of ideal capacity, real-trace flow
mixes.  Compared policies:

* ``none``      — static hash, no migration (the "lot more packets
  lost" extreme);
* ``afs``       — arbitrary flow shift (the relative baseline = 1.0);
* ``top-k``     — hash + migrate-on-overload gated on exact top-k
  membership, k in {1, 4, 8, 10, 16};
* ``laps-afd``  — the same balancer driven by the real two-level AFD.

Three panels from the same runs, all relative to AFS: (a) packets
dropped, (b) out-of-order packets, (c) flow migrations.
"""

from __future__ import annotations

from repro import units
from repro.core.afd import AFDConfig
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.experiments.batch import RunSpec, WorkloadSpec, run_batch
from repro.experiments.runner import ExperimentResult
from repro.net.service import Service, ServiceSet
from repro.schedulers.afs import AFSScheduler
from repro.schedulers.hash_static import StaticHashScheduler
from repro.schedulers.oracle import ExactTopKDetector, TopKMigrationScheduler
from repro.sim.config import SimConfig
from repro.sim.generator import HoltWintersParams
from repro.sim.source import DEFAULT_CHUNK_SIZE, StreamingSource
from repro.sim.workload import build_workload
from repro.trace.models import TRIMODAL_INTERNET_SIZES
from repro.trace.synthetic import preset_trace

__all__ = [
    "run",
    "DEFAULT_TRACES",
    "K_SWEEP",
    "single_service_workload",
    "single_service_config",
    "ip_forward_service",
]

DEFAULT_TRACES = ("caida-1", "caida-2", "auck-1", "auck-2")
K_SWEEP = (1, 4, 8, 10, 16)


def ip_forward_service() -> ServiceSet:
    """The Sec. V-C single-service set (IP forwarding only)."""
    return ServiceSet([Service(0, "ip-forward", units.us(0.5))])


def single_service_config(
    num_cores: int = 16, queue_capacity: int = 32
) -> SimConfig:
    """The Fig. 9 platform config (also the ablations' base config)."""
    return SimConfig(
        num_cores=num_cores,
        queue_capacity=queue_capacity,
        services=ip_forward_service(),
        collect_latencies=False,
    )


def single_service_workload(
    trace_name: str,
    *,
    num_cores: int = 16,
    utilisation: float = 1.05,
    duration_ns: int = units.ms(15),
    trace_packets: int = 200_000,
    seed: int = 7,
    stream: bool = False,
    chunk_size: int | None = None,
):
    """IP-forwarding-only workload at *utilisation* of ideal capacity.

    ``stream=True`` returns a chunked
    :class:`~repro.sim.source.StreamingSource` in place of the
    materialized workload (same packets, O(chunk) memory).
    """
    service = ip_forward_service()
    trace = preset_trace(trace_name, num_packets=trace_packets)
    capacity = service.capacity_pps([num_cores], TRIMODAL_INTERNET_SIZES.mean)
    params = [HoltWintersParams(a=utilisation * capacity)]
    if stream:
        workload = StreamingSource(
            [trace], params, duration_ns, seed=seed,
            chunk_size=chunk_size or DEFAULT_CHUNK_SIZE,
        )
    else:
        workload = build_workload(
            [trace], params, duration_ns=duration_ns, seed=seed
        )
    return workload, single_service_config(num_cores)


def _fig9_workload(
    trace: str, duration_ns: int, trace_packets: int, seed: int,
    stream: bool = False, chunk_size: int | None = None,
):
    """Workload factory for :class:`WorkloadSpec` (workload only)."""
    return single_service_workload(
        trace, duration_ns=duration_ns, trace_packets=trace_packets,
        seed=seed, stream=stream, chunk_size=chunk_size,
    )[0]


def _fig9_scheduler(policy: str, seed: int):
    """Scheduler factory for :class:`RunSpec` (policy by name)."""
    if policy == "afs":
        return AFSScheduler(cooldown_ns=units.us(100))
    if policy == "none":
        return StaticHashScheduler()
    if policy.startswith("top-"):
        k = int(policy[len("top-"):])
        return TopKMigrationScheduler(
            detector=ExactTopKDetector(k), migration_table_entries=4096
        )
    if policy == "laps-afd":
        return LAPSScheduler(
            LAPSConfig(
                num_services=1,
                migration_table_entries=4096,
                afd=AFDConfig(promote_threshold=64),
            ),
            rng=seed,
        )
    raise ValueError(f"unknown Fig. 9 policy {policy!r}")


def run(
    quick: bool = False,
    traces: tuple[str, ...] = DEFAULT_TRACES,
    k_sweep: tuple[int, ...] = K_SWEEP,
    seed: int = 7,
    jobs: int = 1,
    stream: bool = False,
    chunk_size: int | None = None,
) -> ExperimentResult:
    """Fig. 9(a-c): every policy on every trace, relative to AFS.

    Runs go through :func:`repro.experiments.batch.run_batch` — one
    workload build per trace shared by every policy; ``jobs`` spreads
    traces over a process pool (0 = auto).  The AFS-relative columns
    are computed after the batch from each trace's own AFS row.
    """
    duration_ns = units.ms(4) if quick else units.ms(15)
    trace_packets = 50_000 if quick else 200_000
    if quick:
        traces = traces[:2]

    result = ExperimentResult(
        "Fig. 9 - migrating only top flows, relative to AFS",
        columns=[
            "trace", "policy",
            "dropped", "ooo", "flow_migrations",
            "drop_rel_afs", "ooo_rel_afs", "migrations_rel_afs",
        ],
        meta={"quick": quick, "utilisation": 1.05, "seed": seed},
    )
    policies = ["afs", "none", *(f"top-{k}" for k in k_sweep), "laps-afd"]
    specs = []
    for name in traces:
        wspec = WorkloadSpec.of(
            _fig9_workload,
            trace=name,
            duration_ns=duration_ns,
            trace_packets=trace_packets,
            seed=seed,
            stream=stream,
            chunk_size=chunk_size,
        )
        for policy in policies:
            specs.append(RunSpec(
                workload=wspec,
                scheduler_fn=_fig9_scheduler,
                scheduler_kwargs={"policy": policy, "seed": seed},
                config_fn=single_service_config,
                label={"trace": name, "policy": policy},
            ))
    runs = run_batch(specs, jobs=jobs)
    baselines = {
        r.label["trace"]: r.report for r in runs if r.label["policy"] == "afs"
    }
    for run_ in runs:
        rep = run_.report
        rel = rep.relative_to(baselines[run_.label["trace"]])
        result.add(
            **run_.label,
            dropped=rep.dropped, ooo=rep.out_of_order,
            flow_migrations=rep.flow_migration_events,
            drop_rel_afs=round(rel["dropped"], 4),
            ooo_rel_afs=round(rel["out_of_order"], 4),
            migrations_rel_afs=round(rel["flow_migrations"], 4),
        )
    return result
