"""Fig. 2 — flow-size rank-size distribution of the traces.

The paper plots per-flow size against rank (log-log) for its real
traces to motivate the elephants-and-mice premise.  This harness prints
the same curve for the synthetic presets at logarithmically spaced
ranks, plus the concentration summary (top-k shares, Gini) that
quantifies the skew.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import ExperimentResult
from repro.trace.analysis import concentration, rank_size
from repro.trace.synthetic import preset_trace

__all__ = ["run_rank_size", "run_concentration", "DEFAULT_TRACES"]

DEFAULT_TRACES = ("caida-1", "caida-2", "auck-1", "auck-2")


def _log_ranks(n: int, points: int) -> list[int]:
    """~*points* logarithmically spaced ranks in [1, n]."""
    if n <= 0:
        return []
    ranks = np.unique(
        np.round(np.logspace(0, np.log10(n), points)).astype(int)
    )
    return [int(r) for r in ranks if 1 <= r <= n]


def run_rank_size(
    traces: tuple[str, ...] = DEFAULT_TRACES,
    *,
    quick: bool = False,
    points: int = 12,
) -> ExperimentResult:
    """The Fig. 2 series: per-trace flow size at log-spaced ranks."""
    num_packets = 20_000 if quick else None
    result = ExperimentResult(
        "Fig. 2 - flow size vs rank (bytes)",
        columns=["trace", "rank", "size_bytes", "share_cum"],
        meta={"quick": quick, "points_per_trace": points},
    )
    for name in traces:
        trace = preset_trace(name, num_packets=num_packets)
        curve = rank_size(trace, by="bytes")
        total = float(curve.sizes.sum())
        cum = np.cumsum(curve.sizes)
        for rank in _log_ranks(curve.num_flows, points):
            result.add(
                trace=name,
                rank=rank,
                size_bytes=int(curve.sizes[rank - 1]),
                share_cum=float(cum[rank - 1]) / total if total else 0.0,
            )
    return result


def run_concentration(
    traces: tuple[str, ...] = DEFAULT_TRACES,
    *,
    quick: bool = False,
) -> ExperimentResult:
    """Skew fingerprint per trace (supports the Fig. 2 narrative)."""
    num_packets = 20_000 if quick else None
    result = ExperimentResult(
        "Fig. 2 (summary) - trace concentration",
        columns=[
            "trace", "active_flows", "gini",
            "top1_share", "top10_share", "top16_share", "top100_share",
        ],
        meta={"quick": quick},
    )
    for name in traces:
        trace = preset_trace(name, num_packets=num_packets)
        stats = concentration(trace, by="bytes")
        result.add(trace=name, **{k: round(v, 4) for k, v in stats.items()})
    return result


def run(quick: bool = False) -> list[ExperimentResult]:
    """Everything Fig. 2 related."""
    return [run_rank_size(quick=quick), run_concentration(quick=quick)]
