"""Batched multi-run execution: one grid, one runner, shared workloads.

The figure harnesses all reduce to the same shape — a grid of
(scheduler × seed × scenario) simulations where several runs share one
expensively-built workload — and each used to carry its own copy of the
loop + process-pool plumbing.  :func:`run_batch` centralises it:

* a :class:`RunSpec` names one simulation declaratively (a workload
  spec, a scheduler factory, an optional config factory, and a
  free-form ``label`` the caller uses to map results back to rows);
* specs sharing a :class:`WorkloadSpec` are grouped so the workload is
  built **once per group** (per worker), not once per run — workload
  synthesis (trace generation + Holt-Winters pacing) is a large slice
  of a harness's wall time.  A spec's factory may return a materialized
  :class:`~repro.sim.workload.Workload` *or* a streaming
  :class:`~repro.sim.source.PacketSource`: the kernel clones a source
  per run, so the one-build-per-group sharing holds either way;
* groups execute through :func:`repro.util.parallel.parallel_map`
  (``jobs=1`` inline, ``0`` auto), and results come back in the input
  spec order regardless of grouping or pool scheduling.

Everything in a spec must be picklable and the factories must be
module-level functions, because groups may execute in pool workers.
``WorkloadSpec`` keyword values must additionally be hashable (they are
the grouping key) — pass scenario *names*, not scenario objects.

Fig. 8 is the one harness that does not use this module: it never runs
the simulator (the AFD is scored standalone against offline ground
truth), so its sharing win is memoised trace construction instead
(see ``fig8._trace``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.config import SimConfig
from repro.sim.metrics import SimReport
from repro.sim.source import workload_fingerprint
from repro.sim.system import simulate
from repro.util.parallel import parallel_map

__all__ = ["WorkloadSpec", "RunSpec", "BatchRun", "run_batch"]


@dataclass(frozen=True)
class WorkloadSpec:
    """A hashable recipe for building one workload.

    Two specs with the same factory and keyword arguments compare (and
    hash) equal, which is exactly the grouping :func:`run_batch` needs:
    equal specs → one shared build.
    """

    fn: Callable
    #: sorted ``(name, value)`` pairs — canonical, hashable kwargs form
    kwargs: tuple[tuple[str, Any], ...]

    @classmethod
    def of(cls, fn: Callable, **kwargs) -> "WorkloadSpec":
        return cls(fn, tuple(sorted(kwargs.items())))

    def build(self):
        return self.fn(**dict(self.kwargs))


@dataclass
class RunSpec:
    """One simulation of the grid.

    ``config_fn(**config_kwargs)`` builds the :class:`SimConfig`
    (defaults to a plain ``SimConfig()`` when omitted); ``label`` is
    opaque caller metadata echoed back on the :class:`BatchRun`.
    """

    workload: WorkloadSpec
    scheduler_fn: Callable
    scheduler_kwargs: dict = field(default_factory=dict)
    config_fn: Callable | None = None
    config_kwargs: dict = field(default_factory=dict)
    #: optional fault-injector factory — built fresh per run (injectors
    #: are stateful) and handed to :func:`~repro.sim.system.simulate`
    injector_fn: Callable | None = None
    injector_kwargs: dict = field(default_factory=dict)
    #: event engine for the run (None = the kernel default; see
    #: :func:`repro.sim.engine.resolve_engine`) — results are engine-
    #: independent, so this is a speed knob, not a scenario axis
    engine: str | None = None
    #: shard the run N ways via :func:`repro.sim.sharding.run_sharded`
    #: (None/1 = single-process).  All sharded runs of one workload
    #: group share a single source fingerprint, computed once per
    #: group — the provenance stamp proving every shard group was cut
    #: from the identical packet stream.
    shards: int | None = None
    shard_workers: int = 0
    shard_window_ns: int | None = None
    label: dict = field(default_factory=dict)

    def build_config(self) -> SimConfig:
        if self.config_fn is None:
            return SimConfig()
        return self.config_fn(**self.config_kwargs)

    def build_injector(self):
        if self.injector_fn is None:
            return None
        return self.injector_fn(**self.injector_kwargs)


@dataclass
class BatchRun:
    """One completed simulation: the spec that named it + its report."""

    spec: RunSpec
    report: SimReport
    #: the ``manifest_dict()`` of the :class:`~repro.sim.sharding.
    #: ShardedRun` when the spec ran sharded; None single-process
    sharding: dict | None = None

    @property
    def label(self) -> dict:
        return self.spec.label


def _group_task(packed: tuple) -> list[tuple[int, BatchRun]]:
    """Run one workload-sharing group (module-level for pickling)."""
    wspec, indexed_specs = packed
    workload = wspec.build()
    group_fingerprint: str | None = None
    out: list[tuple[int, BatchRun]] = []
    for index, spec in indexed_specs:
        scheduler = spec.scheduler_fn(**spec.scheduler_kwargs)
        injector = spec.build_injector()
        if spec.shards is not None and spec.shards > 1:
            from repro.faults.events import FaultSchedule
            from repro.sim.sharding import run_sharded

            if group_fingerprint is None:
                # one content hash per shard group: every sharded run
                # of this group partitions the identical packet stream,
                # and the manifest records the shared proof
                group_fingerprint = workload_fingerprint(workload)
            schedule = None
            drain_policy = "drop"
            if injector is not None:
                # match single-process simulate(): only platform events
                # ride the injector; traffic events are the workload
                # factory's job
                platform = [
                    ev for ev in injector.schedule.events
                    if ev.kind == "platform"
                ]
                schedule = FaultSchedule(platform) if platform else None
                drain_policy = injector.drain_policy
            run = run_sharded(
                workload, scheduler, spec.build_config(),
                shards=spec.shards, workers=spec.shard_workers,
                window_ns=spec.shard_window_ns, schedule=schedule,
                drain_policy=drain_policy, engine=spec.engine,
                source_fingerprint=group_fingerprint,
            )
            out.append(
                (index, BatchRun(spec, run.report, run.manifest_dict()))
            )
            continue
        report = simulate(
            workload, scheduler, spec.build_config(),
            injector=injector, engine=spec.engine,
        )
        out.append((index, BatchRun(spec, report)))
    return out


def run_batch(specs: list[RunSpec], jobs: int = 1) -> list[BatchRun]:
    """Execute every spec, sharing workload builds, in input order.

    Specs are grouped by their :class:`WorkloadSpec`; each group builds
    its workload once and runs its simulations sequentially (they would
    contend for the same cores anyway), while distinct groups spread
    over the process pool.  The returned list is index-aligned with
    *specs*.
    """
    groups: dict[WorkloadSpec, list[tuple[int, RunSpec]]] = {}
    for index, spec in enumerate(specs):
        groups.setdefault(spec.workload, []).append((index, spec))
    results: list[BatchRun | None] = [None] * len(specs)
    for chunk in parallel_map(_group_task, list(groups.items()), jobs=jobs):
        for index, run in chunk:
            results[index] = run
    return results  # type: ignore[return-value]
