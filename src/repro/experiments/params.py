"""Tables IV-VI: traffic parameter sets, trace groups, scenarios.

Table IV gives the Holt-Winters parameters per service, in Mpps and
seconds.  Two cells are printed with obvious typos in the paper ("025"
and "02" in the *b* column); we read them as 0.025 and 0.02 — the
neighbouring trend values are all of that magnitude.

The simulator runs scaled down (Python cannot push 10^9 packets), so
scenarios are realised by:

* **time compression** — periods ``m`` shrink by ``time_compression``
  (default 1000x: the paper's 60 s run becomes 60 ms) and trends ``b``
  grow by the same factor, so the full seasonal/trend shape unfolds
  within the compressed run;
* **rate calibration** — all rate-dimension parameters are scaled by a
  common factor so the *average aggregate* offered rate hits a target
  utilisation of the system's ideal capacity: Set 1 is the paper's
  under-load regime (we pin it at 0.85), Set 2 the overload regime
  (1.15).  The relative service mix of Table IV is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.generator import HoltWinters, HoltWintersParams

__all__ = [
    "PARAM_SETS",
    "SET_UTILISATION",
    "TRACE_GROUPS",
    "SCENARIOS",
    "Scenario",
    "scaled_params",
]

#: Table IV verbatim (rates in Mpps, periods in seconds); the *b* typos
#: are read as 0.025 / 0.02.
PARAM_SETS: dict[str, list[HoltWintersParams]] = {
    "set1": [
        HoltWintersParams(a=1.0e6, b=0.030e6, c=0.30e6, m=40.0, sigma=0.10e6),
        HoltWintersParams(a=1.8e6, b=0.025e6, c=0.10e6, m=25.0, sigma=0.05e6),
        HoltWintersParams(a=0.5e6, b=0.010e6, c=0.07e6, m=60.0, sigma=0.25e6),
        HoltWintersParams(a=0.3e6, b=0.005e6, c=0.09e6, m=600.0, sigma=0.30e6),
    ],
    "set2": [
        HoltWintersParams(a=1.5e6, b=0.002e6, c=0.30e6, m=100.0, sigma=0.30e6),
        HoltWintersParams(a=1.3e6, b=0.020e6, c=0.15e6, m=25.0, sigma=0.05e6),
        HoltWintersParams(a=1.0e6, b=0.004e6, c=0.25e6, m=30.0, sigma=0.25e6),
        HoltWintersParams(a=0.7e6, b=0.010e6, c=0.18e6, m=200.0, sigma=0.30e6),
    ],
}

#: Target mean utilisation per parameter set (under-load / overload).
SET_UTILISATION: dict[str, float] = {"set1": 0.85, "set2": 1.15}

#: Table V: which trace feeds each service, per group.  The paper's
#: Table V references "Caida5/Caida6" beyond Table I's four entries; we
#: provide six caida-like presets to cover it.
TRACE_GROUPS: dict[str, tuple[str, str, str, str]] = {
    "G1": ("caida-1", "caida-2", "caida-3", "caida-4"),
    "G2": ("caida-5", "caida-6", "caida-2", "caida-3"),
    "G3": ("auck-1", "auck-2", "auck-3", "auck-4"),
    "G4": ("auck-5", "auck-6", "auck-7", "auck-8"),
    # Beyond the paper: internet-scale CDF flow-size mixes from
    # repro.workloads (heavy-tailed web-search / data-mining / bimodal
    # cache-vs-mice shapes), resolvable by any harness that routes
    # trace names through repro.workloads.traces.resolve_trace.
    "W1": ("websearch-1", "websearch-2", "datamining-1", "cachemice-1"),
}


@dataclass(frozen=True)
class Scenario:
    """One Table VI row: a parameter set paired with a trace group."""

    name: str
    param_set: str
    trace_group: str

    @property
    def params(self) -> list[HoltWintersParams]:
        return PARAM_SETS[self.param_set]

    @property
    def utilisation(self) -> float:
        return SET_UTILISATION[self.param_set]

    @property
    def trace_names(self) -> tuple[str, str, str, str]:
        return TRACE_GROUPS[self.trace_group]


#: Table VI verbatim (T8 repeats G3 in the paper; kept as printed).
SCENARIOS: dict[str, Scenario] = {
    "T1": Scenario("T1", "set1", "G1"),
    "T2": Scenario("T2", "set1", "G2"),
    "T3": Scenario("T3", "set1", "G3"),
    "T4": Scenario("T4", "set1", "G4"),
    "T5": Scenario("T5", "set2", "G1"),
    "T6": Scenario("T6", "set2", "G2"),
    "T7": Scenario("T7", "set2", "G3"),
    "T8": Scenario("T8", "set2", "G3"),
}


def scaled_params(
    params: list[HoltWintersParams],
    capacities_pps: list[float],
    utilisation: float,
    duration_s: float,
    time_compression: float = 1000.0,
) -> list[HoltWintersParams]:
    """Compress Table IV parameters in time and calibrate their rates.

    Calibration is **per service**: service *i*'s mean offered rate is
    scaled to ``utilisation * capacities_pps[i]`` (its own share of the
    initial equal core split).  Table IV's absolute Mpps encode the
    authors' testbed capacities, which differ from any rescaled
    simulation; what transfers is each row's *shape* — trend, seasonal
    swing and noise relative to its own baseline — which per-service
    scaling preserves exactly.  Seasonal peaks then push individual
    services past 1.0 utilisation (driving core borrowing) while the
    set-level mean matches the paper's under-/over-load regimes.

    ``duration_s`` is the *compressed* run length in seconds.  The
    returned list drives :func:`repro.sim.workload.build_workload`.
    """
    if len(params) != len(capacities_pps):
        raise ValueError(
            f"{len(params)} parameter rows vs {len(capacities_pps)} capacities"
        )
    if any(c <= 0 for c in capacities_pps):
        raise ValueError(f"capacities must be positive, got {capacities_pps}")
    if utilisation <= 0:
        raise ValueError(f"utilisation must be positive, got {utilisation}")
    if time_compression <= 0:
        raise ValueError(
            f"time_compression must be positive, got {time_compression}"
        )
    out: list[HoltWintersParams] = []
    for p, capacity in zip(params, capacities_pps):
        # 1. compress time: periods shrink, trends steepen
        compressed = HoltWintersParams(
            a=p.a,
            b=p.b * time_compression,
            c=p.c,
            m=p.m / time_compression,
            sigma=p.sigma,
        )
        # 2. calibrate this service's mean to its share of capacity
        mean = HoltWinters(compressed).average_rate(duration_s)
        out.append(compressed.scaled(utilisation * capacity / mean))
    return out
