"""Scheduler tournament: the whole zoo raced on one grid.

``python -m repro.experiments.tournament`` drives every registered
scheduler of interest — the paper's baselines (FCFS, static hash, AFS),
LAPS itself, and the literature zoo (RSS/Toeplitz, Flow Director,
Sprinklers, flowlet switching) — across a scenario × fault-schedule ×
utilisation grid, then ranks them on a Borda-style scorecard over four
metrics:

* **reorder density** — out-of-order departures / departures (the
  paper's Fig. 7c metric, and the axis the zoo exists to explore:
  Flow Director's follow-the-load rebinding should sit measurably
  above flowlet switching and Sprinklers here);
* **p99 latency** — tail sojourn time in microseconds;
* **throughput** — departures per second of model time;
* **resilience** — mean drop fraction over the *faulted* cells only
  (how gracefully the scheme degrades when cores die, flap or slow
  down).

Every cell routes through :func:`repro.experiments.batch.run_batch`,
so workloads are built once per (scenario, fault, utilisation, seed)
group and shared by all schedulers — identical arrivals per column of
the grid, which is what makes the ranking meaningful.  The ranked
result is written as ``TOURNAMENT.json`` (schema
``repro.tournament/1``) the way ``BENCH_kernel.json`` archives the
kernel benchmark, plus an optional markdown scorecard.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Callable

from repro import units
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.experiments.batch import RunSpec, WorkloadSpec, run_batch
from repro.experiments.params import TRACE_GROUPS
from repro.experiments.runner import ExperimentResult
from repro.faults.events import (
    CoreFail,
    CoreSlowdown,
    FaultEvent,
    FaultSchedule,
    TrafficSurge,
    core_flap,
)
from repro.faults.injector import FaultInjector, apply_traffic_events
from repro.net.service import default_services
from repro.schedulers.base import Scheduler, make_scheduler
from repro.sim.config import SimConfig
from repro.sim.engine import available_engines
from repro.sim.generator import HoltWintersParams
from repro.sim.metrics import SimReport
from repro.sim.workload import Workload, build_workload
from repro.workloads.traces import resolve_trace

__all__ = [
    "SCORECARD_SCHEMA",
    "DEFAULT_SCHEDULERS",
    "FAULT_NAMES",
    "run_tournament",
    "validate_scorecard",
    "render_markdown",
    "run",
    "main",
]

SCORECARD_SCHEMA = "repro.tournament/1"

NUM_CORES = 16

#: the full field: paper baselines + LAPS + the literature zoo
DEFAULT_SCHEDULERS: tuple[str, ...] = (
    "fcfs", "hash-static", "afs", "laps",
    "rss-static", "flow-director", "sprinklers", "flowlet",
)
DEFAULT_GROUPS: tuple[str, ...] = ("G1", "G3")
DEFAULT_UTILISATIONS: tuple[float, ...] = (0.5, 0.8)
DEFAULT_SEEDS: tuple[int, ...] = (0,)

#: metric -> direction; the scorecard ranks each column independently
#: and sums the ranks (Borda), so no metric dominates by scale
METRICS: tuple[tuple[str, str], ...] = (
    ("reorder_density", "min"),
    ("p99_latency_us", "min"),
    ("throughput_pps", "max"),
    ("resilience_drop_frac", "min"),
)


# ---------------------------------------------------------------------------
# fault schedules (names are WorkloadSpec grouping keys, so strings)

def _fault_events(fault: str, duration_ns: int) -> list[FaultEvent]:
    if fault == "none":
        return []
    if fault == "core-loss":
        return [CoreFail(duration_ns // 3, core_id=5)]
    if fault == "flap":
        return core_flap(
            core_id=9,
            first_fail_ns=duration_ns // 4,
            down_ns=duration_ns // 10,
            up_ns=duration_ns // 10,
            cycles=2,
        )
    if fault == "slowdown-surge":
        return [
            CoreSlowdown(
                duration_ns // 4, core_id=2, factor=4.0,
                duration_ns=duration_ns // 3,
            ),
            TrafficSurge(
                duration_ns // 2, service_id=1, factor=2.0,
                duration_ns=duration_ns // 6,
            ),
        ]
    raise ValueError(f"unknown fault schedule {fault!r}")


FAULT_NAMES: tuple[str, ...] = ("none", "core-loss", "flap", "slowdown-surge")


def _fault_schedule(fault: str, duration_ns: int) -> FaultSchedule:
    return FaultSchedule(_fault_events(fault, duration_ns))


# ---------------------------------------------------------------------------
# picklable grid factories (module-level: groups may run in pool workers)

def _zoo_workload(
    group: str,
    utilisation: float,
    duration_ns: int,
    trace_packets: int,
    seed: int,
    fault: str,
) -> Workload:
    """Steady 4-service workload from one Table V trace group at
    *utilisation* of ideal capacity, with the fault schedule's traffic
    events (surges) already applied — every scheduler in the cell sees
    the identical arrival stream."""
    services = default_services()
    traces = [
        resolve_trace(name, num_packets=trace_packets)
        for name in TRACE_GROUPS[group]
    ]
    per_service_cores = NUM_CORES // len(services)
    params = []
    for sid, trace in enumerate(traces):
        mean_size = float(trace.size_bytes.mean())
        cap = per_service_cores * services[sid].capacity_pps(mean_size)
        params.append(HoltWintersParams(a=utilisation * cap))
    workload = build_workload(traces, params, duration_ns=duration_ns, seed=seed)
    return apply_traffic_events(workload, _fault_schedule(fault, duration_ns))


def _zoo_scheduler(name: str, num_services: int = 4, seed: int = 1) -> Scheduler:
    if name == "laps":
        return LAPSScheduler(LAPSConfig(num_services=num_services), rng=seed)
    return make_scheduler(name)


def _zoo_config(num_cores: int = NUM_CORES) -> SimConfig:
    return SimConfig(num_cores=num_cores, collect_latencies=True)


def _zoo_injector(fault: str, duration_ns: int) -> FaultInjector:
    return FaultInjector(_fault_schedule(fault, duration_ns))


# ---------------------------------------------------------------------------
# grid -> runs -> scorecard

def _run_row(label: dict, report: SimReport) -> dict[str, Any]:
    return {
        **label,
        "reorder_density": round(report.ooo_fraction, 6),
        "p99_latency_us": round(report.latency_ns.get("p99", 0.0) / 1e3, 3),
        "throughput_pps": round(report.throughput_pps, 1),
        "drop_frac": round(report.drop_fraction, 6),
        "fault_dropped": report.fault_dropped,
        "fairness": round(report.load_fairness, 4),
    }


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _scorecard(runs: list[dict]) -> list[dict[str, Any]]:
    """Aggregate runs per scheduler and Borda-rank the aggregates."""
    schedulers = sorted({r["scheduler"] for r in runs})
    means: dict[str, dict[str, float]] = {}
    for name in schedulers:
        mine = [r for r in runs if r["scheduler"] == name]
        faulted = [r for r in mine if r["fault"] != "none"] or mine
        means[name] = {
            "reorder_density": _mean([r["reorder_density"] for r in mine]),
            "p99_latency_us": _mean([r["p99_latency_us"] for r in mine]),
            "throughput_pps": _mean([r["throughput_pps"] for r in mine]),
            "resilience_drop_frac": _mean([r["drop_frac"] for r in faulted]),
            "fairness": _mean([r["fairness"] for r in mine]),
        }
    score = {name: 0 for name in schedulers}
    for metric, direction in METRICS:
        ordered = sorted(
            schedulers,
            key=lambda n: means[n][metric],
            reverse=(direction == "max"),
        )
        for rank, name in enumerate(ordered):
            score[name] += rank
    ranked = sorted(
        schedulers,
        key=lambda n: (score[n], means[n]["reorder_density"], n),
    )
    return [
        {
            "rank": i + 1,
            "scheduler": name,
            "score": score[name],
            "means": {k: round(v, 6) for k, v in means[name].items()},
        }
        for i, name in enumerate(ranked)
    ]


def run_tournament(
    schedulers: tuple[str, ...] = DEFAULT_SCHEDULERS,
    groups: tuple[str, ...] = DEFAULT_GROUPS,
    faults: tuple[str, ...] = FAULT_NAMES,
    utilisations: tuple[float, ...] = DEFAULT_UTILISATIONS,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    *,
    quick: bool = False,
    duration_ns: int | None = None,
    trace_packets: int | None = None,
    jobs: int = 1,
    engine: str | None = None,
    shards: int | None = None,
    shard_workers: int = 0,
) -> dict[str, Any]:
    """Race the field and return the ``repro.tournament/1`` payload.

    ``shards`` runs each *statically partitionable* scheduler's cells
    through :func:`repro.sim.sharding.run_sharded` — bit-identical to
    single-process, so like ``engine`` it is a speed knob, never a
    scenario axis, and the scorecard is unchanged.  Schedulers whose
    sharded results would differ (everything non-``shard_static``,
    including LAPS' windowed services mode) stay single-process.
    """
    if quick:
        if groups == DEFAULT_GROUPS:  # keep explicit --scenarios intact
            groups = groups[:1]
        utilisations = utilisations[:1]
        seeds = seeds[:1]
    if duration_ns is None:
        duration_ns = units.ms(6) if quick else units.ms(20)
    if trace_packets is None:
        trace_packets = 12_000 if quick else 40_000
    for fault in faults:
        _fault_events(fault, duration_ns)  # fail fast on unknown names
    num_services = len(default_services())
    shardable: dict[str, bool] = {}
    if shards is not None and shards > 1:
        shardable = {
            name: getattr(
                _zoo_scheduler(name, num_services, 1), "shard_static", False
            )
            for name in schedulers
        }

    specs: list[RunSpec] = []
    for group in groups:
        for fault in faults:
            for util in utilisations:
                for seed in seeds:
                    wspec = WorkloadSpec.of(
                        _zoo_workload,
                        group=group, utilisation=util,
                        duration_ns=duration_ns,
                        trace_packets=trace_packets,
                        seed=seed, fault=fault,
                    )
                    for name in schedulers:
                        specs.append(RunSpec(
                            workload=wspec,
                            scheduler_fn=_zoo_scheduler,
                            scheduler_kwargs=dict(
                                name=name, num_services=num_services,
                                seed=seed + 1,
                            ),
                            config_fn=_zoo_config,
                            injector_fn=(
                                None if fault == "none" else _zoo_injector
                            ),
                            injector_kwargs=(
                                {} if fault == "none"
                                else dict(fault=fault, duration_ns=duration_ns)
                            ),
                            engine=engine,
                            shards=shards if shardable.get(name) else None,
                            shard_workers=shard_workers,
                            label=dict(
                                scheduler=name, group=group, fault=fault,
                                utilisation=util, seed=seed,
                            ),
                        ))

    runs = [
        _run_row(done.label, done.report)
        for done in run_batch(specs, jobs=jobs)
    ]
    return {
        "schema": SCORECARD_SCHEMA,
        "generated_by": "python -m repro.experiments.tournament",
        "grid": {
            "schedulers": list(schedulers),
            "groups": list(groups),
            "faults": list(faults),
            "utilisations": list(utilisations),
            "seeds": list(seeds),
            "duration_ns": duration_ns,
            "trace_packets": trace_packets,
            "num_cores": NUM_CORES,
            "quick": quick,
            "shards": shards,
        },
        "runs": runs,
        "scorecard": _scorecard(runs),
    }


# ---------------------------------------------------------------------------
# validation + rendering

_RUN_FIELDS = (
    "scheduler", "group", "fault", "utilisation", "seed",
    "reorder_density", "p99_latency_us", "throughput_pps",
    "drop_frac", "fault_dropped", "fairness",
)
_MEAN_FIELDS = tuple(m for m, _ in METRICS) + ("fairness",)


def validate_scorecard(payload: dict) -> None:
    """Raise :class:`ValueError` unless *payload* is a structurally
    sound ``repro.tournament/1`` document (CI runs this on the smoke
    artifact, tests run it on fresh results and on the committed
    ``TOURNAMENT.json``)."""
    if not isinstance(payload, dict):
        raise ValueError("payload must be a JSON object")
    if payload.get("schema") != SCORECARD_SCHEMA:
        raise ValueError(
            f"schema must be {SCORECARD_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    for key in ("generated_by", "grid", "runs", "scorecard"):
        if key not in payload:
            raise ValueError(f"missing top-level key {key!r}")
    runs = payload["runs"]
    if not isinstance(runs, list) or not runs:
        raise ValueError("runs must be a non-empty list")
    for i, row in enumerate(runs):
        for fld in _RUN_FIELDS:
            if fld not in row:
                raise ValueError(f"runs[{i}] missing field {fld!r}")
        for fld in ("reorder_density", "drop_frac"):
            if not 0.0 <= row[fld] <= 1.0:
                raise ValueError(
                    f"runs[{i}].{fld} out of [0, 1]: {row[fld]!r}"
                )
    card = payload["scorecard"]
    if not isinstance(card, list) or not card:
        raise ValueError("scorecard must be a non-empty list")
    for i, entry in enumerate(card):
        for fld in ("rank", "scheduler", "score", "means"):
            if fld not in entry:
                raise ValueError(f"scorecard[{i}] missing field {fld!r}")
        if entry["rank"] != i + 1:
            raise ValueError(
                f"scorecard[{i}].rank must be {i + 1}, got {entry['rank']!r}"
            )
        for fld in _MEAN_FIELDS:
            if fld not in entry["means"]:
                raise ValueError(f"scorecard[{i}].means missing {fld!r}")
    card_names = {e["scheduler"] for e in card}
    run_names = {r["scheduler"] for r in runs}
    if card_names != run_names:
        raise ValueError(
            f"scorecard schedulers {sorted(card_names)} != "
            f"run schedulers {sorted(run_names)}"
        )


def render_markdown(payload: dict) -> str:
    """The scorecard as a GitHub-flavored markdown table."""
    grid = payload["grid"]
    lines = [
        "# Scheduler tournament",
        "",
        f"{len(payload['runs'])} runs: "
        f"{len(grid['schedulers'])} schedulers x "
        f"groups {', '.join(grid['groups'])} x "
        f"faults {', '.join(grid['faults'])} x "
        f"utilisations {', '.join(str(u) for u in grid['utilisations'])} x "
        f"{len(grid['seeds'])} seed(s).",
        "",
        "| rank | scheduler | score | reorder density | p99 (us) "
        "| pkts/s | faulted drop frac | fairness |",
        "|---:|---|---:|---:|---:|---:|---:|---:|",
    ]
    for entry in payload["scorecard"]:
        m = entry["means"]
        lines.append(
            f"| {entry['rank']} | {entry['scheduler']} | {entry['score']} "
            f"| {m['reorder_density']:.4f} | {m['p99_latency_us']:.1f} "
            f"| {m['throughput_pps']:,.0f} | {m['resilience_drop_frac']:.4f} "
            f"| {m['fairness']:.3f} |"
        )
    lines.append("")
    lines.append(
        "Lower is better for reorder density, p99 and drop fraction; "
        "higher for pkts/s.  Score is the Borda sum of per-metric ranks "
        "(lower wins)."
    )
    return "\n".join(lines) + "\n"


def run(quick: bool = False, jobs: int = 1, **_) -> list[ExperimentResult]:
    """The ``repro-experiments tournament`` adapter: run the grid and
    wrap the per-run rows as an :class:`ExperimentResult` table (the
    scorecard rides in ``meta``)."""
    payload = run_tournament(quick=quick, jobs=jobs)
    result = ExperimentResult(
        "Scheduler tournament - zoo ranking across faults and load",
        columns=list(_RUN_FIELDS),
        meta={
            "quick": quick,
            "schema": payload["schema"],
            "scorecard": payload["scorecard"],
        },
    )
    for row in payload["runs"]:
        result.add(**row)
    return [result]


def _csv(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.tournament",
        description="Race the scheduler zoo and emit a ranked scorecard.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small grid + short runs (seconds; used by CI smoke)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallel worker processes (0 = auto)",
    )
    parser.add_argument(
        "--schedulers", type=_csv, default=DEFAULT_SCHEDULERS, metavar="A,B",
        help=f"comma-separated field (default: {','.join(DEFAULT_SCHEDULERS)})",
    )
    parser.add_argument(
        "--scenarios", type=_csv, default=DEFAULT_GROUPS, metavar="G1,G3",
        help="trace groups (Table V)",
    )
    parser.add_argument(
        "--faults", type=_csv, default=FAULT_NAMES, metavar="A,B",
        help=f"fault schedules (default: {','.join(FAULT_NAMES)})",
    )
    parser.add_argument(
        "--utilisations", metavar="0.5,0.8",
        type=lambda s: tuple(float(x) for x in _csv(s)),
        default=DEFAULT_UTILISATIONS,
    )
    parser.add_argument(
        "--seeds", metavar="0,1",
        type=lambda s: tuple(int(x) for x in _csv(s)),
        default=DEFAULT_SEEDS,
    )
    parser.add_argument(
        "--engine", choices=available_engines(), default=None,
        help="event core for every run (bit-identical scorecards across "
             "engines; see docs/performance.md)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run statically partitionable schedulers sharded N ways "
             "(bit-identical scorecards; see docs/architecture.md)",
    )
    parser.add_argument(
        "--shard-workers", type=int, default=0, metavar="N",
        help="worker processes per sharded run (0 = auto)",
    )
    parser.add_argument(
        "--json", metavar="FILE", default="TOURNAMENT.json",
        help="scorecard output path (default: TOURNAMENT.json)",
    )
    parser.add_argument(
        "--markdown", metavar="FILE", default=None,
        help="also render the scorecard as markdown",
    )
    args = parser.parse_args(argv)

    payload = run_tournament(
        schedulers=args.schedulers,
        groups=args.scenarios,
        faults=args.faults,
        utilisations=args.utilisations,
        seeds=args.seeds,
        quick=args.quick,
        jobs=args.jobs,
        engine=args.engine,
        shards=args.shards,
        shard_workers=args.shard_workers,
    )
    validate_scorecard(payload)
    out = Path(args.json)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(render_markdown(payload))
    print(f"[scorecard written to {out}]")
    if args.markdown:
        Path(args.markdown).write_text(render_markdown(payload))
        print(f"[markdown written to {args.markdown}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
