"""Ablations of LAPS's design choices (DESIGN.md §6).

Each function sweeps one knob on the Fig. 9 single-service setup
(16 cores, IP forwarding, ~105% offered load) and returns an
:class:`~repro.experiments.runner.ExperimentResult`:

* :func:`run_promote_threshold` — AFD promotion threshold: detection
  aggressiveness vs promotion churn;
* :func:`run_queue_depth` — the 32-descriptor queue choice ([32]);
* :func:`run_migration_table` — pin-table capacity: eviction causes
  migrated elephants to bounce back to their hash core;
* :func:`run_pin_weight` — naive instantaneous-minq placement vs
  pin-aware placement;
* :func:`run_restoration` — order restoration at egress (Sec. VI's
  alternative [35]) on an FCFS-scrambled departure stream;
* :func:`run_power_gating` — energy head-room from gating the idle
  capacity LAPS's surplus tracking exposes ([20]/[29]).
"""

from __future__ import annotations

from repro import units
from repro.core.afd import AFDConfig
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.experiments.batch import RunSpec, WorkloadSpec, run_batch
from repro.experiments.fig9 import (
    single_service_config,
    single_service_workload,
)
from repro.experiments.runner import ExperimentResult
from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.config import SimConfig
from repro.sim.power import PowerModel
from repro.sim.restoration import restoration_cost
from repro.sim.system import simulate

__all__ = [
    "run_promote_threshold",
    "run_queue_depth",
    "run_migration_table",
    "run_pin_weight",
    "run_restoration",
    "run_power_gating",
    "run",
]


def _workload(quick: bool, **kw):
    kw.setdefault("duration_ns", units.ms(6) if quick else units.ms(15))
    kw.setdefault("trace_packets", 80_000 if quick else 200_000)
    return single_service_workload("caida-1", **kw)


def _ablation_workload(
    duration_ns: int, trace_packets: int, utilisation: float = 1.05,
    stream: bool = False, chunk_size: int | None = None,
):
    """Workload factory for :class:`WorkloadSpec` (workload only)."""
    return single_service_workload(
        "caida-1",
        duration_ns=duration_ns,
        trace_packets=trace_packets,
        utilisation=utilisation,
        stream=stream,
        chunk_size=chunk_size,
    )[0]


def _ablation_workload_spec(quick: bool, **kw) -> WorkloadSpec:
    kw.setdefault("duration_ns", units.ms(6) if quick else units.ms(15))
    kw.setdefault("trace_packets", 80_000 if quick else 200_000)
    return WorkloadSpec.of(_ablation_workload, **kw)


def _laps(**cfg_kw) -> LAPSScheduler:
    cfg_kw.setdefault("num_services", 1)
    cfg_kw.setdefault("migration_table_entries", 4096)
    cfg_kw.setdefault("afd", AFDConfig(promote_threshold=64))
    return LAPSScheduler(LAPSConfig(**cfg_kw), rng=1)


def run_promote_threshold(
    quick: bool = False,
    thresholds: tuple[int, ...] = (8, 16, 32, 64, 128),
    jobs: int = 1,
    stream: bool = False,
    chunk_size: int | None = None,
) -> ExperimentResult:
    """Sweep the AFD's annex promotion threshold."""
    result = ExperimentResult(
        "Ablation - AFD promote threshold (LAPS, 105% load)",
        columns=["threshold", "dropped", "ooo", "migrations", "promotions"],
        meta={"quick": quick},
    )
    wspec = _ablation_workload_spec(quick, stream=stream, chunk_size=chunk_size)
    specs = [
        RunSpec(
            workload=wspec,
            scheduler_fn=_laps,
            scheduler_kwargs={"afd": AFDConfig(promote_threshold=t)},
            config_fn=single_service_config,
            label={"threshold": t},
        )
        for t in thresholds
    ]
    for run_ in run_batch(specs, jobs=jobs):
        rep = run_.report
        result.add(
            **run_.label, dropped=rep.dropped, ooo=rep.out_of_order,
            migrations=rep.flow_migration_events,
            promotions=int(rep.scheduler_stats["afd_promotions"]),
        )
    return result


def run_queue_depth(
    quick: bool = False,
    depths: tuple[int, ...] = (16, 32, 64, 128),
    jobs: int = 1,
    stream: bool = False,
    chunk_size: int | None = None,
) -> ExperimentResult:
    """Sweep the per-core input queue capacity."""
    result = ExperimentResult(
        "Ablation - input queue depth (LAPS, 105% load)",
        columns=["queue_depth", "dropped", "ooo", "p_drop"],
        meta={"quick": quick},
    )
    wspec = _ablation_workload_spec(quick, stream=stream, chunk_size=chunk_size)
    specs = [
        RunSpec(
            workload=wspec,
            scheduler_fn=_laps,
            scheduler_kwargs={"high_threshold": int(depth * 0.75)},
            config_fn=single_service_config,
            config_kwargs={"queue_capacity": depth},
            label={"queue_depth": depth},
        )
        for depth in depths
    ]
    for run_ in run_batch(specs, jobs=jobs):
        rep = run_.report
        result.add(**run_.label, dropped=rep.dropped,
                   ooo=rep.out_of_order, p_drop=round(rep.drop_fraction, 4))
    return result


def run_migration_table(
    quick: bool = False,
    capacities: tuple[int, ...] = (8, 32, 128, 1024),
    jobs: int = 1,
    stream: bool = False,
    chunk_size: int | None = None,
) -> ExperimentResult:
    """Sweep the migration (pin) table capacity."""
    result = ExperimentResult(
        "Ablation - migration table capacity (LAPS, 105% load)",
        columns=["entries", "dropped", "ooo", "migrations", "evictions"],
        meta={"quick": quick},
    )
    wspec = _ablation_workload_spec(quick, stream=stream, chunk_size=chunk_size)
    specs = [
        RunSpec(
            workload=wspec,
            scheduler_fn=_laps,
            scheduler_kwargs={"migration_table_entries": entries},
            config_fn=single_service_config,
            label={"entries": entries},
        )
        for entries in capacities
    ]
    for run_ in run_batch(specs, jobs=jobs):
        rep = run_.report
        result.add(
            **run_.label, dropped=rep.dropped, ooo=rep.out_of_order,
            migrations=rep.flow_migration_events,
            evictions=int(rep.scheduler_stats["migration_table_evictions"]),
        )
    return result


def run_pin_weight(
    quick: bool = False,
    weights: tuple[int, ...] = (0, 8, 16, 32),
    jobs: int = 1,
    stream: bool = False,
    chunk_size: int | None = None,
) -> ExperimentResult:
    """Sweep the pin-aware placement penalty (0 = the paper's literal
    findMinQ)."""
    result = ExperimentResult(
        "Ablation - pin-aware placement weight (LAPS, 105% load)",
        columns=["pin_weight", "dropped", "ooo", "migrated_flows"],
        meta={"quick": quick},
    )
    wspec = _ablation_workload_spec(quick, stream=stream, chunk_size=chunk_size)
    specs = [
        RunSpec(
            workload=wspec,
            scheduler_fn=_laps,
            scheduler_kwargs={"pin_weight": weight},
            config_fn=single_service_config,
            label={"pin_weight": weight},
        )
        for weight in weights
    ]
    for run_ in run_batch(specs, jobs=jobs):
        rep = run_.report
        result.add(**run_.label, dropped=rep.dropped,
                   ooo=rep.out_of_order, migrated_flows=rep.migrated_flows)
    return result


def run_restoration(
    quick: bool = False,
    buffers: tuple[int | None, ...] = (16, 64, 256, None),
) -> ExperimentResult:
    """Order restoration at egress behind a reorder-happy scheduler."""
    workload, base = _workload(quick)
    config = SimConfig(
        num_cores=base.num_cores, services=base.services,
        collect_latencies=False, record_departures=True,
    )
    rep = simulate(workload, FCFSScheduler(), config)
    result = ExperimentResult(
        "Ablation - order restoration at egress (FCFS upstream)",
        columns=["buffer", "residual_ooo", "max_occupancy"],
        meta={"quick": quick, "upstream_ooo": rep.out_of_order},
    )
    for cap in buffers:
        res = restoration_cost(rep.departures, capacity=cap,
                               drops=rep.drop_records)
        result.add(
            buffer="unbounded" if cap is None else cap,
            residual_ooo=res.residual_out_of_order,
            max_occupancy=res.max_occupancy,
        )
    return result


def run_power_gating(
    quick: bool = False,
    gating_fractions: tuple[float, ...] = (0.0, 0.5, 0.9),
) -> ExperimentResult:
    """Energy under idle-capacity gating at 60% load."""
    workload, config = _workload(quick, utilisation=0.6)
    rep = simulate(workload, _laps(), config)
    model = PowerModel()
    result = ExperimentResult(
        "Ablation - power gating of idle capacity (60% load)",
        columns=["gating_fraction", "energy_j", "savings"],
        meta={"quick": quick},
    )
    for frac in gating_fractions:
        pr = model.evaluate(rep, gating_fraction=frac)
        result.add(gating_fraction=frac, energy_j=round(pr.total_j, 4),
                   savings=round(pr.savings_fraction, 4))
    return result


def run(
    quick: bool = False,
    jobs: int = 1,
    stream: bool = False,
    chunk_size: int | None = None,
) -> list[ExperimentResult]:
    """All ablations.

    ``jobs`` is forwarded to the batched sweeps (0 = auto); the
    restoration and power studies post-process a single run and stay
    inline.  ``stream`` makes the batched sweeps generate their
    workloads chunk by chunk (identical rows, bounded memory).
    """
    return [
        run_promote_threshold(quick=quick, jobs=jobs, stream=stream,
                              chunk_size=chunk_size),
        run_queue_depth(quick=quick, jobs=jobs, stream=stream,
                        chunk_size=chunk_size),
        run_migration_table(quick=quick, jobs=jobs, stream=stream,
                            chunk_size=chunk_size),
        run_pin_weight(quick=quick, jobs=jobs, stream=stream,
                       chunk_size=chunk_size),
        run_restoration(quick=quick),
        run_power_gating(quick=quick),
    ]
