"""Sec. III-G — critical-path timing of the LAPS front end.

Reproduces the argument that ``hash -> map table -> mux`` sustains at
least 200 Mpps with the paper's FPGA CRC16 figure (200 MHz => 5 ns),
and that faster ASIC hash implementations scale the design beyond
100 Gbps line rates.  Table III's core configuration is printed for
reference alongside.
"""

from __future__ import annotations

from repro.core.timing import LAPSTimingModel
from repro.experiments.runner import ExperimentResult
from repro.sim.latency import TABLE_III_CORE

__all__ = ["run_critical_path", "run_table3", "run"]


def run_critical_path(
    hash_speeds_ns: tuple[float, ...] = (5.0, 2.5, 1.0),
    map_entries: tuple[int, ...] = (64, 256, 1024),
) -> ExperimentResult:
    """Critical-path delay and sustainable rate across design points.

    ``hash_ns=5`` is the paper's FPGA datapoint; 2.5/1.0 ns model ASIC
    implementations (the paper's scalability claim).
    """
    result = ExperimentResult(
        "Sec. III-G - LAPS critical path and sustainable rate",
        columns=[
            "hash_ns", "map_entries", "map_table_ns",
            "latency_ns", "max_rate_mpps", "sustains_100gbps",
        ],
        meta={"mux_ns": 0.2},
    )
    for hash_ns in hash_speeds_ns:
        for entries in map_entries:
            model = LAPSTimingModel(hash_ns=hash_ns, map_table_entries=entries)
            b = model.breakdown()
            result.add(
                hash_ns=hash_ns,
                map_entries=entries,
                map_table_ns=round(b["map_table_ns"], 3),
                latency_ns=round(b["critical_path_ns"], 3),
                max_rate_mpps=round(b["max_rate_mpps"], 1),
                # 100 Gbps of mixed-size packets ~= 100 Mpps (Sec. III-G)
                sustains_100gbps=b["max_rate_mpps"] >= 100.0,
            )
    return result


def run_table3() -> ExperimentResult:
    """Table III: the data-plane core configuration (reference)."""
    core = TABLE_III_CORE
    result = ExperimentResult(
        "Table III - data plane core configuration",
        columns=["parameter", "value"],
    )
    result.add(parameter="frequency", value=f"{core.frequency_ghz} GHz")
    result.add(parameter="pipeline", value=f"{core.pipeline_stages} stage, "
               f"{core.issue_width}-issue in-order")
    result.add(parameter="branch predictor", value=core.branch_predictor)
    result.add(parameter="I-cache", value=f"{core.icache_kb} KB, {core.icache_ways} way")
    result.add(parameter="D-cache", value=f"{core.dcache_kb} KB, {core.dcache_ways} way")
    return result


def run(quick: bool = False) -> list[ExperimentResult]:
    """Both timing tables (``quick`` has no effect; they are analytic)."""
    return [run_critical_path(), run_table3()]
