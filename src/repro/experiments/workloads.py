"""Workload sweep — every registry preset under the core schedulers.

Not a figure from the paper: the paper evaluates on two synthetic
header traces, and this harness asks how its conclusions travel to
internet-scale workload shapes — heavy-tailed CDF flow sizes, MMPP
burst trains, diurnal flash crowds and real-capture replay — all drawn
from :mod:`repro.workloads.registry` by name.  One row per
(workload preset x scheduler) at a fixed nominal utilisation, so the
drop/reorder ordering can be compared across workload families.

Runs go through :func:`repro.experiments.batch.run_batch`: the
schedulers of one preset share a single workload build, and ``jobs``
spreads presets over a process pool.  With ``stream=True`` each group
builds the preset as a chunked source instead (bit-identical rows,
bounded memory) — including the pcap replay preset, which is streaming
at heart and only materialized on demand.
"""

from __future__ import annotations

from repro import units
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.experiments.batch import RunSpec, WorkloadSpec, run_batch
from repro.experiments.runner import ExperimentResult
from repro.net.service import Service, ServiceSet, default_services
from repro.schedulers.afs import AFSScheduler
from repro.schedulers.base import Scheduler, make_scheduler
from repro.sim.config import SimConfig
from repro.workloads.registry import (
    WORKLOAD_PRESETS,
    registry_workload,
    workload_preset_names,
)

__all__ = ["SCHEDULERS", "run"]

#: The comparison set: the paper's service-oblivious baseline, the
#: adaptive baseline, and the paper's scheduler.
SCHEDULERS = ("hash-static", "afs", "laps")


def _preset_services(name: str) -> ServiceSet:
    """Replay presets carry a single flat service; everything else uses
    the four-service edge router the registry calibrates against."""
    if WORKLOAD_PRESETS.get(name, None) is not None and \
            WORKLOAD_PRESETS[name].kind == "replay":
        return ServiceSet([Service(0, "ip-forward", units.us(0.5))])
    return default_services()


def _preset_config(name: str, num_cores: int) -> SimConfig:
    """Config factory for :class:`RunSpec` (module-level, picklable)."""
    return SimConfig(
        num_cores=num_cores,
        services=_preset_services(name),
        collect_latencies=True,
    )


def _make_scheduler(name: str, num_services: int, seed: int) -> Scheduler:
    """Scheduler factory for :class:`RunSpec`."""
    if name == "laps":
        return LAPSScheduler(LAPSConfig(num_services=num_services), rng=seed)
    if name == "afs":
        return AFSScheduler(cooldown_ns=units.us(100))
    return make_scheduler(name)


def run(
    quick: bool = False,
    presets: tuple[str, ...] | None = None,
    seed: int = 0,
    utilisation: float = 0.9,
    duration_ns: int | None = None,
    trace_packets: int | None = None,
    num_cores: int = 16,
    jobs: int = 1,
    stream: bool = False,
    chunk_size: int | None = None,
) -> ExperimentResult:
    """All registry presets x :data:`SCHEDULERS`, one row each."""
    names = presets or tuple(workload_preset_names())
    if duration_ns is None:
        duration_ns = units.ms(4) if quick else units.ms(12)
    if trace_packets is None:
        trace_packets = 6_000 if quick else 24_000
    result = ExperimentResult(
        "Workload sweep - registry presets under the core schedulers",
        columns=[
            "workload", "scheduler", "offered",
            "dropped", "drop_frac",
            "ooo", "ooo_frac",
            "cold_cache_frac", "flow_migrations", "p99_us",
        ],
        meta={
            "quick": quick, "seed": seed, "utilisation": utilisation,
            "duration_ms": duration_ns / units.MS,
            "trace_packets": trace_packets, "stream": stream,
        },
    )
    specs = []
    for wname in names:
        wspec = WorkloadSpec.of(
            registry_workload,
            name=wname,
            num_cores=num_cores,
            utilisation=utilisation,
            duration_ns=duration_ns,
            trace_packets=trace_packets,
            seed=seed,
            stream=stream,
            chunk_size=chunk_size,
        )
        num_services = len(_preset_services(wname))
        for sched_name in SCHEDULERS:
            specs.append(RunSpec(
                workload=wspec,
                scheduler_fn=_make_scheduler,
                scheduler_kwargs={
                    "name": sched_name,
                    "num_services": num_services,
                    "seed": seed + 1,
                },
                config_fn=_preset_config,
                config_kwargs={"name": wname, "num_cores": num_cores},
                label={"workload": wname, "scheduler": sched_name},
            ))
    for run_ in run_batch(specs, jobs=jobs):
        rep = run_.report
        result.add(
            **run_.label,
            offered=rep.generated,
            dropped=rep.dropped,
            drop_frac=round(rep.drop_fraction, 4),
            ooo=rep.out_of_order,
            ooo_frac=round(rep.ooo_fraction, 5),
            cold_cache_frac=round(rep.cold_cache_fraction, 4),
            flow_migrations=rep.flow_migration_events,
            p99_us=round(rep.latency_ns["p99"] / 1e3, 1),
        )
    return result


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.workloads", description=__doc__,
    )
    parser.add_argument("presets", nargs="*", default=None,
                        help="preset names (default: all)")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--utilisation", type=float, default=0.9)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--stream", action="store_true")
    args = parser.parse_args(argv)
    result = run(
        quick=args.quick,
        presets=tuple(args.presets) or None,
        seed=args.seed,
        utilisation=args.utilisation,
        jobs=args.jobs,
        stream=args.stream,
    )
    print(result.format())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
