"""Shared experiment plumbing: result container, workload assembly."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro import units
from repro.experiments.params import Scenario, scaled_params
from repro.net.service import ServiceSet, default_services
from repro.sim.config import SimConfig
from repro.sim.source import DEFAULT_CHUNK_SIZE, PacketSource, StreamingSource
from repro.sim.workload import Workload, build_workload
from repro.trace.models import TRIMODAL_INTERNET_SIZES
from repro.util.tables import format_table
from repro.workloads.traces import resolve_trace

__all__ = ["ExperimentResult", "scenario_workload", "scenario_config"]


@dataclass
class ExperimentResult:
    """A table of results with provenance.

    ``rows`` are dicts sharing the key set of ``columns``; ``meta``
    records the knobs that produced them (sizes, seeds, scaling), so
    EXPERIMENTS.md entries are reproducible from the printed output.
    """

    experiment: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def add(self, **row) -> None:
        missing = set(self.columns) - row.keys()
        if missing:
            raise ValueError(f"row missing columns {sorted(missing)}")
        self.rows.append({c: row[c] for c in self.columns})

    def format(self, float_fmt: str = ".4g") -> str:
        title = f"== {self.experiment} =="
        if self.meta:
            meta = ", ".join(f"{k}={v}" for k, v in self.meta.items())
            title += f"\n({meta})"
        return format_table(
            self.columns,
            [[row[c] for c in self.columns] for row in self.rows],
            float_fmt=float_fmt,
            title=title,
        )

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise (rows + meta) to JSON; optionally write to *path*."""
        payload = json.dumps(
            {
                "experiment": self.experiment,
                "meta": self.meta,
                "columns": self.columns,
                "rows": self.rows,
            },
            indent=2,
            default=str,
        )
        if path is not None:
            Path(path).write_text(payload)
        return payload

    @classmethod
    def from_json(cls, source: str | Path) -> "ExperimentResult":
        """Load a result dumped by :meth:`to_json` (path or JSON text).

        Round-trips everything JSON preserves; values that
        ``to_json`` stringified via ``default=str`` (e.g. Paths in
        ``meta``) come back as strings.
        """
        if isinstance(source, Path) or not source.lstrip().startswith("{"):
            source = Path(source).read_text()
        data = json.loads(source)
        try:
            result = cls(
                experiment=data["experiment"],
                columns=list(data["columns"]),
                meta=dict(data.get("meta", {})),
            )
            rows = data["rows"]
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"not an ExperimentResult dump: missing {exc}"
            ) from exc
        for row in rows:
            result.add(**row)
        return result

    def to_run_dir(self, exp_dir: str | Path, manifest=None) -> dict:
        """Dump this result (plus provenance) as a telemetry run dir.

        Writes ``result.json`` and ``rows.ndjson`` (and the manifest,
        when given) under *exp_dir* via :mod:`repro.obs.export`; the
        default manifest records the experiment name and ``meta``.
        """
        from repro.obs import RunManifest, write_experiment

        if manifest is None:
            manifest = RunManifest.capture(experiment=self.experiment, **self.meta)
        return write_experiment(exp_dir, self, manifest=manifest)


def scenario_config(
    num_cores: int = 16,
    services: ServiceSet | None = None,
    collect_latencies: bool = False,
) -> SimConfig:
    """The paper's evaluation platform (16 cores, 32-deep queues)."""
    return SimConfig(
        num_cores=num_cores,
        services=services or default_services(),
        collect_latencies=collect_latencies,
    )


def scenario_workload(
    scenario: Scenario,
    *,
    num_cores: int = 16,
    duration_ns: int = units.ms(60),
    trace_packets: int = 100_000,
    seed: int = 0,
    time_compression: float = 1000.0,
    services: ServiceSet | None = None,
    stream: bool = False,
    chunk_size: int | None = None,
) -> Workload | PacketSource:
    """Build the Table VI scenario's workload at the compressed scale.

    The paper's 60 s runs become ``duration_ns`` (default 60 ms: the
    default ``time_compression`` of 1000 maps seconds to milliseconds).
    With ``stream=True`` the return value is a lazily-generated
    :class:`~repro.sim.source.StreamingSource` (``chunk_size`` packets
    resident at a time) producing the bit-identical packet sequence.
    """
    services = services or default_services()
    traces = [resolve_trace(n, num_packets=trace_packets) for n in scenario.trace_names]
    mean_size = TRIMODAL_INTERNET_SIZES.mean
    per_service = num_cores // len(services)
    capacities = [
        per_service * services[i].capacity_pps(mean_size)
        for i in range(len(services))
    ]
    params = scaled_params(
        scenario.params,
        capacities_pps=capacities,
        utilisation=scenario.utilisation,
        duration_s=duration_ns / units.SEC,
        time_compression=time_compression,
    )
    if stream:
        return StreamingSource(
            traces, params, duration_ns, seed=seed,
            chunk_size=chunk_size or DEFAULT_CHUNK_SIZE,
        )
    return build_workload(traces, params, duration_ns=duration_ns, seed=seed)
