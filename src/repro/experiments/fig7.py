"""Fig. 7 — LAPS vs FCFS vs AFS over the Table VI traffic scenarios.

Three panels from one set of runs:

* (a) packets dropped — LAPS lowest everywhere; FCFS/AFS drop even in
  the under-load scenarios T1-T4 because ~half their packets pay
  cold-cache penalties;
* (b) fraction of packets paying the cold-cache penalty — high for the
  service-oblivious schemes, ~0 for LAPS under-load and small under
  overload (cores get re-purposed between services);
* (c) out-of-order departures — FCFS worst, AFS considerable, LAPS
  minimal.

The headline numbers of the abstract (≥60% fewer drops, ≥80% fewer
OOO than the best previous scheme) are computed from the same rows.
"""

from __future__ import annotations

from repro import units
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.experiments.batch import RunSpec, WorkloadSpec, run_batch
from repro.experiments.params import SCENARIOS, Scenario
from repro.experiments.runner import (
    ExperimentResult,
    scenario_config,
    scenario_workload,
)
from repro.schedulers.afs import AFSScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.metrics import SimReport
from repro.sim.system import simulate

__all__ = ["make_schedulers", "run_scenario", "run", "headline"]


def make_schedulers(num_services: int = 4, seed: int = 1) -> dict[str, Scheduler]:
    """Fresh instances of the three Fig. 7 schedulers."""
    return {
        "fcfs": FCFSScheduler(),
        "afs": AFSScheduler(cooldown_ns=units.us(100)),
        "laps": LAPSScheduler(LAPSConfig(num_services=num_services), rng=seed),
    }


def run_scenario(
    scenario: Scenario,
    *,
    quick: bool = False,
    seed: int = 0,
    duration_ns: int | None = None,
    trace_packets: int | None = None,
) -> dict[str, SimReport]:
    """One Table VI scenario under all three schedulers."""
    if duration_ns is None:
        duration_ns = units.ms(10) if quick else units.ms(60)
    if trace_packets is None:
        trace_packets = 30_000 if quick else 100_000
    workload = scenario_workload(
        scenario,
        duration_ns=duration_ns,
        trace_packets=trace_packets,
        seed=seed,
    )
    reports: dict[str, SimReport] = {}
    for name, sched in make_schedulers(seed=seed + 1).items():
        reports[name] = simulate(workload, sched, scenario_config())
    return reports


def _scenario_workload(
    scenario: str, duration_ns: int, trace_packets: int, seed: int,
    stream: bool = False, chunk_size: int | None = None,
):
    """Workload factory for :class:`WorkloadSpec` (scenario by name —
    spec kwargs must be hashable)."""
    return scenario_workload(
        SCENARIOS[scenario],
        duration_ns=duration_ns,
        trace_packets=trace_packets,
        seed=seed,
        stream=stream,
        chunk_size=chunk_size,
    )


def _make_scheduler(name: str, seed: int) -> Scheduler:
    """Scheduler factory for :class:`RunSpec`."""
    return make_schedulers(seed=seed)[name]


def run(
    quick: bool = False,
    scenarios: tuple[str, ...] | None = None,
    seed: int = 0,
    duration_ns: int | None = None,
    trace_packets: int | None = None,
    jobs: int = 1,
    stream: bool = False,
    chunk_size: int | None = None,
) -> ExperimentResult:
    """Fig. 7(a-c): all scenarios x all schedulers, one row each.

    Runs go through :func:`repro.experiments.batch.run_batch`: the
    three schedulers of a scenario share one workload build, and
    ``jobs`` spreads scenarios over a process pool (0 = auto).  With
    ``stream=True`` each group builds a chunked
    :class:`~repro.sim.source.StreamingSource` instead of a
    materialized workload (identical rows, bounded memory) — the
    kernel clones the source per run, so one build per group still
    holds.
    """
    names = scenarios or tuple(SCENARIOS)
    if duration_ns is None:
        duration_ns = units.ms(10) if quick else units.ms(60)
    if trace_packets is None:
        trace_packets = 30_000 if quick else 100_000
    result = ExperimentResult(
        "Fig. 7 - LAPS vs FCFS vs AFS over scenarios T1-T8",
        columns=[
            "scenario", "scheduler", "offered",
            "dropped", "drop_frac",          # panel (a)
            "cold_cache_frac",               # panel (b)
            "ooo", "ooo_frac",               # panel (c)
            "flow_migrations",
        ],
        meta={"quick": quick, "seed": seed},
    )
    specs = []
    for sname in names:
        wspec = WorkloadSpec.of(
            _scenario_workload,
            scenario=sname,
            duration_ns=duration_ns,
            trace_packets=trace_packets,
            seed=seed,
            stream=stream,
            chunk_size=chunk_size,
        )
        for sched_name in ("fcfs", "afs", "laps"):
            specs.append(RunSpec(
                workload=wspec,
                scheduler_fn=_make_scheduler,
                scheduler_kwargs={"name": sched_name, "seed": seed + 1},
                config_fn=scenario_config,
                label={"scenario": sname, "scheduler": sched_name},
            ))
    for run_ in run_batch(specs, jobs=jobs):
        rep = run_.report
        result.add(
            **run_.label,
            offered=rep.generated,
            dropped=rep.dropped,
            drop_frac=round(rep.drop_fraction, 4),
            cold_cache_frac=round(rep.cold_cache_fraction, 4),
            ooo=rep.out_of_order,
            ooo_frac=round(rep.ooo_fraction, 5),
            flow_migrations=rep.flow_migration_events,
        )
    return result


def headline(result: ExperimentResult) -> dict[str, float]:
    """The abstract's claims from the Fig. 7 rows.

    Returns the mean relative improvement of LAPS over the *better* of
    FCFS/AFS per scenario: ``drop_improvement`` (paper: 60%) and
    ``ooo_improvement`` (paper: 80%).  Scenarios where the baselines
    never dropped/reordered are skipped for that metric.
    """
    by_scenario: dict[str, dict[str, dict]] = {}
    for row in result.rows:
        by_scenario.setdefault(row["scenario"], {})[row["scheduler"]] = row
    drop_gains: list[float] = []
    ooo_gains: list[float] = []
    for rows in by_scenario.values():
        if not {"laps", "fcfs", "afs"} <= rows.keys():
            continue
        best_drop = min(rows["fcfs"]["dropped"], rows["afs"]["dropped"])
        if best_drop > 0:
            drop_gains.append(1.0 - rows["laps"]["dropped"] / best_drop)
        best_ooo = min(rows["fcfs"]["ooo"], rows["afs"]["ooo"])
        if best_ooo > 0:
            ooo_gains.append(1.0 - rows["laps"]["ooo"] / best_ooo)
    return {
        "drop_improvement": sum(drop_gains) / len(drop_gains) if drop_gains else 0.0,
        "ooo_improvement": sum(ooo_gains) / len(ooo_gains) if ooo_gains else 0.0,
        "scenarios": float(len(by_scenario)),
    }
