"""Experiment harness: one module per table/figure of the paper.

========  ====================================================
module    reproduces
========  ====================================================
fig2      Fig. 2 — flow rank-size distribution of the traces
fig7      Fig. 7(a-c) — drops / cold-cache / OOO for FCFS, AFS
          and LAPS over scenarios T1-T8 (Tables IV-VI)
fig8      Fig. 8(a-c) — AFD accuracy vs annex size, check
          interval and sampling probability
fig9      Fig. 9(a-c) — benefit of migrating only top-k flows,
          relative to AFS
timing    Sec. III-G — scheduler critical-path timing
========  ====================================================

Every ``run_*`` function takes a ``quick`` flag (small sizes for CI) and
returns a result object with ``.rows`` (list of dicts) and
``.format()`` (the printable table).  ``python -m repro.experiments``
drives them from the command line.
"""

from repro.experiments.params import (
    PARAM_SETS,
    SCENARIOS,
    TRACE_GROUPS,
    Scenario,
)
from repro.experiments.runner import ExperimentResult
from repro.experiments import fig2, fig7, fig8, fig9, timing

__all__ = [
    "PARAM_SETS",
    "SCENARIOS",
    "TRACE_GROUPS",
    "Scenario",
    "ExperimentResult",
    "fig2",
    "fig7",
    "fig8",
    "fig9",
    "timing",
]
