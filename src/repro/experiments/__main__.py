"""``python -m repro.experiments`` — see :mod:`repro.experiments.cli`."""

from repro.experiments.cli import main

raise SystemExit(main())
