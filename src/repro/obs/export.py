"""Dump/load a run's telemetry as plain files.

Layout of a run directory (``write_run`` → ``load_run``)::

    out/laps/
        manifest.json    RunManifest (provenance)
        report.json      the frozen SimReport as a dict
        series.ndjson    one JSON object per probe sample
        series.csv       optional flat CSV of the same rows

NDJSON is the primary format: append-friendly, greppable, loads
row-by-row without a schema.  The CSV mirror flattens list-valued
columns (``occupancy`` → ``occupancy_0..N-1``) for spreadsheet use.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "MANIFEST_FILE",
    "REPORT_FILE",
    "SERIES_FILE",
    "RunRecord",
    "write_ndjson",
    "read_ndjson",
    "write_csv",
    "write_run",
    "load_run",
    "write_experiment",
]

MANIFEST_FILE = "manifest.json"
REPORT_FILE = "report.json"
SERIES_FILE = "series.ndjson"
SERIES_CSV_FILE = "series.csv"


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays so json.dumps succeeds."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def write_ndjson(path: str | Path, records: list[dict]) -> Path:
    """One compact JSON object per line."""
    path = Path(path)
    with path.open("w") as fh:
        for rec in records:
            fh.write(json.dumps(_jsonable(rec), separators=(",", ":")))
            fh.write("\n")
    return path


def read_ndjson(path: str | Path) -> list[dict]:
    records = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _flat_columns(records: list[dict]) -> list[str]:
    """Union of flattened column names, in first-seen order."""
    cols: dict[str, None] = {}
    for rec in records:
        for key, value in rec.items():
            if isinstance(value, (list, tuple)):
                for i in range(len(value)):
                    cols.setdefault(f"{key}_{i}")
            else:
                cols.setdefault(key)
    return list(cols)


def write_csv(path: str | Path, records: list[dict]) -> Path:
    """Flat CSV of *records*; list columns become ``name_i``."""
    path = Path(path)
    columns = _flat_columns(records)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, restval="")
        writer.writeheader()
        for rec in records:
            flat: dict[str, Any] = {}
            for key, value in rec.items():
                if isinstance(value, (list, tuple)):
                    for i, v in enumerate(value):
                        flat[f"{key}_{i}"] = _jsonable(v)
                else:
                    flat[key] = _jsonable(value)
            writer.writerow(flat)
    return path


def write_run(
    run_dir: str | Path,
    *,
    report=None,
    manifest=None,
    probe=None,
    csv_mirror: bool = False,
) -> dict[str, Path]:
    """Dump a run (any subset of report/manifest/probe) into *run_dir*.

    Returns the paths written, keyed ``manifest``/``report``/``series``
    (and ``csv`` with *csv_mirror*).
    """
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    if manifest is not None:
        written["manifest"] = manifest.save(run_dir / MANIFEST_FILE)
    if report is not None:
        payload = _jsonable(dataclasses.asdict(report))
        path = run_dir / REPORT_FILE
        path.write_text(json.dumps(payload, indent=2) + "\n")
        written["report"] = path
    if probe is not None:
        records = probe.to_records()
        written["series"] = write_ndjson(run_dir / SERIES_FILE, records)
        if csv_mirror:
            written["csv"] = write_csv(run_dir / SERIES_CSV_FILE, records)
    return written


@dataclasses.dataclass
class RunRecord:
    """A run loaded back from disk (see :func:`load_run`)."""

    manifest: dict | None
    report: dict | None
    records: list[dict]

    @property
    def num_samples(self) -> int:
        return len(self.records)

    def times_ns(self) -> np.ndarray:
        return self.series("t_ns")

    def series(self, column: str) -> np.ndarray:
        """One column over time; missing scalar values become NaN."""
        values = [r.get(column) for r in self.records]
        if any(isinstance(v, list) for v in values):
            return np.asarray(values)
        return np.asarray(
            [np.nan if v is None else v for v in values], dtype=np.float64
        )

    def columns(self) -> list[str]:
        cols: dict[str, None] = {}
        for rec in self.records:
            for key in rec:
                cols.setdefault(key)
        return list(cols)


def load_run(run_dir: str | Path) -> RunRecord:
    """Load whatever :func:`write_run` left in *run_dir*."""
    run_dir = Path(run_dir)
    manifest = None
    mpath = run_dir / MANIFEST_FILE
    if mpath.exists():
        manifest = json.loads(mpath.read_text())
    report = None
    rpath = run_dir / REPORT_FILE
    if rpath.exists():
        report = json.loads(rpath.read_text())
    spath = run_dir / SERIES_FILE
    records = read_ndjson(spath) if spath.exists() else []
    return RunRecord(manifest=manifest, report=report, records=records)


def write_experiment(exp_dir: str | Path, result, manifest=None) -> dict[str, Path]:
    """Dump an :class:`~repro.experiments.runner.ExperimentResult`.

    Writes ``result.json`` (columns + rows + meta, the format
    ``ExperimentResult.to_json`` already emits), the rows as
    ``rows.ndjson`` for uniform loading, and optionally a manifest.
    """
    exp_dir = Path(exp_dir)
    exp_dir.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    path = exp_dir / "result.json"
    result.to_json(path)
    written["result"] = path
    written["rows"] = write_ndjson(exp_dir / "rows.ndjson", result.rows)
    if manifest is not None:
        written["manifest"] = manifest.save(exp_dir / MANIFEST_FILE)
    return written
