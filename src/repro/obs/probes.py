"""Composable run-telemetry probes.

Generalises :class:`repro.sim.probes.QueueProbe`: a
:class:`TelemetryProbe` owns a set of :class:`Sampler` objects and, on
a fixed period, asks each for a row fragment; fragments merge into one
record per sample time.  The kernel drives the probe through the same
``maybe_sample(t_ns, queues, metrics)`` hook the legacy probe uses —
:meth:`~repro.sim.kernel.SimKernel.attach_probe` registers it as a
``sample`` subscriber on the hook bus and calls
:meth:`TelemetryProbe.bind` with the running
:class:`~repro.sim.kernel.SimKernel` (which exposes the sampler view
protocol: ``queues`` / ``metrics`` / ``scheduler`` / ``reorder`` /
``injector``), so samplers can see the scheduler and the reorder
detector, not just the queues.

Period semantics (the part the legacy probe got wrong): at most **one**
sample is recorded per ``maybe_sample`` call, timestamped with the
*actual* observation time ``t_ns`` — never a backfill of past period
boundaries with present state.  When simulated time jumps over several
boundaries (sparse arrivals), those boundaries are simply absent from
the series; consumers that need a uniform grid can resample offline
with explicit carry-forward, which is then *their* stated semantics
rather than silent misattribution.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "Sampler",
    "QueueOccupancySampler",
    "ProgressSampler",
    "SchedulerSampler",
    "ReorderSampler",
    "FaultStateSampler",
    "TelemetryProbe",
    "default_samplers",
]


class Sampler:
    """One source of telemetry columns.

    ``sample`` receives the observation time and a *view* exposing (a
    subset of) ``queues``, ``metrics``, ``scheduler`` and ``reorder``
    attributes — the running simulator itself satisfies this.  A
    sampler whose inputs are missing from the view returns ``{}``.
    """

    name = "?"

    def sample(self, t_ns: int, view) -> dict:  # pragma: no cover - interface
        raise NotImplementedError


class QueueOccupancySampler(Sampler):
    """Per-core input-queue depths (the balancer's state)."""

    name = "queues"

    def sample(self, t_ns: int, view) -> dict:
        queues = getattr(view, "queues", None)
        if queues is None:
            return {}
        occ = queues.occupancies()
        return {
            "occupancy": list(occ),
            "occ_max": max(occ),
            "occ_min": min(occ),
        }


class ProgressSampler(Sampler):
    """Cumulative progress counters (generated/dropped/departed)."""

    name = "progress"

    def __init__(self, per_service: bool = False) -> None:
        self.per_service = per_service

    def sample(self, t_ns: int, view) -> dict:
        metrics = getattr(view, "metrics", None)
        if metrics is None:
            return {}
        row = {
            "generated": metrics.generated,
            "dropped": metrics.dropped,
            "departed": metrics.departed,
        }
        if self.per_service:
            row["dropped_per_service"] = list(metrics.dropped_per_service)
            row["generated_per_service"] = list(metrics.generated_per_service)
        return row


class SchedulerSampler(Sampler):
    """The scheduler's own counters (``migrations_installed``,
    ``core_requests``, ...) prefixed with ``sched_``."""

    name = "scheduler"

    def sample(self, t_ns: int, view) -> dict:
        sched = getattr(view, "scheduler", None)
        if sched is None:
            return {}
        return {f"sched_{k}": v for k, v in sched.stats().items()}


class ReorderSampler(Sampler):
    """Egress ordering state: OOO count and in-flight sequence gaps."""

    name = "reorder"

    def sample(self, t_ns: int, view) -> dict:
        reorder = getattr(view, "reorder", None)
        if reorder is None:
            return {}
        return {
            "out_of_order": reorder.out_of_order,
            "in_flight_gaps": reorder.in_flight_gaps,
        }


class FaultStateSampler(Sampler):
    """Live fault state when a :class:`repro.faults.FaultInjector` is
    attached (``fault_`` -prefixed injector counters); inert otherwise."""

    name = "faults"

    def sample(self, t_ns: int, view) -> dict:
        injector = getattr(view, "injector", None)
        if injector is None:
            return {}
        return {f"fault_{k}": v for k, v in injector.stats().items()}


def default_samplers() -> list[Sampler]:
    """The standard probe battery (everything Figs. 7-9 could want)."""
    return [
        QueueOccupancySampler(),
        ProgressSampler(),
        SchedulerSampler(),
        ReorderSampler(),
        FaultStateSampler(),
    ]


class _View:
    """Minimal view when the probe was never bound to a simulator."""

    __slots__ = ("queues", "metrics")

    def __init__(self, queues, metrics) -> None:
        self.queues = queues
        self.metrics = metrics


class TelemetryProbe:
    """Periodic multi-sampler probe producing one record per sample.

    Drop-in for the ``probe=`` argument of
    :func:`repro.sim.system.simulate`; records land in ``records`` as
    plain dicts (``t_ns`` plus each sampler's columns), ready for
    :func:`repro.obs.export.write_run`.
    """

    def __init__(self, period_ns: int, samplers: list[Sampler] | None = None) -> None:
        if period_ns <= 0:
            raise ConfigError(f"probe period must be positive, got {period_ns}")
        self.period_ns = period_ns
        self.samplers = list(samplers) if samplers is not None else default_samplers()
        self.records: list[dict] = []
        self._next_ns = 0
        self._view = None

    # ------------------------------------------------------------------
    def bind(self, view) -> None:
        """Attach to the run (a :class:`~repro.sim.kernel.SimKernel` or
        anything else exposing the sampler view protocol)."""
        self._view = view

    def maybe_sample(self, t_ns: int, queues, metrics) -> None:
        """Record at most one sample when *t_ns* crossed a boundary."""
        if t_ns < self._next_ns:
            return
        view = self._view
        if view is None:
            view = _View(queues, metrics)
        row = {"t_ns": t_ns}
        for s in self.samplers:
            row.update(s.sample(t_ns, view))
        self.records.append(row)
        # next sample at the first grid boundary strictly after t_ns
        self._next_ns = (t_ns // self.period_ns + 1) * self.period_ns

    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return len(self.records)

    @property
    def times_ns(self) -> list[int]:
        return [r["t_ns"] for r in self.records]

    def to_records(self) -> list[dict]:
        """The series as a list of plain dicts (exporter input)."""
        return list(self.records)

    def column(self, name: str) -> np.ndarray:
        """One column across all samples as a numpy array.

        Missing values (sampler inactive for some rows) become NaN for
        scalar columns; list-valued columns must be present in every
        row.
        """
        values = [r.get(name) for r in self.records]
        if any(isinstance(v, list) for v in values):
            return np.asarray(values)
        return np.asarray(
            [np.nan if v is None else v for v in values], dtype=np.float64
        )

    def occupancy_matrix(self) -> np.ndarray:
        """(samples, cores) int array of queue depths."""
        occ = [r["occupancy"] for r in self.records if "occupancy" in r]
        if not occ:
            return np.empty((0, 0), dtype=np.int64)
        return np.asarray(occ, dtype=np.int64)
