"""Run manifests: the provenance record attached to every dumped run.

A manifest answers "what produced this series?" months later: the
package version, the seed, a JSON snapshot of the :class:`SimConfig`,
when and where the run happened.  It is deliberately a plain dict of
JSON scalars/lists once serialised — no pickle, no repro imports needed
to read one back.
"""

from __future__ import annotations

import json
import platform
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["RunManifest", "config_snapshot"]


def config_snapshot(config) -> dict[str, Any]:
    """Flatten a :class:`~repro.sim.config.SimConfig` to JSON types."""
    return {
        "num_cores": config.num_cores,
        "queue_capacity": config.queue_capacity,
        "fm_penalty_ns": config.fm_penalty_ns,
        "cc_penalty_ns": config.cc_penalty_ns,
        "drain_ns": config.drain_ns,
        "collect_latencies": config.collect_latencies,
        "record_departures": config.record_departures,
        "services": [
            {
                "service_id": s.service_id,
                "name": s.name,
                "base_ns": s.base_ns,
                "per_64b_ns": s.per_64b_ns,
            }
            for s in config.services
        ],
    }


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one simulation run or experiment."""

    created_utc: str
    host: str
    platform: str
    python_version: str
    package_version: str
    seed: int | None = None
    scheduler: str | None = None
    #: the event engine that actually ran ("heap", "calendar",
    #: "calendar-numba"); None for manifests predating the field
    engine: str | None = None
    #: shard topology + protocol trace of a sharded run (the
    #: ``manifest_dict()`` of a :class:`~repro.sim.sharding.ShardedRun`);
    #: None for single-process runs and manifests predating the field
    sharding: dict | None = None
    config: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    @classmethod
    def capture(
        cls,
        *,
        config=None,
        seed: int | None = None,
        scheduler: str | None = None,
        engine: str | None = None,
        sharding: dict | None = None,
        **extra,
    ) -> "RunManifest":
        """Snapshot the current environment plus the run's knobs.

        *config* may be a :class:`SimConfig` (snapshotted via
        :func:`config_snapshot`) or an already-flat dict; remaining
        keyword arguments land in ``extra`` verbatim (trace name,
        utilisation, CLI flags, ...).
        """
        from repro import __version__

        if config is not None and not isinstance(config, dict):
            config = config_snapshot(config)
        return cls(
            created_utc=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            host=socket.gethostname(),
            platform=platform.platform(),
            python_version=platform.python_version(),
            package_version=__version__,
            seed=seed,
            scheduler=scheduler,
            engine=engine,
            sharding=sharding,
            config=config or {},
            extra=extra,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "created_utc": self.created_utc,
            "host": self.host,
            "platform": self.platform,
            "python_version": self.python_version,
            "package_version": self.package_version,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "engine": self.engine,
            "sharding": dict(self.sharding) if self.sharding else None,
            "config": dict(self.config),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RunManifest":
        known = {f: d.get(f) for f in (
            "created_utc", "host", "platform", "python_version",
            "package_version", "seed", "scheduler", "engine", "sharding",
        )}
        return cls(**known, config=d.get("config") or {}, extra=d.get("extra") or {})

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True, default=str)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text()))
