"""Wall-clock profiling hooks around the simulator's hot loop.

:func:`profile_run` wraps one run — a :class:`NetworkProcessorSim` or
a bare :class:`~repro.sim.kernel.SimKernel`, anything with
``scheduler`` / ``run()`` / ``events_popped`` — with ``perf_counter``
timing: total wall time, simulated packets per wall-second, completion
events popped, and the share of wall time spent inside the scheduler's
``select_core`` (measured by shadowing the bound method with a timing
wrapper for the duration of the run — zero cost when profiling is off,
since the kernel re-reads the attribute per arrival and is otherwise
untouched).

The numbers feed ``benchmarks/bench_kernels.py`` and ad-hoc "where did
the time go" questions; for statement-level attribution use cProfile as
described in ``docs/simulator.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["HotLoopProfile", "profile_run"]


@dataclass(frozen=True)
class HotLoopProfile:
    """Wall-clock summary of one simulation run."""

    wall_s: float
    packets: int
    departed: int
    events_popped: int
    sched_calls: int
    sched_s: float

    @property
    def packets_per_sec(self) -> float:
        """Simulated packets retired per wall-clock second."""
        return self.packets / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def sched_share(self) -> float:
        """Fraction of wall time spent in ``select_core``."""
        return self.sched_s / self.wall_s if self.wall_s > 0 else 0.0

    def summary(self) -> str:
        return (
            f"{self.packets} pkts in {self.wall_s * 1e3:.1f} ms wall "
            f"({self.packets_per_sec / 1e3:.0f} k pkts/s), "
            f"{self.events_popped} events, "
            f"scheduler {self.sched_share:.0%} of wall time"
        )


def profile_run(sim) -> tuple:
    """Run *sim* (simulator shell or kernel) once, timing the hot loop;
    returns ``(report, profile)``.

    The scheduler's ``select_core`` is temporarily shadowed with a
    timing wrapper (an instance attribute, removed afterwards), so the
    per-call overhead exists only while profiling.
    """
    sched = sim.scheduler
    select = sched.select_core
    counters = [0, 0]  # calls, ns
    perf_ns = time.perf_counter_ns

    def timed_select(flow_id, service_id, flow_hash, t_ns):
        t0 = perf_ns()
        core = select(flow_id, service_id, flow_hash, t_ns)
        counters[0] += 1
        counters[1] += perf_ns() - t0
        return core

    sched.select_core = timed_select
    try:
        t0 = time.perf_counter()
        report = sim.run()
        wall_s = time.perf_counter() - t0
    finally:
        del sched.select_core  # un-shadow the bound method
    profile = HotLoopProfile(
        wall_s=wall_s,
        packets=report.generated,
        departed=report.departed,
        events_popped=sim.events_popped,
        sched_calls=counters[0],
        sched_s=counters[1] / 1e9,
    )
    return report, profile
