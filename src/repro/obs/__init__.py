"""Run telemetry: manifests, composable probes, exporters, profiling.

Observability layer for simulation runs.  A run produces three kinds of
evidence, all disabled by default so the hot loop stays tight:

* a :class:`RunManifest` — provenance (seed, config snapshot, package
  version, wall clock, host) that makes any dumped run reproducible;
* time series from a :class:`TelemetryProbe` — composable samplers
  (queue occupancy, progress counters, scheduler stats, reorder gaps)
  recorded on a fixed period, *including* the drain phase;
* a :class:`HotLoopProfile` — wall-clock packets/sec, events popped and
  scheduler time share measured around the event loop.

Dumps are plain files (``manifest.json``, ``report.json``,
``series.ndjson``) written by :func:`write_run` and read back by
:func:`load_run`, so any run or experiment can be re-analysed offline.
"""

from repro.obs.export import (
    RunRecord,
    load_run,
    read_ndjson,
    write_csv,
    write_experiment,
    write_ndjson,
    write_run,
)
from repro.obs.manifest import RunManifest, config_snapshot
from repro.obs.probes import (
    FaultStateSampler,
    ProgressSampler,
    QueueOccupancySampler,
    ReorderSampler,
    Sampler,
    SchedulerSampler,
    TelemetryProbe,
    default_samplers,
)
from repro.obs.profile import HotLoopProfile, profile_run

__all__ = [
    "RunManifest",
    "config_snapshot",
    "Sampler",
    "QueueOccupancySampler",
    "ProgressSampler",
    "SchedulerSampler",
    "ReorderSampler",
    "FaultStateSampler",
    "TelemetryProbe",
    "default_samplers",
    "RunRecord",
    "write_run",
    "load_run",
    "write_experiment",
    "write_ndjson",
    "read_ndjson",
    "write_csv",
    "HotLoopProfile",
    "profile_run",
]
