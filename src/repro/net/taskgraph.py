"""The edge-router task graph of Fig. 5 and its reduction to services.

The paper models an edge router as a task graph (based on Huang & Wolf's
methodology) whose four source->sink paths become the four services:

* Path 1 (vpn-out):      classify -> route -> encrypt -> frame -> tx
* Path 2 (ip-forward):   classify -> route -> frame -> tx
* Path 3 (malware-scan): classify -> scan -> route -> frame -> tx
* Path 4 (vpn-in-scan):  classify -> decrypt -> scan -> route -> frame -> tx

Because modern network processors pin all tasks of a path to one core
(to avoid inter-core hand-offs), the scheduler treats each *path* as an
indivisible service; this module builds the graph explicitly (on
networkx) so path costs are derived from per-task costs rather than
hard-coded, and so users can model their own routers.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro import units
from repro.net.service import Service, ServiceSet

__all__ = [
    "Task",
    "TaskGraph",
    "EDGE_ROUTER_TASKS",
    "build_edge_router_graph",
    "services_from_graph",
]


@dataclass(frozen=True, slots=True)
class Task:
    """One processing stage of the router pipeline.

    Costs follow the same affine model as services: a fixed nanosecond
    cost plus a per-64-byte cost for payload-touching tasks.
    """

    name: str
    base_ns: int
    per_64b_ns: int = 0

    def __post_init__(self) -> None:
        if self.base_ns < 0 or self.per_64b_ns < 0:
            raise ValueError(f"task costs must be >= 0: {self}")


#: Per-task costs chosen so the four Fig. 5 paths sum exactly to the
#: paper's measured per-service models (Sec. IV-C).  ``classify``,
#: ``frame`` and ``tx`` are folded into the Frame Manager in the paper
#: and carry zero data-plane cost here.
EDGE_ROUTER_TASKS: dict[str, Task] = {
    "rx": Task("rx", 0),
    "classify": Task("classify", 0),
    "route": Task("route", units.us(0.5)),  # path 2 total = 0.5 us
    "encrypt": Task("encrypt", units.us(3.2), units.us(0.23)),  # 0.5 + 3.2 = 3.7
    "decrypt": Task("decrypt", units.us(2.27), units.us(0.21)),  # 0.5 + 3.03 + 2.27 = 5.8
    "scan": Task("scan", units.us(3.03)),  # 0.5 + 3.03 = 3.53 us
    "frame": Task("frame", 0),
    "tx": Task("tx", 0),
}


class TaskGraph:
    """A directed acyclic task graph with named end-to-end paths.

    Wraps a :class:`networkx.DiGraph` whose nodes carry :class:`Task`
    objects, plus an ordered mapping of path name -> node sequence.
    """

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self._paths: dict[str, tuple[str, ...]] = {}

    def add_task(self, task: Task) -> None:
        if task.name in self.graph:
            raise ValueError(f"duplicate task {task.name!r}")
        self.graph.add_node(task.name, task=task)

    def add_path(self, name: str, nodes: list[str]) -> None:
        """Register a service path; adds the edges along it."""
        if name in self._paths:
            raise ValueError(f"duplicate path {name!r}")
        if len(nodes) < 2:
            raise ValueError(f"path {name!r} needs at least two tasks")
        for node in nodes:
            if node not in self.graph:
                raise ValueError(f"path {name!r} references unknown task {node!r}")
        for a, b in zip(nodes, nodes[1:]):
            self.graph.add_edge(a, b)
        if not nx.is_directed_acyclic_graph(self.graph):
            # roll back the edges that created the cycle
            for a, b in zip(nodes, nodes[1:]):
                if self.graph.has_edge(a, b) and not self._edge_in_other_path(a, b, name):
                    self.graph.remove_edge(a, b)
            raise ValueError(f"path {name!r} would create a cycle")
        self._paths[name] = tuple(nodes)

    def _edge_in_other_path(self, a: str, b: str, excluding: str) -> bool:
        return any(
            (a, b) in zip(nodes, nodes[1:])
            for pname, nodes in self._paths.items()
            if pname != excluding
        )

    @property
    def paths(self) -> dict[str, tuple[str, ...]]:
        return dict(self._paths)

    def path_cost(self, name: str) -> tuple[int, int]:
        """Summed ``(base_ns, per_64b_ns)`` cost of a path."""
        if name not in self._paths:
            raise KeyError(f"unknown path {name!r}")
        base = per = 0
        for node in self._paths[name]:
            task: Task = self.graph.nodes[node]["task"]
            base += task.base_ns
            per += task.per_64b_ns
        return base, per

    def task(self, name: str) -> Task:
        return self.graph.nodes[name]["task"]


def build_edge_router_graph() -> TaskGraph:
    """The Fig. 5 edge-router task graph with calibrated task costs."""
    tg = TaskGraph()
    for task in EDGE_ROUTER_TASKS.values():
        tg.add_task(task)
    tg.add_path("vpn-out", ["rx", "classify", "route", "encrypt", "frame", "tx"])
    tg.add_path("ip-forward", ["rx", "classify", "route", "frame", "tx"])
    tg.add_path("malware-scan", ["rx", "classify", "scan", "route", "frame", "tx"])
    tg.add_path("vpn-in-scan", ["rx", "classify", "decrypt", "scan", "route", "frame", "tx"])
    return tg


def services_from_graph(tg: TaskGraph) -> ServiceSet:
    """Collapse each path of *tg* into a :class:`Service`.

    Path order of registration defines service ids, mirroring the
    paper's S1..S4 numbering when applied to
    :func:`build_edge_router_graph`.
    """
    services = []
    for sid, (name, _nodes) in enumerate(tg.paths.items()):
        base, per = tg.path_cost(name)
        services.append(Service(sid, name, base, per, f"task-graph path {name!r}"))
    return ServiceSet(services)
