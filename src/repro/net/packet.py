"""Packet descriptors.

The Frame Manager hands cores *command descriptors* (header + buffer
pointer + metadata), not payloads; our :class:`Packet` models exactly
that descriptor.  Inside the hot simulation loop packets are represented
as indices into trace arrays — this class is the boundary object used by
the public API, examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Packet"]


@dataclass(slots=True)
class Packet:
    """A data-plane packet descriptor.

    Attributes
    ----------
    flow_id:
        Dense integer identifier of the packet's flow (an index into the
        trace's flow table; the 5-tuple itself lives there).
    service_id:
        Which service (processing path) must handle this packet.
    size_bytes:
        Wire size, used by the per-byte terms of the latency model
        (paper eq. 4-5).
    seq:
        Per-flow sequence number (0-based arrival order within the flow);
        the reorder detector compares departure order against it.
    arrival_ns:
        Arrival timestamp at the scheduler, integer nanoseconds.
    enqueue_ns / start_ns / depart_ns:
        Filled in by the simulator as the packet moves through a core.
        -1 until the corresponding event happens.
    core_id:
        Core that processed (or is processing) the packet; -1 before
        dispatch, unchanged on drop.
    dropped:
        True when the packet was lost to a full input queue.
    """

    flow_id: int
    service_id: int
    size_bytes: int
    seq: int
    arrival_ns: int
    enqueue_ns: int = field(default=-1)
    start_ns: int = field(default=-1)
    depart_ns: int = field(default=-1)
    core_id: int = field(default=-1)
    dropped: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")
        if self.seq < 0:
            raise ValueError(f"sequence number must be >= 0, got {self.seq}")
        if self.arrival_ns < 0:
            raise ValueError(f"arrival time must be >= 0, got {self.arrival_ns}")

    @property
    def latency_ns(self) -> int:
        """Total in-system latency; -1 until the packet departs."""
        if self.depart_ns < 0:
            return -1
        return self.depart_ns - self.arrival_ns

    @property
    def queueing_ns(self) -> int:
        """Time spent waiting in the input queue; -1 until service starts."""
        if self.start_ns < 0:
            return -1
        return self.start_ns - self.arrival_ns
