"""Packet/flow/service substrate.

Models the objects the scheduler reasons about: packet descriptors,
flows (5-tuple equivalence classes with per-flow statistics), services
(the processing paths of the Fig. 5 edge-router task graph), and the
task graph itself.
"""

from repro.net.packet import Packet
from repro.net.flow import FlowRecord, FlowTable
from repro.net.classifier import MatchRule, ServiceClassifier, default_edge_rules
from repro.net.service import Service, ServiceSet, default_services
from repro.net.taskgraph import (
    EDGE_ROUTER_TASKS,
    TaskGraph,
    build_edge_router_graph,
    services_from_graph,
)

__all__ = [
    "Packet",
    "FlowRecord",
    "FlowTable",
    "MatchRule",
    "ServiceClassifier",
    "default_edge_rules",
    "Service",
    "ServiceSet",
    "default_services",
    "TaskGraph",
    "EDGE_ROUTER_TASKS",
    "build_edge_router_graph",
    "services_from_graph",
]
