"""Flow records and the flow table.

The flow table maps dense flow ids to their 5-tuple and running
statistics (packets, bytes, last core).  The simulator uses it to detect
flow migrations (a packet of flow *f* landing on a different core than
the previous packet of *f* pays the FM penalty, paper eq. 3) and the
offline analyser uses it to rank flows by size for AFD ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hashing.five_tuple import FiveTuple

__all__ = ["FlowRecord", "FlowTable"]


@dataclass(slots=True)
class FlowRecord:
    """Running per-flow state (one row of the :class:`FlowTable`)."""

    flow_id: int
    key: FiveTuple | None = None
    service_id: int = -1
    packets: int = 0
    bytes: int = 0
    first_ns: int = -1
    last_ns: int = -1
    last_core: int = -1
    migrations: int = 0

    def observe(self, size_bytes: int, t_ns: int) -> None:
        """Account one packet of this flow at time *t_ns*."""
        self.packets += 1
        self.bytes += size_bytes
        if self.first_ns < 0:
            self.first_ns = t_ns
        self.last_ns = t_ns

    def assign_core(self, core_id: int) -> bool:
        """Record that a packet of this flow was dispatched to *core_id*.

        Returns True when this constitutes a migration (the previous
        packet of the flow went to a different core).
        """
        migrated = self.last_core >= 0 and self.last_core != core_id
        if migrated:
            self.migrations += 1
        self.last_core = core_id
        return migrated

    @property
    def mean_rate_pps(self) -> float:
        """Mean packet rate over the flow's observed lifetime (0 if
        the flow spans a single instant)."""
        if self.packets < 2 or self.last_ns <= self.first_ns:
            return 0.0
        return (self.packets - 1) / ((self.last_ns - self.first_ns) / 1e9)


class FlowTable:
    """Dense-id flow table.

    Flow ids are assigned densely (0, 1, 2, ...) which lets the hot loop
    index plain lists instead of hashing 5-tuples per packet.  The
    5-tuple -> id mapping is kept for interning keys coming from traces.
    """

    def __init__(self) -> None:
        self._records: list[FlowRecord] = []
        self._by_key: dict[FiveTuple, int] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, flow_id: int) -> FlowRecord:
        return self._records[flow_id]

    def __iter__(self):
        return iter(self._records)

    def intern(self, key: FiveTuple, service_id: int = -1) -> int:
        """Return the dense id for *key*, creating a record on first use."""
        flow_id = self._by_key.get(key)
        if flow_id is None:
            flow_id = len(self._records)
            self._by_key[key] = flow_id
            self._records.append(FlowRecord(flow_id, key=key, service_id=service_id))
        return flow_id

    def ensure(self, flow_id: int, service_id: int = -1) -> FlowRecord:
        """Return the record for a pre-assigned dense id, growing the
        table as needed (used when flow ids come straight from a trace)."""
        if flow_id < 0:
            raise ValueError(f"flow id must be >= 0, got {flow_id}")
        while len(self._records) <= flow_id:
            self._records.append(FlowRecord(len(self._records)))
        rec = self._records[flow_id]
        if rec.service_id < 0 and service_id >= 0:
            rec.service_id = service_id
        return rec

    def lookup(self, key: FiveTuple) -> int | None:
        """The dense id for *key*, or None if never seen."""
        return self._by_key.get(key)

    def top_by_bytes(self, k: int) -> list[FlowRecord]:
        """The *k* largest flows by byte count (ties broken by flow id
        for determinism)."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        return sorted(self._records, key=lambda r: (-r.bytes, r.flow_id))[:k]

    def top_by_packets(self, k: int) -> list[FlowRecord]:
        """The *k* largest flows by packet count."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        return sorted(self._records, key=lambda r: (-r.packets, r.flow_id))[:k]

    def total_migrations(self) -> int:
        """Sum of per-flow migration counts."""
        return sum(r.migrations for r in self._records)
