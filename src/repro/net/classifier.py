"""Packet classification: the Frame Manager's front end (Fig. 1).

When a packet arrives, "a packet classifier in the FM decides" what
processing it needs (Sec. II) — which of the router's services the
packet belongs to.  The evaluation sidesteps this by feeding one trace
per service; this module provides the real thing so a *single mixed
capture* can drive a multi-service study: an ordered rule list matching
on protocol, port ranges and IPv4 prefixes, first match wins.

Classification is vectorised over whole flow tables (one pass per
rule), so a 100k-flow trace classifies in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.hashing.five_tuple import FiveTuple
from repro.trace.trace import Trace

__all__ = ["MatchRule", "ServiceClassifier", "default_edge_rules"]


def _parse_prefix(prefix: str) -> tuple[int, int]:
    """'10.0.0.0/8' -> (network, mask)."""
    addr, _, length_s = prefix.partition("/")
    length = int(length_s) if length_s else 32
    if not 0 <= length <= 32:
        raise ConfigError(f"bad prefix length in {prefix!r}")
    parts = [int(p) for p in addr.split(".")]
    if len(parts) != 4 or any(not 0 <= p <= 255 for p in parts):
        raise ConfigError(f"bad IPv4 address in {prefix!r}")
    value = (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]
    mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
    return value & mask, mask


@dataclass(frozen=True)
class MatchRule:
    """One classifier rule.  Unset fields match anything.

    ``dst_ports``/``src_ports`` are inclusive ranges; prefixes are
    dotted-quad CIDR strings.
    """

    service_id: int
    protocol: int | None = None
    dst_ports: tuple[int, int] | None = None
    src_ports: tuple[int, int] | None = None
    src_prefix: str | None = None
    dst_prefix: str | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.service_id < 0:
            raise ConfigError(f"service id must be >= 0, got {self.service_id}")
        for ports in (self.dst_ports, self.src_ports):
            if ports is not None:
                lo, hi = ports
                if not 0 <= lo <= hi <= 0xFFFF:
                    raise ConfigError(f"bad port range {ports}")
        # validate prefixes eagerly
        if self.src_prefix is not None:
            _parse_prefix(self.src_prefix)
        if self.dst_prefix is not None:
            _parse_prefix(self.dst_prefix)

    def matches(self, key: FiveTuple) -> bool:
        """Scalar match (the vectorised path lives in the classifier)."""
        if self.protocol is not None and key.protocol != self.protocol:
            return False
        if self.dst_ports is not None and not (
            self.dst_ports[0] <= key.dst_port <= self.dst_ports[1]
        ):
            return False
        if self.src_ports is not None and not (
            self.src_ports[0] <= key.src_port <= self.src_ports[1]
        ):
            return False
        if self.src_prefix is not None:
            net, mask = _parse_prefix(self.src_prefix)
            if key.src_ip & mask != net:
                return False
        if self.dst_prefix is not None:
            net, mask = _parse_prefix(self.dst_prefix)
            if key.dst_ip & mask != net:
                return False
        return True


class ServiceClassifier:
    """Ordered rule list with a default service; first match wins."""

    def __init__(self, rules: list[MatchRule], default_service: int = 0) -> None:
        if default_service < 0:
            raise ConfigError(
                f"default service must be >= 0, got {default_service}"
            )
        self.rules = list(rules)
        self.default_service = default_service

    @property
    def num_services(self) -> int:
        ids = [r.service_id for r in self.rules] + [self.default_service]
        return max(ids) + 1

    def classify(self, key: FiveTuple) -> int:
        """Service id for one packet."""
        for rule in self.rules:
            if rule.matches(key):
                return rule.service_id
        return self.default_service

    def classify_flows(self, trace: Trace) -> np.ndarray:
        """Service id per *flow* of a trace (int32, vectorised).

        Flows are classified once (the scheduler pins a flow to one
        service anyway); index with ``trace.flow_id`` for per-packet
        services.
        """
        n = trace.num_flows
        out = np.full(n, -1, dtype=np.int32)
        for rule in self.rules:
            eligible = out == -1
            if not eligible.any():
                break
            match = eligible.copy()
            if rule.protocol is not None:
                match &= trace.flows_proto == rule.protocol
            if rule.dst_ports is not None:
                lo, hi = rule.dst_ports
                match &= (trace.flows_dst_port >= lo) & (trace.flows_dst_port <= hi)
            if rule.src_ports is not None:
                lo, hi = rule.src_ports
                match &= (trace.flows_src_port >= lo) & (trace.flows_src_port <= hi)
            if rule.src_prefix is not None:
                net, mask = _parse_prefix(rule.src_prefix)
                match &= (trace.flows_src_ip & np.uint32(mask)) == np.uint32(net)
            if rule.dst_prefix is not None:
                net, mask = _parse_prefix(rule.dst_prefix)
                match &= (trace.flows_dst_ip & np.uint32(mask)) == np.uint32(net)
            out[match] = rule.service_id
        out[out == -1] = self.default_service
        return out

    def split_trace(self, trace: Trace) -> list[Trace]:
        """Partition a mixed trace into one per-service trace
        (ready for :func:`repro.sim.workload.build_workload`).

        Every returned trace shares the parent's flow table, so flow
        ids remain globally unique across the split.
        """
        per_flow = self.classify_flows(trace)
        per_packet = per_flow[trace.flow_id]
        out = []
        for sid in range(self.num_services):
            mask = per_packet == sid
            out.append(
                Trace(
                    trace.flow_id[mask],
                    trace.size_bytes[mask],
                    trace.gap_ns[mask],
                    trace.flows_src_ip, trace.flows_dst_ip,
                    trace.flows_src_port, trace.flows_dst_port,
                    trace.flows_proto,
                    name=f"{trace.name}/s{sid}" if trace.name else f"s{sid}",
                )
            )
        return out


def default_edge_rules() -> ServiceClassifier:
    """A classifier matching the Fig. 5 edge router's four services.

    * S0 vpn-out: outbound IPSec/OpenVPN-ish traffic (dst port 500,
      4500 or 1194, or anything UDP to 1194);
    * S2 malware-scan: inbound web/mail (dst ports 25, 80, 110, 143,
      443, 8080);
    * S3 vpn-in-scan: inbound tunnelled traffic (src port 1194/500);
    * S1 ip-forward: everything else (the default path).
    """
    return ServiceClassifier(
        rules=[
            MatchRule(0, dst_ports=(500, 500), name="ike-out"),
            MatchRule(0, dst_ports=(4500, 4500), name="nat-t-out"),
            MatchRule(0, dst_ports=(1194, 1194), name="ovpn-out"),
            MatchRule(3, src_ports=(1194, 1194), name="ovpn-in"),
            MatchRule(3, src_ports=(500, 500), name="ike-in"),
            MatchRule(2, protocol=6, dst_ports=(25, 25), name="smtp"),
            MatchRule(2, protocol=6, dst_ports=(80, 80), name="http"),
            MatchRule(2, protocol=6, dst_ports=(110, 143), name="mail"),
            MatchRule(2, protocol=6, dst_ports=(443, 443), name="https"),
            MatchRule(2, protocol=6, dst_ports=(8080, 8080), name="http-alt"),
        ],
        default_service=1,
    )
