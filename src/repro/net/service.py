"""Services: the processing paths of a multi-service edge router.

The paper's workload model (Sec. IV-B, Fig. 5) treats each end-to-end
path through the router's task graph as one *service*; a packet is tied
to one service (and one core) for its whole lifetime.  The four standard
services and their measured latency models (Sec. IV-C) are:

=======  ==========================  ==============================
service  path                        processing time ``T_proc``
=======  ==========================  ==============================
S1       outgoing VPN (IPSec enc)    3.7 us + 0.23 us per 64 B
S2       default IP forwarding       0.5 us
S3       incoming + malware scan     3.53 us
S4       incoming VPN + scan         5.8 us + 0.21 us per 64 B
=======  ==========================  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units

__all__ = ["Service", "ServiceSet", "default_services"]


@dataclass(frozen=True, slots=True)
class Service:
    """One processing path ("service") of the router.

    ``base_ns`` and ``per_64b_ns`` define the processing-time model
    ``T_proc = base + ceil-free (size/64) * per_64b`` from eq. (4)/(5);
    services with size-independent cost simply have ``per_64b_ns == 0``.
    """

    service_id: int
    name: str
    base_ns: int
    per_64b_ns: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.service_id < 0:
            raise ValueError(f"service id must be >= 0, got {self.service_id}")
        if self.base_ns <= 0:
            raise ValueError(f"base processing time must be positive, got {self.base_ns}")
        if self.per_64b_ns < 0:
            raise ValueError(f"per-64B cost must be >= 0, got {self.per_64b_ns}")

    def processing_ns(self, size_bytes: int) -> int:
        """``T_proc`` in nanoseconds for a packet of *size_bytes*.

        The paper's eq. (4)-(5) scale linearly with ``PacketSize/64B``;
        we keep the fractional scaling (no rounding to whole blocks) and
        round once to integer nanoseconds.
        """
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        return self.base_ns + round(self.per_64b_ns * size_bytes / 64)

    def capacity_pps(self, mean_size_bytes: float = 64.0) -> float:
        """Saturation throughput of one core running only this service,
        in packets/second, at the given mean packet size."""
        t = self.base_ns + self.per_64b_ns * mean_size_bytes / 64
        return units.SEC / t


class ServiceSet:
    """An ordered, validated collection of services (ids must be dense)."""

    def __init__(self, services: list[Service]) -> None:
        if not services:
            raise ValueError("a router needs at least one service")
        ids = [s.service_id for s in services]
        if ids != list(range(len(services))):
            raise ValueError(f"service ids must be dense 0..n-1, got {ids}")
        self._services = tuple(services)

    def __len__(self) -> int:
        return len(self._services)

    def __getitem__(self, service_id: int) -> Service:
        return self._services[service_id]

    def __iter__(self):
        return iter(self._services)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self._services)

    def capacity_pps(
        self, cores_per_service: list[int], mean_size_bytes: float = 64.0
    ) -> float:
        """Aggregate ideal capacity of a core allocation, packets/second.

        Used to calibrate offered load to a target utilisation (DESIGN
        Sec. 5): Σ_i cores_i / T_proc,i.
        """
        if len(cores_per_service) != len(self._services):
            raise ValueError(
                f"need a core count per service: got {len(cores_per_service)} "
                f"for {len(self._services)} services"
            )
        return sum(
            n * s.capacity_pps(mean_size_bytes)
            for n, s in zip(cores_per_service, self._services)
        )


def default_services() -> ServiceSet:
    """The paper's four services with the published latency constants."""
    return ServiceSet(
        [
            Service(0, "vpn-out", units.us(3.7), units.us(0.23),
                    "Path 1: outgoing packets tunneled via VPN (IPSec encrypt)"),
            Service(1, "ip-forward", units.us(0.5), 0,
                    "Path 2: default IP forwarding"),
            Service(2, "malware-scan", units.us(3.53), 0,
                    "Path 3: incoming packets scanned for malware"),
            Service(3, "vpn-in-scan", units.us(5.8), units.us(0.21),
                    "Path 4: incoming VPN packets, decrypted then scanned"),
        ]
    )
