"""Scheduler interface and registry.

A scheduler is consulted once per arriving packet and returns the target
core; the simulator enqueues there (or drops the packet when the queue
is full).  Schedulers see core load through a :class:`LoadView` so they
stay decoupled from the simulator's internals, and receive queue
empty/busy edge notifications so policies with idle timers (LAPS's core
release, Sec. III-D) can keep time.

Flow hashes are passed in pre-computed (the trace pipeline CRC16-hashes
all flow keys in one vectorised batch) so per-packet work stays cheap;
schedulers that want a different hash are free to ignore the argument.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Protocol

from repro.errors import SchedulerError

__all__ = [
    "LoadView",
    "Scheduler",
    "register_scheduler",
    "make_scheduler",
    "available_schedulers",
]


class LoadView(Protocol):
    """Read-only view of per-core input-queue occupancy."""

    @property
    def num_cores(self) -> int: ...

    @property
    def queue_capacity(self) -> int: ...

    def occupancy(self, core_id: int) -> int: ...


class Scheduler(ABC):
    """Base class for packet schedulers.

    Lifecycle: construct → :meth:`bind` (once, with the load view) →
    per-packet :meth:`select_core` calls interleaved with queue-edge
    notifications.  ``bind`` may be called again to reset the scheduler
    onto a fresh system.

    **Map-epoch protocol** (the vectorized fast path): ``map_epoch`` is
    a monotone counter that the scheduler bumps on *every* mutation of
    whatever tables :meth:`assign_batch` reads — map-table grow/shrink,
    migration-table insert/evict/prune, bucket shift, rebalance, core
    donation, ``core_down``/``core_up`` reactions, and :meth:`bind`
    itself.  The kernel precomputes a ``core_of`` column from
    :meth:`assign_batch` and keeps consuming it only while ``map_epoch``
    is unchanged; any bump invalidates the column and the remaining
    suffix is recomputed.  A scheduler that never implements
    :meth:`assign_batch` can ignore the counter entirely — the kernel
    falls back to per-packet :meth:`select_core`.
    """

    #: Registry name (set on subclasses via :func:`register_scheduler`).
    name: str = "?"

    #: Queue-occupancy threshold above which a batch-planned assignment
    #: must be re-taken through :meth:`select_core` (the planned entry
    #: is only valid for a non-overloaded target).  ``None`` means
    #: planned entries are unconditionally valid.
    batch_guard: int | None = None

    #: Per-packet side-effect hook
    #: ``(flow_id, flow_hash, core, occupancy, t_ns)`` the kernel calls
    #: for every *consumed* batch entry, replicating the unconditional
    #: bookkeeping ``select_core`` would have done (LAPS's AFD observe +
    #: allocator quietness, adaptive-hash's bucket counts).  ``None``
    #: when the scheduler has no such per-packet state.  ``occupancy``
    #: is the guard's queue reading, or ``-1`` when ``batch_guard`` is
    #: ``None`` (no occupancy was read).
    batch_commit: Callable[[int, int, int, int, int], None] | None = None

    #: Declares that :meth:`assign_batch` entries depend **only** on the
    #: packet columns and the scheduler's tables — never on live queue
    #: occupancy or arrival-interleaved timing — so a planned span stays
    #: exact while ``map_epoch`` holds, whatever completions happen in
    #: between.  This is the entry ticket to the batched span drain
    #: (:mod:`repro.sim.events.span`): the kernel only attempts a drain
    #: when the scheduler sets this ``True``.  Policies whose
    #: ``select_core`` reads occupancies or timers (flowlet, sprinklers,
    #: fcfs, topk) must leave it ``False``.
    batch_static: bool = False

    #: Vectorized sibling of :attr:`batch_commit`:
    #: ``(flow_id_arr, flow_hash_arr, core_arr, occ_arr, t_arr)`` —
    #: aligned numpy arrays covering one committed span in arrival
    #: order.  Must be observably equivalent to calling
    #: :attr:`batch_commit` element-by-element in order, and must not
    #: bump ``map_epoch`` (a committed span is already dispatched;
    #: invalidating it retroactively is a contract violation).
    #: ``occ_arr`` holds the per-packet guard readings when
    #: :attr:`batch_guard` is set, else ``-1``.  ``None`` means the
    #: span driver synthesises the span commit itself by replaying
    #: :attr:`batch_commit` element-by-element over the committed
    #: arrays; schedulers with neither hook need no span support at
    #: all.
    batch_commit_span: Callable[..., None] | None = None

    #: Declares that :attr:`batch_commit_span` is genuinely batch-native
    #: (array arithmetic / bulk counter merges) rather than a scalar
    #: replay loop.  Purely informational for the span driver's phase
    #: accounting and the benchmark report — the bit never changes
    #: results, only which commit implementation the driver prefers:
    #: when ``False`` the driver ignores ``batch_commit_span`` and
    #: replays ``batch_commit`` itself, so a scheduler cannot silently
    #: ship a scalar loop dressed up as a vectorized commit.
    commit_vectorized: bool = False

    def __init__(self) -> None:
        self._loads: LoadView | None = None
        #: monotone table-mutation counter (see class docstring)
        self.map_epoch = 0

    @property
    def shard_static(self) -> bool:
        """True when the full assignment is a pure static function of
        the packet columns and the post-``bind`` tables — no occupancy
        guard, no timer, no rebalance — so a core-partitioned sharded
        run can reproduce a single-process run bit for bit.

        Derived by default: ``batch_static`` with no ``batch_guard``
        and a real :meth:`assign_batch`.  Subclasses whose tables move
        for reasons the derivation cannot see (adaptive-hash's periodic
        rebalance reads global per-bucket counts) override this with a
        plain ``shard_static = False`` class attribute; the sharded
        runner additionally verifies at run end that ``map_epoch``
        never moved after bind, so a wrong ``True`` fails loudly, never
        silently.
        """
        return (
            self.batch_static
            and self.batch_guard is None
            and type(self).assign_batch is not Scheduler.assign_batch
        )

    # ------------------------------------------------------------------
    def bind(self, loads: LoadView) -> None:
        """Attach to a system; called before the first packet."""
        self._loads = loads
        self.map_epoch += 1

    @property
    def loads(self) -> LoadView:
        if self._loads is None:
            raise SchedulerError(f"{type(self).__name__} used before bind()")
        return self._loads

    @property
    def is_bound(self) -> bool:
        return self._loads is not None

    # ------------------------------------------------------------------
    @abstractmethod
    def select_core(
        self, flow_id: int, service_id: int, flow_hash: int, t_ns: int
    ) -> int:
        """Target core for one packet (must be in ``[0, num_cores)``)."""

    def assign_batch(
        self,
        flow_hash,
        service_id,
        flow_id,
        arrival_ns,
        start_index: int = 0,
    ):
        """Vectorized core assignment for a span of future arrivals.

        Arguments are aligned numpy column slices (``flow_hash`` and
        ``flow_id`` int64, ``service_id`` int32, ``arrival_ns`` int64)
        and *start_index* is the global packet index of element 0 —
        schedulers that keep global bookkeeping (e.g. adaptive-hash's
        already-committed-counts watermark) key on it so replanning an
        overlapping span stays idempotent.

        Returns an int array of planned cores, or ``None`` when no fast
        path exists (the base implementation).  The contract:

        * the result may be a **prefix** — any length ``<= len(input)``
          is valid; the kernel falls back to :meth:`select_core` past
          the end (and replans after the next epoch bump);
        * an entry of ``-1`` means "this packet needs the scalar path"
          (e.g. a stale migration pin whose removal is a side effect);
        * entries are exact under two conditions the kernel enforces:
          ``map_epoch`` has not changed since planning, and — when
          ``batch_guard`` is set — the target's queue occupancy at
          dispatch is below the guard;
        * planning itself must be idempotent: calling this twice over
          overlapping spans (same ``start_index`` semantics) must leave
          the scheduler in the same state as calling it once.
        """
        return None

    def on_queue_empty(self, core_id: int, t_ns: int) -> None:
        """The core's input queue just drained (idle-timer edge)."""

    def on_queue_busy(self, core_id: int, t_ns: int) -> None:
        """The core's input queue went non-empty again."""

    def on_core_down(self, core_id: int, t_ns: int) -> None:
        """The core failed (see :mod:`repro.faults`).

        Default: no reaction — the dead core's queue reads as
        permanently full through the :class:`LoadView`, so load-aware
        policies route around it only as fast as their own balancing
        machinery notices, which is exactly the "naive" baseline
        behaviour the resilience harness measures.  Policies with
        explicit placement state (map tables, bucket maps) override
        this to evict the core immediately.
        """

    def on_core_up(self, core_id: int, t_ns: int) -> None:
        """The failed core came back and is idle again."""

    #: bus event -> callback method, for :meth:`register_hooks`
    _HOOK_METHODS = (
        ("queue_empty", "on_queue_empty"),
        ("queue_busy", "on_queue_busy"),
        ("core_down", "on_core_down"),
        ("core_up", "on_core_up"),
    )

    def register_hooks(self, bus) -> None:
        """Subscribe this scheduler's callbacks on a
        :class:`~repro.sim.hooks.HookBus`.

        Only *overridden* callbacks are registered: a policy that keeps
        the base-class no-op for an event stays off the bus entirely,
        so the kernel skips the call instead of paying for a no-op —
        subclasses that want every notification regardless can override
        this to subscribe unconditionally.
        """
        for event, name in self._HOOK_METHODS:
            if getattr(type(self), name) is not getattr(Scheduler, name):
                bus.subscribe(event, getattr(self, name))

    def stats(self) -> dict[str, float]:
        """Scheduler-internal counters for reports (override to extend)."""
        return {}

    # helpers shared by several policies ------------------------------
    def _min_queue_core(self, cores) -> int:
        """The least-loaded core of *cores* (lowest id wins ties)."""
        loads = self.loads
        best = None
        best_occ = None
        for c in cores:
            occ = loads.occupancy(c)
            if best_occ is None or occ < best_occ:
                best, best_occ = c, occ
        if best is None:
            raise SchedulerError("empty core set")
        return best


_REGISTRY: dict[str, Callable[..., Scheduler]] = {}


def register_scheduler(name: str):
    """Class decorator: register a scheduler under *name*."""

    def deco(cls):
        if name in _REGISTRY:
            raise ValueError(f"scheduler {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SchedulerError(
            f"unknown scheduler {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return factory(**kwargs)


def available_schedulers() -> list[str]:
    """Names of all registered schedulers."""
    return sorted(_REGISTRY)
