"""AFS — Arbitrary Flow Shift (Dittmann's scheme, the paper's main
baseline).

Hash-based dispatch through a bucket table over *all* cores (no service
awareness): ``bucket = CRC16(5-tuple) % B``, each bucket pinned to a
core (round-robin initially).  When an arriving packet's target core is
overloaded (queue ≥ ``high_threshold``) and the migration cooldown has
expired, the packet's whole **bucket** is remapped to the least-loaded
core.

This is "arbitrary flow shift": the migrated bundle contains whatever
flows happen to hash there — overwhelmingly mice plus maybe an elephant
— so load does get balanced (buckets carry ~1/B of the traffic), but
*every* flow in the bundle suffers a migration: each pays the FM
penalty on its next packet and risks reordering.  Figs. 7 and 9
quantify exactly this pathology against LAPS's migrate-only-elephants
rule.

``cooldown_ns`` rate-limits remaps (load monitoring in [11] is
periodic, not per-packet); without it a saturated system would thrash
buckets on every arrival.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.schedulers.base import Scheduler, register_scheduler

__all__ = ["AFSScheduler"]


@register_scheduler("afs")
class AFSScheduler(Scheduler):
    """Global bucket hash + arbitrary-bucket migration on overload."""

    #: planned entries are pure bucket-map lookups; all occupancy logic
    #: (imbalance counting, the shift) hides behind batch_guard, so
    #: spans may be drained batched — a guard trip truncates the span
    batch_static = True

    def __init__(
        self,
        buckets_per_core: int = 16,
        high_threshold: int = 24,
        cooldown_ns: int = units.ms(1),
    ) -> None:
        super().__init__()
        if buckets_per_core <= 0:
            raise ValueError(
                f"buckets_per_core must be positive, got {buckets_per_core}"
            )
        if high_threshold <= 0:
            raise ValueError(f"high_threshold must be positive, got {high_threshold}")
        if cooldown_ns < 0:
            raise ValueError(f"cooldown_ns must be >= 0, got {cooldown_ns}")
        self.buckets_per_core = buckets_per_core
        self.high_threshold = high_threshold
        #: batch entries are only valid below the overload threshold —
        #: at or above it select_core runs its migration machinery
        self.batch_guard = high_threshold
        self.cooldown_ns = cooldown_ns
        self._bucket_to_core: list[int] = []
        self._last_migration_ns = -(1 << 62)
        self.imbalance_events = 0
        self.bucket_migrations = 0

    def bind(self, loads) -> None:
        super().bind(loads)
        if self.high_threshold > loads.queue_capacity:
            raise ValueError(
                f"high_threshold {self.high_threshold} exceeds queue capacity "
                f"{loads.queue_capacity}"
            )
        n = loads.num_cores
        num_buckets = n * self.buckets_per_core
        self._bucket_to_core = [b % n for b in range(num_buckets)]
        self._last_migration_ns = -(1 << 62)
        self.imbalance_events = 0
        self.bucket_migrations = 0

    @property
    def num_buckets(self) -> int:
        return len(self._bucket_to_core)

    def select_core(
        self, flow_id: int, service_id: int, flow_hash: int, t_ns: int
    ) -> int:
        bucket = flow_hash % len(self._bucket_to_core)
        target = self._bucket_to_core[bucket]
        if self.loads.occupancy(target) >= self.high_threshold:
            self.imbalance_events += 1
            if t_ns - self._last_migration_ns >= self.cooldown_ns:
                minq = self._min_queue_core(range(self.loads.num_cores))
                if minq != target and self.loads.occupancy(minq) < self.high_threshold:
                    # shift the whole bucket -- every flow in it migrates
                    self._bucket_to_core[bucket] = minq
                    self._last_migration_ns = t_ns
                    self.bucket_migrations += 1
                    self.map_epoch += 1
                    return minq
        return target

    def assign_batch(
        self, flow_hash, service_id, flow_id, arrival_ns, start_index: int = 0
    ):
        # pure bucket-map lookup; everything occupancy-dependent
        # (imbalance accounting, cooldown, the shift itself) lives
        # behind batch_guard and runs through scalar select_core
        b2c = np.asarray(self._bucket_to_core, dtype=np.int64)
        return b2c[flow_hash % len(b2c)]

    def stats(self) -> dict[str, float]:
        return {
            "imbalance_events": self.imbalance_events,
            "bucket_migrations": self.bucket_migrations,
        }
