"""Pure static hashing — the scheme of [11]/[22]/[36]/[37] without any
migration.

One map table over *all* cores: ``core = CRC16(5-tuple) % num_cores``.
Perfect flow locality and packet order, zero adaptivity: an elephant
overloads whatever core it hashes to and nothing rebalances (the paper's
Fig. 9 "no migration" extreme).
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler, register_scheduler

__all__ = ["StaticHashScheduler"]


@register_scheduler("hash-static")
class StaticHashScheduler(Scheduler):
    """``hash % n`` with no load balancing whatsoever."""

    #: the plan is the modulus itself — trivially static, span-drainable
    batch_static = True

    def select_core(
        self, flow_id: int, service_id: int, flow_hash: int, t_ns: int
    ) -> int:
        return flow_hash % self.loads.num_cores

    def assign_batch(
        self, flow_hash, service_id, flow_id, arrival_ns, start_index: int = 0
    ):
        # the map is the modulus itself: pure, side-effect free, and
        # never mutated, so map_epoch never bumps after bind and one
        # plan covers a whole window
        return flow_hash % self.loads.num_cores
