"""RSS — Receive-Side Scaling with a Toeplitz hash and a static
indirection table (the "what industry ships" baseline).

This is the NIC-side steering scheme every commodity server runs today:
a Toeplitz hash of the flow key (:mod:`repro.hashing.toeplitz`, with
the Microsoft/Intel default 40-byte key) indexes a small power-of-two
indirection table whose entries are cores, assigned round-robin at
startup and never touched again.  Perfect flow locality, zero packet
reordering — and zero adaptivity: skew lands wherever the hash puts it,
and a failed core keeps receiving its table entries' traffic
(black-holed) until an operator rewrites the table.

The point of carrying it in the zoo is the paper's core motivation made
concrete: the *choice of hash* does not fix skew-induced imbalance.
RSS's hash is cryptographically better-spread than CRC16, yet its
tournament rows show the same elephant-overload drops as
``hash-static`` — only the reordering column is flattered.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.toeplitz import ToeplitzHasher
from repro.schedulers.base import Scheduler, register_scheduler

__all__ = ["RSSStaticScheduler"]


@register_scheduler("rss-static")
class RSSStaticScheduler(Scheduler):
    """Toeplitz hash -> static indirection table -> core.

    The flow key fed to the Toeplitz hash is the 8-byte big-endian
    flow id (the trace pipeline's stable flow identity); the CRC16
    ``flow_hash`` argument is deliberately ignored — using a different
    hash than the rest of the zoo is this scheduler's entire reason to
    exist.
    """

    #: the indirection table never changes after bind: span-drainable
    batch_static = True

    def __init__(
        self,
        key: bytes | None = None,
        indirection_entries: int = 128,
    ) -> None:
        super().__init__()
        if indirection_entries <= 0 or indirection_entries & (indirection_entries - 1):
            raise ValueError(
                f"indirection_entries must be a positive power of two, "
                f"got {indirection_entries}"
            )
        self._hasher = ToeplitzHasher(key) if key is not None else ToeplitzHasher()
        self.indirection_entries = indirection_entries
        self._table: np.ndarray = np.empty(0, dtype=np.int64)
        #: per-flow memo of the (pure) Toeplitz bucket — an optimisation
        #: only, never part of the observable contract
        self._bucket_memo: dict[int, int] = {}

    def bind(self, loads) -> None:
        super().bind(loads)
        n = loads.num_cores
        # round-robin fill, exactly how drivers initialise the table
        self._table = (
            np.arange(self.indirection_entries, dtype=np.int64) % n
        )
        self._bucket_memo = {}

    @property
    def indirection_table(self) -> tuple[int, ...]:
        """The (static) indirection table, for diagnostics and tests."""
        return tuple(self._table.tolist())

    def _bucket(self, flow_id: int) -> int:
        bucket = self._bucket_memo.get(flow_id)
        if bucket is None:
            h = self._hasher.hash(flow_id.to_bytes(8, "big"))
            bucket = h & (self.indirection_entries - 1)
            self._bucket_memo[flow_id] = bucket
        return bucket

    def select_core(
        self, flow_id: int, service_id: int, flow_hash: int, t_ns: int
    ) -> int:
        return int(self._table[self._bucket(flow_id)])

    def assign_batch(
        self, flow_hash, service_id, flow_id, arrival_ns, start_index: int = 0
    ):
        # the table is never mutated after bind, so map_epoch never
        # bumps and one plan covers a whole window (same contract as
        # hash-static, different hash)
        rows = flow_id.astype(">i8").view(np.uint8).reshape(-1, 8)
        hashes = self._hasher.hash_batch(rows)
        buckets = (hashes & np.uint64(self.indirection_entries - 1)).astype(np.int64)
        return self._table[buckets]
