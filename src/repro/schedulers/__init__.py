"""Scheduler implementations: the interface, the paper's baselines
(FCFS, static hash, AFS), reference comparators (exact top-k oracle,
single-cache ElephantTrap detector), and the literature zoo the
tournament harness races — RSS/Toeplitz static hashing, Flow
Director-style per-flow rebinding, Sprinklers variable-size striping
and flowlet switching (see ``docs/simulator.md``, "The scheduler zoo").

The LAPS scheduler itself lives in :mod:`repro.core.laps` (it is the
paper's contribution); it implements the same
:class:`~repro.schedulers.base.Scheduler` interface and is registered
here under the name ``"laps"``.
"""

from repro.schedulers.base import (
    LoadView,
    Scheduler,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.hash_static import StaticHashScheduler
from repro.schedulers.afs import AFSScheduler
from repro.schedulers.adaptive_hash import AdaptiveHashScheduler
from repro.schedulers.oracle import ExactTopKDetector, TopKMigrationScheduler
from repro.schedulers.elephant_trap import ElephantTrap
from repro.schedulers.rss_static import RSSStaticScheduler
from repro.schedulers.flow_director import FlowDirectorScheduler
from repro.schedulers.sprinklers import SprinklersScheduler
from repro.schedulers.flowlet import FlowletScheduler

# importing registers "laps" via the decorator in repro.core.laps
import repro.core.laps  # noqa: E402,F401

__all__ = [
    "LoadView",
    "Scheduler",
    "available_schedulers",
    "make_scheduler",
    "register_scheduler",
    "FCFSScheduler",
    "StaticHashScheduler",
    "AFSScheduler",
    "AdaptiveHashScheduler",
    "ExactTopKDetector",
    "TopKMigrationScheduler",
    "ElephantTrap",
    "RSSStaticScheduler",
    "FlowDirectorScheduler",
    "SprinklersScheduler",
    "FlowletScheduler",
]
