"""Exact per-flow-statistics top-k migration — Shi et al.'s scheme and
the Fig. 9 k-sweep instrument.

:class:`ExactTopKDetector` keeps a full per-flow byte counter (the very
overhead the paper's AFD exists to avoid) and answers "is this flow in
the current top-k" exactly.  :class:`TopKMigrationScheduler` is a
hash-over-all-cores scheduler that, on overload, migrates the arriving
flow *iff* the detector says it is a top-k flow — LAPS's load-balancing
rule with a perfect detector and without service partitioning.

Setting ``k=0`` yields the "no migration" extreme; the Fig. 9 harness
sweeps k over {1, 2, 4, 8, 10, 16} against the AFS baseline.

Both the exact detector and an
:class:`~repro.core.afd.AggressiveFlowDetector` satisfy the same small
``observe / is_aggressive / invalidate`` protocol, so the scheduler also
serves as "LAPS's balancer with the real AFD" when handed one.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

from repro.core.migration import MigrationTable
from repro.schedulers.base import Scheduler, register_scheduler

__all__ = ["ExactTopKDetector", "TopKMigrationScheduler"]


class ExactTopKDetector:
    """Exact software per-flow statistics (packet counts) with top-k
    membership queries.

    ``is_aggressive`` is O(k log n) in the worst case but amortised by a
    cached top-k set recomputed every ``refresh_every`` observations —
    mirroring how software stats would be summarised periodically for a
    hardware scheduler.
    """

    def __init__(
        self,
        k: int,
        refresh_every: int = 256,
        suppress_for: int = 16384,
    ) -> None:
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if refresh_every <= 0:
            raise ValueError(f"refresh_every must be positive, got {refresh_every}")
        if suppress_for < 0:
            raise ValueError(f"suppress_for must be >= 0, got {suppress_for}")
        self.k = k
        self.refresh_every = refresh_every
        #: observations a flow stays non-aggressive after invalidation —
        #: the software analogue of the AFD's re-promotion latency (a
        #: just-migrated elephant must re-earn its AFC slot), which is
        #: what keeps elephants from hot-potatoing between cores.
        self.suppress_for = suppress_for
        self._counts: defaultdict[int, int] = defaultdict(int)
        self._top: set[int] = set()
        self._observed = 0
        self._since_refresh = 0
        self._suppressed_until: dict[int, int] = {}

    def observe(self, flow_id: int, weight: int = 1) -> None:
        self._counts[flow_id] += weight
        self._observed += 1
        self._since_refresh += 1
        if self._since_refresh >= self.refresh_every:
            self._refresh()

    def _refresh(self) -> None:
        self._since_refresh = 0
        if self.k == 0 or not self._counts:
            self._top = set()
            return
        top = heapq.nlargest(
            self.k, self._counts.items(), key=lambda kv: (kv[1], -kv[0])
        )
        self._top = {fid for fid, _ in top}

    def is_aggressive(self, flow_id: int) -> bool:
        if flow_id not in self._top:
            return False
        until = self._suppressed_until.get(flow_id)
        if until is not None:
            if self._observed < until:
                return False
            del self._suppressed_until[flow_id]
        return True

    def invalidate(self, flow_id: int) -> bool:
        """Suppress a just-migrated flow for ``suppress_for``
        observations (the AFC-invalidation analogue)."""
        self._suppressed_until[flow_id] = self._observed + self.suppress_for
        return flow_id in self._top

    def top_flows(self) -> list[int]:
        return sorted(self._top)


@register_scheduler("topk")
class TopKMigrationScheduler(Scheduler):
    """Hash over all cores + migrate-on-overload gated by a detector."""

    def __init__(
        self,
        detector=None,
        k: int = 16,
        high_threshold: int = 24,
        migration_table_entries: int = 64,
        pin_weight: int = 16,
    ) -> None:
        super().__init__()
        if high_threshold <= 0:
            raise ValueError(f"high_threshold must be positive, got {high_threshold}")
        if pin_weight < 0:
            raise ValueError(f"pin_weight must be >= 0, got {pin_weight}")
        self.detector = detector if detector is not None else ExactTopKDetector(k)
        self.high_threshold = high_threshold
        self.pin_weight = pin_weight
        self.migration = MigrationTable(migration_table_entries)
        self.imbalance_events = 0
        self.migrations_installed = 0

    def bind(self, loads) -> None:
        super().bind(loads)
        if self.high_threshold > loads.queue_capacity:
            raise ValueError(
                f"high_threshold {self.high_threshold} exceeds queue capacity "
                f"{loads.queue_capacity}"
            )
        self.migration.clear()

    def select_core(
        self, flow_id: int, service_id: int, flow_hash: int, t_ns: int
    ) -> int:
        self.detector.observe(flow_id)
        pinned = self.migration.lookup(flow_id)
        if pinned is not None:
            return pinned
        target = flow_hash % self.loads.num_cores
        if self.loads.occupancy(target) >= self.high_threshold:
            self.imbalance_events += 1
            minq = self._min_queue_core(range(self.loads.num_cores))
            if (
                self.loads.occupancy(minq) < self.high_threshold
                and self.detector.is_aggressive(flow_id)
            ):
                dest = self._placement_target(target)
                if dest is not None and dest != target:
                    self.migration.add(flow_id, dest)
                    self.detector.invalidate(flow_id)
                    self.migrations_installed += 1
                    return dest
        return target

    def _placement_target(self, exclude: int) -> int | None:
        """Least-loaded core, penalising cores already holding pins
        (same placement refinement as LAPS: a core that received an
        elephant microseconds ago has a lagging queue)."""
        loads = self.loads
        best = None
        best_score = None
        for c in range(loads.num_cores):
            occ = loads.occupancy(c)
            if occ >= self.high_threshold:
                continue
            score = occ + self.pin_weight * self.migration.pins_on(c)
            if best_score is None or score < best_score:
                best, best_score = c, score
        return best

    def stats(self) -> dict[str, float]:
        return {
            "imbalance_events": self.imbalance_events,
            "migrations_installed": self.migrations_installed,
            "migration_table_evictions": self.migration.evictions,
        }
