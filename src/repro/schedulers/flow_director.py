"""Flow Director — per-flow NIC steering with follow-the-load rebinding
(Intel's Flow Director / ATR, the reordering pathology of Wu et al.).

An exact-match table pins every flow to a core.  A new flow is bound to
the least-loaded core at its first packet (good balance); whenever a
bound flow's packet finds its core overloaded, the entry is *rebound*
to the current least-loaded core immediately — Flow Director's
Application Targeted Routing resamples routes continuously, with no
cooldown and no regard for the packets still queued on the old core.

That is exactly the pathology Wu, Wu & Crawford measured ("Why Can Some
Advanced Ethernet NICs Cause Packet Reordering?"): every rebinding
under a core-load shift lets fresh packets on the new (short) queue
overtake the flow's in-flight packets on the old (long) queue, so the
scheme converts load swings into reordering across *many* flows — the
opposite end of the tradeoff curve from flowlet switching, which waits
for an idle gap before moving anybody.  The bounded table adds the
second documented failure mode: entry eviction silently unbinds old
flows, which then rebind wherever the load happens to be.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import Scheduler, register_scheduler

__all__ = ["FlowDirectorScheduler"]


@register_scheduler("flow-director")
class FlowDirectorScheduler(Scheduler):
    """Exact-match flow table + immediate rebind on target overload."""

    #: planned entries are pure table lookups (unknown flows map to the
    #: -1 sentinel, rebinds hide behind batch_guard): span-drainable
    batch_static = True

    #: plan at most this many arrivals ahead (rebinds bump ``map_epoch``
    #: and throw the planned suffix away, so bound the wasted work)
    _BATCH_SPAN = 8192

    def __init__(
        self,
        table_entries: int = 8192,
        rebind_threshold: int = 24,
    ) -> None:
        super().__init__()
        if table_entries <= 0:
            raise ValueError(f"table_entries must be positive, got {table_entries}")
        if rebind_threshold <= 0:
            raise ValueError(
                f"rebind_threshold must be positive, got {rebind_threshold}"
            )
        self.table_entries = table_entries
        self.rebind_threshold = rebind_threshold
        #: planned entries are only trusted below the rebind threshold;
        #: at or above it the scalar path runs the rebind machinery
        self.batch_guard = rebind_threshold
        #: flow id -> core, insertion-ordered (FIFO eviction)
        self._table: dict[int, int] = {}
        self.flows_bound = 0
        self.rebinds = 0
        self.evictions = 0

    def bind(self, loads) -> None:
        super().bind(loads)
        if self.rebind_threshold > loads.queue_capacity:
            raise ValueError(
                f"rebind_threshold {self.rebind_threshold} exceeds queue "
                f"capacity {loads.queue_capacity}"
            )
        self._table = {}
        self.flows_bound = 0
        self.rebinds = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._table)

    def select_core(
        self, flow_id: int, service_id: int, flow_hash: int, t_ns: int
    ) -> int:
        table = self._table
        core = table.get(flow_id)
        if core is None:
            # first packet: bind to the least-loaded core right now
            core = self._min_queue_core(range(self.loads.num_cores))
            if len(table) >= self.table_entries:
                # FIFO eviction: the victim's planned entries (if any)
                # are stale, so the column must be invalidated
                del table[next(iter(table))]
                self.evictions += 1
                self.map_epoch += 1
            table[flow_id] = core
            self.flows_bound += 1
            # no epoch bump: a plan maps unknown flows to -1, and this
            # packet (plus any other of the flow's packets in the span)
            # already runs scalar through that sentinel
            return core
        if self.loads.occupancy(core) >= self.rebind_threshold:
            # ATR resample: follow the load, ignore in-flight packets
            dest = self._min_queue_core(range(self.loads.num_cores))
            if dest != core and self.loads.occupancy(dest) < self.rebind_threshold:
                table[flow_id] = dest
                self.rebinds += 1
                self.map_epoch += 1
                return dest
        return core

    def assign_batch(
        self, flow_hash, service_id, flow_id, arrival_ns, start_index: int = 0
    ):
        """Vectorized exact-match lookup: bound flows get their pinned
        core, unknown flows get ``-1`` (the scalar path binds them).
        Rebinding is occupancy-dependent and lives entirely behind
        ``batch_guard``, so the plan itself is a pure lookup.
        """
        n = len(flow_id)
        if n > self._BATCH_SPAN:
            n = self._BATCH_SPAN
        table = self._table
        if not table:
            return np.full(n, -1, dtype=np.int64)
        keys = np.fromiter(table.keys(), dtype=np.int64, count=len(table))
        vals = np.fromiter(table.values(), dtype=np.int64, count=len(table))
        order = np.argsort(keys)
        keys = keys[order]
        vals = vals[order]
        fids = flow_id[:n]
        pos = np.searchsorted(keys, fids)
        pos[pos == len(keys)] = len(keys) - 1
        hit = keys[pos] == fids
        return np.where(hit, vals[pos], np.int64(-1))

    def stats(self) -> dict[str, float]:
        return {
            "flows_bound": self.flows_bound,
            "rebinds": self.rebinds,
            "evictions": self.evictions,
        }
