"""ElephantTrap — Lu et al.'s single-cache heavy-hitter detector.

The paper's Sec. VI cites this as the closest prior detector and argues
a *single* cache suffers many false positives because short-lived mice
constantly displace residents.  This model implements the single-level
equivalent of the AFD — one fully-associative LFU cache with
probabilistic admission — and satisfies the same
``observe / is_aggressive / invalidate / aggressive_flows /
false_positive_ratio`` protocol as the AFD so the Fig. 8 harness can put
the two head-to-head (the two-level ablation the paper's argument
rests on).
"""

from __future__ import annotations

import numpy as np

from repro.core.lfu import LFUCache
from repro.util.rng import make_rng

__all__ = ["ElephantTrap"]


class ElephantTrap:
    """Single LFU cache with probabilistic insertion.

    ``admit_prob < 1`` is the original ElephantTrap trick: a miss only
    installs the flow with some probability, so elephants (many
    chances) enter eventually while one-packet mice usually do not.
    ``admit_prob=1`` degenerates to a plain LFU cache.
    """

    def __init__(
        self,
        entries: int = 16,
        admit_prob: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        if not 0.0 < admit_prob <= 1.0:
            raise ValueError(f"admit_prob must be in (0, 1], got {admit_prob}")
        self.cache = LFUCache(entries)
        self.admit_prob = admit_prob
        self._rng = make_rng(rng)
        self.observed = 0

    def observe(self, flow_id: int) -> None:
        self.observed += 1
        if self.cache.hit(flow_id):
            return
        if self.admit_prob >= 1.0 or self._rng.random() < self.admit_prob:
            self.cache.insert(flow_id)

    def is_aggressive(self, flow_id: int) -> bool:
        return flow_id in self.cache

    def invalidate(self, flow_id: int) -> bool:
        return self.cache.invalidate(flow_id)

    def aggressive_flows(self) -> list[int]:
        return [int(k) for k in self.cache.keys()]

    def false_positive_ratio(self, true_top: set[int]) -> float:
        entries = self.aggressive_flows()
        if not entries:
            return 0.0
        return sum(1 for f in entries if f not in true_top) / len(entries)

    def accuracy(self, true_top: set[int]) -> float:
        return 1.0 - self.false_positive_ratio(true_top)

    def reset(self) -> None:
        self.cache.clear()
        self.observed = 0
