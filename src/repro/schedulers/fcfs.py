"""FCFS baseline — the paper's first comparator (Sec. V-A).

First-come-first-served dispatch: each arriving packet goes to the
least-backlogged core regardless of its flow or service (with a bounded
per-core queue this join-shortest-queue dispatch is the standard
realisation of a single logical FCFS queue drained by all cores).

FCFS maximises instantaneous balance but is oblivious to everything the
paper cares about: packets of one flow spray across cores (reordering +
per-flow data bouncing) and services interleave on every core (cold
I-cache on almost every packet).
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler, register_scheduler

__all__ = ["FCFSScheduler"]


@register_scheduler("fcfs")
class FCFSScheduler(Scheduler):
    """Join-shortest-queue, flow- and service-oblivious."""

    def __init__(self) -> None:
        super().__init__()
        self._rr = 0  # rotate tie-breaks so core 0 is not favoured

    def select_core(
        self, flow_id: int, service_id: int, flow_hash: int, t_ns: int
    ) -> int:
        loads = self.loads
        n = loads.num_cores
        start = self._rr
        self._rr = (self._rr + 1) % n
        best = -1
        best_occ = None
        for off in range(n):
            c = (start + off) % n
            occ = loads.occupancy(c)
            if best_occ is None or occ < best_occ:
                best, best_occ = c, occ
                if occ == 0:
                    break
        return best
