"""Sprinklers — variable-size striping (Ding & Liu).

Sprinklers' insight is that spraying and pinning are the two ends of a
dial: a flow striped over *W* paths gets *W*-fold balance but risks
reordering at every stripe boundary, so the stripe width should scale
with how much traffic the flow actually carries.  Mice keep ``W = 1``
(perfect order, and they are too small to unbalance anything); a flow
that proves heavy widens its stripe step by step, spreading exactly the
traffic that would otherwise overload one core.

This adaptation maps the scheme onto the simulator's core array: each
flow hashes to a base core and stripes over the ``W`` consecutive cores
from there, switching stripe members every ``stripe_chunk`` packets
(chunked round-robin — striping at chunk granularity is what bounds
reordering to the chunk boundaries).  The width doubles each time the
flow's packet count crosses ``width_threshold * W^2``, capped at
``max_width`` and the core count, so widths follow measured rate the
way Sprinklers sizes stripes from flow rates.

Placement is static given the per-flow packet count — no queue is ever
consulted — so the scheme is oblivious to faults and to transient skew,
and its tournament rows sit between ``rss-static`` (no balance, no
reorder) and ``fcfs`` (full balance, full reorder) by construction.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import Scheduler, register_scheduler

__all__ = ["SprinklersScheduler"]


@register_scheduler("sprinklers")
class SprinklersScheduler(Scheduler):
    """Hash-based striping whose per-flow width grows with flow size."""

    def __init__(
        self,
        stripe_chunk: int = 64,
        width_threshold: int = 256,
        max_width: int = 4,
    ) -> None:
        super().__init__()
        if stripe_chunk <= 0:
            raise ValueError(f"stripe_chunk must be positive, got {stripe_chunk}")
        if width_threshold <= 0:
            raise ValueError(
                f"width_threshold must be positive, got {width_threshold}"
            )
        if max_width <= 0 or max_width & (max_width - 1):
            raise ValueError(
                f"max_width must be a positive power of two, got {max_width}"
            )
        self.stripe_chunk = stripe_chunk
        self.width_threshold = width_threshold
        self.max_width = max_width
        self._width_cap = max_width
        self._count: dict[int, int] = {}
        self.stripes_widened = 0

    def bind(self, loads) -> None:
        super().bind(loads)
        cap = self.max_width
        while cap > loads.num_cores:
            cap >>= 1
        self._width_cap = max(1, cap)
        self._count = {}
        self.stripes_widened = 0

    # ------------------------------------------------------------------
    def _width(self, count: int) -> int:
        """Stripe width after *count* packets: doubles at
        ``width_threshold * W^2`` so each widening needs quadratically
        more evidence (heavy flows earn wide stripes, mice never do)."""
        w = 1
        cap = self._width_cap
        thr = self.width_threshold
        while w < cap and count >= thr * w * w:
            w <<= 1
        return w

    def _core_for(self, flow_hash: int, count: int) -> int:
        n = self.loads.num_cores
        w = self._width(count)
        member = (count // self.stripe_chunk) % w
        return (flow_hash % n + member) % n

    def _advance(self, flow_id: int) -> None:
        """The unconditional per-packet bookkeeping: count the packet
        and account stripe widenings (shared by the scalar path and
        :meth:`batch_commit`, so the twins stay bit-identical)."""
        c = self._count.get(flow_id, 0)
        self._count[flow_id] = c + 1
        if self._width(c + 1) > self._width(c):
            self.stripes_widened += 1

    def select_core(
        self, flow_id: int, service_id: int, flow_hash: int, t_ns: int
    ) -> int:
        core = self._core_for(flow_hash, self._count.get(flow_id, 0))
        self._advance(flow_id)
        return core

    def assign_batch(
        self, flow_hash, service_id, flow_id, arrival_ns, start_index: int = 0
    ):
        """Vectorized striping over the span.

        The per-packet position within each flow is reconstructed as
        (committed count so far) + (rank within the span), so planning
        never mutates the counts — :meth:`batch_commit` advances them
        one consumed packet at a time, which keeps a mid-span replan
        (and the scalar fallback past the column) exact.  The stripe
        layout itself is static, so ``map_epoch`` never bumps after
        bind and columns die only of natural causes.
        """
        n = len(flow_id)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        fids = flow_id[:n]
        order = np.argsort(fids, kind="stable")
        sf = fids[order]
        new_run = np.empty(n, dtype=bool)
        new_run[0] = True
        new_run[1:] = sf[1:] != sf[:-1]
        run_of = np.cumsum(new_run) - 1
        run_starts = np.nonzero(new_run)[0]
        get = self._count.get
        base = np.fromiter(
            (get(f, 0) for f in sf[run_starts].tolist()),
            dtype=np.int64,
            count=len(run_starts),
        )
        counts = np.empty(n, dtype=np.int64)
        counts[order] = base[run_of] + (np.arange(n, dtype=np.int64) - run_starts[run_of])
        # width per packet: unrolled doubling ladder (log2(cap) steps)
        c_over = counts // self.width_threshold
        w = np.ones(n, dtype=np.int64)
        cap = self._width_cap
        for _ in range(cap.bit_length() - 1):
            grow = (w < cap) & (c_over >= w * w)
            if not grow.any():
                break
            w = np.where(grow, w << 1, w)
        ncores = self.loads.num_cores
        member = (counts // self.stripe_chunk) % w
        return (flow_hash[:n] % ncores + member) % ncores

    def batch_commit(
        self, flow_id: int, flow_hash: int, core: int, occupancy: int, t_ns: int
    ) -> None:
        self._advance(flow_id)

    def stats(self) -> dict[str, float]:
        return {"stripes_widened": self.stripes_widened}
