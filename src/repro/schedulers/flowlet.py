"""Flowlet switching — migrate only at idle gaps, so migration (almost)
never reorders.

A *flowlet* is a burst of a flow's packets separated from the next
burst by an idle gap longer than the in-flight drain time.  If a flow
only ever changes core at such a gap, every packet the old core still
held has departed before the first packet lands on the new core —
load balancing without the reordering bill (the mechanism behind CONGA,
LetFlow and the Harvard CS145 flowlet controller this shape follows:
per-flow ``(last_seen, core)`` state, re-picking the least-loaded
target only when ``now - last_seen >= gap_ns``).

Within a burst the flow is perfectly sticky, so short flows behave like
static hashing; across gaps the flow re-joins wherever the load is
lowest, so sustained skew *does* get balanced — just at burst
granularity rather than per packet.  The knob is ``gap_ns``: too small
and switching outruns the queues (reordering returns), too large and
elephants never find a gap to migrate through (imbalance returns).
A failed core's bindings are evicted immediately (the controller
analogue of a link-down notification), so its flows re-pick at their
very next packet instead of black-holing until a gap.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.schedulers.base import Scheduler, register_scheduler

__all__ = ["FlowletScheduler"]


@register_scheduler("flowlet")
class FlowletScheduler(Scheduler):
    """Join-shortest-queue at flowlet boundaries, sticky in between."""

    #: bound per plan: flowlet boundaries bump ``map_epoch`` when the
    #: re-pick actually moves the flow, discarding the planned suffix
    _BATCH_SPAN = 8192

    def __init__(self, gap_ns: int = units.us(50)) -> None:
        super().__init__()
        if gap_ns <= 0:
            raise ValueError(f"gap_ns must be positive, got {gap_ns}")
        self.gap_ns = gap_ns
        self._core: dict[int, int] = {}
        self._last_ns: dict[int, int] = {}
        self.flowlets = 0
        self.switches = 0
        self.fault_evictions = 0

    def bind(self, loads) -> None:
        super().bind(loads)
        self._core = {}
        self._last_ns = {}
        self.flowlets = 0
        self.switches = 0
        self.fault_evictions = 0

    def select_core(
        self, flow_id: int, service_id: int, flow_hash: int, t_ns: int
    ) -> int:
        last = self._last_ns.get(flow_id)
        self._last_ns[flow_id] = t_ns
        core = self._core.get(flow_id)
        if core is not None and t_ns - last < self.gap_ns:
            return core  # mid-burst: sticky, no queue consulted
        # flowlet boundary (or brand-new flow): re-pick least-loaded
        dest = self._min_queue_core(range(self.loads.num_cores))
        self.flowlets += 1
        if core is not None and dest != core:
            self.switches += 1
            # the flow's remaining planned entries carry the old core
            self.map_epoch += 1
        self._core[flow_id] = dest
        return dest

    def assign_batch(
        self, flow_hash, service_id, flow_id, arrival_ns, start_index: int = 0
    ):
        """Plan the sticky stretches, sentinel the boundaries.

        For every packet the flowlet gap test is decidable at plan time
        from the arrival column alone: the gap is against the previous
        same-flow arrival *in the span*, or against the committed
        ``last_ns`` state for the flow's first span packet.  Mid-burst
        packets map to the flow's bound core (pure lookup); boundary
        packets and unbound flows map to ``-1`` — the scalar path runs
        the re-pick there and bumps ``map_epoch`` if the binding moved,
        which invalidates the (now stale) planned suffix.  Entries
        *after* a boundary stay conditionally planned on purpose: when
        the re-pick keeps the flow where it was (the common case under
        balanced load), no epoch bump occurs and the suffix stays live.
        """
        n = len(flow_id)
        if n > self._BATCH_SPAN:
            n = self._BATCH_SPAN
        fids = flow_id[:n]
        arr = arrival_ns[:n]
        order = np.argsort(fids, kind="stable")
        sf = fids[order]
        sa = arr[order]
        new_run = np.empty(n, dtype=bool)
        new_run[0] = True
        new_run[1:] = sf[1:] != sf[:-1]
        run_starts = np.nonzero(new_run)[0]
        core_get = self._core.get
        last_get = self._last_ns.get
        start_flows = sf[run_starts].tolist()
        bound0 = np.fromiter(
            (core_get(f, -1) for f in start_flows),
            dtype=np.int64,
            count=len(start_flows),
        )
        last0 = np.fromiter(
            (last_get(f, 0) for f in start_flows),
            dtype=np.int64,
            count=len(start_flows),
        )
        run_of = np.cumsum(new_run) - 1
        prev = np.empty(n, dtype=np.int64)
        prev[run_starts] = last0
        if n > 1:
            inner = ~new_run
            inner_idx = np.nonzero(inner)[0]
            prev[inner_idx] = sa[inner_idx - 1]
        bound = bound0[run_of]
        sticky = (bound >= 0) & (sa - prev < self.gap_ns)
        out_sorted = np.where(sticky, bound, np.int64(-1))
        out = np.empty(n, dtype=np.int64)
        out[order] = out_sorted
        return out

    def batch_commit(
        self, flow_id: int, flow_hash: int, core: int, occupancy: int, t_ns: int
    ) -> None:
        """The unconditional per-packet work of ``select_core`` on the
        sticky path: refresh the flow's last-seen clock."""
        self._last_ns[flow_id] = t_ns

    def on_core_down(self, core_id: int, t_ns: int) -> None:
        """Evict every binding onto the dead core: each flow re-picks
        at its next packet regardless of gap (treated as a fresh flow,
        so the switch is not counted as a flowlet switch)."""
        victims = [f for f, c in self._core.items() if c == core_id]
        for f in victims:
            del self._core[f]
        if victims:
            self.fault_evictions += len(victims)
            self.map_epoch += 1

    def stats(self) -> dict[str, float]:
        return {
            "flowlets": self.flowlets,
            "switches": self.switches,
            "fault_evictions": self.fault_evictions,
        }
