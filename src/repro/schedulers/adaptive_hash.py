"""Adaptive hashing — Shi & Kencl's sequence-preserving load sharing.

The paper (Sec. VI) calls adaptive hashing *complementary* to LAPS:
instead of reacting to queue overflow, the bucket->core map is
re-balanced **periodically** from measured per-bucket load, moving the
lightest set of buckets needed to flatten the projected per-core load.
Packets still hash to buckets, so flow locality and order are preserved
except for the flows of re-assigned buckets.

This scheduler exists as the extension point the paper suggests: its
periodic EWMA-driven re-balance can be compared against (or combined
with) AFS's reactive shifts and LAPS's elephant pins in the ablation
bench.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.schedulers.base import Scheduler, register_scheduler

__all__ = ["AdaptiveHashScheduler"]


@register_scheduler("adaptive-hash")
class AdaptiveHashScheduler(Scheduler):
    """Periodic bucket re-balancing from per-bucket packet counts."""

    #: planned entries are pure table lookups (the rebalance boundary is
    #: excluded from the plan), so spans may be drained batched
    batch_static = True

    #: the periodic rebalance moves buckets from *global* per-bucket
    #: packet counts — a core-partitioned shard sees only its own
    #: packets, so its rebalances would diverge from a single-process
    #: run.  Not shardable by core group.
    shard_static = False

    def __init__(
        self,
        buckets_per_core: int = 16,
        rebalance_every_ns: int = units.ms(1),
        ewma_alpha: float = 0.3,
        max_moves_per_round: int = 4,
    ) -> None:
        super().__init__()
        if buckets_per_core <= 0:
            raise ValueError(
                f"buckets_per_core must be positive, got {buckets_per_core}"
            )
        if rebalance_every_ns <= 0:
            raise ValueError(
                f"rebalance_every_ns must be positive, got {rebalance_every_ns}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if max_moves_per_round < 1:
            raise ValueError(
                f"max_moves_per_round must be >= 1, got {max_moves_per_round}"
            )
        self.buckets_per_core = buckets_per_core
        self.rebalance_every_ns = rebalance_every_ns
        self.ewma_alpha = ewma_alpha
        self.max_moves_per_round = max_moves_per_round
        self._bucket_to_core: list[int] = []
        self._bucket_count: list[int] = []   # packets this round
        self._bucket_rate: list[float] = []  # EWMA across rounds
        self._next_rebalance_ns = 0
        self.rebalances = 0
        self.bucket_moves = 0

    def bind(self, loads) -> None:
        super().bind(loads)
        n = loads.num_cores
        num_buckets = n * self.buckets_per_core
        self._bucket_to_core = [b % n for b in range(num_buckets)]
        self._bucket_count = [0] * num_buckets
        self._bucket_rate = [0.0] * num_buckets
        self._next_rebalance_ns = self.rebalance_every_ns
        self.rebalances = 0
        self.bucket_moves = 0

    def select_core(
        self, flow_id: int, service_id: int, flow_hash: int, t_ns: int
    ) -> int:
        bucket = flow_hash % len(self._bucket_to_core)
        self._bucket_count[bucket] += 1
        if t_ns >= self._next_rebalance_ns:
            self._rebalance()
            # catch up in case of long arrival gaps
            while self._next_rebalance_ns <= t_ns:
                self._next_rebalance_ns += self.rebalance_every_ns
        return self._bucket_to_core[bucket]

    def assign_batch(
        self, flow_hash, service_id, flow_id, arrival_ns, start_index: int = 0
    ):
        """Vectorized map lookup for the span up to (excluding) the
        first arrival that would trigger a rebalance.

        Within that span the map cannot change: only ``_rebalance``
        mutates it, it fires only from a ``select_core`` call with
        ``t >= _next_rebalance_ns``, and every such call — the boundary
        arrival itself or a fault-path reassignment (whose timestamp
        never exceeds the current arrival's) — lies at or beyond the
        boundary.  So a pure lookup is exact.  The per-packet count
        increment is *not* done here: :meth:`batch_commit` replicates
        it per consumed entry, keeping the counts bit-identical to the
        scalar path under any consumption pattern (replans, abandoned
        columns, checkpoints resumed in either mode).  The boundary
        packet falls to scalar ``select_core``, fires the rebalance,
        bumps ``map_epoch`` and thereby forces a replan.
        """
        cut = int(np.searchsorted(arrival_ns, self._next_rebalance_ns, side="left"))
        if cut == 0:
            return np.empty(0, dtype=np.int64)
        nb = len(self._bucket_to_core)
        b2c = np.asarray(self._bucket_to_core, dtype=np.int64)
        return b2c[flow_hash[:cut] % nb]

    def batch_commit(
        self, flow_id: int, flow_hash: int, core: int, occupancy: int, t_ns: int
    ) -> None:
        """The unconditional per-packet work of ``select_core``: count
        the packet's bucket (the rebalance trigger can't fire inside a
        planned span, so only the increment is replicated)."""
        self._bucket_count[flow_hash % len(self._bucket_to_core)] += 1

    #: the bincount span commit below is batch-native, not a scalar
    #: replay — let the span driver use it
    commit_vectorized = True

    def batch_commit_span(self, flow_id, flow_hash, core, occ, t_ns) -> None:
        """Vectorized :meth:`batch_commit`: one bincount for the whole
        span instead of one list increment per packet.  Counts stay
        plain ints so the state remains bit-identical to scalar runs."""
        nb = len(self._bucket_to_core)
        counts = np.bincount(flow_hash % nb, minlength=nb)
        bc = self._bucket_count
        for b in np.nonzero(counts)[0]:
            bc[b] += int(counts[b])

    def _rebalance(self) -> None:
        """Move the lightest adequate buckets from the most- to the
        least-loaded cores (at most ``max_moves_per_round``)."""
        self.rebalances += 1
        # the map may change below; conservatively invalidate any
        # planned column even on a zero-move round
        self.map_epoch += 1
        a = self.ewma_alpha
        for b, count in enumerate(self._bucket_count):
            self._bucket_rate[b] = (1 - a) * self._bucket_rate[b] + a * count
            self._bucket_count[b] = 0

        n = self.loads.num_cores
        core_load = [0.0] * n
        for b, core in enumerate(self._bucket_to_core):
            core_load[core] += self._bucket_rate[b]
        mean = sum(core_load) / n
        if mean == 0.0:
            return

        for _ in range(self.max_moves_per_round):
            hot = max(range(n), key=lambda c: core_load[c])
            cold = min(range(n), key=lambda c: core_load[c])
            gap = core_load[hot] - core_load[cold]
            if core_load[hot] - mean <= 0.05 * mean:
                break
            # any bucket with 0 < rate < gap strictly improves balance;
            # among those, pick the one leaving hot and cold closest
            best_bucket = -1
            best_after = gap
            for b, core in enumerate(self._bucket_to_core):
                if core != hot:
                    continue
                rate = self._bucket_rate[b]
                if not 0.0 < rate < gap:
                    continue
                after = abs(gap - 2.0 * rate)
                if after < best_after:
                    best_after, best_bucket = after, b
            if best_bucket < 0:
                break
            rate = self._bucket_rate[best_bucket]
            self._bucket_to_core[best_bucket] = cold
            core_load[hot] -= rate
            core_load[cold] += rate
            self.bucket_moves += 1

    def stats(self) -> dict[str, float]:
        return {"rebalances": self.rebalances, "bucket_moves": self.bucket_moves}
