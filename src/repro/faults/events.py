"""Declarative fault and dynamic-traffic events.

The paper's evaluation assumes a static, always-healthy platform; this
module describes the ways a real deployment stops being one.  Events
are small frozen dataclasses with an activation time, composed into a
:class:`FaultSchedule` that the :class:`~repro.faults.FaultInjector`
replays through the simulator's event heap.

Two kinds of event exist:

* **platform** events (:class:`CoreFail`, :class:`CoreRecover`,
  :class:`CoreSlowdown`) mutate the running simulator — they are
  pushed into the completion heap and applied in strict time order;
* **traffic** events (:class:`TrafficSurge`, :class:`ServiceFlap`)
  reshape the *workload* before the run (arrival processes are
  pre-generated arrays), via
  :func:`repro.faults.injector.apply_traffic_events`.  Both transforms
  are monotone per service, so per-flow packet order — and therefore
  the reorder accounting — stays valid.

Schedules serialise to JSON (``--faults spec.json`` on the sim CLI) and
can be generated randomly from a seed for chaos runs; the same seed
always yields the same schedule.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path

import numpy as np

from repro import units
from repro.errors import ConfigError

__all__ = [
    "FaultEvent",
    "CoreFail",
    "CoreRecover",
    "CoreSlowdown",
    "TrafficSurge",
    "ServiceFlap",
    "FaultSchedule",
    "core_flap",
]


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """Base event: something happens at ``time_ns``."""

    time_ns: int

    #: "platform" events go through the event heap; "traffic" events
    #: transform the workload before the run.
    kind = "platform"
    #: JSON tag (set per subclass).
    type_tag = "?"

    def __post_init__(self) -> None:
        if self.time_ns < 0:
            raise ConfigError(f"event time must be >= 0, got {self.time_ns}")

    @property
    def label(self) -> str:
        return f"{self.type_tag}@{self.time_ns / 1e6:.2f}ms"

    def window_end(self, horizon_ns: int) -> int:
        """End of this event's impact window (default: open-ended)."""
        return horizon_ns

    def expand(self) -> list["FaultEvent"]:
        """Primitive events this one decomposes into (self by default)."""
        return [self]

    def to_dict(self) -> dict:
        d = {"type": self.type_tag}
        d.update(asdict(self))
        return d


@dataclass(frozen=True, slots=True)
class CoreFail(FaultEvent):
    """The core dies: its in-flight packet is lost, its queued
    descriptors are drained or dropped per the injector's policy, and
    until a :class:`CoreRecover` its queue refuses every packet."""

    core_id: int = 0
    type_tag = "core_fail"

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if self.core_id < 0:
            raise ConfigError(f"core_id must be >= 0, got {self.core_id}")

    @property
    def label(self) -> str:
        return f"fail(core {self.core_id})@{self.time_ns / 1e6:.2f}ms"


@dataclass(frozen=True, slots=True)
class CoreRecover(FaultEvent):
    """A previously failed core comes back, idle and empty."""

    core_id: int = 0
    type_tag = "core_recover"

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if self.core_id < 0:
            raise ConfigError(f"core_id must be >= 0, got {self.core_id}")

    @property
    def label(self) -> str:
        return f"recover(core {self.core_id})@{self.time_ns / 1e6:.2f}ms"


@dataclass(frozen=True, slots=True)
class CoreSlowdown(FaultEvent):
    """The core's service time is multiplied by ``factor`` (thermal
    throttling, SMT interference, a noisy neighbour).

    ``factor`` applies to packets *starting* after the event; an
    in-flight packet finishes at its original speed.  With
    ``duration_ns`` set the event expands into the slowdown plus a
    restoring ``factor=1.0`` twin; ``factor=1.0`` by itself ends an
    open-ended slowdown.
    """

    core_id: int = 0
    factor: float = 1.0
    duration_ns: int | None = None
    type_tag = "core_slowdown"

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if self.core_id < 0:
            raise ConfigError(f"core_id must be >= 0, got {self.core_id}")
        if self.factor < 1.0:
            raise ConfigError(
                f"slowdown factor must be >= 1.0, got {self.factor}"
            )
        if self.duration_ns is not None and self.duration_ns <= 0:
            raise ConfigError(
                f"duration_ns must be positive, got {self.duration_ns}"
            )

    @property
    def label(self) -> str:
        return (
            f"slow(core {self.core_id} x{self.factor:g})"
            f"@{self.time_ns / 1e6:.2f}ms"
        )

    def window_end(self, horizon_ns: int) -> int:
        if self.duration_ns is None:
            return horizon_ns
        return self.time_ns + self.duration_ns

    def expand(self) -> list[FaultEvent]:
        if self.duration_ns is None:
            return [self]
        return [
            CoreSlowdown(self.time_ns, self.core_id, self.factor),
            CoreSlowdown(self.time_ns + self.duration_ns, self.core_id, 1.0),
        ]


@dataclass(frozen=True, slots=True)
class TrafficSurge(FaultEvent):
    """The service's arrival rate is multiplied by ``factor`` for
    ``duration_ns``.

    Realised as time compression: the service's arrivals inside the
    window are squeezed toward the window start by ``factor`` (the
    packets arrive ``factor`` times faster, then the rest of the window
    is quiet).  The mapping is monotone, so per-flow order is
    preserved.
    """

    service_id: int = 0
    factor: float = 2.0
    duration_ns: int = units.ms(1)
    kind = "traffic"
    type_tag = "traffic_surge"

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if self.service_id < 0:
            raise ConfigError(f"service_id must be >= 0, got {self.service_id}")
        if self.factor <= 1.0:
            raise ConfigError(f"surge factor must be > 1.0, got {self.factor}")
        if self.duration_ns <= 0:
            raise ConfigError(
                f"duration_ns must be positive, got {self.duration_ns}"
            )

    @property
    def label(self) -> str:
        return (
            f"surge(svc {self.service_id} x{self.factor:g})"
            f"@{self.time_ns / 1e6:.2f}ms"
        )

    def window_end(self, horizon_ns: int) -> int:
        return self.time_ns + self.duration_ns


@dataclass(frozen=True, slots=True)
class ServiceFlap(FaultEvent):
    """The service's traffic flaps: for each of ``cycles`` periods the
    first ``duty`` fraction of the period carries no arrivals — they
    are deferred to the outage's end and burst in together (an upstream
    route flap with buffering, the stickiness-vs-recovery stressor of
    Liang & Borst).  Deferral is monotone, so per-flow order holds.
    """

    service_id: int = 0
    period_ns: int = units.ms(2)
    cycles: int = 3
    duty: float = 0.5
    kind = "traffic"
    type_tag = "service_flap"

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if self.service_id < 0:
            raise ConfigError(f"service_id must be >= 0, got {self.service_id}")
        if self.period_ns <= 0:
            raise ConfigError(f"period_ns must be positive, got {self.period_ns}")
        if self.cycles <= 0:
            raise ConfigError(f"cycles must be positive, got {self.cycles}")
        if not 0.0 < self.duty < 1.0:
            raise ConfigError(f"duty must be in (0, 1), got {self.duty}")

    @property
    def label(self) -> str:
        return (
            f"flap(svc {self.service_id} x{self.cycles})"
            f"@{self.time_ns / 1e6:.2f}ms"
        )

    def window_end(self, horizon_ns: int) -> int:
        return self.time_ns + self.cycles * self.period_ns

    def outage_windows(self) -> list[tuple[int, int]]:
        """The (start, end) spans during which arrivals are deferred."""
        out = []
        down = int(self.period_ns * self.duty)
        for c in range(self.cycles):
            start = self.time_ns + c * self.period_ns
            out.append((start, start + down))
        return out


_EVENT_TYPES: dict[str, type[FaultEvent]] = {
    cls.type_tag: cls
    for cls in (CoreFail, CoreRecover, CoreSlowdown, TrafficSurge, ServiceFlap)
}


def _event_from_dict(d: dict) -> FaultEvent:
    try:
        cls = _EVENT_TYPES[d["type"]]
    except KeyError:
        raise ConfigError(
            f"unknown fault event type {d.get('type')!r}; "
            f"known: {', '.join(sorted(_EVENT_TYPES))}"
        ) from None
    kwargs = {f.name: d[f.name] for f in fields(cls) if f.name in d}
    return cls(**kwargs)


def core_flap(
    core_id: int,
    first_fail_ns: int,
    down_ns: int,
    up_ns: int,
    cycles: int,
) -> list[FaultEvent]:
    """``cycles`` fail/recover pairs for one core (the F4 stressor)."""
    if down_ns <= 0 or up_ns <= 0:
        raise ConfigError("down_ns and up_ns must be positive")
    if cycles <= 0:
        raise ConfigError(f"cycles must be positive, got {cycles}")
    out: list[FaultEvent] = []
    t = first_fail_ns
    for _ in range(cycles):
        out.append(CoreFail(t, core_id))
        out.append(CoreRecover(t + down_ns, core_id))
        t += down_ns + up_ns
    return out


class FaultSchedule:
    """An ordered, validated set of fault events.

    Platform events are kept *expanded* (a windowed slowdown becomes
    apply + restore) and time-sorted; simultaneous events keep their
    construction order.  The schedule is immutable once built.
    """

    def __init__(self, events: list[FaultEvent] | tuple[FaultEvent, ...] = ()) -> None:
        for ev in events:
            if not isinstance(ev, FaultEvent):
                raise ConfigError(f"not a fault event: {ev!r}")
        order = sorted(range(len(events)), key=lambda i: (events[i].time_ns, i))
        self._events: tuple[FaultEvent, ...] = tuple(events[i] for i in order)
        self._check_core_lifecycles()

    # ------------------------------------------------------------------
    def _check_core_lifecycles(self) -> None:
        """Fail/recover must alternate per core; recover needs a fail."""
        down: set[int] = set()
        for ev in self._events:
            if isinstance(ev, CoreFail):
                if ev.core_id in down:
                    raise ConfigError(
                        f"core {ev.core_id} fails at {ev.time_ns} ns while "
                        "already failed"
                    )
                down.add(ev.core_id)
            elif isinstance(ev, CoreRecover):
                if ev.core_id not in down:
                    raise ConfigError(
                        f"core {ev.core_id} recovers at {ev.time_ns} ns "
                        "without a preceding failure"
                    )
                down.discard(ev.core_id)

    def validate_platform(self, num_cores: int, num_services: int) -> None:
        """Check event targets against a concrete platform."""
        max_down = 0
        down: set[int] = set()
        for ev in self._events:
            core = getattr(ev, "core_id", None)
            if core is not None and core >= num_cores:
                raise ConfigError(
                    f"{ev.label} targets core {core} of a "
                    f"{num_cores}-core platform"
                )
            sid = getattr(ev, "service_id", None)
            if sid is not None and sid >= num_services:
                raise ConfigError(
                    f"{ev.label} targets service {sid} of "
                    f"{num_services} services"
                )
            if isinstance(ev, CoreFail):
                down.add(ev.core_id)
                max_down = max(max_down, len(down))
            elif isinstance(ev, CoreRecover):
                down.discard(ev.core_id)
        if max_down >= num_cores:
            raise ConfigError("schedule fails every core at once")

    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def platform_events(self) -> list[FaultEvent]:
        """Expanded primitive platform events, time-sorted."""
        out: list[FaultEvent] = []
        for ev in self._events:
            if ev.kind == "platform":
                out.extend(ev.expand())
        out.sort(key=lambda e: e.time_ns)
        return out

    def traffic_events(self) -> list[FaultEvent]:
        return [ev for ev in self._events if ev.kind == "traffic"]

    def first_event_ns(self) -> int | None:
        """Activation time of the earliest event (None when empty)."""
        return self._events[0].time_ns if self._events else None

    def windows(self, horizon_ns: int) -> list[tuple[FaultEvent, int, int]]:
        """(event, start, end) impact windows, clipped to the horizon.

        A :class:`CoreFail`'s window closes at its matching
        :class:`CoreRecover` (or the horizon); windowed events close at
        their own end.
        """
        out: list[tuple[FaultEvent, int, int]] = []
        for i, ev in enumerate(self._events):
            end = ev.window_end(horizon_ns)
            if isinstance(ev, CoreFail):
                for later in self._events[i + 1:]:
                    if (
                        isinstance(later, CoreRecover)
                        and later.core_id == ev.core_id
                    ):
                        end = later.time_ns
                        break
            if isinstance(ev, CoreRecover):
                continue  # covered by its CoreFail's window
            out.append((ev, ev.time_ns, min(end, horizon_ns)))
        return out

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_json(self, path: str | Path | None = None) -> str:
        payload = json.dumps(
            {"events": [ev.to_dict() for ev in self._events]}, indent=2
        )
        if path is not None:
            Path(path).write_text(payload)
        return payload

    @classmethod
    def from_json(cls, source: str | Path) -> "FaultSchedule":
        """Parse a schedule from JSON text or a JSON file path."""
        if isinstance(source, Path):
            text = source.read_text()
        else:
            text = source.lstrip()
            if not text.startswith("{"):
                text = Path(source).read_text()
        data = json.loads(text)
        events = [_event_from_dict(d) for d in data.get("events", [])]
        return cls(events)

    # ------------------------------------------------------------------
    # seeded chaos
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        *,
        duration_ns: int,
        num_cores: int,
        num_services: int,
        num_events: int = 6,
        max_concurrent_failures: int | None = None,
    ) -> "FaultSchedule":
        """A seeded random schedule for chaos runs.

        Event times land in the middle 80% of the run; failed cores
        always recover after a random fraction of the remaining time,
        and at most ``max_concurrent_failures`` (default: half the
        cores) are down at once.  Same seed, same schedule.
        """
        if duration_ns <= 0:
            raise ConfigError(f"duration_ns must be positive, got {duration_ns}")
        if num_events <= 0:
            raise ConfigError(f"num_events must be positive, got {num_events}")
        if max_concurrent_failures is None:
            cap = max(1, num_cores // 2)
        else:
            if max_concurrent_failures < 0:
                raise ConfigError(
                    f"max_concurrent_failures must be >= 0, "
                    f"got {max_concurrent_failures}"
                )
            # 0 is a real request ("no core failures"), not "unset":
            # ``max_concurrent_failures or default`` silently replaced
            # it with the default and produced CoreFail events anyway
            cap = max_concurrent_failures
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        # a core is failed at most once per random schedule, which both
        # keeps the per-core fail/recover alternation trivially valid
        # and bounds concurrent failures by construction
        failed_cores: set[int] = set()
        lo, hi = int(0.1 * duration_ns), int(0.9 * duration_ns)
        for _ in range(num_events):
            t = int(rng.integers(lo, hi))
            roll = rng.random()
            if roll < 0.45 and len(failed_cores) < cap:
                avail = [c for c in range(num_cores) if c not in failed_cores]
                core = int(rng.choice(avail))
                failed_cores.add(core)
                events.append(CoreFail(t, core))
                recover_at = int(t + rng.uniform(0.2, 0.9) * (duration_ns - t))
                events.append(CoreRecover(max(recover_at, t + 1), core))
            elif roll < 0.7:
                core = int(rng.integers(0, num_cores))
                factor = float(rng.uniform(1.5, 6.0))
                dur = int(rng.uniform(0.05, 0.3) * duration_ns)
                events.append(CoreSlowdown(t, core, round(factor, 2), dur))
            elif roll < 0.9:
                sid = int(rng.integers(0, num_services))
                factor = float(rng.uniform(1.5, 4.0))
                dur = int(rng.uniform(0.05, 0.25) * duration_ns)
                events.append(TrafficSurge(t, sid, round(factor, 2), dur))
            else:
                sid = int(rng.integers(0, num_services))
                period = max(int(0.04 * duration_ns), 2)
                cycles = int(rng.integers(2, 5))
                events.append(ServiceFlap(t, sid, period, cycles))
        return cls(events)
