"""Resilience metrics: how a scheduler degrades and recovers.

Computed offline from a run's telemetry series (a
:class:`~repro.obs.TelemetryProbe` with the default sampler battery)
plus the :class:`~repro.faults.events.FaultSchedule` that was injected.
The probe's cumulative counters let every quantity be attributed to an
event window by differencing:

* **drops / out-of-order departures per window** — counter deltas over
  ``[start, end)`` of each event's impact window;
* **flows remapped per window** — deltas of the scheduler's own
  placement counters (LAPS's ``migrations_installed`` and
  ``core_transfers``, AFS's ``bucket_migrations``);
* **time-to-recover** — the first post-event instant after which the
  per-interval drop rate stays within ``drop_eps_per_ms`` of the
  pre-fault baseline *and* the worst queue occupancy stays within
  ``occ_eps`` of its pre-fault mean, for ``settle_samples`` consecutive
  samples.  ``None`` when the run never settles again.  Only samples up
  to ``arrivals_end_ns`` count: once the arrival process ends, drops
  stop no matter how broken the run is, so the drain phase would
  otherwise read as a universal (and meaningless) recovery.

The pre-fault baseline is measured over the samples before the first
scheduled event, so the same machinery works for under-load runs
(baseline ~0 drops/ms) and overload runs (recovery means "back to the
old drop rate", not "no drops").
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.faults.events import FaultSchedule

__all__ = ["EventImpact", "ResilienceSummary", "compute_resilience"]

#: scheduler counters that each indicate flow remapping when they move
_REMAP_COUNTERS = (
    "sched_migrations_installed",
    "sched_core_transfers",
    "sched_bucket_migrations",
)


@dataclass(frozen=True)
class EventImpact:
    """One fault event's attributable damage and recovery."""

    label: str
    start_ns: int
    end_ns: int
    #: packet drops inside the impact window (all causes)
    drops: int
    #: out-of-order departures inside the impact window
    ooo: int
    #: scheduler placement-counter delta inside the window
    flows_remapped: int
    #: ns from the event until the system settled back to baseline;
    #: None when it never did within the observed series
    recovery_ns: int | None


@dataclass(frozen=True)
class ResilienceSummary:
    """Per-run degradation summary for one scheduler."""

    scheduler: str
    baseline_drop_per_ms: float
    baseline_occ_max: float
    impacts: tuple[EventImpact, ...]
    #: cumulative totals from the first event onward
    post_fault_drops: int
    post_fault_ooo: int
    flows_remapped: int

    @property
    def recovered(self) -> bool:
        """Every event's drop rate and occupancy settled back."""
        return all(i.recovery_ns is not None for i in self.impacts)

    @property
    def worst_recovery_ns(self) -> int | None:
        """Slowest recovery across events (None when any never
        recovered or there were no events)."""
        if not self.impacts or not self.recovered:
            return None
        return max(i.recovery_ns for i in self.impacts)

    def as_row(self) -> dict[str, object]:
        rec = self.worst_recovery_ns
        return {
            "scheduler": self.scheduler,
            "post_fault_drops": self.post_fault_drops,
            "post_fault_ooo": self.post_fault_ooo,
            "flows_remapped": self.flows_remapped,
            "recovered": self.recovered,
            "recover_ms": None if rec is None else rec / 1e6,
        }


def _column(records: list[dict], name: str, default=0) -> list:
    return [r.get(name, default) for r in records]


def _cum_at(times: list[int], values: list, t: int):
    """Value of a cumulative series at time *t* (last sample <= t)."""
    i = bisect_right(times, t) - 1
    return values[i] if i >= 0 else 0


def compute_resilience(
    records: list[dict],
    schedule: FaultSchedule,
    *,
    scheduler: str = "?",
    drop_eps_per_ms: float | None = None,
    occ_eps: float = 8.0,
    settle_samples: int = 3,
    arrivals_end_ns: int | None = None,
) -> ResilienceSummary:
    """Degradation and recovery for one telemetry series.

    *records* are :attr:`TelemetryProbe.records` — each needs ``t_ns``,
    ``dropped``, ``out_of_order`` and ``occ_max`` (the default sampler
    battery provides all of them; scheduler counters are optional and
    only feed ``flows_remapped``).

    ``drop_eps_per_ms`` defaults to 1% of the mean offered rate (from
    the cumulative ``generated`` counter when sampled, else 1 drop/ms):
    burst-induced drop noise scales with the arrival rate, so a fixed
    epsilon would flag recoveries at low load that it rejects at high.
    ``arrivals_end_ns`` bounds the recovery search (pass the workload's
    ``duration_ns``); by default the whole series is scanned.
    """
    if settle_samples <= 0:
        raise ConfigError(
            f"settle_samples must be positive, got {settle_samples}"
        )
    if not records:
        return ResilienceSummary(
            scheduler=scheduler,
            baseline_drop_per_ms=0.0,
            baseline_occ_max=0.0,
            impacts=(),
            post_fault_drops=0,
            post_fault_ooo=0,
            flows_remapped=0,
        )
    times = _column(records, "t_ns")
    dropped = _column(records, "dropped")
    ooo = _column(records, "out_of_order")
    occ_max = _column(records, "occ_max")
    remap = [
        sum(r.get(k, 0) for k in _REMAP_COUNTERS) for r in records
    ]
    horizon = times[-1]
    scan_end = (
        bisect_right(times, arrivals_end_ns)
        if arrivals_end_ns is not None
        else len(times)
    )
    if drop_eps_per_ms is None:
        span_ms = (times[min(scan_end, len(times)) - 1] - times[0]) / 1e6
        offered = records[min(scan_end, len(times)) - 1].get("generated", 0)
        drop_eps_per_ms = max(1.0, 0.01 * offered / span_ms) if span_ms > 0 else 1.0

    first_event = schedule.first_event_ns()
    if first_event is None:
        first_event = horizon

    # pre-fault baseline -----------------------------------------------
    base_end = bisect_right(times, first_event)
    if base_end >= 2:
        span_ms = (times[base_end - 1] - times[0]) / 1e6
        base_rate = (
            (dropped[base_end - 1] - dropped[0]) / span_ms if span_ms > 0 else 0.0
        )
        base_occ = sum(occ_max[:base_end]) / base_end
    else:
        base_rate = 0.0
        base_occ = float(occ_max[0]) if occ_max else 0.0

    # per-interval drop rate (drops per ms, aligned to sample i)
    rate = [0.0] * len(times)
    for i in range(1, len(times)):
        dt_ms = (times[i] - times[i - 1]) / 1e6
        rate[i] = (dropped[i] - dropped[i - 1]) / dt_ms if dt_ms > 0 else 0.0

    def recovery_after(start_ns: int) -> int | None:
        """First settled instant after *start_ns* (see module doc)."""
        begin = bisect_right(times, start_ns)
        run = 0
        for i in range(begin, scan_end):
            calm = (
                rate[i] <= base_rate + drop_eps_per_ms
                and occ_max[i] <= base_occ + occ_eps
            )
            run = run + 1 if calm else 0
            if run >= settle_samples:
                settled_at = times[i - settle_samples + 1]
                return max(settled_at - start_ns, 0)
        return None

    impacts = []
    for ev, start, end in schedule.windows(horizon):
        impacts.append(
            EventImpact(
                label=ev.label,
                start_ns=start,
                end_ns=end,
                drops=_cum_at(times, dropped, end) - _cum_at(times, dropped, start),
                ooo=_cum_at(times, ooo, end) - _cum_at(times, ooo, start),
                flows_remapped=_cum_at(times, remap, end)
                - _cum_at(times, remap, start),
                recovery_ns=recovery_after(start),
            )
        )

    return ResilienceSummary(
        scheduler=scheduler,
        baseline_drop_per_ms=base_rate,
        baseline_occ_max=base_occ,
        impacts=tuple(impacts),
        post_fault_drops=dropped[-1] - _cum_at(times, dropped, first_event),
        post_fault_ooo=ooo[-1] - _cum_at(times, ooo, first_event),
        flows_remapped=remap[-1] - _cum_at(times, remap, first_event),
    )
