"""Fault injection & dynamic events (:mod:`repro.faults`).

Timed platform events (core failure/recovery/slowdown) and traffic
events (surges, service flaps) injected into a running simulation, plus
resilience metrics measuring how each scheduler degrades and recovers.

Quick start::

    from repro.faults import CoreFail, FaultSchedule, FaultInjector
    from repro.sim.system import simulate

    schedule = FaultSchedule([CoreFail(units.ms(4), core_id=5)])
    report = simulate(workload, sched, cfg,
                      injector=FaultInjector(schedule))

or run the canned F1-F4 comparison: ``repro-experiments faults``.
"""

from repro.faults.events import (
    CoreFail,
    CoreRecover,
    CoreSlowdown,
    FaultEvent,
    FaultSchedule,
    ServiceFlap,
    TrafficSurge,
    core_flap,
)
from repro.faults.harness import FAULT_SCENARIOS, FaultScenario, run_scenario
from repro.faults.injector import (
    DRAIN_POLICIES,
    FaultInjector,
    TrafficTransformSource,
    apply_traffic_events,
)
from repro.faults.metrics import (
    EventImpact,
    ResilienceSummary,
    compute_resilience,
)

__all__ = [
    "FaultEvent",
    "CoreFail",
    "CoreRecover",
    "CoreSlowdown",
    "TrafficSurge",
    "ServiceFlap",
    "core_flap",
    "FaultSchedule",
    "DRAIN_POLICIES",
    "FaultInjector",
    "TrafficTransformSource",
    "apply_traffic_events",
    "EventImpact",
    "ResilienceSummary",
    "compute_resilience",
    "FaultScenario",
    "FAULT_SCENARIOS",
    "run_scenario",
]
