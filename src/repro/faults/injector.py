"""The fault-injection engine hook.

A :class:`FaultInjector` binds to a
:class:`~repro.sim.kernel.SimKernel` just before the run starts
(``kernel.attach_injector(injector)``, or the ``injector=`` argument of
:func:`repro.sim.system.simulate`): it pushes every platform event of
its :class:`~repro.faults.events.FaultSchedule` into the kernel's event
heap as ``(core=-1, event)`` payloads and subscribes its :meth:`apply`
to the hook bus's ``timed_event``.  The kernel pops those events in
strict time order, interleaved with packet completions, and dispatches
each through the bus; :meth:`apply` then mutates the kernel's explicit
:class:`~repro.sim.kernel.SimState`:

* **CoreFail** — the in-flight packet dies with the core (its pending
  completion is tombstoned through ``state.killed_pkts``), the queued
  descriptors are handled per the :data:`drain policy <DRAIN_POLICIES>`
  (``drop``: lost; ``reassign``: re-dispatched through the scheduler at
  the failure instant), the queue is marked down (it refuses offers and
  reads as full through the ``LoadView``), and the bus's ``core_down``
  event fires *before* any reassignment so aware policies never
  re-select the dead core;
* **CoreRecover** — the queue accepts again, the core restarts idle
  with a cold i-cache, and ``core_up`` fires;
* **CoreSlowdown** — the core's service-time multiplier changes for
  packets that start from now on.

Traffic events never reach the injector: arrival processes are
generated ahead of dispatch, so :func:`apply_traffic_events` reshapes a
materialized workload *before* the run, and
:class:`TrafficTransformSource` applies the identical transform chunk
by chunk over any :class:`~repro.sim.source.PacketSource` (streamed
fault scenarios).  Everything here is deterministic — the same
workload, scheduler seed and schedule produce byte-identical metrics.

Checkpointing: the injector pickles inside the kernel's
:class:`~repro.sim.kernel.Checkpoint` (its kernel back-reference is
stripped and re-established at resume); its pending timed events
travel in the serialized heap.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.faults.events import (
    CoreFail,
    CoreRecover,
    CoreSlowdown,
    FaultSchedule,
    ServiceFlap,
    TrafficSurge,
)
from repro.sim.source import PacketSource, WorkloadChunk
from repro.sim.workload import Workload

__all__ = [
    "DRAIN_POLICIES",
    "FaultInjector",
    "TrafficTransformSource",
    "apply_traffic_events",
]

#: What happens to a failing core's queued descriptors.
DRAIN_POLICIES = ("drop", "reassign")


class FaultInjector:
    """Applies a :class:`FaultSchedule`'s platform events to a run.

    One injector serves one run (like the kernel itself); construct
    a fresh one per simulation.  Pass it as the ``injector=`` argument
    of :func:`repro.sim.system.simulate`.
    """

    def __init__(
        self, schedule: FaultSchedule, drain_policy: str = "drop"
    ) -> None:
        if drain_policy not in DRAIN_POLICIES:
            raise ConfigError(
                f"unknown drain policy {drain_policy!r}; "
                f"choose from {', '.join(DRAIN_POLICIES)}"
            )
        self.schedule = schedule
        self.drain_policy = drain_policy
        # live fault state (samplers read these)
        self.cores_down: set[int] = set()
        self.slow_cores: dict[int, float] = {}
        # counters
        self.events_applied = 0
        self.packets_killed = 0
        self.packets_drained = 0
        self.packets_reassigned = 0
        self.reassign_drops = 0
        #: (label, t_ns) log of applied events, in application order
        self.applied_log: list[tuple[str, int]] = []
        self._kernel = None
        self._bound = False

    # ------------------------------------------------------------------
    def __getstate__(self):
        # the kernel back-reference would drag the workload and config
        # into every checkpoint; resume re-establishes it via bind()
        state = dict(self.__dict__)
        state["_kernel"] = None
        return state

    # ------------------------------------------------------------------
    def bind(self, kernel, *, schedule_events: bool = True) -> None:
        """Attach to a kernel about to run.

        Pushes the schedule's platform events into the (still empty)
        heap; a resumed run passes ``schedule_events=False`` because
        the restored heap already carries the pending ones.
        """
        if self._bound and schedule_events:
            raise SimulationError("a FaultInjector binds to one run only")
        self.schedule.validate_platform(
            kernel.config.num_cores, len(kernel.config.services)
        )
        self._kernel = kernel
        self._bound = True
        if schedule_events:
            for ev in self.schedule.platform_events():
                kernel.state.events.push(ev.time_ns, (-1, ev))

    # ------------------------------------------------------------------
    def apply(self, event, t_ns: int) -> None:
        """Dispatch one platform event at its activation time."""
        if isinstance(event, CoreFail):
            self._apply_fail(event.core_id, t_ns)
        elif isinstance(event, CoreRecover):
            self._apply_recover(event.core_id, t_ns)
        elif isinstance(event, CoreSlowdown):
            self._apply_slowdown(event.core_id, event.factor)
        else:
            raise SimulationError(f"injector cannot apply {event!r}")
        self.events_applied += 1
        self.applied_log.append((event.label, t_ns))

    # ------------------------------------------------------------------
    def _apply_fail(self, core: int, t_ns: int) -> None:
        kernel = self._kernel
        st = kernel.state
        if core in self.cores_down:
            raise SimulationError(f"core {core} failed while already down")
        self.cores_down.add(core)
        # the packet in service dies with the core
        pkt = st.core_current_pkt[core]
        if st.core_busy[core] and pkt >= 0:
            st.killed_pkts.add(pkt)
            self._drop_packet(pkt, t_ns)
            self.packets_killed += 1
            st.core_current_pkt[core] = -1
        st.core_busy[core] = True  # a dead core never pulls work
        queued = st.queues[core].drain()
        st.queues.mark_down(core)
        # notify before touching the queued packets so an aware
        # scheduler has already evicted the core when reassignment
        # re-consults select_core
        kernel.bus.emit("core_down", core, t_ns)
        if self.drain_policy == "reassign":
            for p in queued:
                self._reassign(p, t_ns)
        else:
            for p in queued:
                self._drop_packet(p, t_ns)
                self.packets_drained += 1

    def _apply_recover(self, core: int, t_ns: int) -> None:
        kernel = self._kernel
        st = kernel.state
        if core not in self.cores_down:
            raise SimulationError(f"core {core} recovered while not down")
        self.cores_down.discard(core)
        st.queues.mark_up(core)
        st.core_busy[core] = False
        st.core_current_pkt[core] = -1
        st.core_last_service[core] = -1  # restarted: i-cache is cold
        kernel.bus.emit("core_up", core, t_ns)

    def _apply_slowdown(self, core: int, factor: float) -> None:
        self._kernel.state.core_speed[core] = factor
        if factor == 1.0:
            self.slow_cores.pop(core, None)
        else:
            self.slow_cores[core] = factor

    # ------------------------------------------------------------------
    def _drop_packet(self, pkt: int, t_ns: int) -> None:
        """Account one fault-caused loss (drop + reorder + record)."""
        kernel = self._kernel
        st = kernel.state
        win = kernel.window  # live packets always sit inside the window
        li = pkt - win.base
        fid = int(win.flow_id[li])
        sq = int(win.seq[li])
        m = st.metrics
        m.dropped += 1
        m.dropped_per_service[int(win.service_id[li])] += 1
        m.fault_dropped += 1
        st.reorder.on_drop(fid, sq)
        if kernel.config.record_departures:
            st.drop_records.append((fid, sq, t_ns))

    def _reassign(self, pkt: int, t_ns: int) -> None:
        """Re-dispatch one drained descriptor through the scheduler.

        Deliberately the scalar ``select_core`` even when the kernel
        runs the vectorized fast path: the reassigned packet is not a
        future arrival (planned columns cover arrivals only), and any
        table mutation this call makes bumps ``map_epoch``, which the
        kernel notices at the next arrival and replans — so fast and
        scalar runs see identical reassignments.
        """
        kernel = self._kernel
        st = kernel.state
        win = kernel.window
        li = pkt - win.base
        sched = kernel.scheduler
        core = sched.select_core(
            int(win.flow_id[li]),
            int(win.service_id[li]),
            int(win.flow_hash[li]),
            t_ns,
        )
        if not 0 <= core < len(st.core_busy):
            raise SimulationError(
                f"{sched.name} returned core {core} during reassignment"
            )
        if st.core_busy[core]:
            q = st.queues[core]
            if q.is_empty:
                kernel.bus.emit("queue_busy", core, t_ns)
            if q.offer(pkt):
                self.packets_reassigned += 1
            else:
                self._drop_packet(pkt, t_ns)
                self.reassign_drops += 1
        else:
            kernel.bus.emit("queue_busy", core, t_ns)
            kernel.start_packet(core, pkt, t_ns)
            self.packets_reassigned += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Injector counters for reports and samplers."""
        return {
            "events_applied": self.events_applied,
            "cores_down": len(self.cores_down),
            "cores_slow": len(self.slow_cores),
            "packets_killed": self.packets_killed,
            "packets_drained": self.packets_drained,
            "packets_reassigned": self.packets_reassigned,
            "reassign_drops": self.reassign_drops,
        }


# ----------------------------------------------------------------------
# traffic-side events (workload transform)
# ----------------------------------------------------------------------
def _transform_arrival_batch(
    arrival: np.ndarray, service: np.ndarray, events
) -> np.ndarray:
    """Per-packet composed traffic transform (new int64 array).

    Events apply sequentially in canonical schedule order, each masking
    on the *already-transformed* times; the composition is purely
    elementwise, so whole-array and per-chunk application produce
    identical values — :func:`apply_traffic_events` and
    :class:`TrafficTransformSource` both route through here (and the
    scalar twin :func:`_transform_arrival_scalar` mirrors the exact
    float-divide-then-truncate surge arithmetic), which is what keeps
    the two paths bit-identical.
    """
    arrival = arrival.astype(np.int64, copy=True)
    for ev in events:
        if isinstance(ev, TrafficSurge):
            t0, t1 = ev.time_ns, ev.time_ns + ev.duration_ns
            mask = (service == ev.service_id) & (arrival >= t0) & (arrival < t1)
            arrival[mask] = t0 + ((arrival[mask] - t0) / ev.factor).astype(
                np.int64
            )
        elif isinstance(ev, ServiceFlap):
            for start, end in ev.outage_windows():
                mask = (
                    (service == ev.service_id)
                    & (arrival >= start)
                    & (arrival < end)
                )
                arrival[mask] = end
        else:  # pragma: no cover - kinds are closed over this module
            raise ConfigError(f"unknown traffic event {ev!r}")
    return arrival


def _transform_arrival_scalar(t_ns: int, service_id: int, events) -> int:
    """Scalar twin of :func:`_transform_arrival_batch` (same arithmetic,
    including the surge's float division + int truncation)."""
    t = int(t_ns)
    for ev in events:
        if isinstance(ev, TrafficSurge):
            if (
                service_id == ev.service_id
                and ev.time_ns <= t < ev.time_ns + ev.duration_ns
            ):
                t = ev.time_ns + int((t - ev.time_ns) / ev.factor)
        elif isinstance(ev, ServiceFlap):
            if service_id == ev.service_id:
                for start, end in ev.outage_windows():
                    if start <= t < end:
                        t = end
        else:  # pragma: no cover - kinds are closed over this module
            raise ConfigError(f"unknown traffic event {ev!r}")
    return t


def apply_traffic_events(workload: Workload, schedule: FaultSchedule) -> Workload:
    """Reshape *workload* per the schedule's traffic events.

    Events apply in time order to the already-transformed arrival
    times.  Both transforms are monotone within a service — a surge
    compresses its window toward the window start, a flap defers outage
    arrivals to the outage end — and the final stable re-sort keeps
    equal-time packets in their original relative order, so per-flow
    sequence numbers stay nondecreasing along the new arrival order and
    the reorder accounting remains valid.

    Returns *workload* unchanged when the schedule has no traffic
    events.  For the chunked equivalent (identical output, O(chunk)
    memory) wrap the run's :class:`~repro.sim.source.PacketSource` in a
    :class:`TrafficTransformSource`.
    """
    events = schedule.traffic_events()
    if not events:
        return workload
    arrival = _transform_arrival_batch(
        workload.arrival_ns, workload.service_id, events
    )
    order = np.argsort(arrival, kind="stable")
    return Workload(
        arrival_ns=arrival[order],
        service_id=workload.service_id[order],
        flow_id=workload.flow_id[order],
        size_bytes=workload.size_bytes[order],
        flow_hash=workload.flow_hash[order],
        seq=workload.seq[order],
        num_flows=workload.num_flows,
        num_services=workload.num_services,
        duration_ns=workload.duration_ns,
    )


class TrafficTransformSource(PacketSource):
    """Streaming :func:`apply_traffic_events`: a :class:`PacketSource`
    whose chunks are the inner source's packets with the schedule's
    traffic events applied — bit-identical to transforming the whole
    materialized workload, at O(chunk + displaced packets) memory.

    Soundness: each per-service composed transform is *monotone
    nondecreasing* (a surge with ``factor > 1`` compresses its window
    toward the window start without crossing the boundary; a flap
    defers outage arrivals to the outage end), so once the inner stream
    has advanced to original time ``W``, no future packet of service
    *s* can land before ``g_s(W)``.  Ingested packets are transformed,
    merged into a pending pool stable-sorted by transformed time, and
    released up to ``min_s g_s(W)``; equal transformed times keep input
    order, matching the whole-array stable argsort exactly.
    """

    def __init__(self, inner: PacketSource, schedule: FaultSchedule) -> None:
        super().__init__()
        self.inner = inner
        self.schedule = schedule
        self._events = schedule.traffic_events()
        self.num_packets = inner.num_packets
        self.num_flows = inner.num_flows
        self.num_services = inner.num_services
        self.duration_ns = inner.duration_ns
        self.chunk_size = inner.chunk_size
        self._reset()

    def _reset(self) -> None:
        # pending packets: transformed, stable-sorted by new arrival
        # time (col 0); None until first ingest
        self._pending: tuple[np.ndarray, ...] | None = None
        self._ingested_ns = -1  # last original arrival seen
        self._emitted = 0
        self._inner_done = False

    # -- cursor lifecycle ----------------------------------------------
    def clone(self) -> "TrafficTransformSource":
        return TrafficTransformSource(self.inner.clone(), self.schedule)

    def snapshot(self) -> dict:
        return {
            "inner": self.inner.snapshot(),
            "pending": self._pending,
            "ingested_ns": self._ingested_ns,
            "emitted": self._emitted,
            "inner_done": self._inner_done,
        }

    def restore(self, snapshot: dict) -> None:
        self._reset()
        self.inner.restore(snapshot["inner"])
        self._pending = snapshot["pending"]
        self._ingested_ns = int(snapshot["ingested_ns"])
        self._emitted = int(snapshot["emitted"])
        self._inner_done = bool(snapshot["inner_done"])

    # -- the stream transform ------------------------------------------
    def next_chunk(self):
        if not self._events:  # pass-through, re-based for our counter
            chunk = self.inner.next_chunk()
            if chunk is None:
                return None
            base = self._emitted
            self._emitted += len(chunk)
            return WorkloadChunk(
                base, chunk.arrival_ns, chunk.service_id, chunk.flow_id,
                chunk.size_bytes, chunk.flow_hash, chunk.seq,
            )
        target = self.chunk_size if self.chunk_size else max(self.num_packets, 1)
        releasable = 0
        while not self._inner_done:
            releasable = self._releasable()
            if releasable >= target:
                break
            chunk = self.inner.next_chunk()
            if chunk is None:
                self._inner_done = True
                releasable = (
                    self._pending[0].shape[0] if self._pending is not None else 0
                )
            else:
                self._ingest(chunk)
        if releasable == 0:
            return None
        n = min(target, releasable)
        cols = tuple(c[:n] for c in self._pending)
        rest = self._pending[0].shape[0] - n
        self._pending = tuple(c[n:] for c in self._pending) if rest else None
        base = self._emitted
        self._emitted += n
        return WorkloadChunk(base, *cols)

    def _ingest(self, chunk) -> None:
        """Transform one inner chunk and merge it into the pending pool
        (stable by transformed time: pending packets were ingested
        earlier, so concatenating them first keeps ties in input order).
        """
        arrival = _transform_arrival_batch(
            chunk.arrival_ns, chunk.service_id, self._events
        )
        if len(chunk):
            self._ingested_ns = int(chunk.arrival_ns[-1])
        cols = (
            arrival, chunk.service_id, chunk.flow_id,
            chunk.size_bytes, chunk.flow_hash, chunk.seq,
        )
        if self._pending is not None:
            cols = tuple(
                np.concatenate([p, c]) for p, c in zip(self._pending, cols)
            )
        order = np.argsort(cols[0], kind="stable")
        self._pending = tuple(c[order] for c in cols)

    def _releasable(self) -> int:
        """How many pending packets can never be preceded by a future
        inner packet: those at or below ``min_s g_s(W)``."""
        if self._pending is None or self._ingested_ns < 0:
            return 0
        horizon = min(
            _transform_arrival_scalar(self._ingested_ns, sid, self._events)
            for sid in range(self.num_services)
        )
        # a future packet has original time >= W hence transformed time
        # >= g_s(W) >= horizon, and being later in input order it sorts
        # after equal-time pending packets: release <= horizon is safe
        return int(np.searchsorted(self._pending[0], horizon, side="right"))
