"""Fault scenarios F1-F4: scheduler resilience comparison.

Four stressors over the paper's 16-core, 4-service platform, each run
under FCFS, AFS and LAPS with identical workloads and fault schedules:

* **F1 — core loss under-load**: one core of a loaded service dies
  mid-run and never returns, at ~70% utilisation.  A resilient
  scheduler re-spreads the dead core's flows and the drop rate returns
  to its (near-zero) baseline; the interesting signal is how much
  reordering the re-spreading cost.
* **F2 — core loss at overload**: the same failure at ~110%
  utilisation, where the lost capacity cannot be hidden — the metric
  is graceful degradation, not full recovery.
* **F3 — slowdown + surge**: a core is throttled 4x for a third of the
  run while one service's traffic doubles for a window — compound
  stress without any capacity actually disappearing.
* **F4 — repeated flap**: one core fails and recovers three times
  (the stickiness-vs-recovery trade-off: every reaction to the flap is
  re-punished when the core returns).

``run()`` produces the comparison table the experiments CLI prints
(``repro-experiments faults``); ``run_scenario`` returns the raw
reports and :class:`~repro.faults.metrics.ResilienceSummary` per
scheduler for tests and ad-hoc analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import units
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.experiments.runner import ExperimentResult
from repro.faults.events import (
    CoreFail,
    CoreSlowdown,
    FaultEvent,
    FaultSchedule,
    TrafficSurge,
    core_flap,
)
from repro.faults.injector import FaultInjector, apply_traffic_events
from repro.faults.metrics import ResilienceSummary, compute_resilience
from repro.net.service import default_services
from repro.obs.probes import TelemetryProbe
from repro.schedulers.afs import AFSScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.config import SimConfig
from repro.sim.generator import HoltWintersParams
from repro.sim.metrics import SimReport
from repro.sim.system import simulate
from repro.sim.workload import Workload, build_workload
from repro.util.parallel import parallel_map
from repro.workloads.traces import resolve_trace

__all__ = [
    "FaultScenario",
    "FAULT_SCENARIOS",
    "fault_workload",
    "run_scenario",
    "run",
]

#: one trace preset per service (same spirit as Table V's groups)
_SERVICE_TRACES = ("caida-1", "caida-2", "auck-1", "auck-2")

NUM_CORES = 16
SCHEDULER_NAMES = ("fcfs", "afs", "laps")


@dataclass(frozen=True)
class FaultScenario:
    """One named stressor: a utilisation level plus a schedule rule."""

    name: str
    title: str
    utilisation: float
    #: duration_ns -> events (times scale with the run length)
    events_for: Callable[[int], list[FaultEvent]]
    drain_policy: str = "drop"

    def schedule(self, duration_ns: int) -> FaultSchedule:
        return FaultSchedule(self.events_for(duration_ns))


def _f1_events(duration_ns: int) -> list[FaultEvent]:
    return [CoreFail(duration_ns // 3, core_id=5)]


def _f2_events(duration_ns: int) -> list[FaultEvent]:
    return [CoreFail(duration_ns // 3, core_id=5)]


def _f3_events(duration_ns: int) -> list[FaultEvent]:
    return [
        CoreSlowdown(
            duration_ns // 4, core_id=2, factor=4.0,
            duration_ns=duration_ns // 3,
        ),
        TrafficSurge(
            duration_ns // 2, service_id=1, factor=2.0,
            duration_ns=duration_ns // 6,
        ),
    ]


def _f4_events(duration_ns: int) -> list[FaultEvent]:
    return core_flap(
        core_id=9,
        first_fail_ns=duration_ns // 4,
        down_ns=duration_ns // 10,
        up_ns=duration_ns // 10,
        cycles=3,
    )


# Utilisations are headroom-aware: losing one of a 4-core service's
# cores multiplies its local load by 4/3, so "under-load" scenarios sit
# low enough that the degraded service stays servable and recovery to
# baseline is possible at all, while F2 is hopeless by construction.
FAULT_SCENARIOS: dict[str, FaultScenario] = {
    "F1": FaultScenario(
        "F1", "single core loss, under-load", 0.50, _f1_events
    ),
    "F2": FaultScenario(
        "F2", "single core loss, overload", 1.10, _f2_events
    ),
    "F3": FaultScenario(
        "F3", "core slowdown + traffic surge", 0.70, _f3_events
    ),
    "F4": FaultScenario(
        "F4", "repeated core flap", 0.60, _f4_events
    ),
}


def _make_scheduler(name: str, num_services: int, seed: int) -> Scheduler:
    if name == "laps":
        return LAPSScheduler(LAPSConfig(num_services=num_services), rng=seed)
    if name == "afs":
        return AFSScheduler(cooldown_ns=units.us(100))
    if name == "fcfs":
        return FCFSScheduler()
    raise ValueError(f"unknown fault-harness scheduler {name!r}")


def fault_workload(
    utilisation: float,
    duration_ns: int,
    trace_packets: int = 60_000,
    seed: int = 0,
    num_cores: int = NUM_CORES,
    trace_names: tuple[str, ...] | None = None,
) -> Workload:
    """A steady 4-service workload at *utilisation* of ideal capacity.

    Steady (flat Holt-Winters level, no trend/season) on purpose: fault
    recovery is detected as "drop rate back at baseline", which wants a
    flat baseline rather than the Table IV seasonal shapes.

    ``trace_names`` swaps the default header mix for any presets
    :func:`repro.workloads.traces.resolve_trace` knows — e.g. the
    heavy-tailed CDF presets — to stress recovery under other size
    distributions.
    """
    services = default_services()
    names = trace_names or _SERVICE_TRACES
    traces = [
        resolve_trace(name, num_packets=trace_packets)
        for name in names[: len(services)]
    ]
    per_service_cores = num_cores // len(services)
    params = []
    for sid, trace in enumerate(traces):
        mean_size = float(trace.size_bytes.mean())
        cap = per_service_cores * services[sid].capacity_pps(mean_size)
        params.append(HoltWintersParams(a=utilisation * cap))
    return build_workload(traces, params, duration_ns=duration_ns, seed=seed)


def run_scenario(
    scenario: FaultScenario,
    *,
    quick: bool = False,
    seed: int = 0,
    duration_ns: int | None = None,
    trace_packets: int | None = None,
    schedulers: tuple[str, ...] = SCHEDULER_NAMES,
    probe_period_ns: int | None = None,
    trace_names: tuple[str, ...] | None = None,
    engine: str | None = None,
    shards: int | None = None,
    shard_workers: int = 0,
    shard_window_ns: int | None = None,
) -> dict[str, tuple[SimReport, ResilienceSummary | None]]:
    """One scenario under each scheduler; returns per-scheduler
    ``(report, resilience)`` keyed by scheduler name.

    ``shards`` ≥ 2 runs each scheduler sharded (see
    :func:`repro.sim.sharding.run_sharded`); telemetry probes sample
    global state and cannot attach to a sharded run, so the resilience
    summary comes back ``None`` — the report's drop/fault counters are
    still exact.  Only sharding-capable schedulers can run this way
    (LAPS, and the static maps); the default FCFS/AFS field cannot.
    """
    if duration_ns is None:
        duration_ns = units.ms(12) if quick else units.ms(40)
    if trace_packets is None:
        trace_packets = 20_000 if quick else 60_000
    if probe_period_ns is None:
        probe_period_ns = max(duration_ns // 160, units.us(10))
    sharded = shards is not None and shards > 1
    schedule = scenario.schedule(duration_ns)
    workload = apply_traffic_events(
        fault_workload(
            scenario.utilisation, duration_ns,
            trace_packets=trace_packets, seed=seed,
            trace_names=trace_names,
        ),
        schedule,
    )
    config = SimConfig(num_cores=NUM_CORES, collect_latencies=False)
    num_services = len(config.services)
    out: dict[str, tuple[SimReport, ResilienceSummary | None]] = {}
    for name in schedulers:
        sched = _make_scheduler(name, num_services, seed + 1)
        injector = FaultInjector(schedule, drain_policy=scenario.drain_policy)
        if sharded:
            report = simulate(
                workload, sched, config, injector=injector, engine=engine,
                shards=shards, shard_workers=shard_workers,
                shard_window_ns=shard_window_ns,
            )
            out[name] = (report, None)
            continue
        probe = TelemetryProbe(probe_period_ns)
        report = simulate(workload, sched, config, probe=probe,
                          injector=injector, engine=engine)
        resilience = compute_resilience(
            probe.records, schedule, scheduler=name,
            arrivals_end_ns=duration_ns,
        )
        out[name] = (report, resilience)
    return out


def _scenario_task(args: tuple) -> list[dict]:
    """One scenario's table rows (module-level for pickling)."""
    sname, quick, seed, duration_ns, trace_packets, trace_names, engine = args
    results = run_scenario(
        FAULT_SCENARIOS[sname], quick=quick, seed=seed,
        duration_ns=duration_ns, trace_packets=trace_packets,
        trace_names=trace_names, engine=engine,
    )
    rows = []
    for sched_name, (rep, res) in results.items():
        rec = res.worst_recovery_ns
        rows.append(dict(
            scenario=sname,
            scheduler=sched_name,
            offered=rep.generated,
            dropped=rep.dropped,
            drop_frac=round(rep.drop_fraction, 4),
            fault_drops=rep.fault_dropped,
            ooo=rep.out_of_order,
            post_ooo=res.post_fault_ooo,
            remapped=res.flows_remapped,
            recovered=res.recovered,
            recover_ms=None if rec is None else round(rec / 1e6, 2),
        ))
    return rows


def run(
    quick: bool = False,
    scenarios: tuple[str, ...] | None = None,
    seed: int = 0,
    duration_ns: int | None = None,
    trace_packets: int | None = None,
    jobs: int = 1,
    trace_names: tuple[str, ...] | None = None,
    engine: str | None = None,
) -> ExperimentResult:
    """F1-F4 x {FCFS, AFS, LAPS}: the resilience comparison table.

    ``jobs`` parallelises across scenarios (0 = auto), exactly like the
    figure harnesses.  ``trace_names`` swaps the per-service header mix
    (any :func:`~repro.workloads.traces.resolve_trace` presets).
    """
    names = scenarios or tuple(FAULT_SCENARIOS)
    meta = {"quick": quick, "seed": seed}
    if trace_names is not None:
        meta["traces"] = ",".join(trace_names)
    result = ExperimentResult(
        "Faults F1-F4 - scheduler degradation and recovery",
        columns=[
            "scenario", "scheduler", "offered",
            "dropped", "drop_frac", "fault_drops",
            "ooo", "post_ooo",
            "remapped", "recovered", "recover_ms",
        ],
        meta=meta,
    )
    tasks = [(sname, quick, seed, duration_ns, trace_packets, trace_names,
              engine)
             for sname in names]
    for rows in parallel_map(_scenario_task, tasks, jobs=jobs):
        for row in rows:
            result.add(**row)
    return result
