"""repro — reproduction of "Flow Migration on Multicore Network
Processors: Load Balancing While Minimizing Packet Reordering"
(Iqbal, Holt, Ryoo, de Veciana, John — ICPP 2013).

The package implements the paper's LAPS scheduler (per-service map
tables over incremental hashing, migration of AFD-detected aggressive
flows, dynamic core allocation) together with every substrate its
evaluation depends on: CRC/Toeplitz hashing, a packet/flow/service
model, synthetic heavy-tailed traces plus pcap ingest, a discrete-event
network-processor simulator, the FCFS/AFS/static-hash baselines, and an
experiment harness regenerating each of the paper's figures.

Quickstart::

    import repro

    trace = repro.preset_trace("caida-1", num_packets=50_000)
    wl = repro.build_workload(
        [trace], [repro.HoltWintersParams(a=2e6)], duration_ns=repro.units.ms(20)
    )
    report = repro.simulate(wl, repro.make_scheduler("laps"),
                            repro.SimConfig(num_cores=8))
    print(report.as_row())
"""

from repro import units
from repro.errors import (
    CapacityError,
    ConfigError,
    ReproError,
    SchedulerError,
    SimulationError,
    TraceError,
    TraceFormatError,
)
from repro.hashing import (
    CRC16_CCITT,
    FiveTuple,
    ToeplitzHasher,
    crc16_ccitt,
    flow_hash,
    flow_hash_batch,
)
from repro.net import (
    FlowTable,
    MatchRule,
    Packet,
    Service,
    ServiceClassifier,
    ServiceSet,
    build_edge_router_graph,
    default_edge_rules,
    default_services,
    services_from_graph,
)
from repro.trace import (
    Trace,
    concentration,
    generate_trace,
    native_workload,
    preset_trace,
    rank_size,
    SyntheticTraceConfig,
    top_k_flows,
    trace_from_pcap,
)
from repro.core import (
    AFDConfig,
    AggressiveFlowDetector,
    IncrementalHash,
    LAPSConfig,
    LAPSScheduler,
    LAPSTimingModel,
    LFUCache,
)
from repro.schedulers import (
    AFSScheduler,
    ExactTopKDetector,
    FCFSScheduler,
    Scheduler,
    StaticHashScheduler,
    TopKMigrationScheduler,
    available_schedulers,
    make_scheduler,
)
from repro.sim import (
    HoltWinters,
    HoltWintersParams,
    MaterializedSource,
    PacketSource,
    PowerModel,
    QueueProbe,
    RestorationBuffer,
    SimConfig,
    SimReport,
    StreamingSource,
    Workload,
    build_workload,
    restoration_cost,
    simulate,
)
from repro.obs import (
    RunManifest,
    TelemetryProbe,
    load_run,
    profile_run,
    write_run,
)
from repro.workloads import (
    DiurnalParams,
    MMPPParams,
    PcapReplaySource,
    SizeDistribution,
    make_workload,
    resolve_trace,
    workload_preset_names,
)

__version__ = "1.0.0"

__all__ = [
    "units",
    # errors
    "ReproError", "ConfigError", "TraceError", "TraceFormatError",
    "SimulationError", "SchedulerError", "CapacityError",
    # hashing
    "CRC16_CCITT", "FiveTuple", "ToeplitzHasher", "crc16_ccitt",
    "flow_hash", "flow_hash_batch",
    # net
    "FlowTable", "MatchRule", "Packet", "Service", "ServiceClassifier",
    "ServiceSet", "build_edge_router_graph", "default_edge_rules",
    "default_services", "services_from_graph",
    # trace
    "Trace", "concentration", "generate_trace", "native_workload",
    "preset_trace", "rank_size", "SyntheticTraceConfig", "top_k_flows",
    "trace_from_pcap",
    # core (LAPS)
    "AFDConfig", "AggressiveFlowDetector", "IncrementalHash",
    "LAPSConfig", "LAPSScheduler", "LAPSTimingModel", "LFUCache",
    # schedulers
    "AFSScheduler", "ExactTopKDetector", "FCFSScheduler", "Scheduler",
    "StaticHashScheduler", "TopKMigrationScheduler",
    "available_schedulers", "make_scheduler",
    # sim
    "HoltWinters", "HoltWintersParams", "MaterializedSource",
    "PacketSource", "PowerModel", "QueueProbe", "RestorationBuffer",
    "SimConfig", "SimReport", "StreamingSource", "Workload",
    "build_workload", "restoration_cost", "simulate",
    # obs (telemetry)
    "RunManifest", "TelemetryProbe", "load_run", "profile_run", "write_run",
    # workloads (internet-scale library)
    "SizeDistribution", "MMPPParams", "DiurnalParams", "PcapReplaySource",
    "make_workload", "resolve_trace", "workload_preset_names",
    "__version__",
]
