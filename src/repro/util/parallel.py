"""Process-parallel experiment execution.

The experiment harnesses are embarrassingly parallel (one independent
simulation per scenario x scheduler), and the simulator is pure-Python
CPU-bound work, so processes — not threads — are the right tool.
:func:`parallel_map` preserves input order, falls back to in-process
execution for ``jobs=1`` (keeps tracebacks simple and avoids fork
overhead for quick runs), and caps the pool at the item count.

Task functions must be module-level (picklable) and take a single
argument; package everything else into that argument.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_jobs"]


def default_jobs() -> int:
    """A sensible worker count: the CPU count, capped at 8 (the
    harnesses rarely have more than 8 independent units)."""
    return min(os.cpu_count() or 1, 8)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int = 1,
) -> list[R]:
    """``[fn(x) for x in items]``, optionally across processes.

    Order is preserved.  ``jobs=1`` runs inline; ``jobs=0`` means
    "auto" (:func:`default_jobs`).
    """
    items = list(items)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = default_jobs()
    if jobs == 1 or len(items) <= 1:
        return [fn(x) for x in items]
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
