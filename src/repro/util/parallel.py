"""Process-parallel experiment execution.

The experiment harnesses are embarrassingly parallel (one independent
simulation per scenario x scheduler), and the simulator is pure-Python
CPU-bound work, so processes — not threads — are the right tool.
:func:`parallel_map` preserves input order, falls back to in-process
execution for ``jobs=1`` (keeps tracebacks simple and avoids fork
overhead for quick runs), and caps the pool at the item count.

Task functions must be module-level (picklable) and take a single
argument; package everything else into that argument.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_jobs", "ParallelTaskError"]


class ParallelTaskError(RuntimeError):
    """A pool worker raised: carries *which* item failed.

    ``ProcessPoolExecutor`` re-raises worker exceptions with a stack
    that ends inside the futures machinery, losing the failing task's
    identity; this wrapper keeps the offending item (its repr) and the
    original error's type and message in its own message, so the
    failing scenario is identifiable from the parent-side traceback.
    """

    def __init__(self, message: str, item_repr: str = "?") -> None:
        super().__init__(message)
        self.item_repr = item_repr

    def __reduce__(self):
        # exceptions cross the process boundary by pickle; the default
        # reduce re-calls __init__ with args only, dropping item_repr
        return (type(self), (self.args[0], self.item_repr))

    @classmethod
    def wrap(cls, item, cause: BaseException) -> "ParallelTaskError":
        return cls(
            f"parallel task failed for item {item!r}: "
            f"{type(cause).__name__}: {cause}",
            item_repr=repr(item),
        )


def default_jobs() -> int:
    """A sensible worker count: the CPU count, capped at 8 (the
    harnesses rarely have more than 8 independent units).

    The ``REPRO_JOBS`` environment variable overrides the heuristic
    (any integer >= 1), so CI and batch drivers can pin the pool size
    without threading a flag through every harness.
    """
    env = os.environ.get("REPRO_JOBS")
    if env is not None:
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
        if jobs < 1:
            raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
        return jobs
    return min(os.cpu_count() or 1, 8)


def _invoke(packed: tuple) -> R:
    """Run one task in a worker, labelling any failure with its item."""
    fn, item = packed
    try:
        return fn(item)
    except Exception as exc:
        raise ParallelTaskError.wrap(item, exc) from exc


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int = 1,
) -> list[R]:
    """``[fn(x) for x in items]``, optionally across processes.

    Order is preserved.  ``jobs=1`` runs inline; ``jobs=0`` means
    "auto" (:func:`default_jobs`).  A task that raises in a pool worker
    surfaces as :class:`ParallelTaskError` naming the failing item (the
    inline path raises the original exception unwrapped — its traceback
    already points at the task).
    """
    items = list(items)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = default_jobs()
    if jobs == 1 or len(items) <= 1:
        return [fn(x) for x in items]
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_invoke, [(fn, x) for x in items]))
