"""Process-parallel execution: a persistent spawn-context worker pool.

The experiment harnesses are embarrassingly parallel (one independent
simulation per scenario x scheduler), and the simulator is pure-Python
CPU-bound work, so processes — not threads — are the right tool.  Two
layers live here:

* :class:`ProcessPool` — a reusable pool of **persistent** spawn-context
  workers.  Workers survive across batches (no fork-per-task), each one
  is addressable by index (``call``/``scatter`` route a task to a
  *specific* worker, which is what the sharded coordinator needs: shard
  state lives in the worker process and every window must go back to
  the worker that holds it), and results come back in submission order.
* :func:`parallel_map` — the historical order-preserving map facade,
  now running over one shared :class:`ProcessPool` so repeated harness
  invocations in a process reuse the same workers.

The spawn start method is used unconditionally: it is the only start
method that is safe with the numpy/BLAS threading state the simulator
touches, and it keeps worker behaviour identical across platforms.
Task functions must be module-level (picklable) and take a single
argument; package everything else into that argument.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from collections import deque
from multiprocessing import connection as mpconn
from typing import Any, Callable, Iterable, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "parallel_map",
    "default_jobs",
    "ParallelTaskError",
    "ProcessPool",
    "shared_pool",
    "in_pool_worker",
]

#: set in the environment of every pool worker — nested ``parallel_map``
#: calls inside a worker detect it and run inline (daemonic workers may
#: not spawn children, and a worker fanning out again would oversubscribe
#: the machine anyway)
_WORKER_ENV = "REPRO_POOL_WORKER"


class ParallelTaskError(RuntimeError):
    """A pool worker raised: carries *which* item failed.

    A worker exception crossing the process boundary loses the failing
    task's identity; this wrapper keeps the offending item (its repr)
    and the original error's type and message in its own message, so
    the failing scenario is identifiable from the parent-side
    traceback.
    """

    def __init__(self, message: str, item_repr: str = "?") -> None:
        super().__init__(message)
        self.item_repr = item_repr

    def __reduce__(self):
        # exceptions cross the process boundary by pickle; the default
        # reduce re-calls __init__ with args only, dropping item_repr
        return (type(self), (self.args[0], self.item_repr))

    @classmethod
    def wrap(cls, item, cause: BaseException) -> "ParallelTaskError":
        return cls(
            f"parallel task failed for item {item!r}: "
            f"{type(cause).__name__}: {cause}",
            item_repr=repr(item),
        )


def default_jobs() -> int:
    """A sensible worker count: the CPU count, capped at 8 (the
    harnesses rarely have more than 8 independent units).

    The ``REPRO_JOBS`` environment variable overrides the heuristic
    (any integer >= 1), so CI and batch drivers can pin the pool size
    without threading a flag through every harness.
    """
    env = os.environ.get("REPRO_JOBS")
    if env is not None:
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
        if jobs < 1:
            raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
        return jobs
    return min(os.cpu_count() or 1, 8)


def in_pool_worker() -> bool:
    """True inside a :class:`ProcessPool` worker process."""
    return os.environ.get(_WORKER_ENV, "") not in ("", "0")


def _invoke(packed: tuple) -> R:
    """Run one task, labelling any failure with its item."""
    fn, item = packed
    try:
        return fn(item)
    except Exception as exc:
        raise ParallelTaskError.wrap(item, exc) from exc


def _worker_main(conn) -> None:
    """Worker loop: ``(fn, item)`` in, ``("ok", result)`` out.

    Failures come back as ``("err", ParallelTaskError)`` rather than
    killing the worker, so one bad task does not tear down the sticky
    state other tasks left in the process.
    """
    os.environ[_WORKER_ENV] = "1"
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:  # shutdown sentinel
            break
        fn, item = msg
        try:
            payload = ("ok", fn(item))
        except Exception as exc:  # noqa: BLE001 — report, don't die
            payload = ("err", ParallelTaskError.wrap(item, exc))
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _Worker:
    __slots__ = ("proc", "conn")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn


class ProcessPool:
    """A persistent, index-addressable pool of spawn-context workers.

    Workers are spawned lazily (slot by slot, on first use) and persist
    until :meth:`shutdown` — submitting ten batches costs ten pipe
    round-trips per worker, not ten process launches.  ``call(i, ...)``
    always lands on worker slot ``i % size``, which gives callers a
    *sticky* address: module-level state a task leaves behind in its
    worker (the sharded coordinator's resident shards) is reachable by
    every later task routed to the same slot.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self._ctx = multiprocessing.get_context("spawn")
        self._slots: list[_Worker | None] = [None] * workers
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._slots)

    def _worker(self, slot: int) -> _Worker:
        if self._closed:
            raise RuntimeError("pool is shut down")
        w = self._slots[slot]
        if w is None:
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            w = _Worker(proc, parent_conn)
            self._slots[slot] = w
        return w

    @staticmethod
    def _recv(w: _Worker):
        try:
            kind, value = w.conn.recv()
        except (EOFError, OSError):
            raise ParallelTaskError(
                "pool worker died mid-task (killed or crashed hard)"
            ) from None
        if kind == "err":
            raise value
        return value

    # ------------------------------------------------------------------
    def call(self, index: int, fn: Callable[[T], R], item: T) -> R:
        """Run ``fn(item)`` on worker slot ``index % size`` and wait."""
        w = self._worker(index % self.size)
        w.conn.send((fn, item))
        return self._recv(w)

    def scatter(self, calls: list[tuple[int, Callable, Any]]) -> list:
        """Run ``(slot_index, fn, item)`` tasks concurrently.

        Tasks routed to the same slot run sequentially in submission
        order (a slot is one process); distinct slots run in parallel.
        Results return in ``calls`` order.  The first task failure is
        re-raised after every in-flight task has been collected, so the
        pool's pipes stay clean for the next batch.
        """
        results: list[Any] = [None] * len(calls)
        queues: dict[int, deque[int]] = {}
        for i, (index, _fn, _item) in enumerate(calls):
            queues.setdefault(index % self.size, deque()).append(i)
        inflight: dict[Any, tuple[int, int]] = {}  # conn -> (slot, call idx)
        first_error: BaseException | None = None

        def dispatch(slot: int) -> None:
            if queues[slot] and first_error is None:
                i = queues[slot].popleft()
                w = self._worker(slot)
                _, fn, item = calls[i]
                w.conn.send((fn, item))
                inflight[w.conn] = (slot, i)

        for slot in list(queues):
            dispatch(slot)
        while inflight:
            for conn in mpconn.wait(list(inflight)):
                slot, i = inflight.pop(conn)
                try:
                    kind, value = conn.recv()
                except (EOFError, OSError):
                    kind, value = "err", ParallelTaskError(
                        "pool worker died mid-task (killed or crashed hard)"
                    )
                if kind == "err":
                    if first_error is None:
                        first_error = value
                else:
                    results[i] = value
                dispatch(slot)
        if first_error is not None:
            raise first_error
        return results

    def map(
        self, fn: Callable[[T], R], items: Iterable[T], limit: int | None = None
    ) -> list[R]:
        """Order-preserving parallel map over at most *limit* slots."""
        items = list(items)
        slots = self.size if limit is None else max(1, min(limit, self.size))
        return self.scatter([(i % slots, fn, x) for i, x in enumerate(items)])

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for w in self._slots:
            if w is None:
                continue
            try:
                w.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            w.conn.close()
        for w in self._slots:
            if w is None:
                continue
            w.proc.join(timeout=5)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join()
        self._slots = [None] * len(self._slots)

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


_SHARED: ProcessPool | None = None


def shared_pool(workers: int) -> ProcessPool:
    """The module-wide persistent pool, grown to >= *workers* slots.

    Growing replaces the pool (spawn workers are cheap relative to the
    work they host, and slots are only identities between batches that
    opt into stickiness); shrinking never happens — a larger pool
    serves smaller requests via :meth:`ProcessPool.map`'s ``limit``.
    """
    global _SHARED
    if _SHARED is None or _SHARED.size < workers:
        if _SHARED is not None:
            _SHARED.shutdown()
        _SHARED = ProcessPool(workers)
    return _SHARED


@atexit.register
def _shutdown_shared() -> None:
    global _SHARED
    if _SHARED is not None:
        _SHARED.shutdown()
        _SHARED = None


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int = 1,
) -> list[R]:
    """``[fn(x) for x in items]``, optionally across processes.

    Order is preserved.  ``jobs=1`` runs inline; ``jobs=0`` means
    "auto" (:func:`default_jobs`).  A task that raises in a pool worker
    surfaces as :class:`ParallelTaskError` naming the failing item (the
    inline path raises the original exception unwrapped — its traceback
    already points at the task).  Inside a pool worker the call always
    runs inline: daemonic workers cannot spawn children, and nesting
    pools would oversubscribe the machine regardless.
    """
    items = list(items)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = default_jobs()
    if jobs == 1 or len(items) <= 1 or in_pool_worker():
        return [fn(x) for x in items]
    workers = min(jobs, len(items))
    return shared_pool(workers).map(fn, items, limit=workers)
