"""Deterministic random-number plumbing.

Every stochastic component in the package accepts either a seed or a
:class:`numpy.random.Generator`.  These helpers normalise that choice and
derive independent child streams so that, e.g., the packet generator for
each service consumes its own stream and results do not depend on the
order in which services are polled.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def make_rng(seed: int | np.random.Generator | np.random.SeedSequence | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like value.

    Passing an existing generator returns it unchanged, so components can
    share a stream when the caller wants them to.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(
    seed: int | np.random.Generator | np.random.SeedSequence | None,
    n: int,
) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators.

    Children are derived via :class:`numpy.random.SeedSequence` spawning,
    which guarantees non-overlapping streams.  When *seed* is already a
    ``Generator`` its own ``spawn`` method is used so the parent stream
    advances deterministically.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of streams: {n}")
    if isinstance(seed, np.random.Generator):
        return list(seed.spawn(n))
    if isinstance(seed, np.random.SeedSequence):
        return [np.random.default_rng(s) for s in seed.spawn(n)]
    return [np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(n)]
