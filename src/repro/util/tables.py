"""Plain-text table formatting for experiment output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this formatter keeps that output aligned and readable
without pulling in a dependency.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["format_table"]


def _fmt_cell(value: object, float_fmt: str) -> str:
    if value is None:
        return "--"
    if isinstance(value, float):
        if math.isnan(value):
            return "--"
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_fmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned ASCII table.

    Floats are formatted with *float_fmt*; ``None`` and NaN render as
    ``--``.  Every row must have exactly ``len(headers)`` cells.
    """
    ncols = len(headers)
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for i, row in enumerate(rows):
        if len(row) != ncols:
            raise ValueError(f"row {i} has {len(row)} cells, expected {ncols}")
        rendered.append([_fmt_cell(c, float_fmt) for c in row])

    widths = [max(len(r[c]) for r in rendered) for c in range(ncols)]
    sep = "-+-".join("-" * w for w in widths)

    def fmt_row(cells: list[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(rendered[0]))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in rendered[1:])
    return "\n".join(lines)
