"""Shared utilities: deterministic RNG plumbing, statistics, tables."""

from repro.util.rng import make_rng, spawn_rngs
from repro.util.stats import (
    gini,
    jain_fairness,
    normalize,
    percentile,
    ratio_or_nan,
    summarize,
)
from repro.util.tables import format_table

__all__ = [
    "make_rng",
    "spawn_rngs",
    "gini",
    "jain_fairness",
    "normalize",
    "percentile",
    "ratio_or_nan",
    "summarize",
    "format_table",
]
