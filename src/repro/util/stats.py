"""Small statistics helpers used by metrics and the experiment harness."""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

__all__ = [
    "jain_fairness",
    "gini",
    "percentile",
    "normalize",
    "ratio_or_nan",
    "summarize",
]


def jain_fairness(loads: Sequence[float]) -> float:
    """Jain's fairness index of a load vector.

    ``(Σx)² / (n · Σx²)`` — equals 1.0 for a perfectly balanced vector and
    ``1/n`` when all load sits on a single element.  An all-zero vector is
    perfectly balanced by convention and returns 1.0.
    """
    x = np.asarray(loads, dtype=np.float64)
    if x.size == 0:
        raise ValueError("fairness of an empty load vector is undefined")
    if np.any(x < 0):
        raise ValueError("loads must be non-negative")
    denom = x.size * float(np.sum(x * x))
    if denom == 0.0:
        return 1.0
    return float(np.sum(x)) ** 2 / denom


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative vector (0 = equal, →1 = skewed).

    Used to characterise flow-size skew in traces (Fig. 2 of the paper).
    """
    x = np.sort(np.asarray(values, dtype=np.float64))
    if x.size == 0:
        raise ValueError("gini of an empty vector is undefined")
    if np.any(x < 0):
        raise ValueError("values must be non-negative")
    total = float(x.sum())
    if total == 0.0:
        return 0.0
    n = x.size
    # Standard rank formulation: G = (2 Σ i·x_i) / (n Σ x) − (n+1)/n
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float(2.0 * np.dot(ranks, x) / (n * total) - (n + 1) / n)


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0–100) of *values* (linear interpolation)."""
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        raise ValueError("percentile of an empty vector is undefined")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(x, q))


def normalize(values: Sequence[float]) -> np.ndarray:
    """Scale a non-negative vector to sum to 1.0 (uniform if all-zero)."""
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        raise ValueError("cannot normalize an empty vector")
    if np.any(x < 0):
        raise ValueError("values must be non-negative")
    total = float(x.sum())
    if total == 0.0:
        return np.full(x.size, 1.0 / x.size)
    return x / total


def ratio_or_nan(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with NaN (not an error) for a 0 denominator.

    Experiment harnesses report many "relative to baseline" columns; a
    baseline that never triggered the event yields NaN, which the table
    formatter renders as ``--``.
    """
    if denominator == 0:
        return math.nan
    return numerator / denominator


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean / min / max / p50 / p95 / p99 summary of a vector."""
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        raise ValueError("summary of an empty vector is undefined")
    return {
        "mean": float(x.mean()),
        "min": float(x.min()),
        "max": float(x.max()),
        "p50": float(np.percentile(x, 50)),
        "p95": float(np.percentile(x, 95)),
        "p99": float(np.percentile(x, 99)),
    }
