"""Critical-path timing of the LAPS hardware — paper Sec. III-G.

The per-packet critical path is ``hash delay -> map-table access -> mux
delay``; the AFD and map-table updates run in the background.  The paper
argues from an FPGA CRC16 figure (>200 MHz, i.e. <5 ns/lookup) and Cacti
SRAM numbers ("a fraction of a nanosecond") that LAPS sustains at least
200 Mpps — double the ~100 Mpps needed for 100 Gbps of mixed-size
packets.

This module substitutes an analytic model for Cacti: a logarithmic
SRAM access-time fit (decode depth grows with log of the word count,
wire delay with its square root) calibrated so small tables land in the
sub-nanosecond regime Cacti reports at 32 nm.  The absolute constants
matter less than the structure: the hash dominates, so the sustainable
rate tracks the hash implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SRAMModel", "LAPSTimingModel", "estimate_max_rate_mpps"]


@dataclass(frozen=True)
class SRAMModel:
    """Analytic access-time model for a small on-chip SRAM/CAM.

    ``access_ns = base + decode_per_level * log2(words) + wire * sqrt(words*width_bits)``

    Defaults are calibrated to Cacti-6-style numbers for sub-KB tables
    at a 32 nm node: a 256 x 8 table comes out ≈0.3 ns, a 64 K x 8 table
    ≈0.8 ns.
    """

    base_ns: float = 0.15
    decode_per_level_ns: float = 0.012
    wire_ns_per_sqrt_bit: float = 0.0004

    def access_ns(self, words: int, width_bits: int) -> float:
        """Access latency of a ``words x width_bits`` array."""
        if words <= 0 or width_bits <= 0:
            raise ValueError("words and width_bits must be positive")
        levels = math.log2(words) if words > 1 else 0.0
        wire = math.sqrt(words * width_bits)
        return (
            self.base_ns
            + self.decode_per_level_ns * levels
            + self.wire_ns_per_sqrt_bit * wire
        )


@dataclass(frozen=True)
class LAPSTimingModel:
    """End-to-end critical-path model for the scheduler front end.

    ``hash_ns`` defaults to the paper's FPGA CRC16 datapoint (200 MHz →
    5 ns per hash); an ASIC implementation is easily 2-4x faster, which
    is the paper's scalability argument.
    """

    hash_ns: float = 5.0
    mux_ns: float = 0.2
    map_table_entries: int = 256
    map_table_width_bits: int = 8  # a core id per bucket
    sram: SRAMModel = SRAMModel()

    def __post_init__(self) -> None:
        if self.hash_ns <= 0 or self.mux_ns < 0:
            raise ValueError("delays must be positive (mux may be 0)")
        if self.map_table_entries <= 0:
            raise ValueError("map table needs at least one entry")

    @property
    def map_table_ns(self) -> float:
        return self.sram.access_ns(self.map_table_entries, self.map_table_width_bits)

    @property
    def critical_path_ns(self) -> float:
        """End-to-end decision latency: hash -> map table -> mux (the
        AFD is off the critical path)."""
        return self.hash_ns + self.map_table_ns + self.mux_ns

    @property
    def bottleneck_ns(self) -> float:
        """The slowest stage — the paper's throughput limiter.  The
        three stages are registered (the hash engine accepts a new
        header while the previous lookup completes), so the sustainable
        rate is set by the slowest stage, not the summed latency; that
        is how a 5 ns FPGA CRC16 yields the paper's ">=200 Mpps"."""
        return max(self.hash_ns, self.map_table_ns, self.mux_ns)

    @property
    def max_rate_mpps(self) -> float:
        """Sustainable scheduling decisions per second, in millions."""
        return 1e3 / self.bottleneck_ns

    def breakdown(self) -> dict[str, float]:
        """Per-stage delays in ns plus the resulting rate."""
        return {
            "hash_ns": self.hash_ns,
            "map_table_ns": self.map_table_ns,
            "mux_ns": self.mux_ns,
            "critical_path_ns": self.critical_path_ns,
            "bottleneck_ns": self.bottleneck_ns,
            "max_rate_mpps": self.max_rate_mpps,
        }


def estimate_max_rate_mpps(
    num_cores: int = 256,
    hash_ns: float = 5.0,
    mux_ns: float = 0.2,
) -> float:
    """Convenience wrapper: max scheduling rate for a map table sized to
    *num_cores* buckets (the paper's >=200 Mpps claim uses the FPGA
    CRC16 figure)."""
    model = LAPSTimingModel(
        hash_ns=hash_ns, mux_ns=mux_ns, map_table_entries=max(num_cores, 2)
    )
    return model.max_rate_mpps
