"""The migration table — paper Sec. III-A/E, Fig. 3.

Flows the load balancer has moved live here as exact-match
``flow -> core`` entries; the table is consulted *before* the map table
("the scheduler gives priority to the output of migration table over
the default hash table").  Hardware would make this a small CAM, so the
model has a bounded capacity with FIFO replacement of the oldest entry —
an evicted flow simply falls back to its hash-assigned core.

Entries become stale when their target core leaves the service or when
the map table would now route the flow to the same core anyway; the
scheduler prunes via :meth:`drop_core` / :meth:`remove`.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["MigrationTable"]


class MigrationTable:
    """Bounded exact-match flow->core override table.

    Also maintains per-core pin counts (:meth:`pins_on`) so the load
    balancer can see how many migrated flows it has already steered to
    each core — the instantaneous queue alone lags a just-installed
    elephant by the queue drain time, so placement consults both.
    """

    __slots__ = ("_capacity", "_entries", "_per_core", "insertions", "evictions",
                 "epoch")

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[int, int] = OrderedDict()
        self._per_core: dict[int, int] = {}
        self.insertions = 0
        self.evictions = 0
        #: bumped on every mutation of the entry set or a pin target —
        #: consumers caching a snapshot of the pinned-flow set (the
        #: vectorized plan overlay) invalidate on mismatch
        self.epoch = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, flow_id: int) -> bool:
        return flow_id in self._entries

    def lookup(self, flow_id: int) -> int | None:
        """Target core for *flow_id*, or None when not migrated."""
        return self._entries.get(flow_id)

    def items(self) -> list[tuple[int, int]]:
        """(flow, core) pairs, oldest first."""
        return list(self._entries.items())

    def flow_ids(self):
        """View of the pinned flow ids (oldest first) — the sparse
        overlay of a vectorized plan intersects arriving flows against
        this set.  Any mutation of the table must be accompanied by a
        ``map_epoch`` bump in the owning scheduler, or planned columns
        built from a stale overlay would keep being consumed."""
        return self._entries.keys()

    def pins_on(self, core_id: int) -> int:
        """Number of flows currently pinned to *core_id*."""
        return self._per_core.get(core_id, 0)

    # ------------------------------------------------------------------
    def _inc(self, core_id: int, delta: int) -> None:
        count = self._per_core.get(core_id, 0) + delta
        if count:
            self._per_core[core_id] = count
        else:
            self._per_core.pop(core_id, None)

    def add(self, flow_id: int, core_id: int) -> int | None:
        """Pin *flow_id* to *core_id* (Listing 1 line 7).

        Re-adding an existing flow re-targets it in place.  Returns the
        flow id evicted to make room, or None.
        """
        self.epoch += 1
        old = self._entries.get(flow_id)
        if old is not None:
            self._entries[flow_id] = core_id
            self._inc(old, -1)
            self._inc(core_id, +1)
            return None
        victim = None
        if len(self._entries) >= self._capacity:
            victim, victim_core = self._entries.popitem(last=False)
            self._inc(victim_core, -1)
            self.evictions += 1
        self._entries[flow_id] = core_id
        self._inc(core_id, +1)
        self.insertions += 1
        return victim

    def remove(self, flow_id: int) -> bool:
        """Drop one entry; True if it existed."""
        core = self._entries.pop(flow_id, None)
        if core is None:
            return False
        self.epoch += 1
        self._inc(core, -1)
        return True

    def drop_core(self, core_id: int) -> list[int]:
        """Remove every entry targeting *core_id* (the core left this
        service); returns the affected flow ids."""
        stale = [f for f, c in self._entries.items() if c == core_id]
        if stale:
            self.epoch += 1
        for f in stale:
            del self._entries[f]
        self._per_core.pop(core_id, None)
        return stale

    def clear(self) -> None:
        if self._entries:
            self.epoch += 1
        self._entries.clear()
        self._per_core.clear()
