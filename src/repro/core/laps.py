"""LAPS — the Locality Aware Packet Scheduler (paper Sec. III).

Per arriving packet (Sec. III-E):

1. **Migration table first**: a migrated flow goes where the migration
   table says (exact match overrides the hash).
2. Otherwise the packet's CRC16 hash indexes the **per-service map
   table** (incremental hashing over the service's bucket list).
3. The **AFD** observes the packet in the background (optionally
   sampled).
4. If the hash target is overloaded (queue ≥ ``high_threshold``), the
   load balancer of Listing 1 runs: find the service's least-loaded
   core; if it has headroom and the flow hits in the AFC, migrate the
   flow there (and invalidate its AFC entry); if *no* core of the
   service has headroom, ``request_core()`` — the allocator donates the
   longest-surplus core of another service, both map tables are updated
   via incremental hashing, and the packet is re-looked-up.

Cores whose queues drain start an idle timer (``on_queue_empty``); once
past ``idle_threshold_ns`` they become surplus and can be donated
(Sec. III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.afd import AFDConfig, AggressiveFlowDetector
from repro.core.allocator import CoreAllocator
from repro.core.map_table import ServiceMapTable
from repro.core.migration import MigrationTable
from repro.errors import ConfigError
from repro.schedulers.base import Scheduler, register_scheduler
from repro import units

__all__ = ["LAPSConfig", "LAPSScheduler"]


@dataclass(frozen=True)
class LAPSConfig:
    """LAPS policy knobs.

    ``high_threshold`` is the queue occupancy (in descriptors) at which
    a core counts as overloaded; the paper uses a threshold on the
    32-descriptor input queues.  ``idle_threshold_ns`` is the
    ``idle_th`` of Sec. III-D.  ``migration_table_entries`` bounds the
    exact-match override CAM.
    """

    num_services: int = 4
    high_threshold: int = 24
    idle_threshold_ns: int = units.us(200)
    migration_table_entries: int = 256
    pin_weight: int = 16
    #: The scheduling AFD raises the promotion threshold above the
    #: detection-experiment default: a migrated elephant must re-earn
    #: its AFC slot with 64 annex hits, which bounds how often any flow
    #: can migrate (the paper's "minimum flow migrations" goal).
    afd: AFDConfig = field(default_factory=lambda: AFDConfig(promote_threshold=64))

    def __post_init__(self) -> None:
        if self.num_services <= 0:
            raise ConfigError(f"num_services must be positive, got {self.num_services}")
        if self.high_threshold <= 0:
            raise ConfigError(f"high_threshold must be positive, got {self.high_threshold}")
        if self.idle_threshold_ns < 0:
            raise ConfigError(f"idle_threshold_ns must be >= 0, got {self.idle_threshold_ns}")
        if self.migration_table_entries <= 0:
            raise ConfigError(
                f"migration_table_entries must be positive, got {self.migration_table_entries}"
            )
        if self.pin_weight < 0:
            raise ConfigError(f"pin_weight must be >= 0, got {self.pin_weight}")


@register_scheduler("laps")
class LAPSScheduler(Scheduler):
    """The paper's scheduler.  See module docstring for the algorithm."""

    #: planned entries are pure map/migration-table lookups — the
    #: Listing 1 balancer only runs at or above ``batch_guard`` (the
    #: high threshold), which truncates a batched span — so spans may
    #: be drained batched
    batch_static = True

    #: the balancer reads live queue occupancy and donates cores across
    #: services, so a core-partitioned shard cannot reproduce a
    #: single-process run; LAPS shards *by service* instead, through
    #: the :meth:`configure_shard` window/mailbox protocol below
    shard_static = False

    def __init__(
        self,
        config: LAPSConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        self.config = config or LAPSConfig()
        self._rng = rng
        self.afd = AggressiveFlowDetector(self.config.afd, rng=rng)
        self.migration = MigrationTable(self.config.migration_table_entries)
        self.allocator: CoreAllocator | None = None
        self.map_tables: dict[int, ServiceMapTable] = {}
        # counters
        self.imbalance_events = 0
        self.migrations_installed = 0
        self.core_requests = 0
        self.core_requests_denied = 0
        self.stale_migrations_dropped = 0
        self.cores_failed = 0
        self.cores_recovered = 0
        self.emergency_transfers = 0
        self.unrecovered_failures = 0
        #: preset core ownership for a service-partitioned shard (global
        #: core ids; ``-1`` marks cores owned by other shards), set by
        #: :meth:`configure_shard`; ``None`` on single-process runs
        self.shard_ownership: list[int] | None = None
        #: first unmet ``request_core`` per service this window
        #: (service_id -> t_ns of the first denial)
        self._shard_denials: dict[int, int] = {}
        #: sorted snapshot of the migration table for the vectorized
        #: plan overlay, cached on ``MigrationTable.epoch`` (same shape
        #: as the ``ServiceMapTable.lookup_batch`` cache): aligned
        #: (flow_ids, cores) arrays, rebuilt only after a pin mutation
        self._pin_epoch = -1
        self._pin_fids: np.ndarray | None = None
        self._pin_cores: np.ndarray | None = None

    # ------------------------------------------------------------------
    def configure_shard(
        self, num_services: int, ownership: list[int]
    ) -> None:
        """Reshape this scheduler into one service-partitioned shard.

        *num_services* is the shard's **local** service count (the
        shard's packet source relabels its service slice to dense local
        ids) and *ownership* maps every **global** core id to the local
        service that starts with it, or ``-1`` for cores owned by other
        shards.  Must be called before :meth:`bind`.  The presence of
        this method is what routes LAPS through the sharded runner's
        service mode — the window/mailbox protocol drives the
        ``shard_*`` methods below at conservative-time barriers.
        """
        if self.is_bound:
            raise ConfigError("configure_shard must be called before bind()")
        if num_services <= 0:
            raise ConfigError(f"num_services must be positive, got {num_services}")
        self.config = replace(self.config, num_services=num_services)
        self.shard_ownership = list(ownership)

    # ------------------------------------------------------------------
    def bind(self, loads) -> None:
        super().bind(loads)
        cfg = self.config
        if loads.num_cores < cfg.num_services:
            raise ConfigError(
                f"{loads.num_cores} cores cannot host {cfg.num_services} services"
            )
        if cfg.high_threshold > loads.queue_capacity:
            raise ConfigError(
                f"high_threshold {cfg.high_threshold} exceeds queue capacity "
                f"{loads.queue_capacity}"
            )
        #: a planned assignment is only valid while its target is not
        #: overloaded — the whole Listing 1 balancer runs behind this
        self.batch_guard = cfg.high_threshold
        self.allocator = CoreAllocator(
            loads.num_cores, cfg.num_services, cfg.idle_threshold_ns,
            owners=self.shard_ownership,
        )
        self.map_tables = {
            sid: ServiceMapTable(sid, cores)
            for sid, cores in self.allocator.initial_allocation().items()
        }
        self.migration.clear()
        self.afd.reset()
        self._shard_denials.clear()

    # ------------------------------------------------------------------
    def select_core(
        self, flow_id: int, service_id: int, flow_hash: int, t_ns: int
    ) -> int:
        cfg = self.config
        table = self.map_tables[service_id]
        allocator = self.allocator

        # background AFD update (not on the critical path in hardware)
        self.afd.observe(flow_id)

        # 1. migration table has priority over the map table (Sec. III-E
        # step 1): a migrated flow stays pinned.  Re-balancing it on
        # every overload would hot-potato elephants between cores,
        # paying the FM penalty and reordering on every hop.
        pinned = self.migration.lookup(flow_id)
        if pinned is not None:
            if allocator.owner_of(pinned) == service_id:
                allocator.note_load(pinned, self.loads.occupancy(pinned), t_ns)
                return pinned
            # the pinned core was donated away: entry is stale
            self.migration.remove(flow_id)
            self.stale_migrations_dropped += 1
            self.map_epoch += 1

        # 2. default hash lookup
        target = table.lookup(flow_hash)
        allocator.note_load(target, self.loads.occupancy(target), t_ns)

        # 3. load-balancing path (Listing 1)
        if self.loads.occupancy(target) >= cfg.high_threshold:
            self.imbalance_events += 1
            minq_core = self._min_queue_core(table.cores)
            if self.loads.occupancy(minq_core) < cfg.high_threshold:
                if self.afd.is_aggressive(flow_id):
                    dest = self._placement_target(table.cores, cfg.high_threshold)
                    if dest is not None and dest != target:
                        self.migration.add(flow_id, dest)  # may evict: same bump
                        self.afd.invalidate(flow_id)
                        self.migrations_installed += 1
                        self.map_epoch += 1
                        return dest
            else:
                # every core of this service is overloaded: none of them
                # can be surplus, so record that before asking for help
                for core in table.cores:
                    allocator.touch(core, t_ns)
                granted = self._request_core(service_id, t_ns)
                if granted:
                    target = table.lookup(flow_hash)
        return target

    #: plan at most this many arrivals ahead: under migration churn
    #: every ``map_epoch`` bump throws away the planned suffix, so a
    #: bounded span caps the wasted vector work per bump
    _BATCH_SPAN = 8192

    def assign_batch(
        self, flow_hash, service_id, flow_id, arrival_ns, start_index: int = 0
    ):
        """Vectorized Sec. III-E lookup: per-service incremental-hash
        map tables, overridden by a sparse migration-table overlay.

        The plan mirrors only the *pure* prefix of ``select_core``:
        migration pin (or the hash target when unpinned).  Everything
        with side effects stays scalar — live pins whose target turns
        out overloaded trip ``batch_guard`` (the pinned path returns the
        pin regardless, so re-running scalar is exact), stale pins are
        marked ``-1`` so their removal-and-fallback runs in
        ``select_core``, and the per-packet AFD/allocator bookkeeping is
        replicated by :meth:`batch_commit`.  A service id with no map
        table also maps to ``-1``, reproducing the scalar ``KeyError``.
        """
        n = len(flow_hash)
        if n > self._BATCH_SPAN:
            n = self._BATCH_SPAN
        sids = service_id[:n]
        out = np.full(n, -1, dtype=np.int64)
        for sid, table in self.map_tables.items():
            mask = sids == sid
            if mask.any():
                out[mask] = table.lookup_batch(flow_hash[:n][mask])
        mig = self.migration
        if len(mig):
            fids = flow_id[:n]
            if self._pin_epoch != mig.epoch:
                pairs = np.asarray(mig.items(), dtype=np.int64).reshape(-1, 2)
                order = np.argsort(pairs[:, 0])
                self._pin_fids = pairs[order, 0]
                self._pin_cores = pairs[order, 1]
                self._pin_epoch = mig.epoch
            pf = self._pin_fids
            idx = np.searchsorted(pf, fids)
            np.minimum(idx, pf.size - 1, out=idx)
            hit = np.nonzero(pf[idx] == fids)[0]
            if hit.size:
                core = self._pin_cores[idx[hit]]
                live = self.allocator.owner_array()[core] == sids[hit]
                # stale pins map to -1: the scalar path prunes them
                out[hit] = np.where(live, core, -1)
        return out

    def batch_commit(
        self, flow_id: int, flow_hash: int, core: int, occupancy: int, t_ns: int
    ) -> None:
        """The unconditional per-packet work of ``select_core``: the
        background AFD observation and the allocator's quietness note
        for the core the packet was routed to (*occupancy* is the
        guard's reading of that core's queue)."""
        self.afd.observe(flow_id)
        self.allocator.note_load(core, occupancy, t_ns)

    #: :meth:`batch_commit_span` really is batch-native (bulk AFD
    #: counter merges + a masked last-busy reduction), so the span
    #: driver may prefer it over its own ``batch_commit`` replay
    commit_vectorized = True

    def batch_commit_span(self, flow_id, flow_hash, core, occ, t_ns) -> None:
        """Vectorized :meth:`batch_commit` for one committed span.

        The AFD and the allocator are disjoint state, so the per-packet
        interleaving of ``observe`` / ``note_load`` is immaterial — the
        span factors into one batch AFD observation
        (:meth:`~repro.core.afd.AggressiveFlowDetector.observe_batch`,
        bit-identical to n scalar observes including the sampling RNG
        stream) and one masked per-core last-busy reduction
        (:meth:`~repro.core.allocator.CoreAllocator.note_load_batch`).
        Equivalent to per-element ``batch_commit`` by construction;
        never bumps ``map_epoch``.
        """
        self.afd.observe_batch(flow_id)
        self.allocator.note_load_batch(core, occ, t_ns)

    def _placement_target(self, cores, high_threshold: int) -> int | None:
        """Destination core for a migrating elephant.

        ``findMinQ`` by occupancy, with one refinement: cores that the
        migration table has already steered elephants to are penalised
        (``pin_weight`` queue slots per pinned flow), because the queue
        of a core that received an elephant microseconds ago has not
        caught up with its new load yet — naive instantaneous-minq
        placement dumps several elephants onto the same core during one
        overload burst and the pins then keep them there.
        """
        loads = self.loads
        pin_weight = self.config.pin_weight
        best = None
        best_score = None
        for c in cores:
            occ = loads.occupancy(c)
            if occ >= high_threshold:
                continue
            score = occ + pin_weight * self.migration.pins_on(c)
            if best_score is None or score < best_score:
                best, best_score = c, score
        return best

    # ------------------------------------------------------------------
    def _request_core(self, service_id: int, t_ns: int) -> bool:
        """``request_core()`` of Listing 1; returns True when a core was
        added to the service's map table."""
        self.core_requests += 1
        transfer = self.allocator.request_core(service_id, t_ns)
        if transfer is None:
            self.core_requests_denied += 1
            if self.shard_ownership is not None:
                # a shard that cannot help itself asks the fleet: the
                # first denial per service this window becomes a
                # mailbox request at the next barrier
                self._shard_denials.setdefault(service_id, t_ns)
            return False
        if transfer.is_internal:
            # surplus core of the same service unmarked: it is already
            # in the map table and keeps its buckets
            return False
        donor_table = self.map_tables[transfer.donor_service]
        donor_table.remove_core(transfer.core_id)
        # migrated flows pointing at the donated core are now invalid
        self.stale_migrations_dropped += len(self.migration.drop_core(transfer.core_id))
        self.map_tables[service_id].add_core(transfer.core_id)
        # both map tables, core ownership and possibly the migration
        # table changed — one bump invalidates any planned column
        self.map_epoch += 1
        return True

    # ------------------------------------------------------------------
    # platform-fault reaction (repro.faults)
    # ------------------------------------------------------------------
    def on_core_down(self, core_id: int, t_ns: int) -> None:
        """Evict a failed core from its service's map table.

        The bucket shrinks through the incremental hash (Sec. III-D's
        core-removal path), so only the dead core's flows remap — the
        same machinery that handles voluntary donation handles the
        involuntary loss.  Migration-table pins onto the core are
        dropped (their flows fall back to the hash).  If the owning
        service just lost its *only* core, a replacement is
        commandeered from the richest other service before the shrink.
        """
        allocator = self.allocator
        if allocator is None:
            return
        self.map_epoch += 1
        owner = allocator.set_offline(core_id)
        if owner < 0:
            # a foreign core of another shard failed: platform events
            # are broadcast to every shard so health state stays
            # consistent, but there is no local map table to fix up
            return
        self.cores_failed += 1
        self.stale_migrations_dropped += len(self.migration.drop_core(core_id))
        table = self.map_tables[owner]
        if core_id not in table:
            return
        if table.num_cores == 1:
            replacement = self._emergency_replacement(owner, t_ns)
            if replacement is None:
                # every other service is itself down to one core: the
                # dead core stays in the table and its flows black-hole
                # (fault drops) until the platform recovers
                self.unrecovered_failures += 1
                return
            table.add_core(replacement)
        table.remove_core(core_id)

    def on_core_up(self, core_id: int, t_ns: int) -> None:
        """Re-admit a recovered core to the service that owned it."""
        allocator = self.allocator
        if allocator is None:
            return
        self.map_epoch += 1
        owner = allocator.set_online(core_id, t_ns)
        if owner < 0:
            return  # foreign core (see on_core_down)
        self.cores_recovered += 1
        table = self.map_tables[owner]
        if core_id not in table:
            table.add_core(core_id)

    def _emergency_replacement(self, service_id: int, t_ns: int) -> int | None:
        """Pull one core out of the largest other service, or None when
        nobody can spare one."""
        donor_sid = None
        for sid, tbl in self.map_tables.items():
            if sid == service_id or tbl.num_cores <= 1:
                continue
            if donor_sid is None or tbl.num_cores > self.map_tables[donor_sid].num_cores:
                donor_sid = sid
        if donor_sid is None:
            return None
        allocator = self.allocator
        donor_table = self.map_tables[donor_sid]
        # the donor must keep at least one *online* core after giving
        candidates = [c for c in donor_table.cores if not allocator.is_offline(c)]
        if len(candidates) < 2:
            return None
        core = self._min_queue_core(candidates)
        allocator.force_transfer(core, service_id)
        donor_table.remove_core(core)
        self.stale_migrations_dropped += len(self.migration.drop_core(core))
        allocator.touch(core, t_ns)
        self.emergency_transfers += 1
        return core

    # ------------------------------------------------------------------
    # cross-shard mailbox protocol (repro.sim.sharding, service mode).
    # The coordinator calls these only at window barriers, when every
    # shard sits at the same instant T with no arrival in flight.
    # ------------------------------------------------------------------
    def shard_unmet_requests(self) -> list[tuple[int, int]]:
        """Drain this window's unmet demand: ``(first_denial_ns,
        service_id)`` per starved service, earliest first."""
        out = sorted((t, sid) for sid, t in self._shard_denials.items())
        self._shard_denials.clear()
        return out

    def shard_surplus(self, t_ns: int) -> list[tuple[int, int, int, int]]:
        """Donation candidates at barrier instant *t_ns*:
        ``(last_busy_ns, core, owner_service, owner_online_cores)`` for
        every owned, online, surplus core whose owner would keep at
        least one other online core.  The shard wrapper further
        excludes cores that are mid-packet or have queued work — a
        core handed over at a barrier must carry no in-flight state.
        """
        alloc = self.allocator
        out = []
        for core in alloc.surplus_cores(t_ns):
            owner = alloc.owner_of(core)
            spare = len(alloc.online_cores_of(owner))
            if spare > 1 and self.map_tables[owner].num_cores > 1:
                out.append((alloc.last_busy_ns(core), core, owner, spare))
        return out

    def shard_grant(self, core_id: int, service_id: int, t_ns: int) -> None:
        """Adopt a core another shard released at this barrier."""
        self.allocator.adopt(core_id, service_id, t_ns)
        self.map_tables[service_id].add_core(core_id)
        self.map_epoch += 1

    def shard_revoke(self, core_id: int, t_ns: int) -> bool:
        """Release a core to the fleet; False when no longer safe
        (the matcher works from barrier-time offers, so a refusal
        means local guards — last-online-core, offline — would be
        violated and the grant must be dropped)."""
        alloc = self.allocator
        owner = alloc.owner_of(core_id)
        if (
            owner < 0
            or alloc.is_offline(core_id)
            or len(alloc.online_cores_of(owner)) <= 1
            or self.map_tables[owner].num_cores <= 1
        ):
            return False
        alloc.release(core_id)
        self.map_tables[owner].remove_core(core_id)
        self.stale_migrations_dropped += len(self.migration.drop_core(core_id))
        self.map_epoch += 1
        return True

    # ------------------------------------------------------------------
    def cores_of(self, service_id: int) -> tuple[int, ...]:
        """Current bucket list of a service (diagnostics)."""
        return self.map_tables[service_id].cores

    def stats(self) -> dict[str, float]:
        alloc = self.allocator
        return {
            "imbalance_events": self.imbalance_events,
            "migrations_installed": self.migrations_installed,
            "core_requests": self.core_requests,
            "core_requests_denied": self.core_requests_denied,
            "core_transfers": alloc.transfers if alloc else 0,
            "internal_reclaims": alloc.internal_reclaims if alloc else 0,
            "stale_migrations_dropped": self.stale_migrations_dropped,
            "afd_promotions": self.afd.promotions,
            "migration_table_evictions": self.migration.evictions,
            "cores_failed": self.cores_failed,
            "cores_recovered": self.cores_recovered,
            "emergency_transfers": self.emergency_transfers,
            "cross_shard_grants": alloc.cross_shard_grants if alloc else 0,
            "cross_shard_releases": alloc.cross_shard_releases if alloc else 0,
        }
