"""Per-service map tables — paper Sec. III-B/C/E, Fig. 3.

Each service owns a *bucket list*: an ordered list of core ids.  An
incoming packet's CRC16 hash is reduced to a bucket index by the
service's :class:`~repro.core.incremental_hash.IncrementalHash`, and the
bucket list maps that index to the target core.  Growing the service
appends a core (splitting one bucket's flows); removing a core deletes
its bucket and shifts later ids down (Sec. III-D: "other core IDs will
be shifted to take the place of this ID"), shrinking the hash.
"""

from __future__ import annotations

import numpy as np

from repro.core.incremental_hash import IncrementalHash
from repro.errors import SchedulerError

__all__ = ["ServiceMapTable"]


class ServiceMapTable:
    """One service's bucket list plus its incremental hash."""

    __slots__ = ("service_id", "_cores", "_hash", "_cores_arr")

    def __init__(self, service_id: int, initial_cores: list[int]) -> None:
        if not initial_cores:
            raise SchedulerError(
                f"service {service_id} needs at least one core in its map table"
            )
        if len(set(initial_cores)) != len(initial_cores):
            raise SchedulerError(f"duplicate core ids in map table: {initial_cores}")
        self.service_id = service_id
        self._cores: list[int] = list(initial_cores)
        self._hash = IncrementalHash(len(initial_cores))
        #: bucket list as int64, rebuilt lazily after add/remove (the
        #: table only changes on grow/shrink, so lookup_batch must not
        #: pay an O(cores) asarray per call)
        self._cores_arr: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def cores(self) -> tuple[int, ...]:
        """The bucket list (index = bucket, value = core id)."""
        return tuple(self._cores)

    @property
    def num_cores(self) -> int:
        return len(self._cores)

    def __contains__(self, core_id: int) -> bool:
        return core_id in self._cores

    def lookup(self, hashed_key: int) -> int:
        """Target core for an already-CRC16-hashed flow key."""
        return self._cores[self._hash.bucket_of(hashed_key)]

    def lookup_batch(self, hashed_keys):
        """Vectorized :meth:`lookup` over a numpy int array."""
        cores = self._cores_arr
        if cores is None:
            cores = self._cores_arr = np.asarray(self._cores, dtype=np.int64)
        return cores[self._hash.bucket_of_batch(hashed_keys)]

    def bucket_of(self, hashed_key: int) -> int:
        """Bucket index (exposed for migration bookkeeping and tests)."""
        return self._hash.bucket_of(hashed_key)

    # ------------------------------------------------------------------
    def add_core(self, core_id: int) -> int:
        """Append *core_id* as a new bucket; returns the index of the
        bucket whose flows are now split with the new one."""
        if core_id in self._cores:
            raise SchedulerError(
                f"core {core_id} already in service {self.service_id}'s table"
            )
        split = self._hash.grow()
        self._cores.append(core_id)
        self._cores_arr = None
        return split

    def remove_core(self, core_id: int) -> None:
        """Remove *core_id* from the bucket list.

        Only the *last* bucket can shrink the hash cleanly, so the
        victim's bucket first swaps with the last bucket (both remaps
        affect only lightly-loaded flows, tolerable per Sec. III-D),
        then the tail bucket is folded back.
        """
        if len(self._cores) == 1:
            raise SchedulerError(
                f"cannot remove the last core of service {self.service_id}"
            )
        try:
            idx = self._cores.index(core_id)
        except ValueError:
            raise SchedulerError(
                f"core {core_id} is not in service {self.service_id}'s table"
            ) from None
        last = len(self._cores) - 1
        if idx != last:
            self._cores[idx], self._cores[last] = self._cores[last], self._cores[idx]
        self._cores.pop()
        self._cores_arr = None
        self._hash.shrink()

    def remapped_fraction_on_grow(self, sample_hashes: list[int]) -> float:
        """Diagnostic: fraction of sample keys that would move if a core
        were added now."""
        return self._hash.remapped_fraction(sample_hashes)
