"""Incremental (linear) hashing — paper Sec. III-C.

A service starts with ``m`` map-table buckets and hash
``h1(k) = CRC16(k) % m``.  When the service gains a core the bucket
count ``b`` grows by one and the hash becomes

    h(k) = h2(k)   if h1(k) <  b - m      (split buckets)
         = h1(k)   if h1(k) >= b - m      (unsplit buckets)

with ``h2(k) = CRC16(k) % 2m``; once ``b`` reaches ``2m`` the level
doubles (``m <- 2m``) and splitting starts over.  Shrinking reverses the
split.  The point (and the property the tests pin down): growing from
``b`` to ``b+1`` remaps only the keys of the *one* split bucket —
minimal disruption to existing flows, unlike a plain ``% b`` rehash
which scatters nearly everything.

This is textbook Litwin linear hashing specialised to the paper's
notation.  The class is deliberately independent of CRC16: it maps an
already-hashed integer to a bucket, so any :class:`~repro.hashing.crc`
spec (or a test's identity hash) can front it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["IncrementalHash"]


class IncrementalHash:
    """Linear-hashing bucket mapper with grow/shrink by one bucket."""

    __slots__ = ("_initial_m", "_m", "_buckets")

    def __init__(self, initial_buckets: int) -> None:
        if initial_buckets <= 0:
            raise ValueError(f"need at least one bucket, got {initial_buckets}")
        self._initial_m = initial_buckets
        self._m = initial_buckets
        self._buckets = initial_buckets

    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        """Current bucket count ``b``."""
        return self._buckets

    @property
    def level_m(self) -> int:
        """Current level size ``m`` (``m <= b <= 2m``, except the
        fully-shrunk single-bucket state)."""
        return self._m

    @property
    def split_pointer(self) -> int:
        """``b - m``: buckets ``[0, split)`` are split, the rest are not."""
        return self._buckets - self._m

    def bucket_of(self, hashed_key: int) -> int:
        """Map a hash value to a bucket index in ``[0, b)``."""
        if hashed_key < 0:
            raise ValueError(f"hash values must be >= 0, got {hashed_key}")
        h1 = hashed_key % self._m
        if h1 < self._buckets - self._m:
            return hashed_key % (2 * self._m)
        return h1

    def bucket_of_batch(self, hashed_keys):
        """Vectorized :meth:`bucket_of` over a numpy int array (same
        split/unsplit rule, expressed as a ``where``).

        Negative hash values raise exactly like the scalar path: Python
        ``%`` would silently wrap them into valid-looking (but wrong)
        buckets, so the batch path used to return different buckets than
        the ``ValueError`` the scalar path raises.
        """
        hashed_keys = np.asarray(hashed_keys)
        if hashed_keys.size and int(hashed_keys.min()) < 0:
            raise ValueError(
                f"hash values must be >= 0, got {int(hashed_keys.min())}"
            )
        h1 = hashed_keys % self._m
        split = self._buckets - self._m
        if split == 0:
            return h1
        return np.where(h1 < split, hashed_keys % (2 * self._m), h1)

    # ------------------------------------------------------------------
    def grow(self) -> int:
        """Add one bucket; returns the index of the bucket that was
        split (whose keys are now shared with the new last bucket)."""
        split = self._buckets - self._m
        self._buckets += 1
        if self._buckets == 2 * self._m:
            # level complete: every bucket of this level is split
            self._m *= 2
        return split

    def shrink(self) -> int:
        """Remove the last bucket.

        Returns the index the removed bucket's keys fold back into —
        or ``-1`` when the shrink crossed an *odd* level boundary:
        an odd level has no bucket pairing, so the structure falls back
        to a fresh level at ``b - 1`` buckets (``h(k) = k % (b-1)``),
        which remaps keys across *all* buckets.  The caller should
        treat -1 as "full rehash" (Sec. III-D tolerates this: the
        releasing service is lightly loaded by construction).

        Raises when already at a single bucket.
        """
        if self._buckets <= 1:
            raise ValueError("cannot shrink below one bucket")
        if self._buckets == self._m and self._m % 2 != 0:
            self._buckets -= 1
            self._m = self._buckets
            return -1
        if self._buckets == self._m:
            # undo a completed level before unsplitting
            self._m //= 2
        self._buckets -= 1
        return self._buckets - self._m

    def resize_to(self, buckets: int) -> None:
        """Grow/shrink one step at a time until ``b == buckets``."""
        if buckets <= 0:
            raise ValueError(f"bucket count must be positive, got {buckets}")
        while self._buckets < buckets:
            self.grow()
        while self._buckets > buckets:
            self.shrink()

    def remapped_fraction(self, sample_hashes: list[int]) -> float:
        """Fraction of *sample_hashes* whose bucket changes if we grew
        by one (diagnostic used by tests and the ablation bench)."""
        if not sample_hashes:
            return 0.0
        before = [self.bucket_of(h) for h in sample_hashes]
        clone = IncrementalHash(self._initial_m)
        clone._m = self._m
        clone._buckets = self._buckets
        clone.grow()
        after = [clone.bucket_of(h) for h in sample_hashes]
        return sum(1 for b, a in zip(before, after) if b != a) / len(sample_hashes)
