"""Dynamic allocation of cores to services — paper Sec. III-C/D.

Initially cores are divided equally among services.  The allocator then
tracks, per core:

* **ownership** — which service's map table the core sits in;
* **quietness** — the last time the core had meaningful backlog.  The
  paper starts a timer when a core's input queue drains and marks the
  core *surplus* at ``idle_th``.  Taken literally (any enqueue resets
  the timer) a core receiving even a trickle of hash-spread packets
  would never be marked, so this model uses the natural refinement:
  the timer is reset only when the core's queue occupancy reaches
  ``busy_occupancy`` descriptors — i.e. *surplus* means "no real
  backlog for ``idle_threshold_ns``", which is exactly the condition
  under which donating the core is safe (Sec. III-D argues the victim
  service is "only lightly loaded anyway").

``request_core`` implements the policy: a service that needs capacity
first *unmarks* one of its own surplus cores (free — no context switch,
no table change); otherwise it takes the core that has been quiet
**longest** from another service ("least utility for the victim
service"), which the caller must then move between map tables.

The allocator also tracks **offline** cores (platform faults injected
by :mod:`repro.faults`): an offline core keeps its owner — so it can
rejoin the same service's map table on recovery — but is excluded from
surplus lists, donations and transfers, and never counts toward a
donor's "last core" guard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, SchedulerError

__all__ = ["CoreAllocator", "CoreTransfer"]


@dataclass(frozen=True, slots=True)
class CoreTransfer:
    """Result of a granted core request."""

    core_id: int
    donor_service: int
    recipient_service: int

    @property
    def is_internal(self) -> bool:
        """True when the service reclaimed its own surplus core (no map
        table update or context switch needed)."""
        return self.donor_service == self.recipient_service


class CoreAllocator:
    """Ownership + surplus bookkeeping for a pool of cores."""

    def __init__(
        self,
        num_cores: int,
        num_services: int,
        idle_threshold_ns: int,
        busy_occupancy: int = 4,
        owners: list[int] | None = None,
    ) -> None:
        if num_cores <= 0:
            raise ConfigError(f"need at least one core, got {num_cores}")
        if num_services <= 0:
            raise ConfigError(f"need at least one service, got {num_services}")
        if owners is None and num_cores < num_services:
            raise ConfigError(
                f"{num_cores} cores cannot cover {num_services} services "
                "(every service needs at least one)"
            )
        if idle_threshold_ns < 0:
            raise ConfigError(
                f"idle threshold must be >= 0, got {idle_threshold_ns}"
            )
        if busy_occupancy < 1:
            raise ConfigError(
                f"busy_occupancy must be >= 1, got {busy_occupancy}"
            )
        self.idle_threshold_ns = idle_threshold_ns
        self.busy_occupancy = busy_occupancy
        self._owner: list[int] = []
        if owners is None:
            # equal division, remainder to the first services (paper:
            # "cores are equally divided among services" at init)
            base, extra = divmod(num_cores, num_services)
            for sid in range(num_services):
                count = base + (1 if sid < extra else 0)
                self._owner.extend([sid] * count)
        else:
            # preset ownership (a shard of a partitioned system): -1
            # marks a *foreign* core — present in the global core-id
            # space but owned by another shard, so never surplus, never
            # a donor, never in any map table here
            if len(owners) != num_cores:
                raise ConfigError(
                    f"owners covers {len(owners)} cores, expected {num_cores}"
                )
            for sid in owners:
                if not (sid == -1 or 0 <= sid < num_services):
                    raise ConfigError(f"bad owner {sid} in preset ownership")
            for sid in range(num_services):
                if sid not in owners:
                    raise ConfigError(
                        f"service {sid} has no core in preset ownership"
                    )
            self._owner = list(owners)
        self._last_busy_ns: list[int] = [0] * num_cores
        self._offline: set[int] = set()
        self.transfers = 0
        self.internal_reclaims = 0
        self.denied_requests = 0
        self.cross_shard_grants = 0
        self.cross_shard_releases = 0

    # ------------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return len(self._owner)

    def owner_of(self, core_id: int) -> int:
        return self._owner[core_id]

    def owner_array(self) -> np.ndarray:
        """Fresh int64 snapshot of per-core owning service ids (``-1``
        marks a foreign core) — the vectorized plan overlay checks pin
        staleness against this in one gather instead of ``owner_of``
        per pin."""
        return np.asarray(self._owner, dtype=np.int64)

    def cores_of(self, service_id: int) -> list[int]:
        """Cores currently owned by *service_id* (ascending id)."""
        return [c for c, s in enumerate(self._owner) if s == service_id]

    def online_cores_of(self, service_id: int) -> list[int]:
        """The service's cores that are not offline (ascending id)."""
        return [
            c
            for c, s in enumerate(self._owner)
            if s == service_id and c not in self._offline
        ]

    def initial_allocation(self) -> dict[int, list[int]]:
        """Service -> cores mapping (used to seed the map tables).

        Foreign cores (preset owner ``-1``) belong to another shard's
        map tables and are excluded.
        """
        out: dict[int, list[int]] = {}
        for core, sid in enumerate(self._owner):
            if sid >= 0:
                out.setdefault(sid, []).append(core)
        return out

    def last_busy_ns(self, core_id: int) -> int:
        """Last instant the core had real backlog (quietness clock)."""
        return self._last_busy_ns[core_id]

    # ------------------------------------------------------------------
    # quietness tracking (driven per routed packet by the scheduler)
    # ------------------------------------------------------------------
    def note_load(self, core_id: int, occupancy: int, t_ns: int) -> None:
        """Observe the core's queue occupancy at *t_ns* (called by the
        scheduler for the core each packet is routed to)."""
        if occupancy >= self.busy_occupancy:
            self._last_busy_ns[core_id] = t_ns

    def note_load_batch(self, cores, occupancies, t_ns) -> None:
        """Vectorized :meth:`note_load` over one committed span.

        ``last_busy_ns`` keeps only the **last** qualifying timestamp
        per core, so the arrival-order replay collapses to a masked
        per-core reduction: take the final ``occ >= busy_occupancy``
        reading of each core in the span.  Exact because the span
        drain dispatches no handler (and therefore no interleaved
        ``is_surplus``/``surplus_cores`` read) between the packets of
        one committed span.
        """
        mask = occupancies >= self.busy_occupancy
        if not mask.any():
            return
        busy_cores = cores[mask]
        busy_t = t_ns[mask]
        # last qualifying reading per core: unique() on the reversed
        # span returns the index of each core's *latest* occurrence
        uniq, first_rev = np.unique(busy_cores[::-1], return_index=True)
        last_t = busy_t[::-1][first_rev]
        last_busy = self._last_busy_ns
        for core, t in zip(uniq.tolist(), last_t.tolist()):
            last_busy[core] = t

    def touch(self, core_id: int, t_ns: int) -> None:
        """Unconditionally mark the core busy (granted cores are about
        to receive load; their quiet history no longer applies)."""
        self._last_busy_ns[core_id] = t_ns

    def is_surplus(self, core_id: int, t_ns: int) -> bool:
        """True when the core has had no real backlog for the idle
        threshold (an offline core is never surplus)."""
        if core_id in self._offline:
            return False
        return t_ns - self._last_busy_ns[core_id] >= self.idle_threshold_ns

    def surplus_cores(self, t_ns: int, service_id: int | None = None) -> list[int]:
        """Surplus cores (optionally of one service), longest-quiet
        first."""
        cores = [
            (self._last_busy_ns[core], core)
            for core in range(len(self._owner))
            if core not in self._offline
            and self._owner[core] >= 0  # foreign cores are never ours to give
            and t_ns - self._last_busy_ns[core] >= self.idle_threshold_ns
            and (service_id is None or self._owner[core] == service_id)
        ]
        cores.sort()
        return [core for _, core in cores]

    # ------------------------------------------------------------------
    # core health (driven by repro.faults via the scheduler)
    # ------------------------------------------------------------------
    def is_offline(self, core_id: int) -> bool:
        return core_id in self._offline

    @property
    def offline_cores(self) -> list[int]:
        return sorted(self._offline)

    def set_offline(self, core_id: int) -> int:
        """Take the core out of service; returns its (kept) owner.

        Releasing a core twice is an injector bug, not a tolerable
        no-op, so it raises.
        """
        if not 0 <= core_id < len(self._owner):
            raise SchedulerError(f"no such core: {core_id}")
        if core_id in self._offline:
            raise SchedulerError(f"core {core_id} is already offline")
        self._offline.add(core_id)
        return self._owner[core_id]

    def set_online(self, core_id: int, t_ns: int = 0) -> int:
        """Return a previously offline core to service; it re-enters as
        busy (touched at *t_ns*) so it is not instantly donated away.
        Returns the owner it rejoins."""
        if core_id not in self._offline:
            raise SchedulerError(f"core {core_id} is not offline")
        self._offline.discard(core_id)
        self._last_busy_ns[core_id] = t_ns
        return self._owner[core_id]

    # ------------------------------------------------------------------
    def request_core(self, service_id: int, t_ns: int) -> CoreTransfer | None:
        """Grant the requesting service one more core, or None.

        Order of preference (Sec. III-C/D):

        1. the service's own longest-quiet surplus core — unmarked in
           place (no map-table change, no context switch);
        2. the longest-quiet surplus core of any other service —
           ownership moves, the caller must update both map tables;
        3. nothing available — the request is denied (the system is
           genuinely saturated).

        An external grant changes ``owner_of`` answers, which vectorized
        plans consult (stale-pin detection), so the calling scheduler
        must bump its ``map_epoch`` along with the map-table updates; an
        internal reclaim changes no routing state and needs no bump.
        """
        own = self.surplus_cores(t_ns, service_id)
        if own:
            core = own[0]
            self.touch(core, t_ns)  # unmark
            self.internal_reclaims += 1
            return CoreTransfer(core, service_id, service_id)
        everyone = self.surplus_cores(t_ns)
        # never strip a donor's last online core: each service keeps >= 1
        donors = [
            c
            for c in everyone
            if self._owner[c] != service_id
            and len(self.online_cores_of(self._owner[c])) > 1
        ]
        if not donors:
            self.denied_requests += 1
            return None
        core = donors[0]
        donor = self._owner[core]
        self._owner[core] = service_id
        self.touch(core, t_ns)
        self.transfers += 1
        return CoreTransfer(core, donor, service_id)

    def force_transfer(self, core_id: int, to_service: int) -> CoreTransfer:
        """Unconditionally reassign a core (administrative/test hook)."""
        if core_id in self._offline:
            raise SchedulerError(f"cannot transfer offline core {core_id}")
        donor = self._owner[core_id]
        if donor == to_service:
            raise SchedulerError(f"core {core_id} already owned by {to_service}")
        if len(self.online_cores_of(donor)) <= 1:
            raise SchedulerError(
                f"cannot strip service {donor} of its last core"
            )
        self._owner[core_id] = to_service
        self.transfers += 1
        return CoreTransfer(core_id, donor, to_service)

    # ------------------------------------------------------------------
    # cross-shard core movement (repro.sim.sharding barrier protocol)
    # ------------------------------------------------------------------
    def adopt(self, core_id: int, service_id: int, t_ns: int) -> None:
        """Take ownership of a *foreign* core granted by another shard.

        The granted core arrives busy-touched (like :meth:`set_online`)
        so it is not immediately re-donated.
        """
        if not 0 <= core_id < len(self._owner):
            raise SchedulerError(f"no such core: {core_id}")
        if self._owner[core_id] != -1:
            raise SchedulerError(
                f"core {core_id} is owned by service {self._owner[core_id]}, "
                "not foreign — cannot adopt"
            )
        if core_id in self._offline:
            raise SchedulerError(f"cannot adopt offline core {core_id}")
        self._owner[core_id] = service_id
        self.touch(core_id, t_ns)
        self.cross_shard_grants += 1

    def release(self, core_id: int) -> int:
        """Surrender an owned core to another shard (owner -> ``-1``).

        Returns the previous owner.  The usual donor guards apply: the
        core must be online and must not be its service's last online
        core.
        """
        owner = self._owner[core_id]
        if owner < 0:
            raise SchedulerError(f"core {core_id} is already foreign")
        if core_id in self._offline:
            raise SchedulerError(f"cannot release offline core {core_id}")
        if len(self.online_cores_of(owner)) <= 1:
            raise SchedulerError(
                f"cannot strip service {owner} of its last core"
            )
        self._owner[core_id] = -1
        self.cross_shard_releases += 1
        return owner
