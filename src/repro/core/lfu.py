"""A fully-associative cache with Least-Frequently-Used replacement.

Both levels of the Aggressive Flow Detector (the 16-entry AFC and the
larger annex cache, paper Sec. III-F) are small fully-associative LFU
caches.  This model keeps exact per-entry frequency counters and evicts
the minimum-count entry.

The implementation is the classic O(1) LFU: a dict of key -> count plus
frequency buckets (count -> insertion-ordered key set) and a running
minimum.  Hits, inserts and evictions are all O(1) amortised — the AFD
sits on the per-packet path of the simulator, and a linear LFU scan
over a 512-4096-entry annex was the simulation's bottleneck.

Tie-break: among minimum-count entries the one least recently *moved to
that count* is evicted (FIFO within the frequency bucket) — the
standard LFU-with-LRU-tiebreak hardware approximation, and fully
deterministic.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

__all__ = ["LFUCache"]


class LFUCache:
    """Fully-associative LFU cache mapping keys to frequency counts.

    Not a general value store: entries carry only their counter (the
    AFD needs nothing else).  ``access`` is the combined
    lookup-and-insert the hardware performs per packet.
    """

    __slots__ = ("_capacity", "_counts", "_buckets", "_min_count",
                 "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._counts: dict[Hashable, int] = {}
        # count -> {key: None}; plain dicts preserve insertion order,
        # giving the FIFO-within-bucket tie-break for free
        self._buckets: dict[int, dict[Hashable, None]] = {}
        self._min_count = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._counts)

    def count(self, key: Hashable) -> int:
        """Current frequency counter of *key* (0 if absent)."""
        return self._counts.get(key, 0)

    def keys(self) -> list[Hashable]:
        """Resident keys (insertion order)."""
        return list(self._counts)

    @property
    def is_full(self) -> bool:
        return len(self._counts) >= self._capacity

    # ------------------------------------------------------------------
    # internal bucket plumbing
    # ------------------------------------------------------------------
    def _bucket_add(self, key: Hashable, count: int) -> None:
        bucket = self._buckets.get(count)
        if bucket is None:
            bucket = {}
            self._buckets[count] = bucket
        bucket[key] = None

    def _bucket_remove(self, key: Hashable, count: int) -> None:
        bucket = self._buckets[count]
        del bucket[key]
        if not bucket:
            del self._buckets[count]
            if self._min_count == count and self._buckets:
                # lazily re-derive; #distinct counts <= capacity
                self._min_count = min(self._buckets)

    # ------------------------------------------------------------------
    def hit(self, key: Hashable) -> bool:
        """Pure lookup: increment the counter iff resident."""
        count = self._counts.get(key)
        if count is None:
            self.misses += 1
            return False
        self._counts[key] = count + 1
        # add to the new bucket before removing from the old one: the
        # removal may re-derive the running minimum over all buckets,
        # and the new bucket must already be visible to that scan
        self._bucket_add(key, count + 1)
        self._bucket_remove(key, count)
        self.hits += 1
        return True

    def merge_hits(self, keys, deltas) -> None:
        """Apply *deltas* accumulated hits per resident key in one
        bucket hop each — bit-identical to replaying the hits one by
        one, provided *keys* are ordered by their **last** occurrence
        in the original stream.

        Why last-occurrence order suffices: a key's final FIFO position
        inside its final frequency bucket is fixed by the moment it
        last arrived there (its last hit); the intermediate single-step
        hops of the scalar replay leave no trace once the key has moved
        on.  So one ``count -> count+delta`` hop per key, applied in
        the order of last hits, rebuilds the exact bucket contents,
        FIFO order and running minimum of the scalar replay.  Callers
        must not let any *other* arrival land in a merged key's final
        bucket between the replayed window and the merge (the AFD
        flushes pending merges before any structural operation).
        """
        counts = self._counts
        total = 0
        for key, delta in zip(keys, deltas):
            count = counts[key]
            counts[key] = count + delta
            self._bucket_add(key, count + delta)
            self._bucket_remove(key, count)
            total += delta
        self.hits += total

    def access(self, key: Hashable) -> tuple[bool, Hashable | None]:
        """Lookup-and-insert (the per-packet hardware operation).

        On a hit, increments the counter and returns ``(True, None)``.
        On a miss, inserts *key* with count 1, evicting the LFU entry if
        full, and returns ``(False, victim_or_None)``.
        """
        if self.hit(key):
            return True, None
        victim = self.insert(key)
        return False, victim

    def insert(self, key: Hashable, count: int = 1) -> Hashable | None:
        """Force *key* in with an initial *count*; returns the evicted
        victim (or None).  Re-inserting a resident key just overwrites
        its counter."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        old = self._counts.get(key)
        if old is not None:
            if old != count:
                self._counts[key] = count
                self._bucket_add(key, count)
                self._bucket_remove(key, old)
                if count < self._min_count:
                    self._min_count = count
            return None
        victim = None
        if len(self._counts) >= self._capacity:
            victim = self.lfu_key()
            self.evict(victim)
            self.evictions += 1
        self._counts[key] = count
        self._bucket_add(key, count)
        if len(self._counts) == 1 or count < self._min_count:
            self._min_count = count
        return victim

    def lfu_key(self) -> Hashable:
        """The current LFU victim (min count, least recently moved to
        that count wins ties)."""
        if not self._counts:
            raise KeyError("cache is empty")
        return next(iter(self._buckets[self._min_count]))

    def evict(self, key: Hashable) -> int:
        """Remove *key*; returns its final counter value."""
        count = self._counts.pop(key)
        self._bucket_remove(key, count)
        return count

    def invalidate(self, key: Hashable) -> bool:
        """Remove *key* if present (the scheduler invalidates an AFC
        entry once the flow has been migrated, Listing 1 line 8)."""
        if key in self._counts:
            self.evict(key)
            return True
        return False

    def clear(self) -> None:
        self._counts.clear()
        self._buckets.clear()
        self._min_count = 0

    def decay(self, shift: int = 1) -> None:
        """Halve (``>> shift``) every counter — periodic aging so stale
        elephants do not pin entries forever.  Optional extension; the
        base paper design never decays.  O(n) rebuild."""
        if shift < 0:
            raise ValueError(f"shift must be >= 0, got {shift}")
        if shift == 0 or not self._counts:
            return
        decayed = {k: c >> shift for k, c in self._counts.items()}
        self._counts = decayed
        self._buckets = {}
        for k, c in decayed.items():
            self._bucket_add(k, c)
        self._min_count = min(self._buckets)
