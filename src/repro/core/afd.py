"""The Aggressive Flow Detector (AFD) — paper Sec. III-F, Fig. 4.

Two fully-associative LFU caches:

* the **annex cache** (large, default 512 entries) — the qualifying
  station.  Every flow's first appearance lands here; only a flow that
  *proves locality* (its annex counter crosses ``promote_threshold``)
  is promoted;
* the **Aggressive Flow Cache** (AFC, small, default 16 entries) — holds
  the ids of the top aggressive flows.  "Flows that hit in the AFC are
  considered aggressive."

Per-packet protocol (exactly Fig. 4's arrows):

1. Probe the AFC.  Hit → increment its counter; done.
2. Probe the annex.  Hit → increment; if the counter now exceeds the
   threshold, promote to the AFC.  The AFC's LFU victim is demoted back
   into the annex (the annex doubles as a victim cache, giving flows
   "inertia" before they are fully excluded).
3. Miss in both → insert into the annex, evicting its LFU entry.

Optional **packet sampling** (Fig. 8c): each packet consults the AFD
with probability ``sample_prob``; sampling both cuts detector power and
— because an elephant is proportionally more likely to be sampled —
acts as a pre-filter that *improves* accuracy up to ~1/1000.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lfu import LFUCache
from repro.util.rng import make_rng

__all__ = ["AFDConfig", "AggressiveFlowDetector"]


@dataclass(frozen=True)
class AFDConfig:
    """AFD sizing and policy knobs (defaults follow the paper).

    ``decay_every`` is an optional extension beyond the paper (in the
    spirit of Zadnik & Canini's evolved replacement policies, cited as
    [40]): every N *sampled* packets all counters in both levels are
    halved, so the detector tracks current rates instead of lifetime
    totals — useful on long nonstationary streams where yesterday's
    elephant should eventually yield its AFC slot.
    """

    afc_entries: int = 16
    annex_entries: int = 512
    promote_threshold: int = 8
    sample_prob: float = 1.0
    demote_victims: bool = True  # annex as victim cache for AFC evictees
    decay_every: int | None = None
    decay_shift: int = 1

    def __post_init__(self) -> None:
        if self.afc_entries <= 0:
            raise ValueError(f"afc_entries must be positive, got {self.afc_entries}")
        if self.annex_entries <= 0:
            raise ValueError(f"annex_entries must be positive, got {self.annex_entries}")
        if self.promote_threshold < 1:
            raise ValueError(
                f"promote_threshold must be >= 1, got {self.promote_threshold}"
            )
        if not 0.0 < self.sample_prob <= 1.0:
            raise ValueError(f"sample_prob must be in (0, 1], got {self.sample_prob}")
        if self.decay_every is not None and self.decay_every <= 0:
            raise ValueError(
                f"decay_every must be positive or None, got {self.decay_every}"
            )
        if self.decay_shift < 1:
            raise ValueError(f"decay_shift must be >= 1, got {self.decay_shift}")


class AggressiveFlowDetector:
    """Behavioural model of the two-level AFD hardware."""

    def __init__(
        self,
        config: AFDConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.config = config or AFDConfig()
        self.afc = LFUCache(self.config.afc_entries)
        self.annex = LFUCache(self.config.annex_entries)
        self._rng = make_rng(rng)
        self.promotions = 0
        self.demotions = 0
        self.observed = 0
        self.sampled = 0

    # ------------------------------------------------------------------
    # per-packet path
    # ------------------------------------------------------------------
    def observe(self, flow_id: int) -> None:
        """Account one packet of *flow_id* (honouring sampling)."""
        self.observed += 1
        if self.config.sample_prob < 1.0 and self._rng.random() >= self.config.sample_prob:
            return
        self.sampled += 1
        decay_every = self.config.decay_every
        if decay_every is not None and self.sampled % decay_every == 0:
            self.afc.decay(self.config.decay_shift)
            self.annex.decay(self.config.decay_shift)
        self._observe_sampled(flow_id)

    def _observe_sampled(self, flow_id: int) -> None:
        if self.afc.hit(flow_id):
            return
        if self.annex.hit(flow_id):
            if self.annex.count(flow_id) >= self.config.promote_threshold:
                self._try_promote(flow_id)
            return
        self.annex.insert(flow_id)

    def _try_promote(self, flow_id: int) -> None:
        """Promote annex -> AFC iff the candidate out-ranks the AFC's
        weakest resident.

        "A flow deserves to enter AFC only if it proves its right to be
        in AFC" (Sec. III-F): crossing the annex threshold earns a
        *challenge*, not a slot.  A candidate that cannot beat the
        current LFU resident's count stays in the annex (its counter
        keeps growing, so a genuinely rising elephant wins a later
        challenge).  Without this rule the AFC permanently carries one
        just-promoted medium flow — a built-in false positive.

        Frequency counters travel with the flows in both directions:
        the promoted flow enters the AFC at its annex count, and the
        demoted victim re-enters the annex at its AFC count — so a
        displaced elephant keeps its standing (the victim-cache
        "inertia" of Sec. III-F) instead of restarting from one.
        """
        victim = None
        victim_count = 0
        if self.afc.is_full:
            victim = self.afc.lfu_key()
            victim_count = self.afc.count(victim)
            if self.annex.count(flow_id) <= victim_count:
                return  # challenge failed: stay in the annex
            self.afc.evict(victim)
        count = self.annex.evict(flow_id)
        self.afc.insert(flow_id, count)
        self.promotions += 1
        if victim is not None and self.config.demote_victims:
            self.annex.insert(victim, victim_count)
            self.demotions += 1

    # ------------------------------------------------------------------
    # scheduler-facing queries (Listing 1)
    # ------------------------------------------------------------------
    def is_aggressive(self, flow_id: int) -> bool:
        """``AFC.access(flowID)`` of Listing 1: membership test only
        (does not touch the counters — the load-balancer peeks, the
        packet path updates)."""
        return flow_id in self.afc

    def invalidate(self, flow_id: int) -> bool:
        """``AFC.invalidate(flowID)`` after the flow enters the
        migration table (Listing 1 line 8)."""
        return self.afc.invalidate(flow_id)

    def aggressive_flows(self) -> list[int]:
        """Current AFC residents (the detector's top-flow estimate)."""
        return [int(k) for k in self.afc.keys()]

    # ------------------------------------------------------------------
    # evaluation helpers
    # ------------------------------------------------------------------
    def false_positive_ratio(self, true_top: set[int]) -> float:
        """``false positives / total AFC entries`` against an offline
        ground-truth set (Fig. 8a's metric).  Empty AFC → 0.0."""
        entries = self.aggressive_flows()
        if not entries:
            return 0.0
        fp = sum(1 for f in entries if f not in true_top)
        return fp / len(entries)

    def accuracy(self, true_top: set[int]) -> float:
        """Fraction of AFC entries that are true top flows (1 − FPR)."""
        return 1.0 - self.false_positive_ratio(true_top)

    def reset(self) -> None:
        """Clear both levels and statistics."""
        self.afc.clear()
        self.annex.clear()
        self.promotions = self.demotions = 0
        self.observed = self.sampled = 0
