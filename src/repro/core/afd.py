"""The Aggressive Flow Detector (AFD) — paper Sec. III-F, Fig. 4.

Two fully-associative LFU caches:

* the **annex cache** (large, default 512 entries) — the qualifying
  station.  Every flow's first appearance lands here; only a flow that
  *proves locality* (its annex counter crosses ``promote_threshold``)
  is promoted;
* the **Aggressive Flow Cache** (AFC, small, default 16 entries) — holds
  the ids of the top aggressive flows.  "Flows that hit in the AFC are
  considered aggressive."

Per-packet protocol (exactly Fig. 4's arrows):

1. Probe the AFC.  Hit → increment its counter; done.
2. Probe the annex.  Hit → increment; if the counter now exceeds the
   threshold, promote to the AFC.  The AFC's LFU victim is demoted back
   into the annex (the annex doubles as a victim cache, giving flows
   "inertia" before they are fully excluded).
3. Miss in both → insert into the annex, evicting its LFU entry.

Optional **packet sampling** (Fig. 8c): each packet consults the AFD
with probability ``sample_prob``; sampling both cuts detector power and
— because an elephant is proportionally more likely to be sampled —
acts as a pre-filter that *improves* accuracy up to ~1/1000.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lfu import LFUCache
from repro.util.rng import make_rng

__all__ = ["AFDConfig", "AggressiveFlowDetector"]


@dataclass(frozen=True)
class AFDConfig:
    """AFD sizing and policy knobs (defaults follow the paper).

    ``decay_every`` is an optional extension beyond the paper (in the
    spirit of Zadnik & Canini's evolved replacement policies, cited as
    [40]): every N *sampled* packets all counters in both levels are
    halved, so the detector tracks current rates instead of lifetime
    totals — useful on long nonstationary streams where yesterday's
    elephant should eventually yield its AFC slot.
    """

    afc_entries: int = 16
    annex_entries: int = 512
    promote_threshold: int = 8
    sample_prob: float = 1.0
    demote_victims: bool = True  # annex as victim cache for AFC evictees
    decay_every: int | None = None
    decay_shift: int = 1

    def __post_init__(self) -> None:
        if self.afc_entries <= 0:
            raise ValueError(f"afc_entries must be positive, got {self.afc_entries}")
        if self.annex_entries <= 0:
            raise ValueError(f"annex_entries must be positive, got {self.annex_entries}")
        if self.promote_threshold < 1:
            raise ValueError(
                f"promote_threshold must be >= 1, got {self.promote_threshold}"
            )
        if not 0.0 < self.sample_prob <= 1.0:
            raise ValueError(f"sample_prob must be in (0, 1], got {self.sample_prob}")
        if self.decay_every is not None and self.decay_every <= 0:
            raise ValueError(
                f"decay_every must be positive or None, got {self.decay_every}"
            )
        if self.decay_shift < 1:
            raise ValueError(f"decay_shift must be >= 1, got {self.decay_shift}")


class AggressiveFlowDetector:
    """Behavioural model of the two-level AFD hardware."""

    def __init__(
        self,
        config: AFDConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.config = config or AFDConfig()
        self.afc = LFUCache(self.config.afc_entries)
        self.annex = LFUCache(self.config.annex_entries)
        self._rng = make_rng(rng)
        self.promotions = 0
        self.demotions = 0
        self.observed = 0
        self.sampled = 0

    # ------------------------------------------------------------------
    # per-packet path
    # ------------------------------------------------------------------
    def observe(self, flow_id: int) -> None:
        """Account one packet of *flow_id* (honouring sampling)."""
        self.observed += 1
        if self.config.sample_prob < 1.0 and self._rng.random() >= self.config.sample_prob:
            return
        self.sampled += 1
        decay_every = self.config.decay_every
        if decay_every is not None and self.sampled % decay_every == 0:
            self.afc.decay(self.config.decay_shift)
            self.annex.decay(self.config.decay_shift)
        self._observe_sampled(flow_id)

    def _observe_sampled(self, flow_id: int) -> None:
        if self.afc.hit(flow_id):
            return
        if self.annex.hit(flow_id):
            if self.annex.count(flow_id) >= self.config.promote_threshold:
                self._try_promote(flow_id)
            return
        self.annex.insert(flow_id)

    # ------------------------------------------------------------------
    # batched path (the calendar engine's span drain)
    # ------------------------------------------------------------------
    def observe_batch(self, flow_ids: np.ndarray) -> None:
        """Account a committed span of packets — bit-identical to
        calling :meth:`observe` once per element, in order.

        The scalar protocol is restructured, never weakened:

        * the sampling mask is one ``rng.random(n) < sample_prob`` draw
          (stream-identical to n successive scalar draws for the numpy
          ``Generator``);
        * decay boundaries follow from ``sampled``-counter arithmetic,
          splitting the span into decay-delimited segments;
        * within a segment, AFC-resident hits collapse to a single
          bincount-style counter merge and annex hits that provably
          cannot promote accumulate into one bucket hop per flow
          (:meth:`LFUCache.merge_hits`);
        * only the residual annex-insert / promotion-attempt
          subsequence replays through the exact scalar path, with all
          pending merges flushed first so every structural read (LFU
          victim choice, challenge counts) sees the scalar state.
        """
        flow_ids = np.asarray(flow_ids)
        n = int(flow_ids.size)
        if n == 0:
            return
        self.observed += n
        cfg = self.config
        if cfg.sample_prob < 1.0:
            keep = self._rng.random(n) < cfg.sample_prob
            flow_ids = flow_ids[keep]
        m = int(flow_ids.size)
        s0 = self.sampled
        self.sampled = s0 + m
        if m == 0:
            return
        every = cfg.decay_every
        if every is None:
            self._observe_segment(flow_ids)
            return
        # decay fires *before* the boundary-rank packet is observed
        # (scalar: the ``sampled % decay_every`` check precedes
        # ``_observe_sampled``), so rank r = every - s0 % every starts
        # a fresh post-decay segment
        r = every - (s0 % every)
        lo = 0
        shift = cfg.decay_shift
        while r <= m:
            if r - 1 > lo:
                self._observe_segment(flow_ids[lo:r - 1])
            self.afc.decay(shift)
            self.annex.decay(shift)
            lo = r - 1
            r += every
        if lo < m:
            self._observe_segment(flow_ids[lo:])

    def _observe_segment(self, fids: np.ndarray) -> None:
        """One decay-free stretch: AFC membership only changes when a
        promotion lands, so process it as runs of frozen AFC residency,
        recomputing the residency vectors after each membership
        change."""
        start = 0
        n = int(fids.size)
        while start < n:
            start = self._observe_run(fids, start)

    def _observe_run(self, fids: np.ndarray, start: int) -> int:
        """Process ``fids[start:]`` until the end or the first AFC
        membership change (a successful promotion); returns the index
        to resume from.

        Exactness argument, per packet class:

        * **AFC-resident** (residency frozen for the run): a pure
          counter hit.  All such hits merge via one bincount +
          :meth:`LFUCache.merge_hits`, flushed before any reader of
          AFC counts (a promotion challenge) and at run end.
        * **Annex hit that cannot promote**: either the count stays
          below ``promote_threshold``, or the AFC is full and the
          flow's count cannot exceed the AFC's minimum — which is
          non-decreasing within a decay-free segment — so the scalar
          challenge would fail without touching state.  Both cases are
          pure counter hits; they accumulate per flow and merge in
          last-occurrence order.
        * **Everything else** (annex miss → insert, or a challenge
          that could succeed) replays through the exact scalar
          operations.  Before an insert must evict, the scalar victim
          is read off the lazy state directly: scalar bucket 1 is the
          lazy count-1 bucket minus the pending keys (a pending flow's
          scalar count sits strictly above the lazy minimum, and fresh
          inserts arrive in identical FIFO order), so the first
          non-pending key of lazy bucket 1 is provably the scalar LFU
          victim; only when no such key exists do the pending merges
          flush first.  A challenge flushes both caches
          unconditionally.
        """
        afc = self.afc
        annex = self.annex
        cfg = self.config
        threshold = cfg.promote_threshold
        rem = fids[start:] if start else fids
        num_afc = len(afc._counts)
        if num_afc:
            skeys = np.sort(
                np.fromiter(afc._counts.keys(), dtype=np.int64, count=num_afc)
            )
            slot = np.searchsorted(skeys, rem)
            np.minimum(slot, num_afc - 1, out=slot)
            afc_mask = skeys[slot] == rem
            afc_rel = np.nonzero(afc_mask)[0]
            afc_slot = slot[afc_rel]
            walk_rel = np.nonzero(~afc_mask)[0]
            walk_fids = rem[walk_rel].tolist()
        else:
            skeys = afc_rel = afc_slot = walk_rel = None
            walk_fids = rem.tolist()
        afc_full = num_afc >= afc.capacity
        afc_floor = afc._min_count if afc_full else 0
        annex_counts = annex._counts
        annex_cap = annex.capacity
        annex_insert = annex.insert
        pending: dict[int, int] = {}
        #: a pended flow whose stored count is 0 (possible right after a
        #: decay) may merge into frequency bucket 1 — the bucket fresh
        #: inserts append to — so inserts must flush first to keep the
        #: scalar FIFO order
        pending_zero = False
        afc_flushed = 0
        afc_misses = 0
        annex_misses = 0
        for i, f in enumerate(walk_fids):
            afc_misses += 1  # scalar probes (and misses) the AFC first
            count = annex_counts.get(f)
            if count is None:
                annex_misses += 1
                if pending:
                    if pending_zero:
                        annex.merge_hits(pending.keys(), pending.values())
                        pending = {}
                        pending_zero = False
                    elif len(annex_counts) >= annex_cap:
                        # scalar bucket 1 is exactly the lazy bucket 1
                        # minus the pending keys (their scalar counts
                        # sit strictly above the lazy minimum), so the
                        # scalar LFU victim is the first non-pending
                        # key of lazy bucket 1 — evict it directly and
                        # keep accumulating; flush only when no such
                        # key exists
                        victim = None
                        if annex._min_count == 1:
                            for cand in annex._buckets[1]:
                                if cand not in pending:
                                    victim = cand
                                    break
                        if victim is None:
                            annex.merge_hits(pending.keys(), pending.values())
                            pending = {}
                        else:
                            annex.evict(victim)
                            annex.evictions += 1
                annex_insert(f)
                continue
            delta = pending.get(f, 0)
            new_count = count + delta + 1
            if new_count < threshold or (afc_full and new_count <= afc_floor):
                if delta:
                    del pending[f]  # re-append: dict order = last occurrence
                elif count == 0:
                    pending_zero = True
                pending[f] = delta + 1
                continue
            # genuine promotion attempt: flush, then exact scalar replay
            pos = int(walk_rel[i]) if walk_rel is not None else i
            afc_flushed = self._flush_afc(
                skeys, afc_rel, afc_slot, afc_flushed, pos
            )
            if pending:
                annex.merge_hits(pending.keys(), pending.values())
                pending = {}
                pending_zero = False
            afc.misses += afc_misses
            annex.misses += annex_misses
            afc_misses = annex_misses = 0
            promotions = self.promotions
            annex.hit(f)
            self._try_promote(f)
            if self.promotions != promotions:
                # membership changed: residency vectors are stale
                return start + pos + 1
            if afc_full:
                afc_floor = afc._min_count  # only ever grows in-segment
        if afc_rel is not None:
            self._flush_afc(skeys, afc_rel, afc_slot, afc_flushed, rem.size)
        if pending:
            annex.merge_hits(pending.keys(), pending.values())
        afc.misses += afc_misses
        annex.misses += annex_misses
        return int(fids.size)

    def _flush_afc(self, skeys, afc_rel, afc_slot, flushed: int, upto: int) -> int:
        """Merge the AFC-resident hits at run-relative positions
        ``afc_rel[flushed:]`` that fall before *upto*; returns the new
        flushed prefix length."""
        if afc_rel is None:
            return flushed
        j = int(np.searchsorted(afc_rel, upto))
        if j > flushed:
            span = afc_slot[flushed:j]
            deltas = np.bincount(span, minlength=skeys.size)
            last = np.full(skeys.size, -1, dtype=np.int64)
            last[span] = np.arange(span.size)  # duplicate index: last wins
            keys, counts = [], []
            for s in np.argsort(last, kind="stable").tolist():
                if last[s] >= 0:
                    keys.append(int(skeys[s]))
                    counts.append(int(deltas[s]))
            self.afc.merge_hits(keys, counts)
        return j

    def _try_promote(self, flow_id: int) -> None:
        """Promote annex -> AFC iff the candidate out-ranks the AFC's
        weakest resident.

        "A flow deserves to enter AFC only if it proves its right to be
        in AFC" (Sec. III-F): crossing the annex threshold earns a
        *challenge*, not a slot.  A candidate that cannot beat the
        current LFU resident's count stays in the annex (its counter
        keeps growing, so a genuinely rising elephant wins a later
        challenge).  Without this rule the AFC permanently carries one
        just-promoted medium flow — a built-in false positive.

        Frequency counters travel with the flows in both directions:
        the promoted flow enters the AFC at its annex count, and the
        demoted victim re-enters the annex at its AFC count — so a
        displaced elephant keeps its standing (the victim-cache
        "inertia" of Sec. III-F) instead of restarting from one.
        """
        victim = None
        victim_count = 0
        if self.afc.is_full:
            victim = self.afc.lfu_key()
            victim_count = self.afc.count(victim)
            if self.annex.count(flow_id) <= victim_count:
                return  # challenge failed: stay in the annex
            self.afc.evict(victim)
        count = self.annex.evict(flow_id)
        self.afc.insert(flow_id, count)
        self.promotions += 1
        if victim is not None and self.config.demote_victims:
            self.annex.insert(victim, victim_count)
            self.demotions += 1

    # ------------------------------------------------------------------
    # scheduler-facing queries (Listing 1)
    # ------------------------------------------------------------------
    def is_aggressive(self, flow_id: int) -> bool:
        """``AFC.access(flowID)`` of Listing 1: membership test only
        (does not touch the counters — the load-balancer peeks, the
        packet path updates)."""
        return flow_id in self.afc

    def invalidate(self, flow_id: int) -> bool:
        """``AFC.invalidate(flowID)`` after the flow enters the
        migration table (Listing 1 line 8)."""
        return self.afc.invalidate(flow_id)

    def aggressive_flows(self) -> list[int]:
        """Current AFC residents (the detector's top-flow estimate)."""
        return [int(k) for k in self.afc.keys()]

    # ------------------------------------------------------------------
    # evaluation helpers
    # ------------------------------------------------------------------
    def false_positive_ratio(self, true_top: set[int]) -> float:
        """``false positives / total AFC entries`` against an offline
        ground-truth set (Fig. 8a's metric).  Empty AFC → 0.0."""
        entries = self.aggressive_flows()
        if not entries:
            return 0.0
        fp = sum(1 for f in entries if f not in true_top)
        return fp / len(entries)

    def accuracy(self, true_top: set[int]) -> float:
        """Fraction of AFC entries that are true top flows (1 − FPR)."""
        return 1.0 - self.false_positive_ratio(true_top)

    def reset(self) -> None:
        """Clear both levels and statistics."""
        self.afc.clear()
        self.annex.clear()
        self.promotions = self.demotions = 0
        self.observed = self.sampled = 0
