"""The paper's primary contribution: the Locality Aware Packet Scheduler
(LAPS) and its building blocks.

* :mod:`repro.core.lfu` — fully-associative LFU cache (the hardware
  structure both AFD levels use);
* :mod:`repro.core.afd` — Aggressive Flow Detector: annex cache
  filtering promotions into the small Aggressive Flow Cache (Fig. 4);
* :mod:`repro.core.incremental_hash` — the h1/h2 linear-hashing scheme
  of Sec. III-C;
* :mod:`repro.core.map_table` — per-service map tables (bucket lists);
* :mod:`repro.core.migration` — the migration table that overrides the
  map table for migrated flows;
* :mod:`repro.core.allocator` — dynamic allocation/release of cores to
  services (surplus list, idle timers, Sec. III-C/D);
* :mod:`repro.core.laps` — the scheduler itself (Listing 1 + Sec. III-E);
* :mod:`repro.core.timing` — the Sec. III-G critical-path timing model.
"""

from repro.core.lfu import LFUCache
from repro.core.afd import AFDConfig, AggressiveFlowDetector
from repro.core.incremental_hash import IncrementalHash
from repro.core.map_table import ServiceMapTable
from repro.core.migration import MigrationTable
from repro.core.allocator import CoreAllocator
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.core.timing import LAPSTimingModel, SRAMModel, estimate_max_rate_mpps

__all__ = [
    "LFUCache",
    "AFDConfig",
    "AggressiveFlowDetector",
    "IncrementalHash",
    "ServiceMapTable",
    "MigrationTable",
    "CoreAllocator",
    "LAPSConfig",
    "LAPSScheduler",
    "LAPSTimingModel",
    "SRAMModel",
    "estimate_max_rate_mpps",
]
