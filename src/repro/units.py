"""Time and rate units used throughout the simulator.

The discrete-event simulator works in **integer nanoseconds**.  Integer
time is exact (no float drift when accumulating millions of events),
hashable, and cheap to compare inside the event heap.  All public APIs
that accept durations take either an integer nanosecond count or one of
the helpers below.

Rates are expressed in packets per second (pps).  The paper quotes rates
in Mpps (million packets per second); :func:`mpps` converts.
"""

from __future__ import annotations

__all__ = [
    "NS",
    "US",
    "MS",
    "SEC",
    "ns",
    "us",
    "ms",
    "seconds",
    "to_seconds",
    "to_us",
    "mpps",
    "kpps",
    "pps_to_interarrival_ns",
    "interarrival_ns_to_pps",
]

#: One nanosecond (the base tick).
NS: int = 1
#: Nanoseconds per microsecond.
US: int = 1_000
#: Nanoseconds per millisecond.
MS: int = 1_000_000
#: Nanoseconds per second.
SEC: int = 1_000_000_000


def ns(value: float) -> int:
    """Return *value* nanoseconds as an integer tick count."""
    return round(value)


def us(value: float) -> int:
    """Return *value* microseconds as an integer nanosecond count."""
    return round(value * US)


def ms(value: float) -> int:
    """Return *value* milliseconds as an integer nanosecond count."""
    return round(value * MS)


def seconds(value: float) -> int:
    """Return *value* seconds as an integer nanosecond count."""
    return round(value * SEC)


def to_seconds(t_ns: int) -> float:
    """Convert an integer nanosecond count to float seconds."""
    return t_ns / SEC


def to_us(t_ns: int) -> float:
    """Convert an integer nanosecond count to float microseconds."""
    return t_ns / US


def mpps(value: float) -> float:
    """Convert a rate in million packets/second to packets/second."""
    return value * 1e6


def kpps(value: float) -> float:
    """Convert a rate in thousand packets/second to packets/second."""
    return value * 1e3


def pps_to_interarrival_ns(rate_pps: float) -> float:
    """Mean inter-arrival time in nanoseconds for a rate in packets/s.

    Raises :class:`ValueError` for non-positive rates: a zero rate has no
    finite inter-arrival time and callers must special-case it.
    """
    if rate_pps <= 0:
        raise ValueError(f"rate must be positive, got {rate_pps}")
    return SEC / rate_pps


def interarrival_ns_to_pps(gap_ns: float) -> float:
    """Rate in packets/s for a mean inter-arrival gap in nanoseconds."""
    if gap_ns <= 0:
        raise ValueError(f"inter-arrival gap must be positive, got {gap_ns}")
    return SEC / gap_ns
