"""Toeplitz hash as used by Receive-Side Scaling (RSS).

RSS-style Toeplitz hashing is the de-facto flow-steering hash in NICs
and is the natural "what industry ships" comparison point for the
paper's CRC16 choice.  The experiment harness uses it to show that the
*choice of hash* does not fix skew-induced imbalance (the paper's core
motivation: a few elephant flows overload whichever bucket they land in
regardless of hash quality).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ToeplitzHasher", "MICROSOFT_RSS_KEY"]

#: The 40-byte default RSS key from the Microsoft RSS specification
#: (also Intel's default); verified against the published test vectors.
MICROSOFT_RSS_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)


class ToeplitzHasher:
    """Toeplitz hash over an arbitrary-length input with a sliding key.

    For each set bit *i* (MSB-first) of the input, XOR in the 32-bit
    window of the key starting at bit *i*.  The key must be at least
    ``input_len + 4`` bytes; the standard 40-byte key covers the 12-byte
    IPv4 4-tuple input (``srcIP|dstIP|srcPort|dstPort``).
    """

    def __init__(self, key: bytes = MICROSOFT_RSS_KEY) -> None:
        if len(key) < 5:
            raise ValueError("Toeplitz key must be at least 5 bytes")
        self._key = key
        self._key_bits = int.from_bytes(key, "big")
        self._key_len_bits = len(key) * 8

    @property
    def key(self) -> bytes:
        return self._key

    def hash(self, data: bytes) -> int:
        """32-bit Toeplitz hash of *data* (MSB-first bit order)."""
        max_bits = self._key_len_bits - 32
        nbits = len(data) * 8
        if nbits > max_bits:
            raise ValueError(
                f"input of {len(data)} bytes needs a key of >= {len(data) + 4} bytes"
            )
        value = int.from_bytes(data, "big") if data else 0
        result = 0
        for i in range(nbits):
            if (value >> (nbits - 1 - i)) & 1:
                window = (self._key_bits >> (self._key_len_bits - 32 - i)) & 0xFFFFFFFF
                result ^= window
        return result

    def hash_ipv4(self, src_ip: int, dst_ip: int, src_port: int, dst_port: int) -> int:
        """RSS hash of an IPv4 TCP/UDP 4-tuple (the RSS input layout)."""
        data = (
            src_ip.to_bytes(4, "big")
            + dst_ip.to_bytes(4, "big")
            + src_port.to_bytes(2, "big")
            + dst_port.to_bytes(2, "big")
        )
        return self.hash(data)

    def hash_batch(self, rows: np.ndarray) -> np.ndarray:
        """Hash each row of an ``(n, k)`` uint8 array.

        Row-wise Python loop over a precomputed per-(byte, value) window
        table: for each of the *k* byte positions we build a 256-entry
        lookup of the XOR of windows selected by that byte, then gather.
        """
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.dtype != np.uint8:
            raise ValueError("expected a 2-D uint8 array")
        k = rows.shape[1]
        if k * 8 > self._key_len_bits - 32:
            raise ValueError(f"rows of {k} bytes need a key of >= {k + 4} bytes")
        out = np.zeros(rows.shape[0], dtype=np.uint64)
        for col in range(k):
            table = self._byte_table(col, k)
            out ^= table[rows[:, col]]
        return out

    def _byte_table(self, col: int, total_bytes: int) -> np.ndarray:
        """256-entry table: Toeplitz contribution of byte *col* of a
        *total_bytes*-long input, for every possible byte value."""
        cache = getattr(self, "_tables", None)
        if cache is None:
            cache = {}
            self._tables = cache
        cache_key = (col, total_bytes)
        if cache_key in cache:
            return cache[cache_key]
        table = np.zeros(256, dtype=np.uint64)
        base_bit = col * 8
        for value in range(256):
            acc = 0
            for bit in range(8):
                if (value >> (7 - bit)) & 1:
                    i = base_bit + bit
                    window = (self._key_bits >> (self._key_len_bits - 32 - i)) & 0xFFFFFFFF
                    acc ^= window
            table[value] = acc
        cache[cache_key] = table
        return table
