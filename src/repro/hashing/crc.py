"""Table-driven CRC implementations (CRC16-CCITT, CRC16-IBM, CRC32).

The scheduler's critical path is ``hash -> map table -> mux`` (paper
Sec. III-G); in hardware the CRC16 is a combinational circuit, here it is
a 256-entry table lookup per byte.  Two call styles are provided:

* scalar — :func:`crc16_ccitt` etc. hash one ``bytes`` value;
* batch  — :meth:`CRCSpec.checksum_batch` hashes a 2-D ``uint8`` numpy
  array of packed keys row-wise, fully vectorised across rows (one
  table-gather per byte column), which is how the trace pipeline hashes
  millions of 13-byte 5-tuples at once.

All three specs are standard:

============  ======  ==========  =======  =======  ============
name          width   polynomial  init     reflect  xor-out
============  ======  ==========  =======  =======  ============
CRC16-CCITT   16      0x1021      0xFFFF   no       0x0000
CRC16-IBM     16      0x8005      0x0000   yes      0x0000
CRC32         32      0x04C11DB7  0xFFFF.. yes      0xFFFFFFFF
============  ======  ==========  =======  =======  ============
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

__all__ = [
    "CRCSpec",
    "make_crc_table",
    "CRC16_CCITT",
    "CRC16_IBM",
    "CRC32",
    "crc16_ccitt",
    "crc16_ibm",
    "crc32",
]


def _reflect(value: int, width: int) -> int:
    """Bit-reverse *value* over *width* bits."""
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


@lru_cache(maxsize=None)
def make_crc_table(poly: int, width: int, reflected: bool) -> tuple[int, ...]:
    """Build the 256-entry byte-at-a-time CRC table.

    For reflected CRCs the table is built over the reflected polynomial
    and consumed LSB-first; for straight CRCs MSB-first.  The result is
    cached (specs are reused across every scheduler instance).
    """
    if width < 8:
        raise ValueError(f"CRC width must be >= 8, got {width}")
    mask = (1 << width) - 1
    table = []
    if reflected:
        rpoly = _reflect(poly, width)
        for byte in range(256):
            crc = byte
            for _ in range(8):
                crc = (crc >> 1) ^ rpoly if crc & 1 else crc >> 1
            table.append(crc & mask)
    else:
        top = 1 << (width - 1)
        for byte in range(256):
            crc = byte << (width - 8)
            for _ in range(8):
                crc = ((crc << 1) ^ poly) if crc & top else (crc << 1)
            table.append(crc & mask)
    return tuple(table)


@dataclass(frozen=True)
class CRCSpec:
    """A CRC parameterisation plus scalar and vectorised evaluators."""

    name: str
    width: int
    poly: int
    init: int
    reflected: bool
    xor_out: int
    _table: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        table = np.asarray(
            make_crc_table(self.poly, self.width, self.reflected), dtype=np.uint64
        )
        object.__setattr__(self, "_table", table)

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def checksum(self, data: bytes) -> int:
        """CRC of a byte string (scalar reference path)."""
        table = self._table
        crc = self.init
        if self.reflected:
            for b in data:
                crc = int(table[(crc ^ b) & 0xFF]) ^ (crc >> 8)
        else:
            shift = self.width - 8
            for b in data:
                crc = (int(table[((crc >> shift) ^ b) & 0xFF]) ^ (crc << 8)) & self.mask
        return (crc & self.mask) ^ self.xor_out

    def checksum_batch(self, rows: np.ndarray) -> np.ndarray:
        """CRC of each row of a ``(n, k)`` uint8 array, vectorised.

        Processes one byte *column* at a time so the inner loop runs *k*
        times regardless of *n*; each step is a fused table gather over
        all rows.  Returns a ``uint64`` array of length *n*.
        """
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.dtype != np.uint8:
            raise ValueError("expected a 2-D uint8 array of packed keys")
        table = self._table
        n = rows.shape[0]
        crc = np.full(n, self.init, dtype=np.uint64)
        if self.reflected:
            for col in range(rows.shape[1]):
                idx = (crc ^ rows[:, col]) & np.uint64(0xFF)
                crc = table[idx] ^ (crc >> np.uint64(8))
        else:
            shift = np.uint64(self.width - 8)
            mask = np.uint64(self.mask)
            for col in range(rows.shape[1]):
                idx = ((crc >> shift) ^ rows[:, col]) & np.uint64(0xFF)
                crc = (table[idx] ^ (crc << np.uint64(8))) & mask
        return (crc & np.uint64(self.mask)) ^ np.uint64(self.xor_out)


CRC16_CCITT = CRCSpec("crc16-ccitt", 16, 0x1021, 0xFFFF, False, 0x0000)
CRC16_IBM = CRCSpec("crc16-ibm", 16, 0x8005, 0x0000, True, 0x0000)
CRC32 = CRCSpec("crc32", 32, 0x04C11DB7, 0xFFFFFFFF, True, 0xFFFFFFFF)


def crc16_ccitt(data: bytes) -> int:
    """CRC16-CCITT (the paper's hash, "false" variant, init 0xFFFF)."""
    return CRC16_CCITT.checksum(data)


def crc16_ibm(data: bytes) -> int:
    """CRC16-IBM/ARC (reflected, polynomial 0x8005)."""
    return CRC16_IBM.checksum(data)


def crc32(data: bytes) -> int:
    """Standard (zlib-compatible) CRC-32."""
    return CRC32.checksum(data)
