"""Hashing substrate: CRC family, 5-tuple flow keys, and the Toeplitz
(RSS) hash used as a related-work comparison point.

The paper hashes the 5-tuple with CRC16 (shown by Cao et al. to balance
well on IP headers); :mod:`repro.hashing.crc` provides table-driven
scalar and numpy-vectorised implementations.
"""

from repro.hashing.crc import (
    CRC16_CCITT,
    CRC16_IBM,
    CRC32,
    CRCSpec,
    crc16_ccitt,
    crc16_ibm,
    crc32,
    make_crc_table,
)
from repro.hashing.five_tuple import (
    FiveTuple,
    flow_hash,
    flow_hash_batch,
    pack_five_tuple,
    pack_five_tuples_batch,
)
from repro.hashing.toeplitz import ToeplitzHasher, MICROSOFT_RSS_KEY
from repro.hashing.quality import (
    bucket_loads,
    chi_square_pvalue,
    hash_quality_report,
    load_imbalance,
)

__all__ = [
    "CRC16_CCITT",
    "CRC16_IBM",
    "CRC32",
    "CRCSpec",
    "crc16_ccitt",
    "crc16_ibm",
    "crc32",
    "make_crc_table",
    "FiveTuple",
    "flow_hash",
    "flow_hash_batch",
    "pack_five_tuple",
    "pack_five_tuples_batch",
    "ToeplitzHasher",
    "MICROSOFT_RSS_KEY",
    "bucket_loads",
    "chi_square_pvalue",
    "hash_quality_report",
    "load_imbalance",
]
