"""5-tuple flow keys and their packing/hashing.

A *flow* in the paper is the set of packets sharing (src IP, dst IP,
src port, dst port, protocol).  The scheduler extracts this 5-tuple from
the header and hashes it with CRC16 to index the map table.

Keys are packed into the canonical 13-byte wire layout
``srcIP(4) | dstIP(4) | srcPort(2) | dstPort(2) | proto(1)`` in network
byte order, so the hash of a :class:`FiveTuple` equals the hash of the
same header parsed out of a pcap trace.
"""

from __future__ import annotations

import struct
from typing import NamedTuple

import numpy as np

from repro.hashing.crc import CRC16_CCITT, CRCSpec

__all__ = [
    "FiveTuple",
    "pack_five_tuple",
    "pack_five_tuples_batch",
    "flow_hash",
    "flow_hash_batch",
    "PROTO_TCP",
    "PROTO_UDP",
]

PROTO_TCP = 6
PROTO_UDP = 17

_PACK = struct.Struct("!IIHHB")
KEY_BYTES = _PACK.size  # 13


class FiveTuple(NamedTuple):
    """An IPv4 5-tuple flow identifier (addresses/ports as integers)."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int

    def packed(self) -> bytes:
        """The canonical 13-byte network-order encoding."""
        return pack_five_tuple(self)

    @classmethod
    def from_strings(
        cls, src_ip: str, dst_ip: str, src_port: int, dst_port: int, protocol: int
    ) -> "FiveTuple":
        """Build a key from dotted-quad address strings."""
        return cls(_ip_to_int(src_ip), _ip_to_int(dst_ip), src_port, dst_port, protocol)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{_int_to_ip(self.src_ip)}:{self.src_port} -> "
            f"{_int_to_ip(self.dst_ip)}:{self.dst_port} proto={self.protocol}"
        )


def _ip_to_int(dotted: str) -> int:
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad IPv4 address: {dotted!r}")
    value = 0
    for p in parts:
        octet = int(p)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {dotted!r}")
        value = (value << 8) | octet
    return value


def _int_to_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def pack_five_tuple(key: FiveTuple) -> bytes:
    """Pack one key into its 13-byte canonical layout."""
    _validate(key)
    return _PACK.pack(*key)


def _validate(key: FiveTuple) -> None:
    if not 0 <= key.src_ip <= 0xFFFFFFFF or not 0 <= key.dst_ip <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 address out of range in {key}")
    if not 0 <= key.src_port <= 0xFFFF or not 0 <= key.dst_port <= 0xFFFF:
        raise ValueError(f"port out of range in {key}")
    if not 0 <= key.protocol <= 0xFF:
        raise ValueError(f"protocol out of range in {key}")


def pack_five_tuples_batch(
    src_ip: np.ndarray,
    dst_ip: np.ndarray,
    src_port: np.ndarray,
    dst_port: np.ndarray,
    protocol: np.ndarray,
) -> np.ndarray:
    """Pack *n* keys into an ``(n, 13)`` uint8 array, vectorised.

    Inputs are broadcast-compatible integer arrays.  The byte layout per
    row matches :func:`pack_five_tuple` exactly (verified by tests), so
    batch and scalar hashes agree.
    """
    src_ip, dst_ip, src_port, dst_port, protocol = np.broadcast_arrays(
        np.asarray(src_ip, dtype=np.uint64),
        np.asarray(dst_ip, dtype=np.uint64),
        np.asarray(src_port, dtype=np.uint64),
        np.asarray(dst_port, dtype=np.uint64),
        np.asarray(protocol, dtype=np.uint64),
    )
    n = src_ip.shape[0]
    out = np.empty((n, KEY_BYTES), dtype=np.uint8)
    for i, shift in enumerate((24, 16, 8, 0)):
        out[:, i] = (src_ip >> np.uint64(shift)) & np.uint64(0xFF)
        out[:, 4 + i] = (dst_ip >> np.uint64(shift)) & np.uint64(0xFF)
    out[:, 8] = (src_port >> np.uint64(8)) & np.uint64(0xFF)
    out[:, 9] = src_port & np.uint64(0xFF)
    out[:, 10] = (dst_port >> np.uint64(8)) & np.uint64(0xFF)
    out[:, 11] = dst_port & np.uint64(0xFF)
    out[:, 12] = protocol & np.uint64(0xFF)
    return out


def flow_hash(key: FiveTuple, spec: CRCSpec = CRC16_CCITT) -> int:
    """Hash one flow key (default CRC16-CCITT per the paper)."""
    return spec.checksum(pack_five_tuple(key))


def flow_hash_batch(
    src_ip: np.ndarray,
    dst_ip: np.ndarray,
    src_port: np.ndarray,
    dst_port: np.ndarray,
    protocol: np.ndarray,
    spec: CRCSpec = CRC16_CCITT,
) -> np.ndarray:
    """Hash *n* flow keys at once; returns a ``uint64`` array."""
    packed = pack_five_tuples_batch(src_ip, dst_ip, src_port, dst_port, protocol)
    return spec.checksum_batch(packed)
