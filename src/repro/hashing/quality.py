"""Hash-quality analysis: does the hash balance flow bundles well?

The paper picks CRC16 because Cao et al. [8] showed it balances IP
headers well.  This module quantifies that on any flow population so
the claim is checkable against alternatives (Toeplitz/RSS, or a
deliberately bad hash):

* :func:`bucket_loads` — per-bucket weighted load for a key set;
* :func:`chi_square_statistic` / :func:`chi_square_pvalue` — uniformity
  of the *unweighted* key->bucket mapping (the classic hash test);
* :func:`load_imbalance` — max/mean of the *weighted* load, which is
  what the scheduler actually suffers: even a perfectly uniform hash
  leaves weighted imbalance when flow sizes are skewed — the paper's
  core motivation, made measurable.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.util.stats import jain_fairness

__all__ = [
    "bucket_loads",
    "chi_square_statistic",
    "chi_square_pvalue",
    "load_imbalance",
    "hash_quality_report",
]


def bucket_loads(
    hashes: np.ndarray,
    num_buckets: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Total (optionally weighted) load per bucket for hashed keys."""
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    hashes = np.asarray(hashes, dtype=np.int64)
    buckets = hashes % num_buckets
    if weights is None:
        return np.bincount(buckets, minlength=num_buckets).astype(np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != hashes.shape:
        raise ValueError("weights must parallel hashes")
    return np.bincount(buckets, weights=weights, minlength=num_buckets)


def chi_square_statistic(hashes: np.ndarray, num_buckets: int) -> float:
    """Pearson chi-square of key counts against the uniform law."""
    counts = bucket_loads(hashes, num_buckets)
    n = counts.sum()
    if n == 0:
        raise ValueError("no keys")
    expected = n / num_buckets
    return float(((counts - expected) ** 2 / expected).sum())


def chi_square_pvalue(hashes: np.ndarray, num_buckets: int) -> float:
    """p-value of the uniformity test (high = indistinguishable from
    uniform; a good hash on random keys should NOT reject)."""
    stat = chi_square_statistic(hashes, num_buckets)
    return float(stats.chi2.sf(stat, df=num_buckets - 1))


def load_imbalance(
    hashes: np.ndarray,
    num_buckets: int,
    weights: np.ndarray | None = None,
) -> float:
    """``max bucket load / mean bucket load`` (1.0 = perfect)."""
    loads = bucket_loads(hashes, num_buckets, weights)
    mean = loads.mean()
    if mean == 0:
        raise ValueError("no load")
    return float(loads.max() / mean)


def hash_quality_report(
    hashes: np.ndarray,
    num_buckets: int,
    weights: np.ndarray | None = None,
) -> dict[str, float]:
    """The full fingerprint: chi-square p-value (key uniformity),
    weighted max/mean imbalance, and Jain fairness of the load."""
    return {
        "chi2_pvalue": chi_square_pvalue(hashes, num_buckets),
        "weighted_imbalance": load_imbalance(hashes, num_buckets, weights),
        "jain_fairness": jain_fairness(
            bucket_loads(hashes, num_buckets, weights)
        ),
    }
