"""Command-line entry point: ``python -m repro.workloads`` /
``repro-workloads``.

Subcommands:

``list``
    The preset catalog (``--json`` emits the machine-readable form CI
    uploads as an artifact).
``show NAME``
    One preset's full description, traces and knobs.
``sample NAME``
    Build a small materialized instance and print its shape (packets,
    flows, offered rate, top-flow share).
``smoke``
    The CI gate: one CDF preset, one MMPP preset and the bundled tiny
    capture, each simulated both materialized and streamed — asserts
    the workload fingerprints and the full SimReports are identical
    across modes, which is the library's core contract.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import units
from repro.schedulers.base import make_scheduler
from repro.sim.config import SimConfig
from repro.sim.source import workload_fingerprint
from repro.sim.system import simulate
from repro.workloads.registry import (
    WORKLOAD_PRESETS,
    catalog,
    make_workload,
    workload_preset_names,
)

__all__ = ["main"]


def _cmd_list(args: argparse.Namespace) -> int:
    if args.json:
        print(json.dumps(catalog(), indent=2))
        return 0
    rows = catalog()
    width = max(len(r["name"]) for r in rows)
    print(f"{'name':<{width}}  kind     description")
    for r in rows:
        print(f"{r['name']:<{width}}  {r['kind']:<7}  {r['description']}")
    print("\npcap:<path>  replay    ad-hoc capture replay at recorded gaps")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    try:
        preset = WORKLOAD_PRESETS[args.name]
    except KeyError:
        print(
            f"unknown preset {args.name!r}: available "
            f"{', '.join(workload_preset_names())}",
            file=sys.stderr,
        )
        return 2
    print(f"name:        {preset.name}")
    print(f"kind:        {preset.kind}")
    print(f"description: {preset.description}")
    print(f"provenance:  {preset.provenance}")
    if preset.traces:
        print(f"traces:      {', '.join(preset.traces)}")
    if preset.pcap is not None:
        print(f"capture:     {preset.pcap.name} (x{preset.repeat} passes)")
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    wl = make_workload(
        args.name,
        duration_ns=units.ms(args.duration_ms),
        trace_packets=args.packets,
        utilisation=args.utilisation,
        seed=args.seed,
    )
    rate_mpps = wl.num_packets / (wl.duration_ns / units.SEC) / 1e6
    top = np.bincount(wl.flow_id, minlength=wl.num_flows)
    print(f"workload:      {args.name}")
    print(f"packets:       {wl.num_packets}")
    print(f"flows:         {wl.num_flows}")
    print(f"services:      {wl.num_services}")
    print(f"duration:      {wl.duration_ns / 1e6:.2f} ms")
    print(f"offered rate:  {rate_mpps:.2f} Mpps")
    print(f"mean size:     {float(wl.size_bytes.mean()):.0f} B")
    print(f"top flow:      {top.max() / max(1, wl.num_packets):.1%} of packets")
    print(f"fingerprint:   {workload_fingerprint(wl)}")
    return 0


#: (preset, chunk_size) cells exercised by ``smoke``: one CDF preset,
#: one MMPP preset, the bundled capture.
_SMOKE_CELLS = (("websearch", 1024), ("websearch-mmpp", 1024), ("replay-tiny", 777))


def _cmd_smoke(args: argparse.Namespace) -> int:
    duration_ns = units.ms(3 if args.quick else 8)
    trace_packets = 4_000 if args.quick else 12_000
    failures = 0
    for name, chunk_size in _SMOKE_CELLS:
        build = dict(
            duration_ns=duration_ns, trace_packets=trace_packets, seed=11,
        )
        wl = make_workload(name, **build)
        src = make_workload(name, stream=True, chunk_size=chunk_size, **build)
        fp_eager = workload_fingerprint(wl)
        fp_stream = src.fingerprint()
        report_eager = simulate(wl, make_scheduler("hash-static"), SimConfig())
        report_stream = simulate(src, make_scheduler("hash-static"), SimConfig())
        ok = fp_eager == fp_stream and report_eager == report_stream
        failures += not ok
        status = "ok" if ok else "MISMATCH"
        print(
            f"{name:16s} packets={wl.num_packets:7d} fp={fp_stream[:12]} "
            f"streamed==materialized: {status}"
        )
        if not ok:
            print(f"  eager fp {fp_eager} vs streamed fp {fp_stream}", file=sys.stderr)
    if failures:
        print(f"{failures} smoke cell(s) failed", file=sys.stderr)
        return 1
    print("workload smoke: all cells bit-identical across modes")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-workloads",
        description="Inspect and exercise the workload library.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="preset catalog")
    p_list.add_argument("--json", action="store_true", help="machine-readable")
    p_list.set_defaults(fn=_cmd_list)

    p_show = sub.add_parser("show", help="one preset in detail")
    p_show.add_argument("name")
    p_show.set_defaults(fn=_cmd_show)

    p_sample = sub.add_parser("sample", help="build a preset and print its shape")
    p_sample.add_argument("name")
    p_sample.add_argument("--packets", type=int, default=8_000)
    p_sample.add_argument("--duration-ms", type=float, default=6.0)
    p_sample.add_argument("--utilisation", type=float, default=0.75)
    p_sample.add_argument("--seed", type=int, default=0)
    p_sample.set_defaults(fn=_cmd_sample)

    p_smoke = sub.add_parser(
        "smoke", help="streamed == materialized across preset families (CI)"
    )
    p_smoke.add_argument("--quick", action="store_true", help="smaller sizes")
    p_smoke.set_defaults(fn=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
