"""Streaming pcap replay as a :class:`~repro.sim.source.PacketSource`.

:class:`PcapReplaySource` fuses the streaming pcap reader
(:func:`repro.trace.pcap.iter_pcap`) into the chunked source machinery:
records are parsed, 5-tuple-interned and emitted ``chunk_size`` packets
at a time, so a multi-GB capture replays at O(chunk + flows) memory —
the capture itself is never materialised.

Construction makes one cheap **pre-scan** pass (flow interning, packet
count, timeline span: O(flows) state); replay passes then re-stream the
file.  For ``repeat=1`` the emitted sequence is bit-identical to the
materialising oracle::

    native_workload([trace_from_pcap(path)[0]], speedup=speedup)

which the test battery pins.  ``repeat > 1`` loops the capture end to
end (each pass's flows keep their ids, timestamps continue after a
``wrap_gap_ns`` seam), turning a modest capture into an arbitrarily
long replay — the multi-GB-style memory benchmark uses exactly this.

The full PR 4 source contract holds: ``clone`` / ``snapshot`` /
``restore`` / ``iter_chunks``, chunk-size-independent fingerprints, and
bit-identical mid-chunk checkpoint/resume (the snapshot stores the raw
record offset; restore re-streams and skips).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ConfigError
from repro.hashing.crc import CRC16_CCITT, CRCSpec
from repro.hashing.five_tuple import FiveTuple, flow_hash_batch
from repro.sim.source import DEFAULT_CHUNK_SIZE, PacketSource, WorkloadChunk
from repro.trace.pcap import iter_pcap, new_counters

__all__ = ["PcapReplaySource"]


class _PcapMeta:
    """Immutable pre-scan result shared by every clone of one source."""

    __slots__ = (
        "flow_index", "flow_hashes", "usable", "raw_records",
        "pass_span_ns", "counters",
    )

    def __init__(self, path: Path, hash_spec: CRCSpec) -> None:
        self.counters = new_counters()
        self.flow_index: dict[FiveTuple, int] = {}
        keys: list[FiveTuple] = []
        usable = 0
        raw = 0
        prev_ts: int | None = None
        span = 0
        for p in iter_pcap(path, self.counters):
            raw += 1
            if p.key is None:
                continue
            if p.key not in self.flow_index:
                self.flow_index[p.key] = len(keys)
                keys.append(p.key)
            if prev_ts is not None:
                span += max(0, p.ts_ns - prev_ts)
            prev_ts = p.ts_ns
            usable += 1
        if usable == 0:
            raise ConfigError(f"{path}: no usable IPv4 packets to replay")
        self.usable = usable
        self.raw_records = raw
        self.pass_span_ns = span  # sum of clamped gaps over one pass
        self.flow_hashes = flow_hash_batch(
            np.array([k.src_ip for k in keys], dtype=np.uint32),
            np.array([k.dst_ip for k in keys], dtype=np.uint32),
            np.array([k.src_port for k in keys], dtype=np.uint16),
            np.array([k.dst_port for k in keys], dtype=np.uint16),
            np.array([k.protocol for k in keys], dtype=np.uint8),
            spec=hash_spec,
        ).astype(np.int64)


class PcapReplaySource(PacketSource):
    """Replay a pcap(.gz) capture at its recorded gaps, chunk by chunk.

    Parameters
    ----------
    path:
        The capture (``.pcap`` or ``.pcap.gz``).
    chunk_size:
        Packets per emitted chunk.
    speedup:
        Divides every gap (>1 plays faster, offering more load).
    repeat:
        Number of end-to-end passes over the capture.
    wrap_gap_ns:
        Raw (pre-speedup) gap inserted at each pass seam.
    hash_spec:
        CRC spec for the per-flow steering hash (must match the
        scheduler's).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        chunk_size: int | None = DEFAULT_CHUNK_SIZE,
        speedup: float = 1.0,
        repeat: int = 1,
        wrap_gap_ns: int = 1_000,
        hash_spec: CRCSpec = CRC16_CCITT,
        _meta: _PcapMeta | None = None,
    ) -> None:
        super().__init__()
        if chunk_size is not None and chunk_size <= 0:
            raise ConfigError(f"chunk size must be positive, got {chunk_size}")
        if speedup <= 0:
            raise ConfigError(f"speedup must be positive, got {speedup}")
        if repeat < 1:
            raise ConfigError(f"repeat must be >= 1, got {repeat}")
        if wrap_gap_ns < 0:
            raise ConfigError(f"wrap gap must be >= 0, got {wrap_gap_ns}")
        self.path = Path(path)
        self.chunk_size = chunk_size
        self.speedup = float(speedup)
        self.repeat = int(repeat)
        self.wrap_gap_ns = int(wrap_gap_ns)
        self.hash_spec = hash_spec
        self._meta = _meta if _meta is not None else _PcapMeta(self.path, hash_spec)

        self.num_packets = self._meta.usable * self.repeat
        self.num_flows = len(self._meta.flow_index)
        self.num_services = 1
        total_raw_ns = (
            self.repeat * self._meta.pass_span_ns
            + (self.repeat - 1) * self.wrap_gap_ns
        )
        # same rounding as the oracle: int64(float(cum) / speedup) + 1
        self.duration_ns = int(total_raw_ns / self.speedup) + 1
        self._reset()

    @property
    def counters(self) -> dict[str, int]:
        """Parse/skip counters from the pre-scan pass."""
        return dict(self._meta.counters)

    # -- cursor lifecycle ----------------------------------------------
    def _reset(self) -> None:
        self._records = None  # lazily opened record iterator
        self._raw_consumed = 0  # raw records consumed in current pass
        self._pass = 0
        self._cum_ns = 0  # raw (pre-speedup) cumulative gap, all passes
        self._prev_ts: int | None = None
        self._emitted = 0
        self._seq_next = np.zeros(self.num_flows, dtype=np.int64)

    def _open_pass(self, skip_raw: int = 0) -> None:
        self._records = iter_pcap(self.path)
        for _ in range(skip_raw):
            next(self._records)

    def next_chunk(self) -> WorkloadChunk | None:
        if self._emitted >= self.num_packets:
            return None
        budget = self.num_packets - self._emitted
        if self.chunk_size is not None:
            budget = min(budget, self.chunk_size)
        if self._records is None:
            self._open_pass(self._raw_consumed)

        meta = self._meta
        cum: list[int] = []
        fids: list[int] = []
        sizes: list[int] = []
        got = 0
        while got < budget:
            p = next(self._records, None)
            if p is None:  # pass ended; start the next one
                self._pass += 1
                self._raw_consumed = 0
                self._prev_ts = None
                self._open_pass()
                continue
            self._raw_consumed += 1
            if p.key is None:
                continue
            if self._prev_ts is None:
                # first usable packet: gap 0 on the very first pass,
                # the wrap seam on every later one
                gap = 0 if self._pass == 0 and self._cum_ns == 0 else self.wrap_gap_ns
            else:
                gap = max(0, p.ts_ns - self._prev_ts)
            self._prev_ts = p.ts_ns
            self._cum_ns += gap
            cum.append(self._cum_ns)
            fids.append(meta.flow_index[p.key])
            sizes.append(max(1, p.wire_len))
            got += 1

        fid_arr = np.asarray(fids, dtype=np.int64)
        # same elementwise rounding as cumsum(gaps)/speedup -> int64
        arrival = (np.asarray(cum, dtype=np.int64) / self.speedup).astype(np.int64)
        seq = self._next_sequences(fid_arr)
        chunk = WorkloadChunk(
            self._emitted,
            arrival,
            np.zeros(got, dtype=np.int32),
            fid_arr,
            np.asarray(sizes, dtype=np.int32),
            meta.flow_hashes[fid_arr],
            seq,
        )
        self._emitted += got
        return chunk

    def _next_sequences(self, flow: np.ndarray) -> np.ndarray:
        """Per-flow 0-based sequence numbers continuing the global count
        (the incremental ``_per_flow_sequences`` idiom shared with
        :class:`~repro.sim.source.StreamingSource`)."""
        n = flow.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64)
        counters = self._seq_next
        order = np.argsort(flow, kind="stable")
        sorted_flow = flow[order]
        first = np.empty(n, dtype=bool)
        first[0] = True
        first[1:] = sorted_flow[1:] != sorted_flow[:-1]
        starts = np.flatnonzero(first)
        run_lens = np.diff(np.append(starts, n))
        within = np.arange(n, dtype=np.int64) - np.repeat(starts, run_lens)
        run_flows = sorted_flow[starts]
        bases = counters[run_flows]
        counters[run_flows] = bases + run_lens
        seq = np.empty(n, dtype=np.int64)
        seq[order] = np.repeat(bases, run_lens) + within
        return seq

    def clone(self) -> "PcapReplaySource":
        return PcapReplaySource(
            self.path,
            chunk_size=self.chunk_size,
            speedup=self.speedup,
            repeat=self.repeat,
            wrap_gap_ns=self.wrap_gap_ns,
            hash_spec=self.hash_spec,
            _meta=self._meta,
        )

    # -- checkpoint/resume ---------------------------------------------
    def snapshot(self) -> dict:
        return {
            "raw_consumed": self._raw_consumed,
            "pass": self._pass,
            "cum_ns": self._cum_ns,
            "prev_ts": self._prev_ts,
            "emitted": self._emitted,
            "seq_next": self._seq_next.copy(),
        }

    def restore(self, snapshot: dict) -> None:
        self._records = None  # reopened (with skip) on next_chunk
        self._raw_consumed = int(snapshot["raw_consumed"])
        self._pass = int(snapshot["pass"])
        self._cum_ns = int(snapshot["cum_ns"])
        prev = snapshot["prev_ts"]
        self._prev_ts = None if prev is None else int(prev)
        self._emitted = int(snapshot["emitted"])
        self._seq_next = np.asarray(snapshot["seq_next"], dtype=np.int64).copy()
