"""``python -m repro.workloads`` entry point."""

from repro.workloads.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
