"""Bursty and diurnal arrival-rate models beyond eq. (1).

Two model families plug into the same inhomogeneous-Poisson machinery
as the paper's Holt-Winters generator (:mod:`repro.sim.generator`):

**MMPP** — a Markov-modulated Poisson process: a continuous-time Markov
chain over a handful of states, each with its own Poisson rate.  State
dwell times are exponential; on leaving a state the embedded chain
routes to the next one.  Two states (quiet/burst) give the classic
on-off burst train; more states give multi-scale burstiness.  This is
the standard model for bursty internet arrivals (Sprinklers' motivating
regime) that a single sinusoid cannot express.

**Diurnal** — a day-shaped sinusoid plus linear trend, with injectable
**flash-crowd** events: each event multiplies the rate by
``1 + magnitude * envelope(t)``, where the envelope ramps up linearly
over ``ramp_s`` and decays exponentially with time constant
``decay_s``.  Flash crowds are the adversarial input for migration
policies: offered load multiplies in less than a seasonal period.

Both evaluators implement the rate-model protocol used by
:class:`~repro.sim.generator.ArrivalStream` (``sample_rates`` /
``mean_rate_batch`` / ``average_rate`` / ``segment_hint_s``), and both
params dataclasses expose ``build()`` so
:func:`~repro.sim.generator.build_rate_model` dispatches on them — the
single construction path shared by materialized and streamed workload
generation, which is what keeps the two modes bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigError
from repro.util.rng import make_rng

__all__ = [
    "MMPPParams",
    "MMPP",
    "FlashCrowd",
    "DiurnalParams",
    "DiurnalRate",
]


# ----------------------------------------------------------------------
# MMPP
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MMPPParams:
    """A Markov-modulated Poisson process specification.

    Attributes
    ----------
    rates_pps:
        Per-state Poisson arrival rates (packets/second).
    mean_dwell_s:
        Mean exponential sojourn time per state, in seconds (parallel
        to ``rates_pps``).
    transition:
        Optional embedded-chain routing matrix: row *i* gives the
        probability of jumping to each state on leaving state *i*
        (diagonal must be 0, rows sum to 1).  Default: uniform over the
        other states.
    start_state:
        State occupied at t=0.
    """

    rates_pps: tuple[float, ...]
    mean_dwell_s: tuple[float, ...]
    transition: tuple[tuple[float, ...], ...] | None = None
    start_state: int = 0

    def __post_init__(self) -> None:
        k = len(self.rates_pps)
        if k == 0:
            raise ConfigError("MMPP needs at least one state")
        if len(self.mean_dwell_s) != k:
            raise ConfigError(
                f"{k} rates vs {len(self.mean_dwell_s)} dwell times"
            )
        if any(r < 0 for r in self.rates_pps):
            raise ConfigError(f"state rates must be >= 0: {self.rates_pps}")
        if all(r == 0 for r in self.rates_pps):
            raise ConfigError("at least one state rate must be positive")
        if any(d <= 0 for d in self.mean_dwell_s):
            raise ConfigError(f"dwell times must be positive: {self.mean_dwell_s}")
        if not 0 <= self.start_state < k:
            raise ConfigError(f"start_state {self.start_state} out of range")
        if self.transition is not None:
            if len(self.transition) != k or any(len(row) != k for row in self.transition):
                raise ConfigError(f"transition matrix must be {k}x{k}")
            for i, row in enumerate(self.transition):
                if row[i] != 0.0:
                    raise ConfigError(
                        f"transition diagonal must be 0 (state {i}): self-jumps "
                        "are absorbed into the dwell time"
                    )
                if any(p < 0 for p in row) or abs(sum(row) - 1.0) > 1e-9:
                    raise ConfigError(
                        f"transition row {i} must be a distribution, got {row}"
                    )

    @property
    def num_states(self) -> int:
        return len(self.rates_pps)

    def scaled(self, factor: float) -> "MMPPParams":
        """All state rates scaled by *factor* (dwell structure kept)."""
        if factor <= 0:
            raise ConfigError(f"scale factor must be positive, got {factor}")
        return replace(
            self, rates_pps=tuple(r * factor for r in self.rates_pps)
        )

    def build(self) -> "MMPP":
        return MMPP(self)


class MMPP:
    """Evaluator for :class:`MMPPParams`.

    ``sample_rates`` realises one CTMC trajectory covering the queried
    horizon — dwell times drawn from *rng* in a fixed order — then maps
    each query instant to its state's rate.  Because the trajectory is
    a pure function of the rng stream, the chunked
    :class:`~repro.sim.generator.ArrivalStream` (which calls
    ``sample_rates`` exactly once up front) snapshots and restores
    without any MMPP-specific state.
    """

    def __init__(self, params: MMPPParams) -> None:
        self.params = params
        self._routing = self._routing_matrix()

    def _routing_matrix(self) -> np.ndarray:
        p = self.params
        k = p.num_states
        if p.transition is not None:
            return np.asarray(p.transition, dtype=np.float64)
        routing = np.full((k, k), 1.0 / max(1, k - 1))
        np.fill_diagonal(routing, 0.0)
        if k == 1:
            routing[0, 0] = 1.0
        return routing

    def stationary_distribution(self) -> np.ndarray:
        """Long-run fraction of *time* spent in each state.

        Power-iterates the embedded chain to its stationary vector, then
        time-weights by mean dwell (renewal-reward).
        """
        k = self.params.num_states
        if k == 1:
            return np.ones(1)
        pi = np.full(k, 1.0 / k)
        for _ in range(512):
            nxt = pi @ self._routing
            if np.abs(nxt - pi).max() < 1e-12:
                pi = nxt
                break
            pi = nxt
        weights = pi * np.asarray(self.params.mean_dwell_s)
        return weights / weights.sum()

    def stationary_rate(self) -> float:
        """Long-run mean arrival rate (pps)."""
        return float(
            self.stationary_distribution() @ np.asarray(self.params.rates_pps)
        )

    # -- rate-model protocol -------------------------------------------
    def segment_hint_s(self) -> float:
        # ArrivalStream discretises at hint/50; aim for ~4 segments per
        # shortest mean dwell so individual bursts are resolved.
        return min(self.params.mean_dwell_s) * 12.5

    def mean_rate(self, t_s: float) -> float:
        """Stationary mean (the deterministic 'expected' rate — the
        trajectory itself is random)."""
        return self.stationary_rate()

    def mean_rate_batch(self, t_s: np.ndarray) -> np.ndarray:
        t_s = np.asarray(t_s, dtype=np.float64)
        return np.full(t_s.shape, self.stationary_rate())

    def average_rate(self, duration_s: float, samples: int = 512) -> float:
        if duration_s <= 0:
            raise ConfigError(f"duration must be positive, got {duration_s}")
        return self.stationary_rate()

    def sample_rates(
        self,
        t_s: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Per-instant rates along one realised CTMC trajectory."""
        rng = make_rng(rng)
        t_s = np.asarray(t_s, dtype=np.float64)
        if t_s.size == 0:
            return np.empty(0, dtype=np.float64)
        horizon = float(t_s[-1]) + self.segment_hint_s()
        dwell = np.asarray(self.params.mean_dwell_s)
        rates = np.asarray(self.params.rates_pps)
        k = self.params.num_states
        state = self.params.start_state
        states = [state]
        boundaries: list[float] = []
        t = 0.0
        while t <= horizon:
            t += float(rng.exponential(dwell[state]))
            boundaries.append(t)
            if k > 1:
                state = int(rng.choice(k, p=self._routing[state]))
            states.append(state)
        idx = np.searchsorted(np.asarray(boundaries), t_s, side="right")
        return rates[np.asarray(states)[idx]]


# ----------------------------------------------------------------------
# Diurnal profile with flash crowds
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlashCrowd:
    """One flash-crowd event: a multiplicative rate surge.

    The rate is multiplied by ``1 + magnitude * envelope(t)``; the
    envelope ramps 0 -> 1 linearly over ``ramp_s`` starting at
    ``t_start_s``, then decays as ``exp(-(t - peak) / decay_s)``.
    """

    t_start_s: float
    magnitude: float
    ramp_s: float
    decay_s: float

    def __post_init__(self) -> None:
        if self.t_start_s < 0:
            raise ConfigError(f"flash crowd start must be >= 0, got {self.t_start_s}")
        if self.magnitude <= 0:
            raise ConfigError(f"flash crowd magnitude must be positive, got {self.magnitude}")
        if self.ramp_s <= 0 or self.decay_s <= 0:
            raise ConfigError(
                f"ramp/decay must be positive, got {self.ramp_s}/{self.decay_s}"
            )

    def envelope(self, t_s: np.ndarray) -> np.ndarray:
        """The 0..1 surge shape at each instant."""
        t_s = np.asarray(t_s, dtype=np.float64)
        rel = t_s - self.t_start_s
        ramp = np.clip(rel / self.ramp_s, 0.0, 1.0)
        decay = np.exp(-np.maximum(0.0, rel - self.ramp_s) / self.decay_s)
        return np.where(rel <= 0, 0.0, ramp * decay)


@dataclass(frozen=True)
class DiurnalParams:
    """A diurnal rate profile with optional flash crowds.

    Base shape: ``a * (1 + amplitude * sin(2*pi*(t/period + phase)))
    + trend * t``, multiplied by every flash crowd's surge factor, plus
    Gaussian noise ``sigma``.  ``period_s`` is the (time-compressed)
    day; simulated runs typically compress 24 h into tens of
    milliseconds, matching the paper's seconds -> milliseconds mapping.
    """

    a: float
    amplitude: float = 0.5
    period_s: float = 86_400.0
    trend_pps_per_s: float = 0.0
    sigma: float = 0.0
    phase: float = 0.0
    flash_crowds: tuple[FlashCrowd, ...] = ()

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise ConfigError(f"baseline rate must be positive, got {self.a}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigError(
                f"amplitude must be in [0, 1) (rate stays positive), got {self.amplitude}"
            )
        if self.period_s <= 0:
            raise ConfigError(f"period must be positive, got {self.period_s}")
        if self.sigma < 0:
            raise ConfigError(f"noise sigma must be >= 0, got {self.sigma}")

    def scaled(self, factor: float) -> "DiurnalParams":
        """Rate-dimension terms scaled (shape, period and crowds kept:
        amplitude and flash magnitudes are multiplicative)."""
        if factor <= 0:
            raise ConfigError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            a=self.a * factor,
            trend_pps_per_s=self.trend_pps_per_s * factor,
            sigma=self.sigma * factor,
        )

    def build(self) -> "DiurnalRate":
        return DiurnalRate(self)


class DiurnalRate:
    """Evaluator for :class:`DiurnalParams` (rate-model protocol)."""

    #: Same positivity floor convention as the eq. (1) evaluator.
    FLOOR_FRACTION = 0.01

    def __init__(self, params: DiurnalParams) -> None:
        self.params = params

    def segment_hint_s(self) -> float:
        # resolve the fastest feature present: the diurnal period, or a
        # flash crowd's ramp/decay if one is sharper
        hint = self.params.period_s
        for fc in self.params.flash_crowds:
            hint = min(hint, 10.0 * max(fc.ramp_s, fc.decay_s))
        return hint

    def mean_rate_batch(self, t_s: np.ndarray) -> np.ndarray:
        p = self.params
        t_s = np.asarray(t_s, dtype=np.float64)
        base = p.a * (
            1.0 + p.amplitude * np.sin(2.0 * math.pi * (t_s / p.period_s + p.phase))
        ) + p.trend_pps_per_s * t_s
        for fc in p.flash_crowds:
            base = base * (1.0 + fc.magnitude * fc.envelope(t_s))
        return np.maximum(p.a * self.FLOOR_FRACTION, base)

    def mean_rate(self, t_s: float) -> float:
        return float(self.mean_rate_batch(np.asarray([t_s]))[0])

    def sample_rates(
        self,
        t_s: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        rng = make_rng(rng)
        base = self.mean_rate_batch(t_s)
        if self.params.sigma > 0:
            base = base + rng.normal(0.0, self.params.sigma, size=base.shape)
        return np.maximum(self.params.a * self.FLOOR_FRACTION, base)

    def average_rate(self, duration_s: float, samples: int = 512) -> float:
        if duration_s <= 0:
            raise ConfigError(f"duration must be positive, got {duration_s}")
        t = np.linspace(0.0, duration_s, samples, endpoint=False)
        return float(self.mean_rate_batch(t).mean())
