"""CDF-driven flow-size distributions.

The empirical-CDF idiom follows the rotorsim flow generator: a
distribution is a monotone list of ``(cumulative_probability,
size_bytes)`` points, sampled by inverse transform.  Bundled presets
cover the two canonical datacenter measurement studies plus a
cache-vs-mice stress mix:

``websearch``
    The DCTCP web-search workload (Alizadeh et al., SIGCOMM 2010,
    Fig. 4): query/response traffic, most flows tens of KB with a
    moderate tail to ~30 MB.
``datamining``
    The VL2 data-mining workload (Greenberg et al., SIGCOMM 2009):
    extremely heavy-tailed — half the flows under 100 B, while flows
    over 100 MB carry most of the bytes.
``cache-mice``
    A bimodal cache-follower vs. mice mix in the spirit of the rotorsim
    ``cache`` preset: 90% tiny requests, a thin stream of mid-size
    responses, and 0.1% ~125 MB bulk cache-fill flows.

Distributions load from simple two-column CSVs (``size_bytes,cdf``), so
new measurement studies drop in as data files; ``from_weights`` builds
one from ``(percent, size)`` pairs for quick inline mixes.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigError, TraceFormatError
from repro.util.rng import make_rng

__all__ = [
    "SizeDistribution",
    "SIZE_DISTRIBUTIONS",
    "WEBSEARCH",
    "DATAMINING",
    "CACHE_MICE",
]

_DATA_DIR = Path(__file__).parent / "data"


@dataclass(frozen=True)
class SizeDistribution:
    """An empirical flow-size CDF over ``(cum_prob, size_bytes)`` points.

    Points must be strictly increasing in both coordinates and end at
    cumulative probability 1.0.  Sampling is discrete inverse-transform:
    a uniform draw picks the first point whose cumulative probability
    covers it, so samples take exactly the listed sizes (matching how
    the measurement-study CDFs are normally replayed).
    """

    name: str
    points: tuple[tuple[float, int], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigError("size distribution needs at least one CDF point")
        prev_p, prev_s = 0.0, 0
        for p, s in self.points:
            if not prev_p < p <= 1.0:
                raise ConfigError(
                    f"{self.name}: CDF probabilities must be strictly "
                    f"increasing in (0, 1], got {p} after {prev_p}"
                )
            if s <= prev_s:
                raise ConfigError(
                    f"{self.name}: sizes must be strictly increasing, "
                    f"got {s} after {prev_s}"
                )
            prev_p, prev_s = p, s
        if abs(prev_p - 1.0) > 1e-9:
            raise ConfigError(
                f"{self.name}: CDF must end at 1.0, got {prev_p}"
            )

    # -- construction --------------------------------------------------
    @classmethod
    def from_weights(
        cls, weights: list[tuple[float, float]], name: str = ""
    ) -> "SizeDistribution":
        """Build from ``(percent, size_bytes)`` pairs (the rotorsim
        ``simple_weights`` idiom); percents are normalised to 1."""
        if not weights:
            raise ConfigError("need at least one (percent, size) pair")
        total = sum(w for w, _ in weights)
        if total <= 0:
            raise ConfigError("weights must sum to a positive total")
        pairs = sorted((int(size), w / total) for w, size in weights)
        points: list[tuple[float, int]] = []
        cum = 0.0
        for size, frac in pairs:
            cum += frac
            points.append((cum, size))
        # normalisation can leave the last point at 1-eps; snap it
        points[-1] = (1.0, points[-1][1])
        return cls(name=name, points=tuple(points))

    @classmethod
    def from_csv(
        cls, path: str | Path | io.TextIOBase, name: str = ""
    ) -> "SizeDistribution":
        """Load a two-column ``size_bytes,cdf`` CSV (header required)."""
        close = False
        if isinstance(path, (str, Path)):
            fh = open(path, newline="")
            close = True
            name = name or Path(path).stem
        else:
            fh = path
        try:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header is None or [c.strip() for c in header] != ["size_bytes", "cdf"]:
                raise TraceFormatError(
                    f"expected 'size_bytes,cdf' header, got {header}"
                )
            points = tuple(
                (float(row[1]), int(float(row[0]))) for row in reader if row
            )
        finally:
            if close:
                fh.close()
        return cls(name=name, points=points)

    def to_csv(self, path: str | Path | io.TextIOBase) -> None:
        """Write the ``size_bytes,cdf`` CSV read by :meth:`from_csv`."""
        close = False
        if isinstance(path, (str, Path)):
            fh = open(path, "w", newline="")
            close = True
        else:
            fh = path
        try:
            writer = csv.writer(fh)
            writer.writerow(["size_bytes", "cdf"])
            for p, s in self.points:
                writer.writerow([s, f"{p:.6g}"])
        finally:
            if close:
                fh.close()

    # -- statistics ----------------------------------------------------
    @property
    def _probs(self) -> np.ndarray:
        return np.asarray([p for p, _ in self.points], dtype=np.float64)

    @property
    def _sizes(self) -> np.ndarray:
        return np.asarray([s for _, s in self.points], dtype=np.int64)

    def pdf(self) -> list[tuple[float, int]]:
        """Point masses ``(prob, size_bytes)`` (diff of the CDF)."""
        probs = np.diff(self._probs, prepend=0.0)
        return [(float(p), int(s)) for p, s in zip(probs, self._sizes)]

    def mean_bytes(self) -> float:
        """Expected flow size in bytes."""
        probs = np.diff(self._probs, prepend=0.0)
        return float((probs * self._sizes).sum())

    def quantile(self, q: float) -> int:
        """Smallest listed size with cumulative probability >= *q*."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        idx = int(np.searchsorted(self._probs, q, side="left"))
        idx = min(idx, len(self.points) - 1)
        return int(self._sizes[idx])

    # -- sampling ------------------------------------------------------
    def sample_bytes(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """*n* i.i.d. flow sizes in bytes (int64)."""
        if n < 0:
            raise ConfigError(f"sample count must be >= 0, got {n}")
        rng = make_rng(rng)
        u = rng.random(n)
        idx = np.searchsorted(self._probs, u, side="left")
        return self._sizes[np.minimum(idx, len(self.points) - 1)]

    def sample_packets(
        self,
        n: int,
        rng: np.random.Generator | int | None = None,
        mtu: int = 1500,
    ) -> np.ndarray:
        """*n* flow lengths in MTU-sized packets (>= 1 each)."""
        if mtu <= 0:
            raise ConfigError(f"mtu must be positive, got {mtu}")
        sizes = self.sample_bytes(n, rng)
        return np.maximum(1, -(-sizes // mtu))


def _load_bundled(stem: str) -> SizeDistribution:
    return SizeDistribution.from_csv(_DATA_DIR / f"{stem}.csv", name=stem)


#: DCTCP web-search flow sizes (Alizadeh et al. 2010, Fig. 4 shape).
WEBSEARCH = _load_bundled("websearch")

#: VL2 data-mining flow sizes (Greenberg et al. 2009 shape).
DATAMINING = _load_bundled("datamining")

#: Bimodal cache-follower vs. mice stress mix (rotorsim-style weights).
CACHE_MICE = SizeDistribution.from_weights(
    [(90.0, 1_250), (9.9, 125_000), (0.1, 125_000_000)],
    name="cache-mice",
)

#: Name -> distribution registry used by trace presets and the CLI.
SIZE_DISTRIBUTIONS: dict[str, SizeDistribution] = {
    d.name: d for d in (WEBSEARCH, DATAMINING, CACHE_MICE)
}
