"""The named-workload registry: every scenario can name any workload.

A :class:`WorkloadPreset` couples four trace presets (one per default
service) with a rate-model family and a short provenance note.  The
registry is the single workload lookup shared by the sim CLI
(``--workload``), the experiments harnesses, the faults harness and the
tournament — :func:`make_workload` builds any preset either
materialized (:class:`~repro.sim.workload.Workload`) or streamed
(:class:`~repro.sim.source.StreamingSource` /
:class:`~repro.workloads.replay.PcapReplaySource`), with identical
packet sequences either way.

Offered load is calibrated exactly like the tournament grid: each
service's rate model is scaled so its *time-average* rate equals
``utilisation`` times the service's ideal capacity share, so presets
with wildly different shapes (steady, MMPP burst trains, diurnal flash
crowds) are comparable at the same nominal utilisation.

Beyond the named presets, ``pcap:<path>`` resolves any capture on disk
to a :class:`PcapReplaySource` (recorded gaps; ``utilisation`` does not
apply), and the bundled ``replay-tiny`` preset replays a small
committed capture — the CI smoke path.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro import units
from repro.errors import ConfigError
from repro.net.service import default_services
from repro.sim.generator import HoltWintersParams, build_rate_model
from repro.sim.source import DEFAULT_CHUNK_SIZE, PacketSource, StreamingSource
from repro.sim.workload import Workload, build_workload
from repro.workloads.arrivals import DiurnalParams, FlashCrowd, MMPPParams
from repro.workloads.replay import PcapReplaySource
from repro.workloads.traces import resolve_trace

__all__ = [
    "WorkloadPreset",
    "WORKLOAD_PRESETS",
    "workload_preset_names",
    "make_workload",
    "registry_workload",
    "catalog",
    "BUNDLED_PCAP",
]

#: The small committed capture used by ``replay-tiny`` and CI smoke.
BUNDLED_PCAP = Path(__file__).parent / "data" / "tiny.pcap.gz"

#: Default replay passes for ``replay-tiny`` (the bundled capture is
#: small; a few passes give the simulator something to chew on).
_TINY_REPEAT = 4


# -- per-service rate factories ----------------------------------------
# Each takes (sid, duration_s) and returns an *unscaled* params object;
# make_workload rescales it so the time-average rate hits the target.
def _steady_rates(sid: int, duration_s: float) -> HoltWintersParams:
    return HoltWintersParams(a=1.0)


def _mmpp2_rates(sid: int, duration_s: float) -> MMPPParams:
    # classic quiet/burst on-off train: ~7x rate ratio, dwell times well
    # inside the run so several burst episodes occur per service; stagger
    # dwell scale a little per service so bursts do not align
    dwell = duration_s / (10.0 + 2.0 * sid)
    return MMPPParams(
        rates_pps=(0.4, 2.8),
        mean_dwell_s=(dwell, dwell / 3.0),
        start_state=sid % 2,
    )


def _mmpp3_rates(sid: int, duration_s: float) -> MMPPParams:
    # three-scale burstiness: idle / cruise / burst with asymmetric
    # routing (bursts mostly decay into cruise, rarely straight to idle)
    dwell = duration_s / (8.0 + sid)
    return MMPPParams(
        rates_pps=(0.1, 1.0, 4.0),
        mean_dwell_s=(dwell, dwell / 2.0, dwell / 8.0),
        transition=(
            (0.0, 0.9, 0.1),
            (0.3, 0.0, 0.7),
            (0.1, 0.9, 0.0),
        ),
        start_state=1,
    )


def _diurnal_rates(sid: int, duration_s: float) -> DiurnalParams:
    # the run is one compressed "day"; a flash crowd hits mid-afternoon
    # at staggered times per service, tripling the offered rate in ~2%
    # of the day
    return DiurnalParams(
        a=1.0,
        amplitude=0.55,
        period_s=duration_s,
        sigma=0.05,
        phase=0.25 * (sid % 2),
        flash_crowds=(
            FlashCrowd(
                t_start_s=(0.45 + 0.1 * sid) * duration_s,
                magnitude=2.0,
                ramp_s=0.02 * duration_s,
                decay_s=0.08 * duration_s,
            ),
        ),
    )


@dataclass(frozen=True)
class WorkloadPreset:
    """One named workload: traces x rate model + provenance."""

    name: str
    kind: str  # "cdf" | "mmpp" | "diurnal" | "replay"
    description: str
    provenance: str
    traces: tuple[str, ...] = ()
    rate_factory: Callable | None = None
    pcap: Path | None = None
    repeat: int = 1


WORKLOAD_PRESETS: dict[str, WorkloadPreset] = {
    p.name: p
    for p in (
        WorkloadPreset(
            name="websearch",
            kind="cdf",
            description="DCTCP web-search flow sizes on steady offered load",
            provenance="Alizadeh et al., SIGCOMM 2010 (Fig. 4 CDF shape)",
            traces=("websearch-1", "websearch-2", "websearch-3", "websearch-4"),
            rate_factory=_steady_rates,
        ),
        WorkloadPreset(
            name="datamining",
            kind="cdf",
            description="VL2 data-mining mix: mice swarm plus huge trains",
            provenance="Greenberg et al., SIGCOMM 2009 (VL2 CDF shape)",
            traces=("datamining-1", "datamining-2", "datamining-3", "datamining-4"),
            rate_factory=_steady_rates,
        ),
        WorkloadPreset(
            name="cache-mice",
            kind="cdf",
            description="bimodal cache-follower vs mice stress mix",
            provenance="rotorsim cache weights idiom (90/9.9/0.1 split)",
            traces=("cachemice-1", "cachemice-2", "cachemice-3", "cachemice-4"),
            rate_factory=_steady_rates,
        ),
        WorkloadPreset(
            name="websearch-mmpp",
            kind="mmpp",
            description="web-search flow sizes under 2-state MMPP burst trains",
            provenance="MMPP on-off model; Sprinklers' bursty-internet regime",
            traces=("websearch-1", "websearch-2", "websearch-3", "websearch-4"),
            rate_factory=_mmpp2_rates,
        ),
        WorkloadPreset(
            name="mmpp-bursty",
            kind="mmpp",
            description="paper's CAIDA-like headers under 3-state MMPP bursts",
            provenance="3-state MMPP (idle/cruise/burst, asymmetric routing)",
            traces=("caida-1", "caida-2", "caida-3", "caida-4"),
            rate_factory=_mmpp3_rates,
        ),
        WorkloadPreset(
            name="diurnal-flash",
            kind="diurnal",
            description="compressed diurnal day with per-service flash crowds",
            provenance="diurnal sinusoid + flash-crowd envelope (ramp/decay)",
            traces=("caida-1", "caida-2", "auck-1", "auck-2"),
            rate_factory=_diurnal_rates,
        ),
        WorkloadPreset(
            name="replay-tiny",
            kind="replay",
            description="bundled tiny capture replayed at recorded gaps",
            provenance="synthetic capture committed under workloads/data/",
            pcap=BUNDLED_PCAP,
            repeat=_TINY_REPEAT,
        ),
    )
}


def workload_preset_names() -> list[str]:
    """Registered workload preset names, sorted."""
    return sorted(WORKLOAD_PRESETS)


def _calibrated_params(
    preset: WorkloadPreset,
    num_cores: int,
    utilisation: float,
    duration_ns: int,
    traces,
) -> list:
    """Scale each service's rate params so its time-average offered
    rate is ``utilisation`` x its ideal capacity share (the tournament's
    calibration, generalised to any rate-model family)."""
    services = default_services()
    per_service_cores = max(1, num_cores // len(services))
    duration_s = duration_ns / units.SEC
    params = []
    for sid, trace in enumerate(traces):
        mean_size = float(trace.size_bytes.mean())
        cap = per_service_cores * services[sid].capacity_pps(mean_size)
        raw = preset.rate_factory(sid, duration_s)
        average = build_rate_model(raw).average_rate(duration_s)
        params.append(raw.scaled(utilisation * cap / average))
    return params


def make_workload(
    name: str,
    *,
    num_cores: int = 16,
    utilisation: float = 0.75,
    duration_ns: int = units.ms(20),
    trace_packets: int = 24_000,
    seed: int = 0,
    stream: bool = False,
    chunk_size: int | None = None,
    speedup: float = 1.0,
) -> Workload | PacketSource:
    """Build a registered workload (or a ``pcap:<path>`` replay) by name.

    With ``stream=True`` the result is a chunked
    :class:`~repro.sim.source.PacketSource` producing the bit-identical
    packet sequence at O(chunk) memory; otherwise a materialized
    :class:`~repro.sim.workload.Workload`.  Replay presets follow the
    capture's recorded gaps — ``utilisation`` and ``trace_packets`` do
    not apply to them (``speedup`` rescales the gaps instead).
    """
    if name.startswith("pcap:"):
        path = name[len("pcap:"):]
        if not path:
            raise ConfigError("pcap: scheme needs a path, e.g. pcap:capture.pcap.gz")
        preset = WorkloadPreset(
            name=name, kind="replay", description="ad-hoc capture replay",
            provenance=path, pcap=Path(path),
        )
    else:
        try:
            preset = WORKLOAD_PRESETS[name]
        except KeyError:
            raise ConfigError(
                f"unknown workload {name!r}: available "
                f"{', '.join(workload_preset_names())} or pcap:<path>"
            ) from None

    if preset.kind == "replay":
        source = PcapReplaySource(
            preset.pcap,
            chunk_size=chunk_size or DEFAULT_CHUNK_SIZE,
            speedup=speedup,
            repeat=preset.repeat,
        )
        return source if stream else source.materialize()

    traces = [resolve_trace(t, num_packets=trace_packets) for t in preset.traces]
    params = _calibrated_params(preset, num_cores, utilisation, duration_ns, traces)
    if stream:
        return StreamingSource(
            traces, params, duration_ns, seed=seed,
            chunk_size=chunk_size or DEFAULT_CHUNK_SIZE,
        )
    return build_workload(traces, params, duration_ns=duration_ns, seed=seed)


def registry_workload(
    name: str,
    num_cores: int = 16,
    utilisation: float = 0.75,
    duration_ns: int = units.ms(20),
    trace_packets: int = 24_000,
    seed: int = 0,
    stream: bool = False,
    chunk_size: int | None = None,
) -> Workload | PacketSource:
    """Module-level :func:`make_workload` adapter for
    :class:`~repro.experiments.batch.WorkloadSpec` (picklable, hashable
    kwargs), so batch runs group and share one build per workload."""
    return make_workload(
        name,
        num_cores=num_cores,
        utilisation=utilisation,
        duration_ns=duration_ns,
        trace_packets=trace_packets,
        seed=seed,
        stream=stream,
        chunk_size=chunk_size,
    )


def catalog() -> list[dict]:
    """JSON-ready preset catalog (the ``repro-workloads list --json``
    artifact uploaded by CI)."""
    rows = []
    for name in workload_preset_names():
        p = WORKLOAD_PRESETS[name]
        rows.append({
            "name": p.name,
            "kind": p.kind,
            "description": p.description,
            "provenance": p.provenance,
            "traces": list(p.traces),
            "pcap": p.pcap.name if p.pcap else None,
            "repeat": p.repeat,
        })
    return rows
