"""Internet-scale workload library.

Opens the scenario space beyond the paper's two synthetic presets:

* :mod:`repro.workloads.sizes` — CDF-driven flow-size distributions
  (websearch / datamining / cache-vs-mice, loadable from CSV);
* :mod:`repro.workloads.traces` — CDF trace presets and the unified
  :func:`~repro.workloads.traces.resolve_trace` lookup;
* :mod:`repro.workloads.arrivals` — MMPP burst trains and diurnal
  profiles with flash-crowd events, plugging into the same
  inhomogeneous-Poisson machinery as the paper's eq. (1) model;
* :mod:`repro.workloads.replay` — streaming pcap replay at O(chunk)
  memory (:class:`~repro.workloads.replay.PcapReplaySource`);
* :mod:`repro.workloads.registry` — named presets runnable from every
  harness (``repro-workloads list`` shows the catalog).
"""

from repro.workloads.arrivals import (
    MMPP,
    DiurnalParams,
    DiurnalRate,
    FlashCrowd,
    MMPPParams,
)
from repro.workloads.registry import (
    BUNDLED_PCAP,
    WORKLOAD_PRESETS,
    WorkloadPreset,
    catalog,
    make_workload,
    registry_workload,
    workload_preset_names,
)
from repro.workloads.replay import PcapReplaySource
from repro.workloads.sizes import (
    CACHE_MICE,
    DATAMINING,
    SIZE_DISTRIBUTIONS,
    WEBSEARCH,
    SizeDistribution,
)
from repro.workloads.traces import (
    CDF_TRACE_PRESETS,
    CDFTraceConfig,
    cdf_preset_trace,
    generate_cdf_trace,
    resolve_trace,
    trace_preset_names,
)

__all__ = [
    "SizeDistribution", "SIZE_DISTRIBUTIONS",
    "WEBSEARCH", "DATAMINING", "CACHE_MICE",
    "CDFTraceConfig", "generate_cdf_trace", "CDF_TRACE_PRESETS",
    "cdf_preset_trace", "resolve_trace", "trace_preset_names",
    "MMPPParams", "MMPP", "FlashCrowd", "DiurnalParams", "DiurnalRate",
    "PcapReplaySource",
    "WorkloadPreset", "WORKLOAD_PRESETS", "workload_preset_names",
    "make_workload", "registry_workload", "catalog", "BUNDLED_PCAP",
]
