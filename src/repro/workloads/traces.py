"""CDF-driven trace generation and the unified trace-preset resolver.

:func:`generate_cdf_trace` turns a :class:`~repro.workloads.sizes.
SizeDistribution` into a header :class:`~repro.trace.trace.Trace`: flow
*sizes* are drawn from the CDF, converted to MTU packet trains, and the
trains are interleaved on a virtual timeline so roughly ``concurrency``
flows are in flight at once — the packet-level picture a core actually
sees under websearch/datamining/cache traffic, as opposed to the
synthetic elephants-and-mice i.i.d. draw.

Presets (``websearch-1..4``, ``datamining-1..4``, ``cachemice-1..4``)
mirror the synthetic ``caida-*``/``auck-*`` naming, each seeded from
its name via the same CRC32 derivation, so any harness can name any of
them interchangeably.  :func:`resolve_trace` is the single lookup used
by the sim CLI, the experiment runners, the faults harness and the
tournament: CDF presets first, then the synthetic presets, then
``.npz`` paths.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.errors import ConfigError
from repro.trace.models import FlowPopulation
from repro.trace.synthetic import PRESETS as SYNTHETIC_PRESETS
from repro.trace.synthetic import _preset_seed, preset_trace
from repro.trace.trace import Trace
from repro.util.rng import make_rng
from repro.workloads.sizes import SIZE_DISTRIBUTIONS, SizeDistribution

__all__ = [
    "CDFTraceConfig",
    "generate_cdf_trace",
    "CDF_TRACE_PRESETS",
    "cdf_preset_trace",
    "resolve_trace",
    "trace_preset_names",
]


@dataclass(frozen=True)
class CDFTraceConfig:
    """Parameters for one CDF-driven trace.

    Attributes
    ----------
    num_packets:
        Trace length in packets (flow draws are trimmed to hit this
        exactly).
    distribution:
        A :class:`SizeDistribution` or the name of a bundled one.
    mtu:
        Wire MTU; flows are cut into ``ceil(size / mtu)`` packets, the
        last one carrying the remainder.
    concurrency:
        Approximate number of flows in flight at once: each flow's
        packets are spread over ``concurrency`` virtual slots per
        packet, so trains interleave rather than run back to back.
    max_flow_packets / max_flow_fraction:
        Caps on a single flow's packet train — absolute and as a
        fraction of ``num_packets`` (the effective cap is the smaller).
        The fractional cap keeps one datamining/cache monster from
        swallowing a short trace regardless of how far a preset is
        scaled down.
    mean_rate_pps:
        Mean native arrival rate for the gap column (the simulator's
        rate models re-pace headers anyway).
    seed:
        Base RNG seed (presets derive it from their name).
    """

    num_packets: int
    distribution: str | SizeDistribution = "websearch"
    mtu: int = 1500
    concurrency: int = 64
    max_flow_packets: int | None = None
    max_flow_fraction: float = 0.05
    mean_rate_pps: float = 1e6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_packets <= 0:
            raise ConfigError(f"num_packets must be positive, got {self.num_packets}")
        if self.mtu <= 0:
            raise ConfigError(f"mtu must be positive, got {self.mtu}")
        if self.concurrency < 1:
            raise ConfigError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.max_flow_packets is not None and self.max_flow_packets < 1:
            raise ConfigError(
                f"max_flow_packets must be >= 1, got {self.max_flow_packets}"
            )
        if not 0.0 < self.max_flow_fraction <= 1.0:
            raise ConfigError(
                f"max_flow_fraction must be in (0, 1], got {self.max_flow_fraction}"
            )
        if self.mean_rate_pps <= 0:
            raise ConfigError(f"mean_rate_pps must be positive, got {self.mean_rate_pps}")

    def resolve_distribution(self) -> SizeDistribution:
        if isinstance(self.distribution, SizeDistribution):
            return self.distribution
        try:
            return SIZE_DISTRIBUTIONS[self.distribution]
        except KeyError:
            raise ConfigError(
                f"unknown size distribution {self.distribution!r}: "
                f"available {sorted(SIZE_DISTRIBUTIONS)}"
            ) from None


_DRAW_BATCH = 4096  # fixed so the rng draw sequence is length-independent


def generate_cdf_trace(config: CDFTraceConfig, name: str = "") -> Trace:
    """Generate a trace whose flow sizes follow the configured CDF.

    Flow sizes are drawn in fixed-size batches until the packet budget
    is covered (the batch size is constant, so the draw sequence — and
    therefore the trace — depends only on the config, not on how many
    batches were needed).  Each flow becomes an MTU packet train; trains
    are placed on a jittered virtual timeline and globally argsorted
    (stable) into the final packet order.
    """
    dist = config.resolve_distribution()
    rng = make_rng(config.seed)
    n = config.num_packets
    cap = max(1, int(config.max_flow_fraction * n))
    if config.max_flow_packets is not None:
        cap = min(cap, config.max_flow_packets)

    # 1. draw flows until their packet trains cover the budget
    sizes_parts: list[np.ndarray] = []
    covered = 0
    while covered < n:
        batch = dist.sample_bytes(_DRAW_BATCH, rng)
        pkts = np.minimum(cap, np.maximum(1, -(-batch // config.mtu)))
        sizes_parts.append(batch)
        covered += int(pkts.sum())
    flow_bytes = np.concatenate(sizes_parts)
    flow_pkts = np.minimum(cap, np.maximum(1, -(-flow_bytes // config.mtu)))

    # trim to exactly n packets: keep whole flows while they fit, then
    # truncate one flow's train to fill the remainder
    cum = np.cumsum(flow_pkts)
    num_full = int(np.searchsorted(cum, n, side="right"))
    if num_full < flow_pkts.shape[0]:
        flow_pkts = flow_pkts[: num_full + 1].copy()
        flow_bytes = flow_bytes[: num_full + 1].copy()
        prior = int(cum[num_full - 1]) if num_full else 0
        flow_pkts[num_full] = n - prior
        if flow_pkts[num_full] == 0:
            flow_pkts = flow_pkts[:num_full]
            flow_bytes = flow_bytes[:num_full]
    num_flows = flow_pkts.shape[0]

    # 2. per-packet wire sizes: MTU for every packet but the last of
    # each train, which carries the remainder (clamped to [64, mtu])
    fids = np.repeat(np.arange(num_flows, dtype=np.int64), flow_pkts)
    ends = np.cumsum(flow_pkts)
    within = np.arange(n, dtype=np.int64) - np.repeat(ends - flow_pkts, flow_pkts)
    is_last = within == np.repeat(flow_pkts - 1, flow_pkts)
    remainder = flow_bytes - (flow_pkts - 1) * config.mtu
    remainder = np.clip(remainder, 64, config.mtu)
    sizes = np.where(is_last, remainder[fids], config.mtu).astype(np.int32)

    # 3. interleave: flow f starts at a uniform virtual slot; its k-th
    # packet lands ~k*concurrency slots later with per-packet jitter
    virtual_span = float(max(n, 1))
    starts = rng.random(num_flows) * virtual_span
    jitter = rng.random(n)
    pos = starts[fids] + (within + jitter) * config.concurrency
    order = np.argsort(pos, kind="stable")
    fids = fids[order]
    sizes = sizes[order]

    # 4. native gaps + flow table (weights = packet share, so top-k by
    # rate matches the heaviest trains)
    gaps = np.maximum(
        rng.exponential(1e9 / config.mean_rate_pps, size=n), 0.0
    ).astype(np.int64)
    weights = flow_pkts.astype(np.float64) / float(flow_pkts.sum())
    pop = FlowPopulation.sample(num_flows, 0.0, rng, weights=weights)

    return Trace(
        fids, sizes, gaps,
        pop.src_ip, pop.dst_ip, pop.src_port, pop.dst_port, pop.proto,
        name=name,
    )


def _cdf_presets() -> dict[str, CDFTraceConfig]:
    presets: dict[str, CDFTraceConfig] = {}
    base = {
        # websearch: tens-of-KB trains, moderate interleave
        "websearch": CDFTraceConfig(
            num_packets=200_000, distribution="websearch", concurrency=48,
        ),
        # datamining: a mice swarm punctuated by huge trains; cap the
        # monsters so one flow cannot be half the trace
        "datamining": CDFTraceConfig(
            num_packets=200_000, distribution="datamining", concurrency=96,
            max_flow_packets=20_000,
        ),
        # cache-vs-mice: bimodal stress — many tiny requests vs. a few
        # bulk cache fills
        "cachemice": CDFTraceConfig(
            num_packets=200_000, distribution="cache-mice", concurrency=32,
            max_flow_packets=8_000,
        ),
    }
    for stem, cfg in base.items():
        for i in range(1, 5):
            name = f"{stem}-{i}"
            presets[name] = replace(cfg, seed=_preset_seed(name))
    return presets


#: Named CDF trace presets (``websearch-1..4``, ``datamining-1..4``,
#: ``cachemice-1..4``), each seeded from its name like the synthetic
#: presets.
CDF_TRACE_PRESETS: dict[str, CDFTraceConfig] = _cdf_presets()


def cdf_preset_trace(
    name: str, num_packets: int | None = None, **overrides
) -> Trace:
    """Build a named CDF preset trace (optionally resized)."""
    try:
        config = CDF_TRACE_PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown CDF trace preset {name!r}: available "
            f"{sorted(CDF_TRACE_PRESETS)}"
        ) from None
    if num_packets is not None:
        overrides["num_packets"] = num_packets
    if overrides:
        config = replace(config, **overrides)
    return generate_cdf_trace(config, name=name)


def trace_preset_names() -> list[str]:
    """Every named trace preset (synthetic + CDF), sorted."""
    return sorted([*SYNTHETIC_PRESETS, *CDF_TRACE_PRESETS])


def resolve_trace(name: str, num_packets: int | None = None) -> Trace:
    """Resolve a trace by preset name (CDF or synthetic) or ``.npz`` path.

    The single lookup shared by the sim CLI, experiment runners, faults
    harness and tournament, so every harness accepts every preset.
    """
    if name in CDF_TRACE_PRESETS:
        return cdf_preset_trace(name, num_packets=num_packets)
    if name in SYNTHETIC_PRESETS:
        return preset_trace(name, num_packets=num_packets)
    path = Path(name)
    if path.suffix in (".npz",) and path.exists():
        trace = Trace.load_npz(path)
        return trace.head(num_packets) if num_packets is not None else trace
    raise ConfigError(
        f"unknown trace {name!r}: not a preset "
        f"({', '.join(trace_preset_names())}) and not an existing .npz path"
    )
