"""Trace substrate: synthetic heavy-tailed trace generation, a compact
array-of-struct trace container with npz/csv persistence, a classic-pcap
reader/writer, and offline flow analysis (rank-size curves, exact top-k
ground truth for AFD accuracy).

The paper evaluates on CAIDA (equinix-sanjose, OC-192) and Auckland-II
traces; those datasets are not redistributable, so this package ships
calibrated synthetic presets (:func:`repro.trace.synthetic.preset_trace`)
that reproduce the two datasets' qualitative signatures — CAIDA-like:
very many concurrently active flows with a long heavy tail; Auckland-like:
fewer actives with sharper elephant dominance — plus a pcap ingest path
so real captures can be dropped in unchanged.
"""

from repro.trace.trace import HeaderCursor, Trace
from repro.trace.models import (
    FlowPopulation,
    PacketSizeModel,
    TRIMODAL_INTERNET_SIZES,
    zipf_weights,
)
from repro.trace.synthetic import (
    PRESETS,
    SyntheticTraceConfig,
    generate_trace,
    preset_trace,
)
from repro.trace.analysis import (
    concentration,
    flow_sizes,
    rank_size,
    top_k_flows,
    windowed_top_k,
)
from repro.trace.pcap import (
    read_pcap,
    trace_from_pcap,
    write_pcap,
)
from repro.trace.replay import native_workload

__all__ = [
    "HeaderCursor",
    "Trace",
    "FlowPopulation",
    "PacketSizeModel",
    "TRIMODAL_INTERNET_SIZES",
    "zipf_weights",
    "PRESETS",
    "SyntheticTraceConfig",
    "generate_trace",
    "preset_trace",
    "concentration",
    "flow_sizes",
    "rank_size",
    "top_k_flows",
    "windowed_top_k",
    "read_pcap",
    "trace_from_pcap",
    "write_pcap",
    "native_workload",
]
