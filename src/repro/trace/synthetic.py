"""Synthetic heavy-tailed trace generation (the CAIDA/Auckland stand-in).

Flow rate weights follow the **elephants-and-mice** structure the
paper's motivation rests on ([17], [37]): a small number of elephant
flows carries a large share of the traffic and a huge population of
mice carries the rest.  The generator draws each packet's flow i.i.d.
from those weights, then *smears* draws into geometric bursts so
elephants exhibit the temporal burstiness real TCP elephants show.
Inter-arrival gaps are exponential at the configured mean rate (the
simulator's Holt-Winters generator re-paces headers anyway, matching
the paper's methodology of taking *headers* from traces while *rates*
come from eq. 1).

Presets
-------
``caida-1 .. caida-6``
    Backbone-like: 50k flows, many elephants (48) with a gradual
    head-to-tail transition and many mid-rate flows — the
    equinix-sanjose signature (Sec. V-B notes CAIDA has "much more
    active flows" and a "large number of high data rate flows", which
    is what makes its top-16 harder for the AFD to isolate).
``auck-1 .. auck-8``
    Access-link-like: 8k flows, few sharply-dominant elephants (24) —
    the signature where a 512-entry annex suffices for 100% top-16
    accuracy.

Each preset seeds its own RNG from the preset name so ``caida-1`` is
the same trace in every process.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigError
from repro.trace.models import (
    FlowPopulation,
    PacketSizeModel,
    TRIMODAL_INTERNET_SIZES,
    capped_zipf_weights,
    elephant_mice_weights,
    zipf_weights,
)
from repro.trace.trace import Trace
from repro.util.rng import make_rng

__all__ = ["SyntheticTraceConfig", "generate_trace", "preset_trace", "PRESETS"]


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Parameters for one synthetic trace.

    Attributes
    ----------
    num_packets:
        Trace length in packets.
    num_flows:
        Flow population size.
    num_elephants / elephant_share / alpha_elephants / alpha_mice:
        The bimodal rate model (see
        :func:`~repro.trace.models.elephant_mice_weights`).  Setting
        ``num_elephants=None`` falls back to a plain Zipf over all
        flows with exponent ``alpha_mice`` (optionally water-filled
        under ``weight_cap``).
    mean_rate_pps:
        Mean arrival rate used for the native gap column.
    burst_mean:
        Mean geometric run length: consecutive packets from one flow
        draw.  1.0 = pure i.i.d. sampling; elephants in real traces run
        at ~4-16 packets per scheduling quantum.
    size_model:
        Packet-size mixture.
    seed:
        Base RNG seed (presets derive it from their name).
    """

    num_packets: int
    num_flows: int
    num_elephants: int | None = 32
    elephant_share: float = 0.45
    alpha_elephants: float = 0.5
    alpha_mice: float = 0.4
    weight_cap: float | None = None
    mean_rate_pps: float = 1e6
    burst_mean: float = 4.0
    mice_epochs: int = 1
    elephant_turnover: float = 0.0
    elephant_sizes: tuple[int, ...] | None = None
    size_model: PacketSizeModel = TRIMODAL_INTERNET_SIZES
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_packets < 0:
            raise ConfigError(f"num_packets must be >= 0, got {self.num_packets}")
        if self.num_flows <= 0:
            raise ConfigError(f"num_flows must be positive, got {self.num_flows}")
        if self.mean_rate_pps <= 0:
            raise ConfigError(f"mean_rate_pps must be positive, got {self.mean_rate_pps}")
        if self.burst_mean < 1.0:
            raise ConfigError(f"burst_mean must be >= 1, got {self.burst_mean}")
        if self.mice_epochs < 1:
            raise ConfigError(f"mice_epochs must be >= 1, got {self.mice_epochs}")
        if not 0.0 <= self.elephant_turnover <= 1.0:
            raise ConfigError(
                f"elephant_turnover must be in [0, 1], got {self.elephant_turnover}"
            )
        if self.mice_epochs > 1 and self.num_elephants is None:
            raise ConfigError("mice_epochs > 1 requires the elephants-and-mice model")
        if self.elephant_turnover > 0 and self.num_elephants is None:
            raise ConfigError("elephant_turnover requires the elephants-and-mice model")
        if self.elephant_sizes is not None:
            if self.num_elephants is None:
                raise ConfigError("elephant_sizes requires the elephants-and-mice model")
            if not self.elephant_sizes or any(s <= 0 for s in self.elephant_sizes):
                raise ConfigError(f"elephant_sizes must be positive: {self.elephant_sizes}")

    def rate_weights(self) -> np.ndarray:
        """The per-flow rate weights this config implies."""
        if self.num_elephants is not None:
            return elephant_mice_weights(
                self.num_flows,
                self.num_elephants,
                self.elephant_share,
                alpha_elephants=self.alpha_elephants,
                alpha_mice=self.alpha_mice,
            )
        if self.weight_cap is not None:
            return capped_zipf_weights(self.num_flows, self.alpha_mice, self.weight_cap)
        return zipf_weights(self.num_flows, self.alpha_mice)


def _burst_expand(draws: np.ndarray, run_lengths: np.ndarray, total: int) -> np.ndarray:
    """Repeat each draw by its run length and trim to *total* packets."""
    expanded = np.repeat(draws, run_lengths)
    return expanded[:total]


def _sample_flow_ids(
    rng: np.random.Generator,
    ids: np.ndarray,
    probs: np.ndarray,
    count: int,
    burst_mean: float,
) -> np.ndarray:
    """Draw *count* flow ids from (ids, probs) in geometric bursts."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if burst_mean == 1.0:
        return rng.choice(ids, size=count, p=probs).astype(np.int64)
    p_stop = 1.0 / burst_mean
    est_draws = int(count * p_stop * 1.3) + 16
    chunks: list[np.ndarray] = []
    have = 0
    while have < count:
        draws = rng.choice(ids, size=est_draws, p=probs).astype(np.int64)
        runs = rng.geometric(p_stop, size=est_draws)
        chunk = _burst_expand(draws, runs, count - have)
        chunks.append(chunk)
        have += chunk.shape[0]
        est_draws = max(16, int((count - have) * p_stop * 1.5) + 16)
    return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)


def generate_trace(config: SyntheticTraceConfig, name: str = "") -> Trace:
    """Generate a synthetic trace per *config* (fully vectorised).

    Nonstationarity (both optional) mimics real captures:

    * ``mice_epochs > 1`` — the trace is cut into that many epochs and
      each epoch draws from a disjoint 1/E stripe of the mice
      population (mice are short-lived; the number of *concurrently*
      active flows is a fraction of the total seen over the capture);
    * ``elephant_turnover > 0`` — that fraction of the smallest
      elephant slots is handed to a *fresh* flow id at a random epoch
      boundary, so some heavy flows arrive mid-trace and must climb
      through the detector's mice flood from scratch (the effect that
      makes small annex caches miss them, paper Fig. 8a).

    Turned-over slots add one extra flow id each, so
    ``trace.num_flows == config.num_flows + round(turnover * elephants)``.
    """
    rng = make_rng(config.seed)
    weights = config.rate_weights()
    n_e = config.num_elephants or 0
    turnover_k = round(config.elephant_turnover * n_e)
    turnover_slots = list(range(n_e - turnover_k, n_e))  # smallest elephants
    total_flows = config.num_flows + turnover_k
    all_weights = np.concatenate([weights, weights[turnover_slots]]) \
        if turnover_k else weights
    pop = FlowPopulation.sample(total_flows, 0.0, rng, weights=all_weights)

    n = config.num_packets
    if n == 0:
        return Trace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int64),
            pop.src_ip, pop.dst_ip, pop.src_port, pop.dst_port, pop.proto,
            name=name,
        )

    epochs = config.mice_epochs if config.mice_epochs > 1 else (2 if turnover_k else 1)
    n_mice = config.num_flows - n_e
    if epochs > 1 and n_mice < epochs:
        raise ConfigError(
            f"{n_mice} mice cannot be striped over {epochs} epochs"
        )
    switch_epoch = (
        rng.integers(1, epochs, size=turnover_k) if turnover_k else np.empty(0, dtype=int)
    )

    mice_ids = np.arange(n_e, config.num_flows, dtype=np.int64)
    bounds = np.linspace(0, n, epochs + 1).astype(int)
    parts: list[np.ndarray] = []
    for e in range(epochs):
        count = int(bounds[e + 1] - bounds[e])
        if count == 0:
            continue
        # elephants active this epoch (turned-over slots swap ids)
        e_ids = np.arange(n_e, dtype=np.int64)
        for j, slot in enumerate(turnover_slots):
            if e >= switch_epoch[j]:
                e_ids[slot] = config.num_flows + j
        e_w = weights[:n_e]
        # this epoch's mice stripe, weights scaled so the aggregate
        # elephant/mice split is preserved
        if config.mice_epochs > 1:
            stripe = mice_ids[(mice_ids - n_e) % config.mice_epochs == e % config.mice_epochs]
            m_w = weights[stripe] * config.mice_epochs
        else:
            stripe = mice_ids
            m_w = weights[stripe] if n_e else weights
        if n_e:
            ids = np.concatenate([e_ids, stripe])
            probs = np.concatenate([e_w, m_w])
        else:
            ids, probs = stripe, m_w
        probs = probs / probs.sum()
        parts.append(_sample_flow_ids(rng, ids, probs, count, config.burst_mean))
    flow_ids = parts[0] if len(parts) == 1 else np.concatenate(parts)

    sizes = config.size_model.sample(n, rng)
    if config.elephant_sizes is not None and n_e:
        # heterogeneous elephants: each elephant flow id (including
        # turnover replacements) carries one characteristic wire size,
        # so the byte ranking (the paper's "flow size") and the packet
        # ranking the AFD observes genuinely disagree near the top-16
        # boundary -- bulk 1500 B flows rank high in bytes on modest
        # packet rates, small-packet streams the other way round.
        classes = np.asarray(config.elephant_sizes, dtype=np.int32)
        per_flow = rng.choice(classes, size=total_flows)
        is_elephant = (flow_ids < n_e) | (flow_ids >= config.num_flows)
        sizes = np.where(is_elephant, per_flow[flow_ids], sizes).astype(np.int32)
    mean_gap_ns = 1e9 / config.mean_rate_pps
    gaps = np.maximum(rng.exponential(mean_gap_ns, size=n), 0.0).astype(np.int64)

    return Trace(
        flow_ids, sizes, gaps,
        pop.src_ip, pop.dst_ip, pop.src_port, pop.dst_port, pop.proto,
        name=name,
    )


def _preset_seed(name: str) -> int:
    """Stable per-preset seed derived from the preset name.

    Deliberately CRC32, never ``hash()``: the builtin string hash is
    salted per interpreter run (PYTHONHASHSEED) and differs across
    Python versions, which would silently change every preset trace.
    CRC32 of the UTF-8 name is identical everywhere; the resulting
    trace content is pinned by the golden-fingerprint test in
    ``tests/trace/test_golden_fingerprints.py`` — if this derivation
    (or the generator's draw order) changes, that test fails loudly.
    """
    return zlib.crc32(name.encode()) & 0x7FFFFFFF


#: Named presets standing in for the paper's Tables I/II datasets.
#: Sizes are scaled to what a Python trace-driven run can chew through;
#: the *relative* characteristics (actives, elephant structure) follow
#: Sec. V-B.
PRESETS: dict[str, SyntheticTraceConfig] = {}


def _register_presets() -> None:
    # CAIDA-like: many actives, elephants with a gradual head (ranks
    # ~13-20 nearly tied) -> the AFD confuses the top-16 boundary, as
    # in the paper's Fig. 8a where Caida keeps 2-3 false positives that
    # "fall into the top-20".  Each elephant is ~2-4% of the traffic
    # (about half a core's fair share on 16 cores): big enough that a
    # hash collision of two overloads a core, small enough to migrate.
    caida_base = SyntheticTraceConfig(
        num_packets=200_000,
        num_flows=50_000,
        num_elephants=18,
        elephant_share=0.50,
        alpha_elephants=0.25,
        alpha_mice=0.50,
        burst_mean=3.0,
        mice_epochs=10,
        elephant_turnover=0.3,
        elephant_sizes=(1500, 1500, 1152, 576, 576, 192, 96),
    )
    for i, share in enumerate((0.50, 0.48, 0.52, 0.49, 0.51, 0.47), start=1):
        PRESETS[f"caida-{i}"] = replace(
            caida_base, elephant_share=share, seed=_preset_seed(f"caida-{i}")
        )
    # Auckland-like: fewer actives and a cleanly separated top-16 ->
    # the AFD reaches 100% top-16 accuracy with a 512-entry annex
    # (Fig. 8a's Auckland result).
    auck_base = SyntheticTraceConfig(
        num_packets=200_000,
        num_flows=8_000,
        num_elephants=16,
        elephant_share=0.55,
        alpha_elephants=0.6,
        alpha_mice=0.30,
        burst_mean=5.0,
        mice_epochs=4,
        elephant_turnover=0.0,
    )
    for i, share in enumerate(
        (0.55, 0.52, 0.58, 0.54, 0.56, 0.60, 0.53, 0.57), start=1
    ):
        PRESETS[f"auck-{i}"] = replace(
            auck_base, elephant_share=share, seed=_preset_seed(f"auck-{i}")
        )


_register_presets()


def preset_trace(
    name: str,
    num_packets: int | None = None,
    **overrides,
) -> Trace:
    """Instantiate a named preset (optionally overriding its length or
    any other :class:`SyntheticTraceConfig` field)."""
    if name not in PRESETS:
        raise ConfigError(
            f"unknown preset {name!r}; available: {', '.join(sorted(PRESETS))}"
        )
    config = PRESETS[name]
    if num_packets is not None:
        overrides["num_packets"] = num_packets
    if overrides:
        config = replace(config, **overrides)
    return generate_trace(config, name=name)
