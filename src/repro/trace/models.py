"""Statistical models behind synthetic traces.

Two ingredients define the traffic mix the paper's motivation rests on:

* **Flow-size skew** (Fig. 2): a handful of "elephant" flows carry most
  of the bytes while a very large number of "mice" carry almost nothing.
  :func:`zipf_weights` produces the classic rank-size power law
  ``w_r ∝ r^{-alpha}`` observed in backbone traces.
* **Packet sizes**: Internet mixes are famously trimodal (ACK-sized ~40 B,
  mid ~576 B, MTU ~1500 B); :data:`TRIMODAL_INTERNET_SIZES` captures that.

:class:`FlowPopulation` samples a concrete flow table (5-tuples + rate
weights); :class:`PacketSizeModel` samples wire sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hashing.five_tuple import PROTO_TCP, PROTO_UDP
from repro.util.rng import make_rng

__all__ = [
    "zipf_weights",
    "capped_zipf_weights",
    "elephant_mice_weights",
    "PacketSizeModel",
    "TRIMODAL_INTERNET_SIZES",
    "FlowPopulation",
]


def zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Normalised Zipf(alpha) rank weights for *n* flows.

    ``alpha`` around 1.0-1.3 matches measured backbone flow-size skew;
    alpha=0 degenerates to uniform.  Returned weights sum to 1 and are
    sorted descending (rank 1 first), matching Fig. 2's axes.
    """
    if n <= 0:
        raise ValueError(f"need at least one flow, got {n}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks**-alpha
    return w / w.sum()


def capped_zipf_weights(n: int, alpha: float, cap: float) -> np.ndarray:
    """Zipf(alpha) weights water-filled under a per-flow cap.

    A raw Zipf head can put >10% of all traffic on rank 1, which no
    real backbone link exhibits (a top flow on an OC-192 is a percent
    or two) and which would make load balancing trivially impossible —
    a flow bigger than a core's capacity saturates any core it lands
    on.  This clips weights at *cap* and redistributes the excess over
    the unclipped tail (iterated to a fixed point), preserving the
    heavy-tail shape below the cap.  ``cap >= 1/n`` is required for
    feasibility.
    """
    if not 0.0 < cap <= 1.0:
        raise ValueError(f"cap must be in (0, 1], got {cap}")
    if cap * n < 1.0:
        raise ValueError(
            f"cap {cap} infeasible for {n} flows (cap * n must be >= 1)"
        )
    w = zipf_weights(n, alpha)
    clipped = np.zeros(n, dtype=bool)
    for _ in range(64):  # converges in O(log n) rounds in practice
        over = (w > cap) & ~clipped
        if not over.any():
            break
        clipped |= over
        free = ~clipped
        free_mass = 1.0 - cap * clipped.sum()
        w = np.where(clipped, cap, 0.0)
        raw = zipf_weights(n, alpha)
        if free.any() and raw[free].sum() > 0:
            w[free] = raw[free] * (free_mass / raw[free].sum())
    return w


def elephant_mice_weights(
    n: int,
    num_elephants: int,
    elephant_share: float,
    alpha_elephants: float = 0.5,
    alpha_mice: float = 0.4,
) -> np.ndarray:
    """Bimodal elephants-and-mice rate weights.

    The measured reality behind the paper's motivation ([17], [37]) is
    bimodal, not a smooth power law: a handful of elephant flows carry
    a large share of the traffic while a huge population of mice each
    carry almost nothing.  This model makes that structure explicit —
    *num_elephants* flows split *elephant_share* of the traffic by a
    mild Zipf, the remaining ``n - num_elephants`` mice split the rest
    by an even milder one — which reproduces the paper's premise by
    construction: hash imbalance is caused by where the elephants land,
    and migrating the top few flows is sufficient to rebalance.

    Returns weights sorted descending (rank 1 = biggest elephant).
    """
    if not 0 < num_elephants < n:
        raise ValueError(
            f"num_elephants must be in (0, {n}), got {num_elephants}"
        )
    if not 0.0 < elephant_share < 1.0:
        raise ValueError(
            f"elephant_share must be in (0, 1), got {elephant_share}"
        )
    w_e = zipf_weights(num_elephants, alpha_elephants) * elephant_share
    w_m = zipf_weights(n - num_elephants, alpha_mice) * (1.0 - elephant_share)
    if w_e[-1] <= w_m[0]:
        raise ValueError(
            "elephant and mice classes overlap: the smallest elephant "
            f"({w_e[-1]:.2e}) is not larger than the biggest mouse "
            f"({w_m[0]:.2e}); raise elephant_share or lower alpha_mice"
        )
    return np.concatenate([w_e, w_m])


@dataclass(frozen=True)
class PacketSizeModel:
    """A discrete mixture over wire sizes.

    ``sizes`` and ``probs`` define the support and mixture weights; a
    draw returns int32 sizes.  Deterministic single-size models are just
    ``PacketSizeModel((64,), (1.0,))``.
    """

    sizes: tuple[int, ...]
    probs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.probs) or not self.sizes:
            raise ValueError("sizes and probs must be equal-length and non-empty")
        if any(s <= 0 for s in self.sizes):
            raise ValueError(f"packet sizes must be positive: {self.sizes}")
        if any(p < 0 for p in self.probs):
            raise ValueError(f"probabilities must be >= 0: {self.probs}")
        total = sum(self.probs)
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"probabilities must sum to 1, got {total}")

    @property
    def mean(self) -> float:
        """Expected packet size in bytes."""
        return float(np.dot(self.sizes, self.probs))

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Draw *n* sizes (int32)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        rng = make_rng(rng)
        idx = rng.choice(len(self.sizes), size=n, p=np.asarray(self.probs))
        return np.asarray(self.sizes, dtype=np.int32)[idx]


#: The canonical trimodal Internet packet-size mix (IMIX-like):
#: small control/ACK packets dominate counts, MTU packets dominate bytes.
TRIMODAL_INTERNET_SIZES = PacketSizeModel(
    sizes=(40, 576, 1500),
    probs=(0.58, 0.33, 0.09),
)


@dataclass
class FlowPopulation:
    """A sampled population of flows: 5-tuples plus Zipf rate weights.

    Attributes are parallel arrays indexed by dense flow id; ``weights``
    is sorted descending so flow id 0 is the biggest elephant, which
    makes ground-truth top-k checks trivial (`top-k == ids 0..k-1`).
    """

    src_ip: np.ndarray
    dst_ip: np.ndarray
    src_port: np.ndarray
    dst_port: np.ndarray
    proto: np.ndarray
    weights: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        n = self.src_ip.shape[0]
        for arr in (self.dst_ip, self.src_port, self.dst_port, self.proto, self.weights):
            if arr.shape[0] != n:
                raise ValueError("flow population columns have mismatched lengths")
        if n == 0:
            raise ValueError("flow population cannot be empty")
        if np.any(self.weights < 0):
            raise ValueError("flow weights must be non-negative")

    @property
    def num_flows(self) -> int:
        return int(self.src_ip.shape[0])

    @classmethod
    def sample(
        cls,
        num_flows: int,
        alpha: float,
        rng: np.random.Generator | int | None = None,
        tcp_fraction: float = 0.85,
        weight_cap: float | None = None,
        weights: np.ndarray | None = None,
    ) -> "FlowPopulation":
        """Sample *num_flows* distinct 5-tuples with Zipf(alpha) weights
        (water-filled under *weight_cap* when given), or with an
        explicit *weights* vector (e.g. from
        :func:`elephant_mice_weights`), which overrides both.

        Addresses are drawn uniformly from private 10/8 and public-ish
        ranges; collisions are re-drawn so every flow id has a distinct
        5-tuple (a requirement for the AFD ground truth to be exact).
        """
        if not 0.0 <= tcp_fraction <= 1.0:
            raise ValueError(f"tcp_fraction must be in [0, 1], got {tcp_fraction}")
        rng = make_rng(rng)
        seen: set[tuple[int, int, int, int, int]] = set()
        cols = (
            np.empty(num_flows, dtype=np.uint32),
            np.empty(num_flows, dtype=np.uint32),
            np.empty(num_flows, dtype=np.uint16),
            np.empty(num_flows, dtype=np.uint16),
            np.empty(num_flows, dtype=np.uint8),
        )
        filled = 0
        while filled < num_flows:
            need = num_flows - filled
            # over-draw slightly; collisions are rare in a 2^96 space
            batch = max(need, 16)
            src = rng.integers(0x0A000000, 0x0AFFFFFF, size=batch, dtype=np.uint32)
            dst = rng.integers(0xC0A80000, 0xDFFFFFFF, size=batch, dtype=np.uint32)
            sport = rng.integers(1024, 65535, size=batch, dtype=np.uint16)
            dport = rng.choice(
                np.array([80, 443, 53, 22, 25, 8080, 5060, 1194], dtype=np.uint16),
                size=batch,
            )
            proto = np.where(
                rng.random(batch) < tcp_fraction, PROTO_TCP, PROTO_UDP
            ).astype(np.uint8)
            for i in range(batch):
                key = (int(src[i]), int(dst[i]), int(sport[i]), int(dport[i]), int(proto[i]))
                if key in seen:
                    continue
                seen.add(key)
                cols[0][filled] = src[i]
                cols[1][filled] = dst[i]
                cols[2][filled] = sport[i]
                cols[3][filled] = dport[i]
                cols[4][filled] = proto[i]
                filled += 1
                if filled == num_flows:
                    break
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape[0] != num_flows:
                raise ValueError(
                    f"weights length {weights.shape[0]} != num_flows {num_flows}"
                )
        elif weight_cap is None:
            weights = zipf_weights(num_flows, alpha)
        else:
            weights = capped_zipf_weights(num_flows, alpha, weight_cap)
        return cls(*cols, weights=weights)
