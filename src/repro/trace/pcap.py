"""Classic libpcap file reading/writing with IPv4/TCP/UDP 5-tuple
extraction.

The paper's datasets ship as ``.pcap.gz``; this module lets real
captures be ingested into a :class:`~repro.trace.trace.Trace` unchanged
and, symmetrically, lets tests and examples materialise tiny captures to
exercise the parse path.  Only the classic (non-ng) format is handled:
magic ``0xA1B2C3D4`` (microsecond) and ``0xA1B23C4D`` (nanosecond), both
byte orders, Ethernet-II or raw-IP link types.  ``.gz`` paths are
transparently decompressed.

Non-IPv4 frames and IP fragments with a non-zero offset are skipped (the
scheduler only steers on complete 5-tuples); counts of skipped frames
are reported so silent truncation is visible.
"""

from __future__ import annotations

import gzip
import io
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterator

from repro.errors import TraceFormatError
from repro.hashing.five_tuple import FiveTuple
from repro.trace.trace import Trace

__all__ = [
    "PcapPacket", "read_pcap", "write_pcap", "trace_from_pcap",
    "iter_pcap", "parse_pcap_stream", "new_counters",
]

MAGIC_US_BE = 0xA1B2C3D4
MAGIC_NS_BE = 0xA1B23C4D

LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101

_ETHERTYPE_IPV4 = 0x0800


@dataclass(frozen=True, slots=True)
class PcapPacket:
    """One parsed capture record."""

    ts_ns: int
    wire_len: int
    key: FiveTuple | None  # None when not an IPv4 TCP/UDP packet


def _open(path: str | Path, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def new_counters() -> dict[str, int]:
    """A fresh skip-counter dict as populated by the parse functions."""
    return {
        "total": 0,
        "ipv4": 0,
        "tcp_udp": 0,
        "skipped_non_ip": 0,
        "skipped_fragment": 0,
        "skipped_short": 0,
    }


def parse_pcap_stream(
    fh: BinaryIO, counters: dict[str, int] | None = None
) -> Iterator[PcapPacket]:
    """Stream records from an open pcap file object, one at a time.

    This is the O(record) core: only the 24-byte global header plus one
    record are ever held in memory, so multi-GB captures can be replayed
    without materialisation.  Yields every record (non-IP ones carry
    ``key=None``); *counters* — a dict from :func:`new_counters` — is
    updated in place as records are consumed, so totals are valid both
    mid-stream and at exhaustion.
    """
    if counters is None:
        counters = new_counters()
    header = fh.read(24)
    if len(header) < 24:
        raise TraceFormatError("pcap too short for a global header")
    magic_be = struct.unpack(">I", header[:4])[0]
    magic_le = struct.unpack("<I", header[:4])[0]
    if magic_be in (MAGIC_US_BE, MAGIC_NS_BE):
        endian = ">"
        magic = magic_be
    elif magic_le in (MAGIC_US_BE, MAGIC_NS_BE):
        endian = "<"
        magic = magic_le
    else:
        raise TraceFormatError(f"not a classic pcap (magic 0x{magic_be:08X})")
    ts_scale = 1 if magic == MAGIC_NS_BE else 1000  # subsecond field -> ns

    (_vmaj, _vmin, _tz, _sig, snaplen, linktype) = struct.unpack(
        endian + "HHiIII", header[4:24]
    )[:6]
    if linktype not in (LINKTYPE_ETHERNET, LINKTYPE_RAW):
        raise TraceFormatError(f"unsupported linktype {linktype}")
    if snaplen == 0:
        raise TraceFormatError("snaplen of 0 is invalid")

    rec_hdr = struct.Struct(endian + "IIII")
    while True:
        hdr = fh.read(16)
        if not hdr:
            return
        if len(hdr) < 16:
            raise TraceFormatError("truncated record header")
        ts_sec, ts_sub, incl_len, orig_len = rec_hdr.unpack(hdr)
        frame = fh.read(incl_len)
        if len(frame) < incl_len:
            raise TraceFormatError("truncated record body")
        counters["total"] += 1
        ts_ns = ts_sec * 1_000_000_000 + ts_sub * ts_scale
        key = _parse_frame(frame, linktype, counters)
        yield PcapPacket(ts_ns=ts_ns, wire_len=orig_len, key=key)


def iter_pcap(
    path: str | Path, counters: dict[str, int] | None = None
) -> Iterator[PcapPacket]:
    """Stream records from a pcap(.gz) file path; see
    :func:`parse_pcap_stream`.  The file is closed when the generator
    is exhausted or dropped."""
    with _open(path, "rb") as fh:
        yield from parse_pcap_stream(fh, counters)


def read_pcap(path: str | Path) -> tuple[list[PcapPacket], dict[str, int]]:
    """Parse a pcap(.gz) file (materialising wrapper over
    :func:`iter_pcap`).

    Returns the packet list (every record, including non-IP ones with
    ``key=None``) and a counters dict: ``total``, ``ipv4``, ``tcp_udp``,
    ``skipped_non_ip``, ``skipped_fragment``, ``skipped_short``.
    """
    counters = new_counters()
    packets = list(iter_pcap(path, counters))
    return packets, counters


def parse_pcap_bytes(data: bytes) -> tuple[list[PcapPacket], dict[str, int]]:
    """Parse in-memory pcap bytes; see :func:`read_pcap`."""
    counters = new_counters()
    packets = list(parse_pcap_stream(io.BytesIO(data), counters))
    return packets, counters


def _parse_frame(frame: bytes, linktype: int, counters: dict[str, int]) -> FiveTuple | None:
    if linktype == LINKTYPE_ETHERNET:
        if len(frame) < 14:
            counters["skipped_short"] += 1
            return None
        ethertype = struct.unpack(">H", frame[12:14])[0]
        if ethertype != _ETHERTYPE_IPV4:
            counters["skipped_non_ip"] += 1
            return None
        ip = frame[14:]
    else:  # raw IP
        ip = frame
    if len(ip) < 20:
        counters["skipped_short"] += 1
        return None
    vihl = ip[0]
    if vihl >> 4 != 4:
        counters["skipped_non_ip"] += 1
        return None
    ihl = (vihl & 0x0F) * 4
    if ihl < 20 or len(ip) < ihl:
        counters["skipped_short"] += 1
        return None
    counters["ipv4"] += 1
    flags_frag = struct.unpack(">H", ip[6:8])[0]
    if flags_frag & 0x1FFF:  # non-first fragment: no L4 header
        counters["skipped_fragment"] += 1
        return None
    proto = ip[9]
    src_ip, dst_ip = struct.unpack(">II", ip[12:20])
    if proto not in (6, 17):
        # still a valid IPv4 flow; ports are zero for other protocols
        return FiveTuple(src_ip, dst_ip, 0, 0, proto)
    l4 = ip[ihl:]
    if len(l4) < 4:
        counters["skipped_short"] += 1
        return None
    src_port, dst_port = struct.unpack(">HH", l4[:4])
    counters["tcp_udp"] += 1
    return FiveTuple(src_ip, dst_ip, src_port, dst_port, proto)


def write_pcap(
    path: str | Path,
    packets: list[tuple[int, FiveTuple, int]],
    *,
    nanosecond: bool = True,
) -> None:
    """Write ``(ts_ns, key, wire_len)`` rows as a classic pcap(.gz).

    Frames are synthesised as Ethernet-II + IPv4 + minimal TCP/UDP
    headers; payload beyond the headers is omitted (snap), ``orig_len``
    carries the full wire length so byte counts round-trip.
    """
    buf = io.BytesIO()
    magic = MAGIC_NS_BE if nanosecond else MAGIC_US_BE
    buf.write(struct.pack(">IHHiIII", magic, 2, 4, 0, 0, 65535, LINKTYPE_ETHERNET))
    for ts_ns, key, wire_len in packets:
        frame = _build_frame(key, wire_len)
        ts_sec, rem = divmod(ts_ns, 1_000_000_000)
        ts_sub = rem if nanosecond else rem // 1000
        buf.write(struct.pack(">IIII", ts_sec, ts_sub, len(frame), max(wire_len, len(frame))))
        buf.write(frame)
    with _open(path, "wb") as fh:
        fh.write(buf.getvalue())


def _build_frame(key: FiveTuple, wire_len: int) -> bytes:
    eth = b"\x02\x00\x00\x00\x00\x01" + b"\x02\x00\x00\x00\x00\x02" + struct.pack(">H", _ETHERTYPE_IPV4)
    l4_len = 20 if key.protocol == 6 else 8
    total_len = max(20 + l4_len, min(wire_len - 14, 65535))
    ip = struct.pack(
        ">BBHHHBBHII",
        0x45, 0, total_len, 0, 0, 64, key.protocol, 0, key.src_ip, key.dst_ip,
    )
    if key.protocol == 6:
        l4 = struct.pack(">HHIIBBHHH", key.src_port, key.dst_port, 0, 0, 5 << 4, 0, 0, 0, 0)
    elif key.protocol == 17:
        l4 = struct.pack(">HHHH", key.src_port, key.dst_port, 8, 0)
    else:
        l4 = b""
    return eth + ip + l4


def trace_from_pcap(path: str | Path, name: str = "") -> tuple[Trace, dict[str, int]]:
    """Read a pcap(.gz) into a :class:`Trace` (IPv4 packets only).

    Native gaps are derived from capture timestamps (first packet at its
    offset from itself, i.e. gap 0).  Returns the trace and the skip
    counters from :func:`read_pcap`.  Records are consumed through the
    streaming reader, so only the usable rows are ever materialised.
    """
    counters = new_counters()
    rows: list[tuple[FiveTuple, int, int]] = []
    prev_ts: int | None = None
    for p in iter_pcap(path, counters):
        if p.key is None:
            continue
        gap = 0 if prev_ts is None else max(0, p.ts_ns - prev_ts)
        prev_ts = p.ts_ns
        rows.append((p.key, max(1, p.wire_len), gap))
    trace = Trace.from_packets(rows, name=name or str(path))
    return trace, counters
